//! Optical transponders, regenerators and muxponders.
//!
//! - A [`Transponder`] (OT) converts a client-side signal to a tunable
//!   line-side wavelength. Tuning the laser is the single slowest optical
//!   task in connection setup (§3 of the paper).
//! - A [`Regen`] is the standard back-to-back OT pair used when a path
//!   exceeds optical reach; it also permits wavelength conversion at the
//!   regeneration site.
//! - A [`Muxponder`] aggregates four 10 G client ports onto a 40 G line
//!   signal; the testbed uses one per customer premises as emulated
//!   network-terminating equipment (NTE), and muxponders are also the
//!   "today's reality" way of carrying sub-wavelength traffic that the
//!   OTN layer's grooming is compared against (experiment E6).
//!
//! Transponders live at ROADM nodes and are shared between customers via
//! the client-side FXC — "dynamic sharing of transponders … useful in
//! keeping costs low" (§2.2).

use serde::{Deserialize, Serialize};
use simcore::define_id;

use crate::grid::{LineRate, Wavelength};
use crate::roadm::RoadmId;

define_id!(
    /// Identifier of an optical transponder.
    TransponderId,
    "ot"
);

define_id!(
    /// Identifier of a regenerator (a back-to-back OT pair).
    RegenId,
    "regen"
);

define_id!(
    /// Identifier of a muxponder.
    MuxponderId,
    "mxp"
);

/// Lifecycle of a transponder's line side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransponderState {
    /// Laser off, available to the pool.
    Idle,
    /// Laser tuning to the target wavelength (takes tens of seconds).
    Tuning {
        /// The wavelength being acquired.
        target: Wavelength,
    },
    /// Locked and carrying traffic.
    Active {
        /// The lit wavelength.
        wavelength: Wavelength,
    },
    /// Hardware fault — removed from the pool until replaced.
    Failed,
}

/// A tunable optical transponder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transponder {
    /// This OT's id.
    pub id: TransponderId,
    /// The ROADM node whose add/drop bank it sits in.
    pub location: RoadmId,
    /// Line rate this OT transmits at.
    pub rate: LineRate,
    /// Current line-side state.
    pub state: TransponderState,
}

impl Transponder {
    /// A new idle transponder.
    pub fn new(id: TransponderId, location: RoadmId, rate: LineRate) -> Transponder {
        Transponder {
            id,
            location,
            rate,
            state: TransponderState::Idle,
        }
    }

    /// Is the OT free for a new connection?
    pub fn is_idle(&self) -> bool {
        self.state == TransponderState::Idle
    }

    /// Begin tuning the laser to `w`.
    ///
    /// # Panics
    /// If the OT is not idle — pool accounting upstream must prevent this.
    pub fn start_tuning(&mut self, w: Wavelength) {
        assert!(
            self.is_idle(),
            "{} asked to tune while {:?}",
            self.id,
            self.state
        );
        self.state = TransponderState::Tuning { target: w };
    }

    /// Laser locked: the OT is now carrying traffic.
    ///
    /// # Panics
    /// If the OT was not tuning.
    pub fn tuning_complete(&mut self) {
        match self.state {
            TransponderState::Tuning { target } => {
                self.state = TransponderState::Active { wavelength: target };
            }
            ref s => panic!("{} tuning_complete while {s:?}", self.id),
        }
    }

    /// Turn the laser off and return the OT to the pool. Valid from any
    /// live state (teardown may race with tuning).
    pub fn release(&mut self) {
        if self.state != TransponderState::Failed {
            self.state = TransponderState::Idle;
        }
    }

    /// Mark the OT failed (hardware fault injection).
    pub fn fail(&mut self) {
        self.state = TransponderState::Failed;
    }

    /// Replace failed hardware, returning the OT to the idle pool.
    pub fn repair(&mut self) {
        assert_eq!(
            self.state,
            TransponderState::Failed,
            "repairing a healthy OT"
        );
        self.state = TransponderState::Idle;
    }

    /// The wavelength currently lit, if active.
    pub fn wavelength(&self) -> Option<Wavelength> {
        match self.state {
            TransponderState::Active { wavelength } => Some(wavelength),
            _ => None,
        }
    }
}

/// A regenerator site: two OTs back to back, extending reach and allowing
/// the wavelength to change at this node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Regen {
    /// This REGEN's id.
    pub id: RegenId,
    /// The node it is installed at.
    pub location: RoadmId,
    /// Line rate (both sides must match).
    pub rate: LineRate,
    /// Whether a connection currently holds it.
    pub in_use: bool,
}

impl Regen {
    /// A new, free regenerator.
    pub fn new(id: RegenId, location: RoadmId, rate: LineRate) -> Regen {
        Regen {
            id,
            location,
            rate,
            in_use: false,
        }
    }

    /// Claim the regen for a connection.
    ///
    /// # Panics
    /// If it is already held.
    pub fn claim(&mut self) {
        assert!(!self.in_use, "{} double-claimed", self.id);
        self.in_use = true;
    }

    /// Return the regen to the pool.
    pub fn release(&mut self) {
        self.in_use = false;
    }
}

/// A 4×10G → 40G muxponder (also the testbed's emulated NTE).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Muxponder {
    /// This muxponder's id.
    pub id: MuxponderId,
    /// Occupancy of the four 10 G client ports.
    client_ports: [bool; 4],
}

impl Muxponder {
    /// Client ports per muxponder.
    pub const CLIENT_PORTS: usize = 4;
    /// Rate of each client port.
    pub const CLIENT_RATE: LineRate = LineRate::Gbps10;
    /// Line-side rate.
    pub const LINE_RATE: LineRate = LineRate::Gbps40;

    /// A new muxponder with all client ports free.
    pub fn new(id: MuxponderId) -> Muxponder {
        Muxponder {
            id,
            client_ports: [false; 4],
        }
    }

    /// Claim the first free client port, if any.
    pub fn claim_port(&mut self) -> Option<usize> {
        let i = self.client_ports.iter().position(|used| !used)?;
        self.client_ports[i] = true;
        Some(i)
    }

    /// Release a previously claimed client port.
    ///
    /// # Panics
    /// If the port index is out of range or the port was not claimed.
    pub fn release_port(&mut self, i: usize) {
        assert!(self.client_ports[i], "port {i} was not claimed");
        self.client_ports[i] = false;
    }

    /// Number of client ports currently in use.
    pub fn ports_used(&self) -> usize {
        self.client_ports.iter().filter(|u| **u).count()
    }

    /// Fraction of the 40 G line side actually filled by claimed clients —
    /// the quantity muxponder-only grooming wastes and OTN recovers (E6).
    pub fn fill_ratio(&self) -> f64 {
        self.ports_used() as f64 / Self::CLIENT_PORTS as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ot() -> Transponder {
        Transponder::new(TransponderId::new(0), RoadmId::new(0), LineRate::Gbps10)
    }

    #[test]
    fn tuning_lifecycle() {
        let mut t = ot();
        assert!(t.is_idle());
        assert_eq!(t.wavelength(), None);
        t.start_tuning(Wavelength(4));
        assert_eq!(
            t.state,
            TransponderState::Tuning {
                target: Wavelength(4)
            }
        );
        t.tuning_complete();
        assert_eq!(t.wavelength(), Some(Wavelength(4)));
        t.release();
        assert!(t.is_idle());
    }

    #[test]
    #[should_panic(expected = "asked to tune")]
    fn tuning_while_active_panics() {
        let mut t = ot();
        t.start_tuning(Wavelength(1));
        t.tuning_complete();
        t.start_tuning(Wavelength(2));
    }

    #[test]
    #[should_panic(expected = "tuning_complete")]
    fn complete_without_tuning_panics() {
        ot().tuning_complete();
    }

    #[test]
    fn release_during_tuning_aborts() {
        let mut t = ot();
        t.start_tuning(Wavelength(1));
        t.release();
        assert!(t.is_idle());
    }

    #[test]
    fn fail_sticks_until_repair() {
        let mut t = ot();
        t.fail();
        assert_eq!(t.state, TransponderState::Failed);
        t.release(); // release must not resurrect failed hardware
        assert_eq!(t.state, TransponderState::Failed);
        t.repair();
        assert!(t.is_idle());
    }

    #[test]
    #[should_panic(expected = "healthy")]
    fn repair_healthy_panics() {
        ot().repair();
    }

    #[test]
    fn regen_claim_release() {
        let mut r = Regen::new(RegenId::new(0), RoadmId::new(1), LineRate::Gbps10);
        assert!(!r.in_use);
        r.claim();
        assert!(r.in_use);
        r.release();
        assert!(!r.in_use);
    }

    #[test]
    #[should_panic(expected = "double-claimed")]
    fn regen_double_claim_panics() {
        let mut r = Regen::new(RegenId::new(0), RoadmId::new(1), LineRate::Gbps10);
        r.claim();
        r.claim();
    }

    #[test]
    fn muxponder_port_pool() {
        let mut m = Muxponder::new(MuxponderId::new(0));
        let a = m.claim_port().unwrap();
        let b = m.claim_port().unwrap();
        assert_ne!(a, b);
        assert_eq!(m.ports_used(), 2);
        assert!((m.fill_ratio() - 0.5).abs() < 1e-12);
        m.release_port(a);
        assert_eq!(m.ports_used(), 1);
        // Freed port is reusable; pool exhausts at four.
        m.claim_port().unwrap();
        m.claim_port().unwrap();
        m.claim_port().unwrap();
        assert_eq!(m.claim_port(), None);
    }

    #[test]
    #[should_panic(expected = "not claimed")]
    fn muxponder_release_unclaimed_panics() {
        Muxponder::new(MuxponderId::new(0)).release_port(2);
    }
}
