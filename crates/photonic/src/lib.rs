//! # photonic — the DWDM transport plane
//!
//! A behavioural model of the photonic layer GRIPhoN controls: fiber
//! spans with amplifier chains, multi-degree ROADMs with colorless /
//! non-directional add-drop, tunable optical transponders (OT), optical
//! regenerators (REGEN), 4×10G→40G muxponders, client-side fiber
//! cross-connects (FXC), and the vendor element-management systems (EMS)
//! whose command latencies dominate the paper's Table 2.
//!
//! ## What is modelled, and what is not
//!
//! In the smoltcp tradition, the feature matrix is explicit:
//!
//! **Modelled**
//! - ITU 50 GHz C-band grid with a configurable channel count (40–100).
//! - Per-degree wavelength occupancy, wavelength-continuity conflicts.
//! - Multi-degree ROADMs: express, add, drop; colorless and
//!   non-directional add/drop banks (any OT → any wavelength × degree).
//! - OT laser tuning time, per-WSS reconfiguration time, and path power
//!   balancing / link equalization whose convergence walks every hop —
//!   the mechanistic source of Table 2's superlinear growth.
//! - Optical reach by line rate, and REGEN placement to extend it.
//! - Fiber cuts with loss-of-signal (LOS) alarm propagation to every
//!   downstream receiver, feeding the controller's fault localization.
//! - EMS emulation: commands have per-type latency distributions
//!   calibrated so end-to-end wavelength setup reproduces the paper's
//!   62–71 s measurements.
//!
//! **Not modelled** (documented omissions)
//! - Analogue waveform propagation: OSNR, chromatic dispersion and
//!   nonlinearities are summarised by a single reach figure per rate,
//!   which is how the paper's own routing treats them.
//! - Wavelength conversion inside a ROADM (a REGEN provides it, as in
//!   real deployments).
//! - Protection switching inside the line system (GRIPhoN restoration is
//!   done by the controller above, which is the paper's point).
//!
//! Everything is deterministic: latency "distributions" draw from a
//! [`simcore::SimRng`] owned by the caller.

#![deny(missing_docs)]

pub mod alarm;
pub mod ems;
pub mod fiber;
pub mod fxc;
pub mod generator;
pub mod grid;
pub mod power;
pub mod reach;
pub mod roadm;
pub mod signal;
pub mod topology;
pub mod transponder;

pub use alarm::{Alarm, AlarmKind, AlarmSeverity};
pub use ems::{EmsCommand, EmsLatencyModel, EmsProfile, WorkflowLedger};
pub use fiber::{FiberId, FiberLink, FiberState, Span};
pub use fxc::{Fxc, FxcId, FxcPort};
pub use generator::{generate, GeneratedPlant, GeneratorConfig, REGION_BACKBONE};
pub use grid::{ChannelGrid, LineRate, Wavelength};
pub use power::EqualizationModel;
pub use reach::ReachModel;
pub use roadm::{AddDropPort, DegreeId, Roadm, RoadmError, RoadmId};
pub use signal::{OtuFrame, SignalBudget};
pub use topology::{PhotonicNetwork, TestbedIds, TopologyError};
pub use transponder::{
    Muxponder, MuxponderId, Regen, RegenId, Transponder, TransponderId, TransponderState,
};
