//! The client-side fiber cross-connect (FXC).
//!
//! §2.2: *"a client-side switch allows for dynamic sharing of
//! transponders … the low cost, small footprint, and low-power consumption
//! of a fiber-cross-connect makes it an attractive technology.
//! Unfortunately, an FXC is incapable of grooming traffic."*
//!
//! The FXC is a purely spatial switch: it maps one port to one other port
//! (a photonic patch panel under software control) and cannot inspect,
//! multiplex, or rate-convert what flows through. Under the GRIPhoN
//! controller it steers a customer's access-pipe signal either to an OT
//! (to ride the DWDM layer directly) or to an OTN switch port (to be
//! groomed with other sub-wavelength signals).
//!
//! Port semantics: every [`FxcPort`] has a label describing what is
//! cabled to it; connecting two ports creates a bidirectional light path
//! between those cables. Both the label vocabulary and the validation are
//! deliberately open — the FXC itself cannot tell what it is switching,
//! which is exactly the property that makes it cheap.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use simcore::define_id;

define_id!(
    /// Identifier of a fiber cross-connect.
    FxcId,
    "fxc"
);

/// One FXC port and what is cabled into it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FxcPort {
    /// Free-form description of the attached cable
    /// (e.g. `"access:dc1"`, `"ot:ot3"`, `"otn:sw0/p2"`).
    pub label: String,
}

/// Errors from FXC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FxcError {
    /// Port index out of range.
    NoSuchPort(usize),
    /// The port already carries a cross-connection.
    PortBusy(usize),
    /// A port cannot be connected to itself.
    SelfConnection(usize),
    /// Tried to remove a connection that is not present.
    NotConnected(usize),
}

impl fmt::Display for FxcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FxcError::NoSuchPort(p) => write!(f, "no such FXC port {p}"),
            FxcError::PortBusy(p) => write!(f, "FXC port {p} busy"),
            FxcError::SelfConnection(p) => write!(f, "FXC port {p} cannot loop to itself"),
            FxcError::NotConnected(p) => write!(f, "FXC port {p} not connected"),
        }
    }
}

impl std::error::Error for FxcError {}

/// A fiber cross-connect: a software-controlled optical patch panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fxc {
    /// This FXC's id.
    pub id: FxcId,
    ports: Vec<FxcPort>,
    /// Symmetric map: if `a → b` then `b → a`.
    cross: BTreeMap<usize, usize>,
}

impl Fxc {
    /// An FXC with no ports.
    pub fn new(id: FxcId) -> Fxc {
        Fxc {
            id,
            ports: Vec::new(),
            cross: BTreeMap::new(),
        }
    }

    /// Add a port; returns its index.
    pub fn add_port(&mut self, label: impl Into<String>) -> usize {
        self.ports.push(FxcPort {
            label: label.into(),
        });
        self.ports.len() - 1
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// The port's label.
    ///
    /// # Panics
    /// If out of range.
    pub fn label(&self, port: usize) -> &str {
        &self.ports[port].label
    }

    /// Find the first port whose label equals `label`.
    pub fn port_by_label(&self, label: &str) -> Option<usize> {
        self.ports.iter().position(|p| p.label == label)
    }

    /// Cross-connect two distinct free ports.
    pub fn connect(&mut self, a: usize, b: usize) -> Result<(), FxcError> {
        self.check(a)?;
        self.check(b)?;
        if a == b {
            return Err(FxcError::SelfConnection(a));
        }
        if self.cross.contains_key(&a) {
            return Err(FxcError::PortBusy(a));
        }
        if self.cross.contains_key(&b) {
            return Err(FxcError::PortBusy(b));
        }
        self.cross.insert(a, b);
        self.cross.insert(b, a);
        Ok(())
    }

    /// Remove the cross-connection touching `port`.
    pub fn disconnect(&mut self, port: usize) -> Result<(), FxcError> {
        self.check(port)?;
        let other = self
            .cross
            .remove(&port)
            .ok_or(FxcError::NotConnected(port))?;
        let back = self.cross.remove(&other);
        debug_assert_eq!(back, Some(port));
        Ok(())
    }

    /// What `port` is connected to, if anything.
    pub fn peer(&self, port: usize) -> Option<usize> {
        self.cross.get(&port).copied()
    }

    /// Is the port free?
    pub fn is_free(&self, port: usize) -> bool {
        !self.cross.contains_key(&port)
    }

    /// Number of active cross-connections (pairs).
    pub fn connections(&self) -> usize {
        self.cross.len() / 2
    }

    fn check(&self, port: usize) -> Result<(), FxcError> {
        if port < self.ports.len() {
            Ok(())
        } else {
            Err(FxcError::NoSuchPort(port))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fxc3() -> Fxc {
        let mut f = Fxc::new(FxcId::new(0));
        f.add_port("access:dc1");
        f.add_port("ot:ot0");
        f.add_port("otn:sw0/p0");
        f
    }

    #[test]
    fn connect_is_symmetric() {
        let mut f = fxc3();
        f.connect(0, 1).unwrap();
        assert_eq!(f.peer(0), Some(1));
        assert_eq!(f.peer(1), Some(0));
        assert_eq!(f.peer(2), None);
        assert_eq!(f.connections(), 1);
    }

    #[test]
    fn busy_port_rejected() {
        let mut f = fxc3();
        f.connect(0, 1).unwrap();
        assert_eq!(f.connect(0, 2), Err(FxcError::PortBusy(0)));
        assert_eq!(f.connect(2, 1), Err(FxcError::PortBusy(1)));
    }

    #[test]
    fn reroute_via_disconnect() {
        // The controller's layer steering: access pipe moves from the OT
        // (wavelength service) to the OTN switch (sub-wavelength service).
        let mut f = fxc3();
        f.connect(0, 1).unwrap();
        f.disconnect(0).unwrap();
        assert!(f.is_free(1));
        f.connect(0, 2).unwrap();
        assert_eq!(f.peer(0), Some(2));
    }

    #[test]
    fn disconnect_from_either_side() {
        let mut f = fxc3();
        f.connect(0, 1).unwrap();
        f.disconnect(1).unwrap();
        assert!(f.is_free(0));
        assert_eq!(f.disconnect(1), Err(FxcError::NotConnected(1)));
    }

    #[test]
    fn self_connection_rejected() {
        let mut f = fxc3();
        assert_eq!(f.connect(1, 1), Err(FxcError::SelfConnection(1)));
    }

    #[test]
    fn bad_port_rejected() {
        let mut f = fxc3();
        assert_eq!(f.connect(0, 9), Err(FxcError::NoSuchPort(9)));
        assert_eq!(f.disconnect(9), Err(FxcError::NoSuchPort(9)));
    }

    #[test]
    fn label_lookup() {
        let f = fxc3();
        assert_eq!(f.port_by_label("ot:ot0"), Some(1));
        assert_eq!(f.port_by_label("nope"), None);
        assert_eq!(f.label(2), "otn:sw0/p0");
        assert_eq!(f.port_count(), 3);
    }
}
