//! Line-side signal quality: OTU framing, FEC, and the Q-factor budget.
//!
//! §2.1 mentions the OTN layer's "digitally framed signals with digital
//! overhead … Forward Error Correction for enhanced system performance".
//! This module supplies the signal-quality arithmetic behind two things
//! the rest of the stack treats as givens:
//!
//! - the **optical reach** figures in [`crate::reach`] — derived here
//!   from a Q-factor budget (launch OSNR, per-span degradation, FEC
//!   threshold) rather than postulated;
//! - the **path validation** step of connection setup — an end-to-end
//!   quality check the controller can consult
//!   ([`SignalBudget::path_ok`]).
//!
//! The model is the standard back-of-the-envelope used in transport
//! planning: OSNR after `n` identical amplified spans falls as
//! `OSNR_launch − 10·log10(n) − margins`, Q is an affine function of
//! OSNR in dB for a given rate, and the signal survives if the pre-FEC
//! Q clears the FEC threshold (RS(255,239) ≈ 8.5 dBQ raw, ~6.2 dBQ with
//! enhanced FEC). It intentionally stops there — full waveform
//! simulation is out of scope (see crate docs).

use serde::{Deserialize, Serialize};

use crate::grid::LineRate;

/// The OTU frame that carries each line rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OtuFrame {
    /// OTU2 — 10.709 Gbps line rate carrying ODU2.
    Otu2,
    /// OTU3 — 43.018 Gbps carrying ODU3.
    Otu3,
    /// OTU4 — 111.810 Gbps carrying ODU4.
    Otu4,
}

impl OtuFrame {
    /// The OTU frame for a line rate.
    pub fn for_rate(rate: LineRate) -> OtuFrame {
        match rate {
            LineRate::Gbps10 => OtuFrame::Otu2,
            LineRate::Gbps40 => OtuFrame::Otu3,
            LineRate::Gbps100 => OtuFrame::Otu4,
        }
    }

    /// Gross line rate in Mbps (payload + overhead + FEC parity —
    /// G.709's 255/227 expansion).
    pub fn line_rate_mbps(self) -> u64 {
        match self {
            OtuFrame::Otu2 => 10_709,
            OtuFrame::Otu3 => 43_018,
            OtuFrame::Otu4 => 111_810,
        }
    }

    /// FEC overhead fraction (G.709 RS(255,239): 255/239 − 1 ≈ 6.7 %).
    pub fn fec_overhead(self) -> f64 {
        255.0 / 239.0 - 1.0
    }
}

/// Q-factor budget for one line rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalBudget {
    /// Launch OSNR in dB (0.1 nm reference bandwidth).
    pub launch_osnr_db: f64,
    /// OSNR (dB) required for Q = FEC threshold at this rate.
    pub required_osnr_db: f64,
    /// System margin reserved for aging/polarization effects (dB).
    pub margin_db: f64,
    /// Per-span penalty beyond pure noise accumulation (dB) —
    /// filtering, crosstalk.
    pub per_span_penalty_db: f64,
}

impl SignalBudget {
    /// Typical budgets per rate (calibrated so the derived reach matches
    /// [`crate::reach::ReachModel::default`] within one 80 km span).
    pub fn for_rate(rate: LineRate) -> SignalBudget {
        match rate {
            // 10G NRZ: generous OSNR requirement, long reach.
            LineRate::Gbps10 => SignalBudget {
                launch_osnr_db: 35.0,
                required_osnr_db: 11.0,
                margin_db: 3.0,
                per_span_penalty_db: 0.2,
            },
            // 40G DPSK: ~6 dB more OSNR needed.
            LineRate::Gbps40 => SignalBudget {
                launch_osnr_db: 35.0,
                required_osnr_db: 14.8,
                margin_db: 3.0,
                per_span_penalty_db: 0.25,
            },
            // 100G coherent: high requirement but DSP compensation.
            LineRate::Gbps100 => SignalBudget {
                launch_osnr_db: 35.0,
                required_osnr_db: 13.5,
                margin_db: 3.0,
                per_span_penalty_db: 0.15,
            },
        }
    }

    /// OSNR (dB) after `spans` identical amplified spans.
    pub fn osnr_after(&self, spans: usize) -> f64 {
        if spans == 0 {
            return self.launch_osnr_db;
        }
        self.launch_osnr_db
            - 10.0 * (spans as f64).log10()
            - self.per_span_penalty_db * spans as f64
    }

    /// Remaining margin (dB) after `spans`; negative = signal fails.
    pub fn margin_after(&self, spans: usize) -> f64 {
        self.osnr_after(spans) - self.required_osnr_db - self.margin_db
    }

    /// Does a transparent segment of `spans` amplified spans close?
    pub fn path_ok(&self, spans: usize) -> bool {
        self.margin_after(spans) >= 0.0
    }

    /// Maximum spans the budget supports (the reach, in spans).
    pub fn max_spans(&self) -> usize {
        (1..10_000).take_while(|s| self.path_ok(*s)).count()
    }

    /// Derived reach in km assuming `span_km` spacing.
    pub fn reach_km(&self, span_km: f64) -> f64 {
        self.max_spans() as f64 * span_km
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_map_to_rates() {
        assert_eq!(OtuFrame::for_rate(LineRate::Gbps10), OtuFrame::Otu2);
        assert_eq!(OtuFrame::for_rate(LineRate::Gbps40), OtuFrame::Otu3);
        assert_eq!(OtuFrame::for_rate(LineRate::Gbps100), OtuFrame::Otu4);
        // Line rate exceeds payload rate (FEC + overhead).
        assert!(OtuFrame::Otu2.line_rate_mbps() > 10_000);
        assert!((OtuFrame::Otu2.fec_overhead() - 0.0669).abs() < 1e-3);
    }

    #[test]
    fn osnr_decreases_with_spans() {
        let b = SignalBudget::for_rate(LineRate::Gbps10);
        assert_eq!(b.osnr_after(0), b.launch_osnr_db);
        for n in 1..40 {
            assert!(b.osnr_after(n + 1) < b.osnr_after(n));
        }
        // Doubling spans costs ~3 dB of noise plus penalties.
        let d = b.osnr_after(10) - b.osnr_after(20);
        assert!((d - (3.01 + 0.2 * 10.0)).abs() < 0.1, "d={d}");
    }

    #[test]
    fn derived_reach_matches_reach_model_order() {
        // 10 G must out-reach 40 G; 100 G coherent sits between.
        let r10 = SignalBudget::for_rate(LineRate::Gbps10).reach_km(80.0);
        let r40 = SignalBudget::for_rate(LineRate::Gbps40).reach_km(80.0);
        let r100 = SignalBudget::for_rate(LineRate::Gbps100).reach_km(80.0);
        assert!(r40 < r100 && r100 < r10, "{r40} {r100} {r10}");
        // Within ~1.5 spans of the postulated ReachModel figures.
        let model = crate::reach::ReachModel::default();
        assert!(
            (r10 - model.km_10g).abs() <= 240.0,
            "10G: derived {r10} vs model {}",
            model.km_10g
        );
        assert!(
            (r40 - model.km_40g).abs() <= 240.0,
            "40G: derived {r40} vs model {}",
            model.km_40g
        );
        assert!(
            (r100 - model.km_100g).abs() <= 240.0,
            "100G: derived {r100} vs model {}",
            model.km_100g
        );
    }

    #[test]
    fn path_ok_boundary() {
        let b = SignalBudget::for_rate(LineRate::Gbps40);
        let max = b.max_spans();
        assert!(b.path_ok(max));
        assert!(!b.path_ok(max + 1));
        assert!(b.margin_after(max) >= 0.0);
        assert!(b.margin_after(max + 1) < 0.0);
        assert!(b.path_ok(0), "back-to-back always closes");
    }
}
