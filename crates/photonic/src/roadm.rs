//! Reconfigurable optical add/drop multiplexers.
//!
//! A [`Roadm`] is a node in the DWDM mesh. Each *degree* faces one fiber
//! link; wavelengths may be **expressed** between two degrees, or
//! **added/dropped** through an add/drop port to which an optical
//! transponder is attached.
//!
//! The paper's architecture depends on add/drop ports that are both
//! *colorless* (any port can be tuned to any wavelength) and
//! *non-directional / steerable* (any port can reach any degree). Both
//! properties are modelled as per-node flags so the benchmarks can ablate
//! them: a colored port is pinned to one wavelength, a directional port to
//! one degree — exactly the constraint legacy fixed OADMs impose.
//!
//! Invariant enforced here: on any one degree, a wavelength carries at
//! most one signal (one express or one add/drop), in keeping with
//! wavelength-division multiplexing physics. Violations are rejected with
//! [`RoadmError::WavelengthInUse`], which is what the RWA layer's
//! first-fit search relies on being impossible after admission.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use simcore::define_id;

use crate::fiber::FiberId;
use crate::grid::{ChannelGrid, Wavelength};
use crate::transponder::TransponderId;

define_id!(
    /// Identifier of a ROADM node.
    RoadmId,
    "roadm"
);

define_id!(
    /// A degree (inter-node fiber interface) of a specific ROADM.
    /// Degree ids are local to their node, numbered from 0.
    DegreeId,
    "deg"
);

define_id!(
    /// An add/drop port of a specific ROADM (local numbering).
    PortId,
    "port"
);

/// One colorless/non-directional (or constrained) add/drop port.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddDropPort {
    /// Which transponder's client fiber is plugged in here, if any.
    pub attached: Option<TransponderId>,
    /// `Some(λ)` pins the port to one wavelength (non-colorless systems).
    pub fixed_wavelength: Option<Wavelength>,
    /// `Some(d)` pins the port to one degree (directional systems).
    pub fixed_degree: Option<DegreeId>,
}

/// Why a ROADM configuration request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoadmError {
    /// The degree id does not exist on this node.
    NoSuchDegree(DegreeId),
    /// The port id does not exist on this node.
    NoSuchPort(PortId),
    /// The wavelength is already carrying a signal on that degree.
    WavelengthInUse(Wavelength, DegreeId),
    /// The port is already configured for a connection.
    PortInUse(PortId),
    /// A colored port was asked for a wavelength it is not filtered to.
    PortWrongColor(PortId, Wavelength),
    /// A directional port was asked to reach a degree it cannot.
    PortWrongDegree(PortId, DegreeId),
    /// The wavelength is off this node's channel grid.
    OffGrid(Wavelength),
    /// Express endpoints must be two distinct degrees.
    DegenerateExpress,
    /// Tried to remove a configuration that is not present.
    NotConfigured,
}

impl fmt::Display for RoadmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadmError::NoSuchDegree(d) => write!(f, "no such degree {d}"),
            RoadmError::NoSuchPort(p) => write!(f, "no such port {p}"),
            RoadmError::WavelengthInUse(w, d) => write!(f, "{w} already lit on {d}"),
            RoadmError::PortInUse(p) => write!(f, "{p} already in use"),
            RoadmError::PortWrongColor(p, w) => write!(f, "{p} is not filtered for {w}"),
            RoadmError::PortWrongDegree(p, d) => write!(f, "{p} cannot steer to {d}"),
            RoadmError::OffGrid(w) => write!(f, "{w} is off the channel grid"),
            RoadmError::DegenerateExpress => write!(f, "express needs two distinct degrees"),
            RoadmError::NotConfigured => write!(f, "no such configuration"),
        }
    }
}

impl std::error::Error for RoadmError {}

/// What a wavelength on one degree is being used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LambdaUse {
    /// Expressed through to another degree.
    Express {
        /// The other degree of the express connection.
        other: DegreeId,
    },
    /// Added/dropped at a local port.
    AddDrop {
        /// The add/drop port terminating the wavelength.
        port: PortId,
    },
}

/// A multi-degree ROADM node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Roadm {
    /// This node's id.
    pub id: RoadmId,
    /// The channel plan of the attached line system.
    pub grid: ChannelGrid,
    /// Fiber link behind each degree, indexed by [`DegreeId`].
    degrees: Vec<FiberId>,
    /// Per-degree occupancy bitmask (bit *i* set ⇔ channel *i* lit),
    /// indexed by [`DegreeId`]. Kept in lockstep with `lambda_use` so
    /// free-wavelength queries are single AND/popcount operations.
    degree_masks: Vec<u128>,
    /// Add/drop ports, indexed by [`PortId`].
    ports: Vec<AddDropPort>,
    /// Per-degree wavelength usage: `(degree, λ) → use`.
    lambda_use: BTreeMap<(DegreeId, Wavelength), LambdaUse>,
    /// Per-port configuration: `port → (λ, degree)`.
    port_config: BTreeMap<PortId, (Wavelength, DegreeId)>,
}

impl Roadm {
    /// A node with no degrees or ports yet.
    ///
    /// # Panics
    /// If the grid exceeds the 128-channel occupancy-mask width.
    pub fn new(id: RoadmId, grid: ChannelGrid) -> Roadm {
        let _ = grid.channel_mask();
        Roadm {
            id,
            grid,
            degrees: Vec::new(),
            degree_masks: Vec::new(),
            ports: Vec::new(),
            lambda_use: BTreeMap::new(),
            port_config: BTreeMap::new(),
        }
    }

    /// Attach a fiber link as a new degree; returns the degree id.
    pub fn add_degree(&mut self, fiber: FiberId) -> DegreeId {
        let d = DegreeId::from_index(self.degrees.len());
        self.degrees.push(fiber);
        self.degree_masks.push(0);
        d
    }

    /// Add a colorless, non-directional add/drop port.
    pub fn add_port(&mut self) -> PortId {
        self.add_constrained_port(None, None)
    }

    /// Add a port with legacy constraints (for ablation studies):
    /// `fixed_wavelength` makes it colored, `fixed_degree` directional.
    pub fn add_constrained_port(
        &mut self,
        fixed_wavelength: Option<Wavelength>,
        fixed_degree: Option<DegreeId>,
    ) -> PortId {
        let p = PortId::from_index(self.ports.len());
        self.ports.push(AddDropPort {
            attached: None,
            fixed_wavelength,
            fixed_degree,
        });
        p
    }

    /// Number of degrees ("a 3-degree ROADM").
    pub fn degree_count(&self) -> usize {
        self.degrees.len()
    }

    /// Number of add/drop ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// The fiber link behind a degree.
    pub fn fiber_of(&self, d: DegreeId) -> Result<FiberId, RoadmError> {
        self.degrees
            .get(d.index())
            .copied()
            .ok_or(RoadmError::NoSuchDegree(d))
    }

    /// The degree facing a given fiber link, if this node touches it.
    pub fn degree_to(&self, fiber: FiberId) -> Option<DegreeId> {
        self.degrees
            .iter()
            .position(|f| *f == fiber)
            .map(DegreeId::from_index)
    }

    /// Plug a transponder's client fiber into a port.
    ///
    /// # Panics
    /// If the port does not exist or already has a transponder.
    pub fn attach_transponder(&mut self, port: PortId, ot: TransponderId) {
        let p = self
            .ports
            .get_mut(port.index())
            .unwrap_or_else(|| panic!("no such port {port}"));
        assert!(p.attached.is_none(), "{port} already has a transponder");
        p.attached = Some(ot);
    }

    /// The transponder plugged into `port`, if any.
    pub fn transponder_at(&self, port: PortId) -> Option<TransponderId> {
        self.ports.get(port.index()).and_then(|p| p.attached)
    }

    /// Ports with no active configuration whose constraints allow
    /// `(wavelength, degree)` — what the controller searches when picking
    /// an OT for a new connection.
    pub fn free_ports_for(&self, w: Wavelength, d: DegreeId) -> Vec<PortId> {
        self.ports
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                let id = PortId::from_index(*i);
                !self.port_config.contains_key(&id)
                    && p.attached.is_some()
                    && p.fixed_wavelength.is_none_or(|fw| fw == w)
                    && p.fixed_degree.is_none_or(|fd| fd == d)
            })
            .map(|(i, _)| PortId::from_index(i))
            .collect()
    }

    /// Is `w` unused on degree `d`?
    pub fn lambda_free(&self, d: DegreeId, w: Wavelength) -> bool {
        let free = self.occupancy_mask(d) & (1u128 << w.index()) == 0;
        debug_assert_eq!(free, !self.lambda_use.contains_key(&(d, w)));
        free
    }

    /// Occupancy bitmask of degree `d`: bit *i* set ⇔ channel *i* lit.
    /// An unknown degree reads as all-dark.
    pub fn occupancy_mask(&self, d: DegreeId) -> u128 {
        self.degree_masks.get(d.index()).copied().unwrap_or(0)
    }

    /// Free-channel bitmask of degree `d`: bit *i* set ⇔ channel *i* is
    /// on-grid and unlit. The AND of these masks along a path is the set
    /// of wavelengths satisfying the continuity constraint.
    pub fn free_mask(&self, d: DegreeId) -> u128 {
        !self.occupancy_mask(d) & self.grid.channel_mask()
    }

    fn mark_lit(&mut self, d: DegreeId, w: Wavelength) {
        self.degree_masks[d.index()] |= 1u128 << w.index();
    }

    fn mark_dark(&mut self, d: DegreeId, w: Wavelength) {
        self.degree_masks[d.index()] &= !(1u128 << w.index());
    }

    /// Current use of `(d, w)` if configured.
    pub fn lambda_usage(&self, d: DegreeId, w: Wavelength) -> Option<LambdaUse> {
        self.lambda_use.get(&(d, w)).copied()
    }

    /// Express `w` between two distinct degrees.
    pub fn connect_express(
        &mut self,
        w: Wavelength,
        d1: DegreeId,
        d2: DegreeId,
    ) -> Result<(), RoadmError> {
        self.check_grid(w)?;
        self.check_degree(d1)?;
        self.check_degree(d2)?;
        if d1 == d2 {
            return Err(RoadmError::DegenerateExpress);
        }
        if !self.lambda_free(d1, w) {
            return Err(RoadmError::WavelengthInUse(w, d1));
        }
        if !self.lambda_free(d2, w) {
            return Err(RoadmError::WavelengthInUse(w, d2));
        }
        self.lambda_use
            .insert((d1, w), LambdaUse::Express { other: d2 });
        self.lambda_use
            .insert((d2, w), LambdaUse::Express { other: d1 });
        self.mark_lit(d1, w);
        self.mark_lit(d2, w);
        Ok(())
    }

    /// Remove an express configuration.
    pub fn disconnect_express(
        &mut self,
        w: Wavelength,
        d1: DegreeId,
        d2: DegreeId,
    ) -> Result<(), RoadmError> {
        match (self.lambda_use.get(&(d1, w)), self.lambda_use.get(&(d2, w))) {
            (Some(LambdaUse::Express { other: o1 }), Some(LambdaUse::Express { other: o2 }))
                if *o1 == d2 && *o2 == d1 =>
            {
                self.lambda_use.remove(&(d1, w));
                self.lambda_use.remove(&(d2, w));
                self.mark_dark(d1, w);
                self.mark_dark(d2, w);
                Ok(())
            }
            _ => Err(RoadmError::NotConfigured),
        }
    }

    /// Add/drop `w` on degree `d` through `port` (bidirectionally: the
    /// attached OT both transmits into and receives from the degree).
    pub fn connect_add_drop(
        &mut self,
        port: PortId,
        w: Wavelength,
        d: DegreeId,
    ) -> Result<(), RoadmError> {
        self.check_grid(w)?;
        self.check_degree(d)?;
        let p = self
            .ports
            .get(port.index())
            .ok_or(RoadmError::NoSuchPort(port))?;
        if self.port_config.contains_key(&port) {
            return Err(RoadmError::PortInUse(port));
        }
        if let Some(fw) = p.fixed_wavelength {
            if fw != w {
                return Err(RoadmError::PortWrongColor(port, w));
            }
        }
        if let Some(fd) = p.fixed_degree {
            if fd != d {
                return Err(RoadmError::PortWrongDegree(port, d));
            }
        }
        if !self.lambda_free(d, w) {
            return Err(RoadmError::WavelengthInUse(w, d));
        }
        self.lambda_use.insert((d, w), LambdaUse::AddDrop { port });
        self.mark_lit(d, w);
        self.port_config.insert(port, (w, d));
        Ok(())
    }

    /// Tear down the add/drop configuration on `port`.
    pub fn disconnect_add_drop(&mut self, port: PortId) -> Result<(), RoadmError> {
        let (w, d) = self
            .port_config
            .remove(&port)
            .ok_or(RoadmError::NotConfigured)?;
        let removed = self.lambda_use.remove(&(d, w));
        debug_assert_eq!(removed, Some(LambdaUse::AddDrop { port }));
        self.mark_dark(d, w);
        Ok(())
    }

    /// The `(wavelength, degree)` a port is currently configured for.
    pub fn port_configuration(&self, port: PortId) -> Option<(Wavelength, DegreeId)> {
        self.port_config.get(&port).copied()
    }

    /// Count of lit wavelengths on a degree (for equalization cost and
    /// utilization reporting).
    pub fn lit_count(&self, d: DegreeId) -> usize {
        let n = self.occupancy_mask(d).count_ones() as usize;
        debug_assert_eq!(n, self.lambda_use.keys().filter(|(kd, _)| *kd == d).count());
        n
    }

    /// Every `(degree, wavelength, use)` currently configured.
    pub fn configurations(&self) -> impl Iterator<Item = (DegreeId, Wavelength, LambdaUse)> + '_ {
        self.lambda_use.iter().map(|((d, w), u)| (*d, *w, *u))
    }

    /// Estimated heap bytes behind this node: degree tables, occupancy
    /// masks, add/drop ports, and the per-λ usage maps (B-tree nodes
    /// approximated at 32 bytes of overhead per entry). A capacity-planning
    /// estimate, not an allocator measurement.
    pub fn memory_footprint(&self) -> usize {
        use std::mem::size_of;
        self.degrees.capacity() * size_of::<FiberId>()
            + self.degree_masks.capacity() * size_of::<u128>()
            + self.ports.capacity() * size_of::<AddDropPort>()
            + self.lambda_use.len()
                * (size_of::<(DegreeId, Wavelength)>() + size_of::<LambdaUse>() + 32)
            + self.port_config.len()
                * (size_of::<PortId>() + size_of::<(Wavelength, DegreeId)>() + 32)
    }

    fn check_degree(&self, d: DegreeId) -> Result<(), RoadmError> {
        if d.index() < self.degrees.len() {
            Ok(())
        } else {
            Err(RoadmError::NoSuchDegree(d))
        }
    }

    fn check_grid(&self, w: Wavelength) -> Result<(), RoadmError> {
        if self.grid.contains(w) {
            Ok(())
        } else {
            Err(RoadmError::OffGrid(w))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_degree() -> (Roadm, DegreeId, DegreeId, DegreeId, PortId) {
        let mut r = Roadm::new(RoadmId::new(0), ChannelGrid::C_BAND_80);
        let d0 = r.add_degree(FiberId::new(0));
        let d1 = r.add_degree(FiberId::new(1));
        let d2 = r.add_degree(FiberId::new(2));
        let p = r.add_port();
        r.attach_transponder(p, TransponderId::new(0));
        (r, d0, d1, d2, p)
    }

    #[test]
    fn express_both_directions_block_lambda() {
        let (mut r, d0, d1, d2, _) = three_degree();
        let w = Wavelength(5);
        r.connect_express(w, d0, d1).unwrap();
        assert!(!r.lambda_free(d0, w));
        assert!(!r.lambda_free(d1, w));
        assert!(r.lambda_free(d2, w));
        assert_eq!(
            r.lambda_usage(d0, w),
            Some(LambdaUse::Express { other: d1 })
        );
    }

    #[test]
    fn conflicting_express_rejected() {
        let (mut r, d0, d1, d2, _) = three_degree();
        let w = Wavelength(5);
        r.connect_express(w, d0, d1).unwrap();
        assert_eq!(
            r.connect_express(w, d1, d2),
            Err(RoadmError::WavelengthInUse(w, d1))
        );
        // A different wavelength on the same degrees is fine.
        r.connect_express(Wavelength(6), d1, d2).unwrap();
    }

    #[test]
    fn express_requires_distinct_degrees() {
        let (mut r, d0, _, _, _) = three_degree();
        assert_eq!(
            r.connect_express(Wavelength(0), d0, d0),
            Err(RoadmError::DegenerateExpress)
        );
    }

    #[test]
    fn disconnect_express_frees_lambda() {
        let (mut r, d0, d1, _, _) = three_degree();
        let w = Wavelength(5);
        r.connect_express(w, d0, d1).unwrap();
        r.disconnect_express(w, d0, d1).unwrap();
        assert!(r.lambda_free(d0, w));
        assert!(r.lambda_free(d1, w));
        assert_eq!(
            r.disconnect_express(w, d0, d1),
            Err(RoadmError::NotConfigured)
        );
    }

    #[test]
    fn add_drop_lifecycle() {
        let (mut r, d0, _, _, p) = three_degree();
        let w = Wavelength(10);
        r.connect_add_drop(p, w, d0).unwrap();
        assert_eq!(r.port_configuration(p), Some((w, d0)));
        assert!(!r.lambda_free(d0, w));
        assert_eq!(r.lambda_usage(d0, w), Some(LambdaUse::AddDrop { port: p }));
        r.disconnect_add_drop(p).unwrap();
        assert!(r.lambda_free(d0, w));
        assert_eq!(r.port_configuration(p), None);
    }

    #[test]
    fn port_in_use_rejected() {
        let (mut r, d0, d1, _, p) = three_degree();
        r.connect_add_drop(p, Wavelength(1), d0).unwrap();
        assert_eq!(
            r.connect_add_drop(p, Wavelength(2), d1),
            Err(RoadmError::PortInUse(p))
        );
    }

    #[test]
    fn add_drop_conflicts_with_express() {
        let (mut r, d0, d1, _, p) = three_degree();
        let w = Wavelength(3);
        r.connect_express(w, d0, d1).unwrap();
        assert_eq!(
            r.connect_add_drop(p, w, d0),
            Err(RoadmError::WavelengthInUse(w, d0))
        );
    }

    #[test]
    fn colored_port_rejects_other_wavelengths() {
        let (mut r, d0, _, _, _) = three_degree();
        let colored = r.add_constrained_port(Some(Wavelength(7)), None);
        r.attach_transponder(colored, TransponderId::new(1));
        assert_eq!(
            r.connect_add_drop(colored, Wavelength(8), d0),
            Err(RoadmError::PortWrongColor(colored, Wavelength(8)))
        );
        r.connect_add_drop(colored, Wavelength(7), d0).unwrap();
    }

    #[test]
    fn directional_port_rejects_other_degrees() {
        let (mut r, d0, d1, _, _) = three_degree();
        let fixed = r.add_constrained_port(None, Some(d1));
        r.attach_transponder(fixed, TransponderId::new(1));
        assert_eq!(
            r.connect_add_drop(fixed, Wavelength(0), d0),
            Err(RoadmError::PortWrongDegree(fixed, d0))
        );
        r.connect_add_drop(fixed, Wavelength(0), d1).unwrap();
    }

    #[test]
    fn free_ports_respect_constraints_and_attachment() {
        let (mut r, d0, d1, _, p) = three_degree();
        let unattached = r.add_port();
        let colored = r.add_constrained_port(Some(Wavelength(7)), None);
        r.attach_transponder(colored, TransponderId::new(1));
        let free = r.free_ports_for(Wavelength(7), d0);
        assert!(free.contains(&p));
        assert!(free.contains(&colored));
        assert!(!free.contains(&unattached), "no OT attached");
        let free8 = r.free_ports_for(Wavelength(8), d1);
        assert!(free8.contains(&p));
        assert!(!free8.contains(&colored));
        // After configuring p it is no longer free.
        r.connect_add_drop(p, Wavelength(7), d0).unwrap();
        assert!(!r.free_ports_for(Wavelength(7), d0).contains(&p));
    }

    #[test]
    fn off_grid_rejected() {
        let (mut r, d0, d1, _, _) = three_degree();
        assert_eq!(
            r.connect_express(Wavelength(200), d0, d1),
            Err(RoadmError::OffGrid(Wavelength(200)))
        );
    }

    #[test]
    fn degree_lookup() {
        let (r, d0, _, _, _) = three_degree();
        assert_eq!(r.degree_to(FiberId::new(0)), Some(d0));
        assert_eq!(r.degree_to(FiberId::new(9)), None);
        assert_eq!(r.fiber_of(d0).unwrap(), FiberId::new(0));
        assert!(r.fiber_of(DegreeId::new(9)).is_err());
        assert_eq!(r.degree_count(), 3);
    }

    #[test]
    fn occupancy_masks_mirror_lambda_use() {
        let (mut r, d0, d1, d2, p) = three_degree();
        assert_eq!(r.occupancy_mask(d0), 0);
        assert_eq!(r.free_mask(d0), r.grid.channel_mask());
        r.connect_express(Wavelength(5), d0, d1).unwrap();
        r.connect_add_drop(p, Wavelength(2), d0).unwrap();
        assert_eq!(r.occupancy_mask(d0), (1 << 5) | (1 << 2));
        assert_eq!(r.occupancy_mask(d1), 1 << 5);
        assert_eq!(r.occupancy_mask(d2), 0);
        assert_eq!(
            r.free_mask(d0),
            r.grid.channel_mask() & !((1 << 5) | (1 << 2))
        );
        r.disconnect_express(Wavelength(5), d0, d1).unwrap();
        r.disconnect_add_drop(p).unwrap();
        assert_eq!(r.occupancy_mask(d0), 0);
        assert_eq!(r.occupancy_mask(d1), 0);
        // Unknown degrees read all-dark / fully-free-on-grid.
        assert_eq!(r.occupancy_mask(DegreeId::new(99)), 0);
        assert_eq!(r.free_mask(DegreeId::new(99)), r.grid.channel_mask());
    }

    #[test]
    fn lit_count_tracks_configuration() {
        let (mut r, d0, d1, _, p) = three_degree();
        assert_eq!(r.lit_count(d0), 0);
        r.connect_express(Wavelength(1), d0, d1).unwrap();
        r.connect_add_drop(p, Wavelength(2), d0).unwrap();
        assert_eq!(r.lit_count(d0), 2);
        assert_eq!(r.lit_count(d1), 1);
        assert_eq!(r.configurations().count(), 3);
    }
}
