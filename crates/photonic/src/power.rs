//! Optical power balancing and link equalization dynamics.
//!
//! When a new wavelength is turned up, every WSS and amplifier along the
//! path must converge to per-channel power targets without disturbing the
//! channels already running (§4, *DWDM layer management*). Deployed line
//! systems do this iteratively: measure power at each hop, adjust WSS
//! attenuation, wait for the amplifier control loops to settle, repeat
//! until within tolerance.
//!
//! This model is the mechanistic source of Table 2's superlinear growth
//! of setup time with hop count:
//!
//! - each added hop both *adds a measurement/adjustment site* (cost per
//!   iteration grows linearly in hops) and *couples another amplifier
//!   control loop into the convergence* (the number of iterations grows
//!   with hops too, one extra round per hop under the default policy);
//! - total time is therefore `iterations(n) × (per_hop × n + overhead)`,
//!   quadratic in `n` under the default per-hop iteration policy.
//!
//! Calibration: fitting the paper's three measurements (62.48 / 65.67 /
//! 70.94 s at 1/2/3 hops) to `T(n) = fixed + n·(per_hop·n + overhead)`
//! yields `per_hop = 1.04 s`, `overhead = 0.07 s`, `fixed = 61.37 s`
//! (the fixed part is distributed over the EMS command model, see
//! [`crate::ems`]).
//!
//! The ablation experiment E7 swaps in [`IterationPolicy::Fixed`] —
//! modelling a line system with jointly-optimized (parallel) equalization
//! — and shows setup time becoming linear in path length, quantifying §4's
//! claim that the measured times reflect "a lack of current carrier
//! requirements for speed" rather than physics.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimRng};

/// How many convergence iterations equalization needs for an `n`-hop path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IterationPolicy {
    /// One iteration per hop (sequential per-span convergence — deployed
    /// systems circa the paper). Produces quadratic total time.
    PerHop,
    /// A fixed iteration count independent of path length (jointly
    /// optimized control). Produces linear total time.
    Fixed(u32),
}

/// The equalization timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EqualizationModel {
    /// Seconds to measure + adjust one hop within one iteration.
    pub secs_per_hop: f64,
    /// Fixed seconds of overhead per iteration (command round-trip).
    pub iter_overhead_secs: f64,
    /// Iteration policy.
    pub policy: IterationPolicy,
    /// Relative standard deviation of run-to-run jitter (0 disables).
    pub jitter_rel_sigma: f64,
}

impl EqualizationModel {
    /// The model calibrated to the paper's Table 2.
    pub fn calibrated() -> EqualizationModel {
        EqualizationModel {
            secs_per_hop: 1.04,
            iter_overhead_secs: 0.07,
            policy: IterationPolicy::PerHop,
            jitter_rel_sigma: 0.02,
        }
    }

    /// The same model without jitter (for exact-value tests).
    pub fn calibrated_deterministic() -> EqualizationModel {
        EqualizationModel {
            jitter_rel_sigma: 0.0,
            ..Self::calibrated()
        }
    }

    /// Iterations required for an `n`-hop path.
    pub fn iterations(&self, hops: usize) -> u32 {
        match self.policy {
            IterationPolicy::PerHop => hops as u32,
            IterationPolicy::Fixed(k) => k,
        }
    }

    /// Mean (jitter-free) equalization time for an `n`-hop path.
    pub fn mean_secs(&self, hops: usize) -> f64 {
        assert!(hops > 0, "equalizing a zero-hop path");
        let iters = self.iterations(hops) as f64;
        iters * (self.secs_per_hop * hops as f64 + self.iter_overhead_secs)
    }

    /// Sample the equalization time for one setup.
    pub fn duration(&self, hops: usize, rng: &mut SimRng) -> SimDuration {
        let mean = self.mean_secs(hops);
        let secs = if self.jitter_rel_sigma > 0.0 {
            rng.normal_min(mean, mean * self.jitter_rel_sigma, 0.0)
        } else {
            mean
        };
        SimDuration::from_secs_f64(secs)
    }

    /// Split a sampled equalization `total` into its convergence
    /// iterations for span attribution: `iterations(hops)` durations that
    /// sum to `total` *exactly* (the last one absorbs integer-nanosecond
    /// remainders), each covering one measure/adjust/settle round.
    pub fn iteration_splits(&self, hops: usize, total: SimDuration) -> Vec<SimDuration> {
        split_even(total, self.iterations(hops).max(1) as usize)
    }
}

/// Split `total` into `parts` durations that sum to `total` exactly, the
/// last absorbing the division remainder. Used for per-iteration and
/// per-hop sub-spans that must tile their parent's interval.
pub fn split_even(total: SimDuration, parts: usize) -> Vec<SimDuration> {
    let parts = parts.max(1);
    let each = SimDuration::from_nanos(total.as_nanos() / parts as u64);
    let mut out = vec![each; parts];
    let used = each.as_nanos() * (parts as u64 - 1);
    out[parts - 1] = SimDuration::from_nanos(total.as_nanos() - used);
    out
}

/// Power-transient exposure when a channel is added or removed on a line.
///
/// §4: the optical line must tolerate add/remove events without
/// perturbing surviving channels. We model exposure as the worst-case
/// transient depth (dB) seen by co-propagating channels, a function of how
/// many channels the affected amplifiers carry: fewer survivors → deeper
/// transient (constant-gain EDFA physics: total power swing is divided
/// among survivors).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientModel {
    /// Transient depth in dB when a single survivor absorbs the swing.
    pub worst_case_db: f64,
    /// Depth (dB) below which receivers ride through without errors.
    pub tolerance_db: f64,
}

impl Default for TransientModel {
    fn default() -> Self {
        TransientModel {
            worst_case_db: 3.0,
            tolerance_db: 0.5,
        }
    }
}

impl TransientModel {
    /// Transient depth experienced by survivors when one channel
    /// (de)activates on a line carrying `survivors` other lit channels.
    pub fn depth_db(&self, survivors: usize) -> f64 {
        if survivors == 0 {
            0.0
        } else {
            self.worst_case_db / survivors as f64
        }
    }

    /// Would this add/remove event disturb surviving traffic?
    pub fn disturbs(&self, survivors: usize) -> bool {
        survivors > 0 && self.depth_db(survivors) > self.tolerance_db
    }

    /// Minimum survivor count for hitless add/remove.
    pub fn safe_survivor_count(&self) -> usize {
        (self.worst_case_db / self.tolerance_db).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_matches_paper_deltas() {
        let m = EqualizationModel::calibrated_deterministic();
        // fixed part lives in the EMS model; here only the path-dependent
        // part is produced: T(n) - fixed = 1.04 n² + 0.07 n.
        assert!((m.mean_secs(1) - 1.11).abs() < 1e-9);
        assert!((m.mean_secs(2) - 4.30).abs() < 1e-9);
        assert!((m.mean_secs(3) - 9.57).abs() < 1e-9);
        // Paper deltas: 65.67-62.48 = 3.19 and 70.94-65.67 = 5.27.
        assert!(((m.mean_secs(2) - m.mean_secs(1)) - 3.19).abs() < 1e-9);
        assert!(((m.mean_secs(3) - m.mean_secs(2)) - 5.27).abs() < 1e-9);
    }

    #[test]
    fn per_hop_policy_is_superlinear() {
        let m = EqualizationModel::calibrated_deterministic();
        let t1 = m.mean_secs(1);
        let t4 = m.mean_secs(4);
        assert!(t4 > 4.0 * t1, "expected superlinear growth");
    }

    #[test]
    fn fixed_policy_is_linear() {
        let m = EqualizationModel {
            policy: IterationPolicy::Fixed(2),
            ..EqualizationModel::calibrated_deterministic()
        };
        let t1 = m.mean_secs(1);
        let t2 = m.mean_secs(2);
        let t4 = m.mean_secs(4);
        // linear in hops up to the constant per-iteration overhead
        assert!((t2 - t1) < (t1 - 0.0));
        assert!(((t4 - t2) - 2.0 * (t2 - t1)).abs() < 1e-9);
        assert_eq!(m.iterations(10), 2);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic_per_seed() {
        let m = EqualizationModel::calibrated();
        let mut r1 = SimRng::new(7);
        let mut r2 = SimRng::new(7);
        let d1 = m.duration(3, &mut r1);
        let d2 = m.duration(3, &mut r2);
        assert_eq!(d1, d2);
        // within ±20% of the mean at 2% sigma, overwhelmingly
        let mean = m.mean_secs(3);
        assert!((d1.as_secs_f64() - mean).abs() < mean * 0.2);
    }

    #[test]
    #[should_panic(expected = "zero-hop")]
    fn zero_hops_rejected() {
        EqualizationModel::calibrated().mean_secs(0);
    }

    #[test]
    fn iteration_splits_tile_the_total_exactly() {
        let m = EqualizationModel::calibrated_deterministic();
        let total = SimDuration::from_nanos(9_570_000_001); // indivisible by 3
        let parts = m.iteration_splits(3, total);
        assert_eq!(parts.len(), 3);
        let sum = parts.iter().fold(SimDuration::ZERO, |acc, d| acc + *d);
        assert_eq!(sum, total, "splits must tile the sampled total");
        assert!(parts[2] >= parts[0], "last part absorbs the remainder");
        // Degenerate cases.
        assert_eq!(split_even(SimDuration::ZERO, 4).len(), 4);
        assert_eq!(split_even(SimDuration::from_secs(1), 0).len(), 1);
    }

    #[test]
    fn transient_depth_divides_among_survivors() {
        let t = TransientModel::default();
        assert_eq!(t.depth_db(0), 0.0);
        assert!((t.depth_db(1) - 3.0).abs() < 1e-12);
        assert!((t.depth_db(6) - 0.5).abs() < 1e-12);
        assert!(t.disturbs(1));
        assert!(!t.disturbs(6), "at tolerance, not above");
        assert!(!t.disturbs(0));
        assert_eq!(t.safe_survivor_count(), 6);
    }
}
