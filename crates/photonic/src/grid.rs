//! The DWDM channel grid and line rates.
//!
//! Modern systems (per the paper, §2.1) carry 40–100 wavelengths per fiber
//! pair on the ITU-T G.694.1 50 GHz C-band grid, each at 10–100 Gbps.
//! [`Wavelength`] is a channel index into a [`ChannelGrid`]; the grid maps
//! indices to physical frequencies for display and validates bounds.

use serde::{Deserialize, Serialize};
use simcore::DataRate;
use std::fmt;

/// A wavelength channel — an index into the system's [`ChannelGrid`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Wavelength(pub u16);

impl Wavelength {
    /// Raw channel index (0-based).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Wavelength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

impl fmt::Debug for Wavelength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The fixed channel plan of a line system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelGrid {
    /// Number of usable channels (40–100 in deployed systems).
    pub channels: u16,
    /// Channel spacing in GHz (50 for the systems the paper describes).
    pub spacing_ghz: u16,
    /// Frequency of channel 0 in GHz (ITU C-band anchor 191,700 GHz).
    pub first_freq_ghz: u32,
}

impl ChannelGrid {
    /// The 80-channel 50 GHz grid used by the backbone scenarios.
    pub const C_BAND_80: ChannelGrid = ChannelGrid {
        channels: 80,
        spacing_ghz: 50,
        first_freq_ghz: 191_700,
    };

    /// The 40-channel grid (the low end the paper quotes).
    pub const C_BAND_40: ChannelGrid = ChannelGrid {
        channels: 40,
        spacing_ghz: 100,
        first_freq_ghz: 191_700,
    };

    /// The 96-channel extended C-band grid used by the continental-scale
    /// generated plants (the high end of deployed 50 GHz systems; still
    /// comfortably inside the u128 occupancy-mask width).
    pub const C_BAND_96: ChannelGrid = ChannelGrid {
        channels: 96,
        spacing_ghz: 50,
        first_freq_ghz: 191_700,
    };

    /// All wavelengths on this grid, in index order.
    pub fn wavelengths(&self) -> impl Iterator<Item = Wavelength> {
        (0..self.channels).map(Wavelength)
    }

    /// Does this grid contain the channel?
    pub fn contains(&self, w: Wavelength) -> bool {
        w.0 < self.channels
    }

    /// Bitmask with one set bit per on-grid channel (bit *i* ↔ channel
    /// *i*). The occupancy-mask fast paths require the whole grid to fit
    /// in a `u128`; deployed systems top out around 100 channels.
    ///
    /// # Panics
    /// If the grid has more than 128 channels.
    pub fn channel_mask(&self) -> u128 {
        assert!(
            self.channels <= 128,
            "{} channels exceed the u128 occupancy-mask width",
            self.channels
        );
        if self.channels == 128 {
            u128::MAX
        } else {
            (1u128 << self.channels) - 1
        }
    }

    /// Centre frequency of a channel in GHz.
    ///
    /// # Panics
    /// If the wavelength is off-grid.
    pub fn frequency_ghz(&self, w: Wavelength) -> u32 {
        assert!(
            self.contains(w),
            "{w} is off-grid ({} channels)",
            self.channels
        );
        self.first_freq_ghz + w.0 as u32 * self.spacing_ghz as u32
    }
}

/// Line rate of a wavelength (what one lit channel carries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LineRate {
    /// 10 Gbps — the testbed's current rate.
    Gbps10,
    /// 40 Gbps — the testbed's planned rate, and the muxponder line side.
    Gbps40,
    /// 100 Gbps — the high end the paper quotes for modern systems.
    Gbps100,
}

impl LineRate {
    /// The payload rate.
    pub fn rate(self) -> DataRate {
        match self {
            LineRate::Gbps10 => DataRate::from_gbps(10),
            LineRate::Gbps40 => DataRate::from_gbps(40),
            LineRate::Gbps100 => DataRate::from_gbps(100),
        }
    }

    /// All defined line rates, ascending.
    pub const ALL: [LineRate; 3] = [LineRate::Gbps10, LineRate::Gbps40, LineRate::Gbps100];

    /// Smallest line rate that can carry `demand`, if any.
    pub fn smallest_fitting(demand: DataRate) -> Option<LineRate> {
        Self::ALL.into_iter().find(|r| r.rate() >= demand)
    }
}

impl fmt::Display for LineRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_bounds() {
        let g = ChannelGrid::C_BAND_80;
        assert!(g.contains(Wavelength(0)));
        assert!(g.contains(Wavelength(79)));
        assert!(!g.contains(Wavelength(80)));
        assert_eq!(g.wavelengths().count(), 80);
    }

    #[test]
    fn frequencies_follow_spacing() {
        let g = ChannelGrid::C_BAND_80;
        assert_eq!(g.frequency_ghz(Wavelength(0)), 191_700);
        assert_eq!(g.frequency_ghz(Wavelength(1)), 191_750);
        assert_eq!(g.frequency_ghz(Wavelength(79)), 191_700 + 79 * 50);
    }

    #[test]
    #[should_panic(expected = "off-grid")]
    fn off_grid_frequency_panics() {
        ChannelGrid::C_BAND_40.frequency_ghz(Wavelength(40));
    }

    #[test]
    fn line_rates() {
        assert_eq!(LineRate::Gbps10.rate(), DataRate::from_gbps(10));
        assert_eq!(LineRate::Gbps40.rate(), DataRate::from_gbps(40));
        assert_eq!(
            LineRate::smallest_fitting(DataRate::from_gbps(12)),
            Some(LineRate::Gbps40)
        );
        assert_eq!(
            LineRate::smallest_fitting(DataRate::from_gbps(10)),
            Some(LineRate::Gbps10)
        );
        assert_eq!(LineRate::smallest_fitting(DataRate::from_gbps(400)), None);
    }

    #[test]
    fn display() {
        assert_eq!(Wavelength(7).to_string(), "λ7");
        assert_eq!(LineRate::Gbps40.to_string(), "40G");
    }
}
