//! Optical reach: how far a signal travels before needing regeneration.
//!
//! §2.1: *"Optical-to-Electrical-to-Optical (OEO) regeneration is needed
//! when the distance between terminating nodes exceeds a limit for
//! adequate signal quality, known as the optical reach."*
//!
//! As in the paper (and in production RWA tools of that era), all analogue
//! impairments are folded into a single distance budget per line rate.
//! Higher rates have shorter reach — 40 G needs regens where 10 G sails
//! through, which is why the RWA layer treats regens as a scarce, pooled
//! resource and why the resource-planning module cares where they are
//! deployed.

use serde::{Deserialize, Serialize};

use crate::grid::LineRate;

/// Distance budgets per line rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReachModel {
    /// Reach of a 10 G signal in km.
    pub km_10g: f64,
    /// Reach of a 40 G signal in km.
    pub km_40g: f64,
    /// Reach of a 100 G (coherent) signal in km.
    pub km_100g: f64,
}

impl Default for ReachModel {
    /// Figures typical of deployed circa-2011 systems: 10 G NRZ ~2,500 km
    /// over modern fiber, 40 G DPSK ~1,500 km, 100 G coherent ~2,000 km.
    fn default() -> Self {
        ReachModel {
            km_10g: 2_500.0,
            km_40g: 1_500.0,
            km_100g: 2_000.0,
        }
    }
}

impl ReachModel {
    /// The reach budget for a rate.
    pub fn reach_km(&self, rate: LineRate) -> f64 {
        match rate {
            LineRate::Gbps10 => self.km_10g,
            LineRate::Gbps40 => self.km_40g,
            LineRate::Gbps100 => self.km_100g,
        }
    }

    /// Can a transparent (regen-free) segment of `km` carry `rate`?
    pub fn segment_ok(&self, rate: LineRate, km: f64) -> bool {
        km <= self.reach_km(rate)
    }

    /// Split a path (given per-hop lengths in km) into the fewest
    /// transparent segments each within reach; returns the hop indices
    /// *after* which a regen must be placed (i.e. at the node between hop
    /// `i` and hop `i+1`).
    ///
    /// Greedy earliest-violation splitting is optimal for this
    /// one-dimensional problem: extend each segment as far as reach
    /// allows, regenerate, continue.
    ///
    /// Returns `None` if some single hop alone exceeds reach (no regen
    /// placement can fix a too-long hop — the link itself is unusable at
    /// this rate).
    pub fn regen_points(&self, rate: LineRate, hop_km: &[f64]) -> Option<Vec<usize>> {
        let budget = self.reach_km(rate);
        let mut points = Vec::new();
        let mut acc = 0.0;
        for (i, km) in hop_km.iter().enumerate() {
            if *km > budget {
                return None;
            }
            if acc + km > budget {
                // regen at the node before this hop
                points.push(i - 1);
                acc = *km;
            } else {
                acc += km;
            }
        }
        Some(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_order() {
        let r = ReachModel::default();
        assert!(r.reach_km(LineRate::Gbps40) < r.reach_km(LineRate::Gbps10));
        assert!(r.segment_ok(LineRate::Gbps10, 2_500.0));
        assert!(!r.segment_ok(LineRate::Gbps10, 2_500.1));
    }

    #[test]
    fn short_path_needs_no_regen() {
        let r = ReachModel::default();
        assert_eq!(
            r.regen_points(LineRate::Gbps10, &[500.0, 500.0]),
            Some(vec![])
        );
    }

    #[test]
    fn long_path_splits_greedily() {
        let r = ReachModel {
            km_10g: 1300.0,
            ..ReachModel::default()
        };
        // Segments: [600+600] regen [600+600] — one regen after hop 1.
        let pts = r
            .regen_points(LineRate::Gbps10, &[600.0, 600.0, 600.0, 600.0])
            .unwrap();
        assert_eq!(pts, vec![1]);
        // A tighter budget forces a regen at every intermediate node.
        let tight = ReachModel {
            km_10g: 1000.0,
            ..ReachModel::default()
        };
        let pts = tight
            .regen_points(LineRate::Gbps10, &[600.0, 600.0, 600.0, 600.0])
            .unwrap();
        assert_eq!(pts, vec![0, 1, 2]);
    }

    #[test]
    fn exact_budget_fits() {
        let r = ReachModel {
            km_10g: 1000.0,
            ..ReachModel::default()
        };
        assert_eq!(
            r.regen_points(LineRate::Gbps10, &[500.0, 500.0]),
            Some(vec![])
        );
        assert_eq!(
            r.regen_points(LineRate::Gbps10, &[500.0, 500.0, 1.0]),
            Some(vec![1])
        );
    }

    #[test]
    fn impossible_single_hop() {
        let r = ReachModel::default();
        assert_eq!(r.regen_points(LineRate::Gbps40, &[100.0, 2_000.0]), None);
    }

    #[test]
    fn rate_dependence() {
        let r = ReachModel::default();
        let hops = [800.0, 800.0, 800.0];
        // 10G (2500 km) carries 2400 km transparently…
        assert_eq!(r.regen_points(LineRate::Gbps10, &hops), Some(vec![]));
        // …40G (1500 km) regenerates at both intermediate nodes
        // (800+800 already exceeds its budget).
        assert_eq!(r.regen_points(LineRate::Gbps40, &hops), Some(vec![0, 1]));
    }

    #[test]
    fn empty_path_is_trivially_fine() {
        let r = ReachModel::default();
        assert_eq!(r.regen_points(LineRate::Gbps10, &[]), Some(vec![]));
    }
}
