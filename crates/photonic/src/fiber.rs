//! Fiber plant: links, spans, amplifier chains, and cuts.
//!
//! A [`FiberLink`] is a bidirectional fiber *pair* between two ROADM nodes
//! (the unit the paper's DWDM layer multiplexes wavelengths onto). Long
//! links are divided into [`Span`]s separated by in-line EDFA amplifier
//! huts, which matters twice: equalization time scales with the number of
//! amplified spans, and a cut is located to a specific span by the fault
//! localizer.

use serde::{Deserialize, Serialize};
use simcore::define_id;

use crate::roadm::RoadmId;

define_id!(
    /// Identifier of a fiber link (pair) between two ROADM nodes.
    FiberId,
    "fiber"
);

/// One amplified section of a fiber link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Length of this span in kilometres.
    pub length_km: f64,
    /// Attenuation in dB/km (0.25 dB/km is typical deployed fiber).
    pub loss_db_per_km: f64,
}

impl Span {
    /// A span with typical terrestrial loss.
    pub fn of_km(length_km: f64) -> Span {
        assert!(length_km > 0.0, "span length must be positive");
        Span {
            length_km,
            loss_db_per_km: 0.25,
        }
    }

    /// Total attenuation across the span.
    pub fn loss_db(&self) -> f64 {
        self.length_km * self.loss_db_per_km
    }
}

/// Operational state of a fiber link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FiberState {
    /// Carrying traffic normally.
    Up,
    /// Cut at the given span index; all wavelengths on the link are dark.
    Cut {
        /// Which span the break is in (0-based from endpoint `a`).
        span: usize,
    },
    /// Administratively removed from service for planned maintenance.
    Maintenance,
}

/// A bidirectional fiber pair between two ROADM nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FiberLink {
    /// This link's id.
    pub id: FiberId,
    /// One endpoint.
    pub a: RoadmId,
    /// The other endpoint.
    pub b: RoadmId,
    /// Amplified spans, ordered from `a` to `b`.
    pub spans: Vec<Span>,
    /// Current operational state.
    pub state: FiberState,
}

impl FiberLink {
    /// Build a link from explicit spans.
    ///
    /// # Panics
    /// If `spans` is empty or the endpoints are equal.
    pub fn new(id: FiberId, a: RoadmId, b: RoadmId, spans: Vec<Span>) -> FiberLink {
        assert!(a != b, "fiber endpoints must differ");
        assert!(!spans.is_empty(), "a fiber link needs at least one span");
        FiberLink {
            id,
            a,
            b,
            spans,
            state: FiberState::Up,
        }
    }

    /// Build a link of `total_km`, auto-split into ~80 km amplified spans
    /// (the standard EDFA hut spacing).
    pub fn with_length(id: FiberId, a: RoadmId, b: RoadmId, total_km: f64) -> FiberLink {
        assert!(total_km > 0.0, "fiber length must be positive");
        let n = (total_km / 80.0).ceil().max(1.0) as usize;
        let each = total_km / n as f64;
        FiberLink::new(id, a, b, vec![Span::of_km(each); n])
    }

    /// Total route length.
    pub fn length_km(&self) -> f64 {
        self.spans.iter().map(|s| s.length_km).sum()
    }

    /// Number of in-line amplifier sites (one between each pair of spans).
    pub fn amplifier_count(&self) -> usize {
        self.spans.len().saturating_sub(1)
    }

    /// Total fiber attenuation (compensated by the amplifiers).
    pub fn total_loss_db(&self) -> f64 {
        self.spans.iter().map(Span::loss_db).sum()
    }

    /// Is the link able to carry traffic?
    pub fn is_up(&self) -> bool {
        matches!(self.state, FiberState::Up)
    }

    /// The far end as seen from `from`.
    ///
    /// # Panics
    /// If `from` is not an endpoint of this link.
    pub fn other_end(&self, from: RoadmId) -> RoadmId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("{from} is not an endpoint of {}", self.id)
        }
    }

    /// Sever the link at `span` (0-based). Idempotent for repeated cuts;
    /// the first cut's location wins.
    ///
    /// # Panics
    /// If `span` is out of range.
    pub fn cut_at(&mut self, span: usize) {
        assert!(span < self.spans.len(), "span {span} out of range");
        if self.is_up() || matches!(self.state, FiberState::Maintenance) {
            self.state = FiberState::Cut { span };
        }
    }

    /// Repair the link (or return it from maintenance) to service.
    pub fn restore(&mut self) {
        self.state = FiberState::Up;
    }

    /// Take the link out of service for planned maintenance.
    ///
    /// # Panics
    /// If the link is currently cut — repair precedes maintenance.
    pub fn enter_maintenance(&mut self) {
        assert!(
            !matches!(self.state, FiberState::Cut { .. }),
            "cannot start maintenance on a cut fiber"
        );
        self.state = FiberState::Maintenance;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> FiberLink {
        FiberLink::with_length(FiberId::new(0), RoadmId::new(0), RoadmId::new(1), 200.0)
    }

    #[test]
    fn auto_span_split() {
        let l = link();
        assert_eq!(l.spans.len(), 3); // 200 km → 3 spans ≤ 80 km
        assert!((l.length_km() - 200.0).abs() < 1e-9);
        assert_eq!(l.amplifier_count(), 2);
    }

    #[test]
    fn loss_accumulates() {
        let l = FiberLink::new(
            FiberId::new(1),
            RoadmId::new(0),
            RoadmId::new(1),
            vec![Span::of_km(100.0)],
        );
        assert!((l.total_loss_db() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn other_end_both_directions() {
        let l = link();
        assert_eq!(l.other_end(RoadmId::new(0)), RoadmId::new(1));
        assert_eq!(l.other_end(RoadmId::new(1)), RoadmId::new(0));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_end_rejects_stranger() {
        link().other_end(RoadmId::new(9));
    }

    #[test]
    fn cut_and_restore() {
        let mut l = link();
        assert!(l.is_up());
        l.cut_at(1);
        assert_eq!(l.state, FiberState::Cut { span: 1 });
        assert!(!l.is_up());
        // A second cut does not relocate the first.
        l.cut_at(2);
        assert_eq!(l.state, FiberState::Cut { span: 1 });
        l.restore();
        assert!(l.is_up());
    }

    #[test]
    fn maintenance_lifecycle() {
        let mut l = link();
        l.enter_maintenance();
        assert!(!l.is_up());
        l.restore();
        assert!(l.is_up());
    }

    #[test]
    #[should_panic(expected = "cut fiber")]
    fn maintenance_on_cut_fiber_panics() {
        let mut l = link();
        l.cut_at(0);
        l.enter_maintenance();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cut_out_of_range_panics() {
        link().cut_at(99);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_loop_rejected() {
        FiberLink::with_length(FiberId::new(0), RoadmId::new(3), RoadmId::new(3), 10.0);
    }
}
