//! The assembled photonic network: ROADMs, fibers, transponder pools,
//! regens, FXCs — plus the two reference topologies every experiment uses.
//!
//! - [`PhotonicNetwork::testbed`] reproduces the paper's Fig. 4 laboratory
//!   network: ROADMs I–IV (two 3-degree, two 2-degree) in a mesh that
//!   offers 1-, 2- and 3-hop routes between nodes I and IV — the exact
//!   paths of Table 2.
//! - [`PhotonicNetwork::nsfnet`] builds the classic 14-node NSFNET
//!   continental mesh with realistic span lengths, used by the scale,
//!   restoration and planning experiments that go beyond the paper's
//!   four-node lab.
//!
//! The struct is a plain container: state-changing operations go through
//! accessor methods returning `&mut` to the element, and the invariants
//! live in the element types themselves ([`Roadm`] rejects wavelength
//! conflicts, [`crate::fxc::Fxc`] rejects double-patching, …).

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
use simcore::SimTime;

use crate::alarm::{Alarm, AlarmKind, AlarmSeverity, DetectionModel};
use crate::fiber::{FiberId, FiberLink, FiberState};
use crate::fxc::{Fxc, FxcId};
use crate::grid::{ChannelGrid, LineRate, Wavelength};
use crate::roadm::{DegreeId, PortId, Roadm, RoadmId};
use crate::transponder::{Muxponder, MuxponderId, Regen, RegenId, Transponder, TransponderId};

/// Errors raised while assembling or querying a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Referenced a node id that does not exist.
    NoSuchRoadm(RoadmId),
    /// Referenced a fiber id that does not exist.
    NoSuchFiber(FiberId),
    /// The two nodes are not directly linked.
    NotAdjacent(RoadmId, RoadmId),
    /// A duplicate link between the same pair was requested.
    DuplicateLink(RoadmId, RoadmId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NoSuchRoadm(r) => write!(f, "no such roadm {r}"),
            TopologyError::NoSuchFiber(l) => write!(f, "no such fiber {l}"),
            TopologyError::NotAdjacent(a, b) => write!(f, "{a} and {b} are not adjacent"),
            TopologyError::DuplicateLink(a, b) => write!(f, "{a}–{b} already linked"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// The photonic plant under one carrier's control.
///
/// `Debug` is implemented by hand (not derived) so that the derived
/// per-node equipment indices below stay out of the output: controller
/// state digests hash `format!("{net:?}")`, and the indices are pure
/// caches over `transponders`/`regens` that must not perturb digests
/// pinned by golden files.
#[derive(Clone, Serialize, Deserialize)]
pub struct PhotonicNetwork {
    /// Channel plan shared by all line systems.
    pub grid: ChannelGrid,
    roadms: Vec<Roadm>,
    names: Vec<String>,
    fibers: Vec<FiberLink>,
    transponders: Vec<Transponder>,
    /// `TransponderId → (node, add/drop port)` placement.
    ot_ports: Vec<(RoadmId, PortId)>,
    regens: Vec<Regen>,
    fxcs: Vec<Fxc>,
    muxponders: Vec<Muxponder>,
    /// CSR adjacency offsets: node `n`'s edges live at
    /// `adj_edges[adj_off[n] .. adj_off[n + 1]]`.
    adj_off: Vec<u32>,
    /// CSR adjacency edges: `(connecting fiber, far node)`, grouped by
    /// near node, in fiber-id order within each group.
    adj_edges: Vec<(FiberId, RoadmId)>,
    /// Endpoint degrees `(degree at fiber.a, degree at fiber.b)`, indexed
    /// by [`FiberId`] — avoids the linear `degree_to` scan on hot paths.
    fiber_degrees: Vec<(DegreeId, DegreeId)>,
    /// Monotonic counter bumped whenever routing-relevant state may have
    /// changed (new links/nodes, any `fiber_mut` access). Route caches key
    /// on it, making invalidation a plain equality check.
    topology_epoch: u64,
    /// Transponders installed at each node, indexed by [`RoadmId`] —
    /// keeps [`PhotonicNetwork::idle_ots_at`] O(node's pool) instead of
    /// O(all transponders) on continental plants. Derived state, kept in
    /// lockstep with `transponders`; excluded from `Debug`.
    #[serde(default)]
    ots_by_node: Vec<Vec<TransponderId>>,
    /// Regens installed at each node, indexed by [`RoadmId`] — same
    /// role as `ots_by_node` for [`PhotonicNetwork::free_regens_at`].
    #[serde(default)]
    regens_by_node: Vec<Vec<RegenId>>,
}

// Field-for-field replica of the derived `Debug` for the fields that
// existed before the per-node indices were added. Byte-identical output
// matters: `Controller::write_state_digest` feeds this into the state
// CRC, and golden artifacts pin those CRCs.
impl std::fmt::Debug for PhotonicNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhotonicNetwork")
            .field("grid", &self.grid)
            .field("roadms", &self.roadms)
            .field("names", &self.names)
            .field("fibers", &self.fibers)
            .field("transponders", &self.transponders)
            .field("ot_ports", &self.ot_ports)
            .field("regens", &self.regens)
            .field("fxcs", &self.fxcs)
            .field("muxponders", &self.muxponders)
            .field("adj_off", &self.adj_off)
            .field("adj_edges", &self.adj_edges)
            .field("fiber_degrees", &self.fiber_degrees)
            .field("topology_epoch", &self.topology_epoch)
            .finish()
    }
}

impl PhotonicNetwork {
    /// An empty network on the given grid.
    pub fn new(grid: ChannelGrid) -> PhotonicNetwork {
        PhotonicNetwork {
            grid,
            roadms: Vec::new(),
            names: Vec::new(),
            fibers: Vec::new(),
            transponders: Vec::new(),
            ot_ports: Vec::new(),
            regens: Vec::new(),
            fxcs: Vec::new(),
            muxponders: Vec::new(),
            adj_off: vec![0],
            adj_edges: Vec::new(),
            fiber_degrees: Vec::new(),
            topology_epoch: 0,
            ots_by_node: Vec::new(),
            regens_by_node: Vec::new(),
        }
    }

    // ── construction ────────────────────────────────────────────────

    /// Add a ROADM node.
    pub fn add_roadm(&mut self, name: impl Into<String>) -> RoadmId {
        let id = RoadmId::from_index(self.roadms.len());
        self.roadms.push(Roadm::new(id, self.grid));
        self.names.push(name.into());
        self.ots_by_node.push(Vec::new());
        self.regens_by_node.push(Vec::new());
        // An isolated node has no edges: extend the offset array in place.
        self.adj_off.push(*self.adj_off.last().unwrap());
        self.topology_epoch += 1;
        id
    }

    /// Link two nodes with a fiber pair of `km` total length (spans are
    /// auto-split at 80 km); adds a degree on each end.
    pub fn link(&mut self, a: RoadmId, b: RoadmId, km: f64) -> Result<FiberId, TopologyError> {
        self.check_roadm(a)?;
        self.check_roadm(b)?;
        if self.fiber_between(a, b).is_some() {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        let id = FiberId::from_index(self.fibers.len());
        self.fibers.push(FiberLink::with_length(id, a, b, km));
        let da = self.roadms[a.index()].add_degree(id);
        let db = self.roadms[b.index()].add_degree(id);
        self.fiber_degrees.push((da, db));
        self.rebuild_adjacency();
        self.topology_epoch += 1;
        Ok(id)
    }

    /// Rebuild the CSR adjacency arrays from the fiber list (counting
    /// sort; O(nodes + fibers)). Called on every `link` — topology
    /// construction is rare compared to the queries the CSR serves.
    fn rebuild_adjacency(&mut self) {
        let n = self.roadms.len();
        let mut off = vec![0u32; n + 1];
        for f in &self.fibers {
            off[f.a.index() + 1] += 1;
            off[f.b.index() + 1] += 1;
        }
        for i in 0..n {
            off[i + 1] += off[i];
        }
        let mut cursor = off.clone();
        self.adj_edges = vec![(FiberId::new(0), RoadmId::new(0)); 2 * self.fibers.len()];
        for f in &self.fibers {
            let ia = f.a.index();
            self.adj_edges[cursor[ia] as usize] = (f.id, f.b);
            cursor[ia] += 1;
            let ib = f.b.index();
            self.adj_edges[cursor[ib] as usize] = (f.id, f.a);
            cursor[ib] += 1;
        }
        self.adj_off = off;
    }

    /// Install a tunable transponder at `node` on a fresh colorless,
    /// non-directional add/drop port.
    pub fn add_transponder(
        &mut self,
        node: RoadmId,
        rate: LineRate,
    ) -> Result<TransponderId, TopologyError> {
        self.check_roadm(node)?;
        let id = TransponderId::from_index(self.transponders.len());
        let port = self.roadms[node.index()].add_port();
        self.roadms[node.index()].attach_transponder(port, id);
        self.transponders.push(Transponder::new(id, node, rate));
        self.ot_ports.push((node, port));
        self.ots_by_node[node.index()].push(id);
        Ok(id)
    }

    /// Install `n` transponders at `node`.
    pub fn add_transponders(
        &mut self,
        node: RoadmId,
        rate: LineRate,
        n: usize,
    ) -> Result<Vec<TransponderId>, TopologyError> {
        (0..n).map(|_| self.add_transponder(node, rate)).collect()
    }

    /// Install a regenerator at `node`.
    pub fn add_regen(&mut self, node: RoadmId, rate: LineRate) -> Result<RegenId, TopologyError> {
        self.check_roadm(node)?;
        let id = RegenId::from_index(self.regens.len());
        self.regens.push(Regen::new(id, node, rate));
        self.regens_by_node[node.index()].push(id);
        Ok(id)
    }

    /// Install an empty client-side FXC (ports are added by the caller).
    pub fn add_fxc(&mut self) -> FxcId {
        let id = FxcId::from_index(self.fxcs.len());
        self.fxcs.push(Fxc::new(id));
        id
    }

    /// Install a 4×10G→40G muxponder.
    pub fn add_muxponder(&mut self) -> MuxponderId {
        let id = MuxponderId::from_index(self.muxponders.len());
        self.muxponders.push(Muxponder::new(id));
        id
    }

    // ── element access ──────────────────────────────────────────────

    /// Read a node.
    pub fn roadm(&self, id: RoadmId) -> &Roadm {
        &self.roadms[id.index()]
    }
    /// Mutate a node.
    pub fn roadm_mut(&mut self, id: RoadmId) -> &mut Roadm {
        &mut self.roadms[id.index()]
    }
    /// Read a fiber.
    pub fn fiber(&self, id: FiberId) -> &FiberLink {
        &self.fibers[id.index()]
    }
    /// Mutate a fiber. Bumps the topology epoch conservatively: callers
    /// take this path to change fiber state (cuts, maintenance, restore),
    /// all of which affect routing.
    pub fn fiber_mut(&mut self, id: FiberId) -> &mut FiberLink {
        self.topology_epoch += 1;
        &mut self.fibers[id.index()]
    }

    /// The current topology epoch. Strictly increases across any mutation
    /// that can change routing results (node/link additions, fiber state
    /// changes); equal epochs guarantee identical route computations, so
    /// caches keyed on `(query, epoch)` never serve stale paths.
    pub fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }
    /// Read a transponder.
    pub fn transponder(&self, id: TransponderId) -> &Transponder {
        &self.transponders[id.index()]
    }
    /// Mutate a transponder.
    pub fn transponder_mut(&mut self, id: TransponderId) -> &mut Transponder {
        &mut self.transponders[id.index()]
    }
    /// Read a regen.
    pub fn regen(&self, id: RegenId) -> &Regen {
        &self.regens[id.index()]
    }
    /// Mutate a regen.
    pub fn regen_mut(&mut self, id: RegenId) -> &mut Regen {
        &mut self.regens[id.index()]
    }
    /// Read an FXC.
    pub fn fxc(&self, id: FxcId) -> &Fxc {
        &self.fxcs[id.index()]
    }
    /// Mutate an FXC.
    pub fn fxc_mut(&mut self, id: FxcId) -> &mut Fxc {
        &mut self.fxcs[id.index()]
    }
    /// Read a muxponder.
    pub fn muxponder(&self, id: MuxponderId) -> &Muxponder {
        &self.muxponders[id.index()]
    }
    /// Mutate a muxponder.
    pub fn muxponder_mut(&mut self, id: MuxponderId) -> &mut Muxponder {
        &mut self.muxponders[id.index()]
    }

    /// A node's display name.
    pub fn name(&self, id: RoadmId) -> &str {
        &self.names[id.index()]
    }
    /// Look a node up by display name.
    pub fn roadm_by_name(&self, name: &str) -> Option<RoadmId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(RoadmId::from_index)
    }

    /// Number of nodes.
    pub fn roadm_count(&self) -> usize {
        self.roadms.len()
    }
    /// Number of fiber links.
    pub fn fiber_count(&self) -> usize {
        self.fibers.len()
    }
    /// Number of installed transponders.
    pub fn transponder_count(&self) -> usize {
        self.transponders.len()
    }
    /// Total amplified spans across all fiber links.
    pub fn span_count(&self) -> usize {
        self.fibers.iter().map(|f| f.spans.len()).sum()
    }

    /// Estimated heap bytes behind the whole plant — node tables, fiber
    /// spans, equipment pools, CSR adjacency, and the per-node equipment
    /// indices. Used by the scale benchmark's memory column; an estimate
    /// for capacity planning, not an allocator measurement.
    pub fn memory_footprint(&self) -> usize {
        use std::mem::size_of;
        let roadm_heap: usize = self.roadms.iter().map(Roadm::memory_footprint).sum();
        let span_heap: usize = self
            .fibers
            .iter()
            .map(|f| f.spans.capacity() * size_of::<crate::fiber::Span>())
            .sum();
        let name_heap: usize = self.names.iter().map(String::capacity).sum();
        let index_heap: usize = self
            .ots_by_node
            .iter()
            .map(|v| v.capacity() * size_of::<TransponderId>())
            .sum::<usize>()
            + self
                .regens_by_node
                .iter()
                .map(|v| v.capacity() * size_of::<RegenId>())
                .sum::<usize>();
        self.roadms.capacity() * size_of::<Roadm>()
            + roadm_heap
            + self.names.capacity() * size_of::<String>()
            + name_heap
            + self.fibers.capacity() * size_of::<FiberLink>()
            + span_heap
            + self.transponders.capacity() * size_of::<Transponder>()
            + self.ot_ports.capacity() * size_of::<(RoadmId, PortId)>()
            + self.regens.capacity() * size_of::<Regen>()
            + self.fxcs.capacity() * size_of::<Fxc>()
            + self.muxponders.capacity() * size_of::<Muxponder>()
            + self.adj_off.capacity() * size_of::<u32>()
            + self.adj_edges.capacity() * size_of::<(FiberId, RoadmId)>()
            + self.fiber_degrees.capacity() * size_of::<(DegreeId, DegreeId)>()
            + (self.ots_by_node.capacity() + self.regens_by_node.capacity()) * size_of::<Vec<u32>>()
            + index_heap
    }
    /// All node ids.
    pub fn roadm_ids(&self) -> impl Iterator<Item = RoadmId> {
        (0..self.roadms.len()).map(RoadmId::from_index)
    }
    /// All fiber ids.
    pub fn fiber_ids(&self) -> impl Iterator<Item = FiberId> {
        (0..self.fibers.len()).map(FiberId::from_index)
    }
    /// All transponder ids.
    pub fn transponder_ids(&self) -> impl Iterator<Item = TransponderId> {
        (0..self.transponders.len()).map(TransponderId::from_index)
    }
    /// Number of installed regens.
    pub fn regen_count(&self) -> usize {
        self.regens.len()
    }
    /// All regen ids.
    pub fn regen_ids(&self) -> impl Iterator<Item = RegenId> {
        (0..self.regens.len()).map(RegenId::from_index)
    }

    /// `(node, add/drop port)` where a transponder is installed.
    pub fn ot_port(&self, id: TransponderId) -> (RoadmId, PortId) {
        self.ot_ports[id.index()]
    }

    // ── graph queries ───────────────────────────────────────────────

    /// The fiber directly linking `a` and `b`, if one exists.
    pub fn fiber_between(&self, a: RoadmId, b: RoadmId) -> Option<FiberId> {
        self.fibers
            .iter()
            .find(|f| (f.a == a && f.b == b) || (f.a == b && f.b == a))
            .map(|f| f.id)
    }

    /// Neighbours of a node: `(connecting fiber, far node)` pairs in
    /// fiber-id order, including links that are currently down. Served
    /// from the CSR adjacency — no allocation, no fiber-list scan.
    pub fn neighbors(&self, n: RoadmId) -> &[(FiberId, RoadmId)] {
        let lo = self.adj_off[n.index()] as usize;
        let hi = self.adj_off[n.index() + 1] as usize;
        &self.adj_edges[lo..hi]
    }

    /// The node sequence of a fiber path starting at `from`.
    ///
    /// # Panics
    /// If the path is not contiguous from `from`.
    pub fn node_sequence(&self, from: RoadmId, path: &[FiberId]) -> Vec<RoadmId> {
        let mut nodes = vec![from];
        let mut cur = from;
        for fid in path {
            let next = self.fiber(*fid).other_end(cur);
            nodes.push(next);
            cur = next;
        }
        nodes
    }

    /// Per-hop lengths (km) of a fiber path.
    pub fn hop_lengths(&self, path: &[FiberId]) -> Vec<f64> {
        path.iter().map(|f| self.fiber(*f).length_km()).collect()
    }

    /// Total length (km) of a fiber path.
    pub fn path_km(&self, path: &[FiberId]) -> f64 {
        self.hop_lengths(path).iter().sum()
    }

    /// Free-channel bitmask of fiber `f`: bit *i* set ⇔ channel *i* is
    /// free at *both* endpoint ROADMs' facing degrees (they are configured
    /// together, but a half-configured state mid-workflow counts as
    /// occupied).
    pub fn free_lambda_mask(&self, f: FiberId) -> u128 {
        let link = self.fiber(f);
        let (da, db) = self.fiber_degrees[f.index()];
        self.roadms[link.a.index()].free_mask(da) & self.roadms[link.b.index()].free_mask(db)
    }

    /// Is `w` unused on fiber `f` (at both endpoints)?
    pub fn lambda_free_on_fiber(&self, f: FiberId, w: Wavelength) -> bool {
        self.free_lambda_mask(f) & (1u128 << w.index()) != 0
    }

    /// First-fit wavelength free on *every* fiber of `path` (wavelength
    /// continuity), if any: an AND-reduce of per-fiber free masks followed
    /// by a trailing-zeros count. The naive per-wavelength scan survives
    /// as [`PhotonicNetwork::first_free_lambda_reference`] and is checked
    /// against in debug builds.
    pub fn first_free_lambda(&self, path: &[FiberId]) -> Option<Wavelength> {
        let mut free = self.grid.channel_mask();
        for f in path {
            free &= self.free_lambda_mask(*f);
            if free == 0 {
                break;
            }
        }
        let found = if free == 0 {
            None
        } else {
            Some(Wavelength(free.trailing_zeros() as u16))
        };
        debug_assert_eq!(found, self.first_free_lambda_reference(path));
        found
    }

    /// Reference first-fit implementation: the original nested scan over
    /// wavelengths × hops × degrees, reading the ROADMs' configuration
    /// maps directly. O(λ·hops·degree) — kept as the oracle the bitmask
    /// fast path is verified against (debug asserts and property tests).
    pub fn first_free_lambda_reference(&self, path: &[FiberId]) -> Option<Wavelength> {
        self.grid.wavelengths().find(|w| {
            path.iter().all(|f| {
                let link = self.fiber(*f);
                [link.a, link.b].into_iter().all(|node| {
                    let r = self.roadm(node);
                    let d = r.degree_to(*f).expect("endpoint must have a degree");
                    r.lambda_usage(d, *w).is_none()
                })
            })
        })
    }

    /// Count of wavelengths lit on a fiber (either endpoint).
    pub fn lit_lambdas_on_fiber(&self, f: FiberId) -> usize {
        (self.grid.channel_mask() & !self.free_lambda_mask(f)).count_ones() as usize
    }

    /// Idle transponders of `rate` installed at `node`.
    ///
    /// Served from the per-node index (insertion order == id order, so
    /// results match the historical full-pool scan exactly) — O(node's
    /// pool), not O(all transponders), which matters once plants reach
    /// hundreds of nodes.
    pub fn idle_ots_at(&self, node: RoadmId, rate: LineRate) -> Vec<TransponderId> {
        self.ots_by_node[node.index()]
            .iter()
            .copied()
            .filter(|&id| {
                let t = &self.transponders[id.index()];
                t.rate == rate && t.is_idle()
            })
            .collect()
    }

    /// Free regens of `rate` at `node` (per-node index; see
    /// [`PhotonicNetwork::idle_ots_at`] for the ordering argument).
    pub fn free_regens_at(&self, node: RoadmId, rate: LineRate) -> Vec<RegenId> {
        self.regens_by_node[node.index()]
            .iter()
            .copied()
            .filter(|&id| {
                let r = &self.regens[id.index()];
                r.rate == rate && !r.in_use
            })
            .collect()
    }

    /// Fewest-hops path between two nodes over *up* fibers (BFS). The RWA
    /// module in `griphon` does the real routing; this is the baseline
    /// and a test helper.
    pub fn shortest_path_hops(&self, from: RoadmId, to: RoadmId) -> Option<Vec<FiberId>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: BTreeMap<RoadmId, (RoadmId, FiberId)> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for &(fid, m) in self.neighbors(n) {
                if !self.fiber(fid).is_up() || m == from || prev.contains_key(&m) {
                    continue;
                }
                prev.insert(m, (n, fid));
                if m == to {
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (p, f) = prev[&cur];
                        path.push(f);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(m);
            }
        }
        None
    }

    // ── failure propagation ─────────────────────────────────────────

    /// Cut fiber `f` at `span` and return the resulting alarm storm:
    /// line telemetry plus per-wavelength LOS at both adjacent nodes.
    /// (Terminal OT alarms are added by the controller layer, which knows
    /// which connections traverse the fiber.)
    pub fn cut_fiber(
        &mut self,
        f: FiberId,
        span: usize,
        at: SimTime,
        detect: &DetectionModel,
    ) -> Vec<Alarm> {
        self.fiber_mut(f).cut_at(span);
        let mut alarms = vec![Alarm {
            at: at + detect.fiber_down,
            kind: AlarmKind::FiberDown { fiber: f },
            severity: AlarmSeverity::Critical,
        }];
        let link = self.fiber(f);
        for node in [link.a, link.b] {
            let r = self.roadm(node);
            let d = r.degree_to(f).expect("endpoint must have a degree");
            for (deg, w, _) in r.configurations() {
                if deg == d {
                    alarms.push(Alarm {
                        at: at + detect.degree_los,
                        kind: AlarmKind::DegreeLos {
                            roadm: node,
                            degree: d,
                            wavelength: w,
                        },
                        severity: AlarmSeverity::Critical,
                    });
                }
            }
        }
        alarms.sort_by_key(|a| a.at);
        alarms
    }

    /// Render the topology as an adjacency table (the Fig. 4 harness).
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} ROADMs, {} fiber links, {} OTs, {} regens",
            self.roadm_count(),
            self.fiber_count(),
            self.transponder_count(),
            self.regens.len()
        );
        for r in &self.roadms {
            let degree = r.degree_count();
            let ports = r.port_count();
            let _ = write!(
                out,
                "  {:<12} ({degree}-degree, {ports} a/d ports) ↔",
                self.name(r.id)
            );
            for &(fid, m) in self.neighbors(r.id) {
                let state = match self.fiber(fid).state {
                    FiberState::Up => "",
                    FiberState::Cut { .. } => "[CUT]",
                    FiberState::Maintenance => "[MAINT]",
                };
                let _ = write!(
                    out,
                    " {}({:.0}km){}",
                    self.name(m),
                    self.fiber(fid).length_km(),
                    state
                );
            }
            out.push('\n');
        }
        out
    }

    /// Render per-fiber spectrum occupancy as a map: one row per fiber,
    /// one character per channel (`█` lit, `·` dark). The operator's
    /// "how full is my line system" view.
    pub fn spectrum_map(&self) -> String {
        let mut out = String::new();
        for f in self.fiber_ids() {
            let link = self.fiber(f);
            let _ = write!(
                out,
                "{:<14}",
                format!("{}–{}", self.name(link.a), self.name(link.b))
            );
            for w in self.grid.wavelengths() {
                out.push(if self.lambda_free_on_fiber(f, w) {
                    '·'
                } else {
                    '█'
                });
            }
            let _ = writeln!(
                out,
                "  {}/{}",
                self.lit_lambdas_on_fiber(f),
                self.grid.channels
            );
        }
        out
    }

    fn check_roadm(&self, id: RoadmId) -> Result<(), TopologyError> {
        if id.index() < self.roadms.len() {
            Ok(())
        } else {
            Err(TopologyError::NoSuchRoadm(id))
        }
    }
}

/// Node/fiber handles of the Fig. 4 testbed.
#[derive(Debug, Clone, Copy)]
pub struct TestbedIds {
    /// ROADM I (3-degree) — customer premises A home.
    pub i: RoadmId,
    /// ROADM II (2-degree).
    pub ii: RoadmId,
    /// ROADM III (3-degree) — customer premises B home.
    pub iii: RoadmId,
    /// ROADM IV (2-degree) — customer premises C home.
    pub iv: RoadmId,
    /// Direct fiber I–IV (the 1-hop route of Table 2).
    pub f_i_iv: FiberId,
    /// Fiber I–III (first hop of the 2-hop route).
    pub f_i_iii: FiberId,
    /// Fiber III–IV (second hop of the 2-hop route).
    pub f_iii_iv: FiberId,
    /// Fiber I–II (first hop of the 3-hop route).
    pub f_i_ii: FiberId,
    /// Fiber II–III (second hop of the 3-hop route).
    pub f_ii_iii: FiberId,
}

impl PhotonicNetwork {
    /// The paper's Fig. 4 laboratory testbed: ROADMs I and III 3-degree,
    /// II and IV 2-degree, meshed so that I→IV has 1-, 2- and 3-hop
    /// routes (I–IV, I–III–IV, I–II–III–IV — the rows of Table 2). Each
    /// node gets `ots_per_node` tunable 10 G transponders.
    ///
    /// ```
    /// let (net, ids) = photonic::PhotonicNetwork::testbed(4);
    /// assert_eq!(net.roadm(ids.i).degree_count(), 3);
    /// assert_eq!(net.shortest_path_hops(ids.i, ids.iv).unwrap().len(), 1);
    /// ```
    pub fn testbed(ots_per_node: usize) -> (PhotonicNetwork, TestbedIds) {
        let mut net = PhotonicNetwork::new(ChannelGrid::C_BAND_80);
        let i = net.add_roadm("I");
        let ii = net.add_roadm("II");
        let iii = net.add_roadm("III");
        let iv = net.add_roadm("IV");
        let f_i_ii = net.link(i, ii, 80.0).unwrap();
        let f_ii_iii = net.link(ii, iii, 80.0).unwrap();
        let f_iii_iv = net.link(iii, iv, 80.0).unwrap();
        let f_i_iii = net.link(i, iii, 80.0).unwrap();
        let f_i_iv = net.link(i, iv, 80.0).unwrap();
        for n in [i, ii, iii, iv] {
            net.add_transponders(n, LineRate::Gbps10, ots_per_node)
                .unwrap();
        }
        (
            net,
            TestbedIds {
                i,
                ii,
                iii,
                iv,
                f_i_iv,
                f_i_iii,
                f_iii_iv,
                f_i_ii,
                f_ii_iii,
            },
        )
    }

    /// The classic 14-node NSFNET T1 backbone with approximate route-km
    /// link lengths — the continental-scale plant for experiments beyond
    /// the lab (restoration at scale, planning, grooming).
    /// Each node gets `ots_per_node` transponders of `rate` and
    /// `regens_per_node` regenerators.
    pub fn nsfnet(ots_per_node: usize, rate: LineRate, regens_per_node: usize) -> PhotonicNetwork {
        let mut net = PhotonicNetwork::new(ChannelGrid::C_BAND_80);
        let cities = [
            "Seattle",     // 0
            "PaloAlto",    // 1
            "SanDiego",    // 2
            "SaltLake",    // 3
            "Boulder",     // 4
            "Houston",     // 5
            "Lincoln",     // 6
            "Champaign",   // 7
            "Atlanta",     // 8
            "AnnArbor",    // 9
            "Pittsburgh",  // 10
            "Ithaca",      // 11
            "CollegePark", // 12
            "Princeton",   // 13
        ];
        let ids: Vec<RoadmId> = cities.iter().map(|c| net.add_roadm(*c)).collect();
        // (a, b, km) — standard NSFNET distances.
        let links: [(usize, usize, f64); 21] = [
            (0, 1, 1100.0),
            (0, 2, 1600.0),
            (0, 7, 2800.0),
            (1, 2, 600.0),
            (1, 3, 1000.0),
            (2, 5, 2000.0),
            (3, 4, 600.0),
            (3, 9, 2400.0),
            (4, 5, 1100.0),
            (4, 6, 800.0),
            (5, 8, 1200.0),
            (5, 12, 2000.0),
            (6, 7, 700.0),
            (6, 9, 1000.0),
            (7, 10, 850.0),
            (8, 10, 900.0),
            (8, 12, 1000.0),
            (9, 11, 800.0),
            (10, 11, 500.0),
            (11, 13, 300.0),
            (12, 13, 300.0),
        ];
        for (a, b, km) in links {
            net.link(ids[a], ids[b], km).unwrap();
        }
        for id in &ids {
            net.add_transponders(*id, rate, ots_per_node).unwrap();
            for _ in 0..regens_per_node {
                net.add_regen(*id, rate).unwrap();
            }
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_matches_fig4() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        assert_eq!(net.roadm_count(), 4);
        assert_eq!(net.fiber_count(), 5);
        // Two 3-degree and two 2-degree ROADMs.
        assert_eq!(net.roadm(ids.i).degree_count(), 3);
        assert_eq!(net.roadm(ids.iii).degree_count(), 3);
        assert_eq!(net.roadm(ids.ii).degree_count(), 2);
        assert_eq!(net.roadm(ids.iv).degree_count(), 2);
        // The three Table 2 routes exist.
        assert_eq!(net.fiber_between(ids.i, ids.iv), Some(ids.f_i_iv));
        assert_eq!(net.fiber_between(ids.i, ids.iii), Some(ids.f_i_iii));
        assert_eq!(net.fiber_between(ids.iii, ids.iv), Some(ids.f_iii_iv));
        assert_eq!(net.fiber_between(ids.ii, ids.iv), None);
        assert_eq!(net.transponder_count(), 16);
    }

    #[test]
    fn bfs_takes_direct_route_and_reroutes_after_cut() {
        let (mut net, ids) = PhotonicNetwork::testbed(2);
        let direct = net.shortest_path_hops(ids.i, ids.iv).unwrap();
        assert_eq!(direct, vec![ids.f_i_iv]);
        net.fiber_mut(ids.f_i_iv).cut_at(0);
        let detour = net.shortest_path_hops(ids.i, ids.iv).unwrap();
        assert_eq!(detour.len(), 2);
        assert_eq!(
            net.node_sequence(ids.i, &detour),
            vec![ids.i, ids.iii, ids.iv]
        );
    }

    #[test]
    fn bfs_none_when_disconnected() {
        let mut net = PhotonicNetwork::new(ChannelGrid::C_BAND_40);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        assert_eq!(net.shortest_path_hops(a, b), None);
        assert_eq!(net.shortest_path_hops(a, a), Some(vec![]));
    }

    #[test]
    fn duplicate_link_rejected() {
        let (mut net, ids) = PhotonicNetwork::testbed(0);
        assert_eq!(
            net.link(ids.i, ids.iv, 10.0),
            Err(TopologyError::DuplicateLink(ids.i, ids.iv))
        );
        assert_eq!(
            net.link(ids.iv, ids.i, 10.0),
            Err(TopologyError::DuplicateLink(ids.iv, ids.i))
        );
    }

    #[test]
    fn lambda_continuity_first_fit() {
        let (mut net, ids) = PhotonicNetwork::testbed(2);
        let path = vec![ids.f_i_iii, ids.f_iii_iv];
        assert_eq!(net.first_free_lambda(&path), Some(Wavelength(0)));
        // Occupy λ0 on the middle node's degree facing I–III.
        let d = net.roadm(ids.iii).degree_to(ids.f_i_iii).unwrap();
        let d2 = net.roadm(ids.iii).degree_to(ids.f_iii_iv).unwrap();
        net.roadm_mut(ids.iii)
            .connect_express(Wavelength(0), d, d2)
            .unwrap();
        assert_eq!(net.first_free_lambda(&path), Some(Wavelength(1)));
        assert!(!net.lambda_free_on_fiber(ids.f_i_iii, Wavelength(0)));
        assert_eq!(net.lit_lambdas_on_fiber(ids.f_i_iii), 1);
    }

    #[test]
    fn ot_pools_by_location_and_state() {
        let (mut net, ids) = PhotonicNetwork::testbed(2);
        let idle = net.idle_ots_at(ids.i, LineRate::Gbps10);
        assert_eq!(idle.len(), 2);
        net.transponder_mut(idle[0]).start_tuning(Wavelength(0));
        assert_eq!(net.idle_ots_at(ids.i, LineRate::Gbps10).len(), 1);
        assert_eq!(net.idle_ots_at(ids.i, LineRate::Gbps40).len(), 0);
    }

    #[test]
    fn regen_pool() {
        let mut net = PhotonicNetwork::nsfnet(2, LineRate::Gbps10, 1);
        let n = net.roadm_by_name("Lincoln").unwrap();
        let free = net.free_regens_at(n, LineRate::Gbps10);
        assert_eq!(free.len(), 1);
        net.regen_mut(free[0]).claim();
        assert!(net.free_regens_at(n, LineRate::Gbps10).is_empty());
    }

    #[test]
    fn nsfnet_shape() {
        let net = PhotonicNetwork::nsfnet(1, LineRate::Gbps10, 0);
        assert_eq!(net.roadm_count(), 14);
        assert_eq!(net.fiber_count(), 21);
        // Every node degree ≥ 2 (survivable mesh).
        for id in net.roadm_ids() {
            assert!(net.roadm(id).degree_count() >= 2, "{}", net.name(id));
        }
        // Spans were split at 80 km.
        let f = net
            .fiber_between(
                net.roadm_by_name("Seattle").unwrap(),
                net.roadm_by_name("Champaign").unwrap(),
            )
            .unwrap();
        assert_eq!(net.fiber(f).spans.len(), 35); // 2800/80
    }

    #[test]
    fn cut_generates_alarm_storm() {
        let (mut net, ids) = PhotonicNetwork::testbed(2);
        // Light two wavelengths across I–IV.
        let di = net.roadm(ids.i).degree_to(ids.f_i_iv).unwrap();
        let div = net.roadm(ids.iv).degree_to(ids.f_i_iv).unwrap();
        let pi = net.roadm_mut(ids.i).add_port();
        net.roadm_mut(ids.i)
            .attach_transponder(pi, TransponderId::new(99));
        net.roadm_mut(ids.i)
            .connect_add_drop(pi, Wavelength(0), di)
            .unwrap();
        let piv = net.roadm_mut(ids.iv).add_port();
        net.roadm_mut(ids.iv)
            .attach_transponder(piv, TransponderId::new(98));
        net.roadm_mut(ids.iv)
            .connect_add_drop(piv, Wavelength(0), div)
            .unwrap();
        let alarms = net.cut_fiber(
            ids.f_i_iv,
            0,
            SimTime::from_secs(100),
            &DetectionModel::default(),
        );
        // 1 FiberDown + LOS at each endpoint for λ0.
        assert_eq!(alarms.len(), 3);
        assert!(matches!(alarms[0].kind, AlarmKind::DegreeLos { .. }));
        assert!(alarms
            .iter()
            .any(|a| matches!(a.kind, AlarmKind::FiberDown { .. })));
        assert!(!net.fiber(ids.f_i_iv).is_up());
        // Sorted by surfacing time: degree LOS (50 ms) before FiberDown (500 ms).
        assert!(alarms.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn render_ascii_mentions_every_node() {
        let (net, _) = PhotonicNetwork::testbed(1);
        let s = net.render_ascii();
        for name in ["I", "II", "III", "IV"] {
            assert!(s.contains(name));
        }
        assert!(s.contains("3-degree"));
    }

    #[test]
    fn spectrum_map_shows_occupancy() {
        let (mut net, ids) = PhotonicNetwork::testbed(1);
        let empty = net.spectrum_map();
        assert!(empty.contains("0/80"));
        assert!(!empty.contains('█'));
        // Light one λ on I–IV.
        let d = net.roadm(ids.i).degree_to(ids.f_i_iv).unwrap();
        let d2 = net.roadm(ids.iv).degree_to(ids.f_i_iv).unwrap();
        let p = net.roadm_mut(ids.i).add_port();
        net.roadm_mut(ids.i)
            .attach_transponder(p, TransponderId::new(50));
        net.roadm_mut(ids.i)
            .connect_add_drop(p, Wavelength(3), d)
            .unwrap();
        let p2 = net.roadm_mut(ids.iv).add_port();
        net.roadm_mut(ids.iv)
            .attach_transponder(p2, TransponderId::new(51));
        net.roadm_mut(ids.iv)
            .connect_add_drop(p2, Wavelength(3), d2)
            .unwrap();
        let map = net.spectrum_map();
        assert!(map.contains('█'));
        assert!(map.contains("1/80"));
    }

    #[test]
    fn csr_neighbors_match_fiber_scan() {
        let net = PhotonicNetwork::nsfnet(0, LineRate::Gbps10, 0);
        for n in net.roadm_ids() {
            let expected: Vec<(FiberId, RoadmId)> = net
                .fiber_ids()
                .filter_map(|fid| {
                    let f = net.fiber(fid);
                    if f.a == n {
                        Some((fid, f.b))
                    } else if f.b == n {
                        Some((fid, f.a))
                    } else {
                        None
                    }
                })
                .collect();
            assert_eq!(net.neighbors(n), expected.as_slice(), "{}", net.name(n));
        }
        // Isolated nodes have an empty (not panicking) neighbor slice.
        let mut lone = PhotonicNetwork::new(ChannelGrid::C_BAND_40);
        let a = lone.add_roadm("a");
        assert!(lone.neighbors(a).is_empty());
    }

    #[test]
    fn topology_epoch_tracks_mutations() {
        let mut net = PhotonicNetwork::new(ChannelGrid::C_BAND_40);
        let e0 = net.topology_epoch();
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        let e1 = net.topology_epoch();
        assert!(e1 > e0);
        let f = net.link(a, b, 10.0).unwrap();
        let e2 = net.topology_epoch();
        assert!(e2 > e1);
        // Read-only access leaves the epoch alone …
        let _ = net.fiber(f);
        let _ = net.neighbors(a);
        assert_eq!(net.topology_epoch(), e2);
        // … but mutable fiber access bumps it (cut, restore, anything).
        net.fiber_mut(f).cut_at(0);
        assert!(net.topology_epoch() > e2);
    }

    #[test]
    fn fiber_free_mask_and_first_fit_agree_with_reference() {
        let (mut net, ids) = PhotonicNetwork::testbed(2);
        let path = vec![ids.f_i_iii, ids.f_iii_iv];
        assert_eq!(net.free_lambda_mask(ids.f_i_iii), net.grid.channel_mask());
        let d = net.roadm(ids.iii).degree_to(ids.f_i_iii).unwrap();
        let d2 = net.roadm(ids.iii).degree_to(ids.f_iii_iv).unwrap();
        net.roadm_mut(ids.iii)
            .connect_express(Wavelength(0), d, d2)
            .unwrap();
        assert_eq!(
            net.free_lambda_mask(ids.f_i_iii),
            net.grid.channel_mask() & !1
        );
        assert_eq!(net.first_free_lambda(&path), Some(Wavelength(1)));
        assert_eq!(
            net.first_free_lambda(&path),
            net.first_free_lambda_reference(&path)
        );
    }

    #[test]
    fn node_sequence_walks_path() {
        let (net, ids) = PhotonicNetwork::testbed(0);
        let seq = net.node_sequence(ids.i, &[ids.f_i_ii, ids.f_ii_iii, ids.f_iii_iv]);
        assert_eq!(seq, vec![ids.i, ids.ii, ids.iii, ids.iv]);
        assert_eq!(net.path_km(&[ids.f_i_ii, ids.f_ii_iii]), 160.0);
    }
}
