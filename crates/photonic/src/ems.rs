//! Element Management System (EMS) emulation.
//!
//! The GRIPhoN controller never touches hardware directly: every action
//! goes through a vendor-supplied EMS (§2.2 — "The GRIPhoN controller
//! communicates with the network elements via the appropriate
//! vendor-supplied EMS"). The paper found that EMS configuration steps
//! plus optical tasks put wavelength setup at 60–70 s, and stresses these
//! times reflect "a lack of current carrier requirements for speed", not
//! physics.
//!
//! This module models the EMS as a *latency oracle*: each
//! [`EmsCommand`] has a mean duration and relative jitter in an
//! [`EmsProfile`]; [`EmsLatencyModel`] samples concrete durations. The
//! controller's workflow engine (in the `griphon` crate) owns sequencing:
//! which commands run sequentially, which in parallel, and what state
//! change is applied when each completes.
//!
//! ## Calibration (Table 2)
//!
//! End-to-end wavelength setup on the testbed decomposes as
//!
//! ```text
//! T(n) = session + 2·(FXC in parallel ≈ fxc)   [client-side switching]
//!        + roadm_configure (all nodes in parallel)
//!        + ot_tune (both ends in parallel)      [dominant fixed cost]
//!        + path_validate
//!        + equalization(n)                      [see crate::power]
//!      = 20.0 + 0.05 + 5.0 + 30.0 + 6.32 + (1.04·n² + 0.07·n)
//!      = 61.37 + 0.07·n + 1.04·n²
//! ```
//!
//! which reproduces the paper's 62.48 / 65.67 / 70.94 s at n = 1/2/3.
//! Teardown is `teardown_session + roadm_deconfigure ∥ ot_release ≈ 10 s`.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimRng};

/// A command the controller can issue to some element's EMS.
///
/// OTN-switch commands are included alongside photonic ones because the
/// controller drives every element class through the same vendor-EMS
/// abstraction; the latency profile differs per command, not per module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmsCommand {
    /// Open a provisioning session: order validation, route/database
    /// bookkeeping inside the EMS, inventory locks.
    SetupSession,
    /// Close-out bookkeeping for a teardown order.
    TeardownSession,
    /// Reconfigure a fiber cross-connect (one port pair).
    FxcSwitch,
    /// Configure one ROADM (add/drop or express) for a wavelength.
    RoadmConfigure,
    /// Remove one ROADM's configuration for a wavelength.
    RoadmDeconfigure,
    /// Tune a transponder's laser to a wavelength and bring it up.
    OtTune,
    /// Turn a transponder's laser off.
    OtRelease,
    /// End-to-end continuity/quality validation of the new path.
    PathValidate,
    /// Create one ODU cross-connect in an OTN switch.
    OtnXconnect,
    /// Remove one ODU cross-connect.
    OtnXconnectRemove,
    /// Order bookkeeping for an OTN-layer (electronic) service — much
    /// lighter than a DWDM provisioning session.
    OtnSession,
}

impl EmsCommand {
    /// The device-operation span name the tracing layer records for this
    /// command (`simcore::span`): EMS bookkeeping keeps an `ems.` prefix,
    /// element commands are named after the hardware they drive.
    pub fn span_name(self) -> &'static str {
        match self {
            EmsCommand::SetupSession => "ems.session",
            EmsCommand::TeardownSession => "ems.teardown_session",
            EmsCommand::FxcSwitch => "fxc.switch",
            EmsCommand::RoadmConfigure => "wss.reconfigure",
            EmsCommand::RoadmDeconfigure => "wss.deconfigure",
            EmsCommand::OtTune => "laser.tune",
            EmsCommand::OtRelease => "laser.release",
            EmsCommand::PathValidate => "ems.path_validate",
            EmsCommand::OtnXconnect => "otn.xconnect",
            EmsCommand::OtnXconnectRemove => "otn.xconnect_remove",
            EmsCommand::OtnSession => "otn.session",
        }
    }
}

/// Mean latency (seconds) and relative jitter for each command class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmsProfile {
    /// Mean seconds for [`EmsCommand::SetupSession`].
    pub setup_session: f64,
    /// Mean seconds for [`EmsCommand::TeardownSession`].
    pub teardown_session: f64,
    /// Mean seconds for [`EmsCommand::FxcSwitch`].
    pub fxc_switch: f64,
    /// Mean seconds for [`EmsCommand::RoadmConfigure`].
    pub roadm_configure: f64,
    /// Mean seconds for [`EmsCommand::RoadmDeconfigure`].
    pub roadm_deconfigure: f64,
    /// Mean seconds for [`EmsCommand::OtTune`].
    pub ot_tune: f64,
    /// Mean seconds for [`EmsCommand::OtRelease`].
    pub ot_release: f64,
    /// Mean seconds for [`EmsCommand::PathValidate`].
    pub path_validate: f64,
    /// Mean seconds for [`EmsCommand::OtnXconnect`] — electronic switching
    /// is orders of magnitude faster than optical turn-up (§1: low-rate
    /// BoD is "achievable today by re-configuring electronic circuit
    /// switches").
    pub otn_xconnect: f64,
    /// Mean seconds for [`EmsCommand::OtnXconnectRemove`].
    pub otn_xconnect_remove: f64,
    /// Mean seconds for [`EmsCommand::OtnSession`].
    pub otn_session: f64,
    /// Relative jitter (std-dev / mean) applied to every command.
    pub jitter_rel_sigma: f64,
}

impl EmsProfile {
    /// The profile calibrated to the paper's testbed (see module docs).
    pub fn calibrated() -> EmsProfile {
        EmsProfile {
            setup_session: 20.0,
            teardown_session: 5.0,
            fxc_switch: 0.05,
            roadm_configure: 5.0,
            roadm_deconfigure: 4.0,
            ot_tune: 30.0,
            ot_release: 1.0,
            path_validate: 6.32,
            otn_xconnect: 0.25,
            otn_xconnect_remove: 0.15,
            otn_session: 1.0,
            jitter_rel_sigma: 0.02,
        }
    }

    /// Calibrated profile with jitter disabled (exact-value tests).
    pub fn calibrated_deterministic() -> EmsProfile {
        EmsProfile {
            jitter_rel_sigma: 0.0,
            ..Self::calibrated()
        }
    }

    /// A hypothetical fast EMS (§4: no fundamental limitation) — every
    /// command 20× faster. Used by the ablation bench.
    pub fn optimized() -> EmsProfile {
        let c = Self::calibrated();
        EmsProfile {
            setup_session: c.setup_session / 20.0,
            teardown_session: c.teardown_session / 20.0,
            fxc_switch: c.fxc_switch,
            roadm_configure: c.roadm_configure / 20.0,
            roadm_deconfigure: c.roadm_deconfigure / 20.0,
            ot_tune: c.ot_tune / 20.0,
            ot_release: c.ot_release / 20.0,
            path_validate: c.path_validate / 20.0,
            otn_xconnect: c.otn_xconnect,
            otn_xconnect_remove: c.otn_xconnect_remove,
            otn_session: c.otn_session,
            jitter_rel_sigma: c.jitter_rel_sigma,
        }
    }

    /// Mean seconds for a command.
    pub fn mean_secs(&self, cmd: EmsCommand) -> f64 {
        match cmd {
            EmsCommand::SetupSession => self.setup_session,
            EmsCommand::TeardownSession => self.teardown_session,
            EmsCommand::FxcSwitch => self.fxc_switch,
            EmsCommand::RoadmConfigure => self.roadm_configure,
            EmsCommand::RoadmDeconfigure => self.roadm_deconfigure,
            EmsCommand::OtTune => self.ot_tune,
            EmsCommand::OtRelease => self.ot_release,
            EmsCommand::PathValidate => self.path_validate,
            EmsCommand::OtnXconnect => self.otn_xconnect,
            EmsCommand::OtnXconnectRemove => self.otn_xconnect_remove,
            EmsCommand::OtnSession => self.otn_session,
        }
    }
}

/// Samples concrete command durations from a profile.
#[derive(Debug, Clone)]
pub struct EmsLatencyModel {
    profile: EmsProfile,
}

impl EmsLatencyModel {
    /// Wrap a profile.
    pub fn new(profile: EmsProfile) -> EmsLatencyModel {
        EmsLatencyModel { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &EmsProfile {
        &self.profile
    }

    /// Sample the duration of one command.
    pub fn latency(&self, cmd: EmsCommand, rng: &mut SimRng) -> SimDuration {
        let mean = self.profile.mean_secs(cmd);
        let secs = if self.profile.jitter_rel_sigma > 0.0 {
            rng.normal_min(mean, mean * self.profile.jitter_rel_sigma, 0.0)
        } else {
            mean
        };
        SimDuration::from_secs_f64(secs)
    }
}

/// Tracks in-flight multi-step EMS workflows for crash recovery.
///
/// Every EMS workflow (connection setup, teardown, restoration,
/// bridge-and-roll, trunk turn-up…) spans many vendor-EMS commands; a
/// controller crash mid-workflow leaves the question of what happens to
/// the half-issued command sequence. The ledger answers it: the
/// controller `begin`s an entry when it schedules a workflow's
/// completion and `complete`s it when the completion event fires, so at
/// any instant the open set *is* the in-flight EMS work. On recovery,
/// deterministic replay re-issues every open workflow from its logged
/// intent (`mark_resumed`); intents lost to a torn log tail were never
/// executed and are rolled back (`mark_rolled_back`).
///
/// Keys are `(entity raw id, workflow label)` with a count, so two
/// concurrent workflows of the same kind on one entity (legal during
/// races) are tracked exactly. Contents are a deterministic function of
/// the event stream — safe to include in controller state digests.
#[derive(Debug, Clone, Default)]
pub struct WorkflowLedger {
    open: std::collections::BTreeMap<(u32, &'static str), u32>,
    begun: u64,
    completed: u64,
    resumed: u64,
    rolled_back: u64,
}

impl WorkflowLedger {
    /// A workflow on `entity` was scheduled against the EMS plane.
    pub fn begin(&mut self, entity: u32, kind: &'static str) {
        *self.open.entry((entity, kind)).or_insert(0) += 1;
        self.begun += 1;
    }

    /// A workflow's completion event fired. Unknown completions (e.g. a
    /// replayed event racing a pruned entry) are ignored rather than
    /// underflowing.
    pub fn complete(&mut self, entity: u32, kind: &'static str) {
        if let Some(n) = self.open.get_mut(&(entity, kind)) {
            *n -= 1;
            if *n == 0 {
                self.open.remove(&(entity, kind));
            }
            self.completed += 1;
        }
    }

    /// Number of workflows currently in flight.
    pub fn open_count(&self) -> u32 {
        self.open.values().sum()
    }

    /// Total workflows ever begun / completed.
    pub fn totals(&self) -> (u64, u64) {
        (self.begun, self.completed)
    }

    /// Recovery re-issued `n` in-flight workflows by replaying their
    /// logged intents.
    pub fn mark_resumed(&mut self, n: u64) {
        self.resumed += n;
    }

    /// Recovery rolled back `n` intents lost to a torn log tail (never
    /// executed, so no EMS state to undo).
    pub fn mark_rolled_back(&mut self, n: u64) {
        self.rolled_back += n;
    }

    /// `(resumed, rolled back)` recovery accounting.
    pub fn recovery_totals(&self) -> (u64, u64) {
        (self.resumed, self.rolled_back)
    }

    /// Canonical multi-line dump for state digests: open workflows in
    /// key order plus lifetime counters.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "workflows begun={} completed={} open={}",
            self.begun,
            self.completed,
            self.open_count()
        );
        for ((entity, kind), n) in &self.open {
            let _ = writeln!(out, "  open {kind} entity={entity} x{n}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workflow_ledger_tracks_open_and_totals() {
        let mut l = WorkflowLedger::default();
        l.begin(1, "conn.setup");
        l.begin(1, "conn.setup");
        l.begin(2, "conn.teardown");
        assert_eq!(l.open_count(), 3);
        l.complete(1, "conn.setup");
        assert_eq!(l.open_count(), 2);
        // Unknown completion is ignored, not an underflow.
        l.complete(9, "conn.setup");
        assert_eq!(l.totals(), (3, 1));
        let dump = l.dump();
        assert!(dump.contains("conn.setup entity=1 x1"), "{dump}");
        assert!(dump.contains("conn.teardown entity=2 x1"), "{dump}");
    }

    #[test]
    fn calibration_sums_to_table2_fixed_part() {
        let p = EmsProfile::calibrated_deterministic();
        // Parallel commands contribute their max; both FXCs and both OT
        // tunes overlap, all ROADM configures overlap.
        let fixed =
            p.setup_session + p.fxc_switch + p.roadm_configure + p.ot_tune + p.path_validate;
        assert!((fixed - 61.37).abs() < 1e-9, "fixed={fixed}");
    }

    #[test]
    fn teardown_sums_to_ten_seconds() {
        let p = EmsProfile::calibrated_deterministic();
        // teardown = session + max(roadm_deconfigure, ot_release) + fxc
        let teardown = p.teardown_session + p.roadm_deconfigure.max(p.ot_release) + p.fxc_switch;
        assert!((teardown - 9.05).abs() < 1e-9, "teardown={teardown}");
        assert!((8.0..=11.0).contains(&teardown), "≈10 s per the paper");
    }

    #[test]
    fn electronic_switching_much_faster_than_optical() {
        let p = EmsProfile::calibrated();
        assert!(p.otn_xconnect * 50.0 < p.ot_tune);
    }

    #[test]
    fn latency_sampling_deterministic_per_seed() {
        let m = EmsLatencyModel::new(EmsProfile::calibrated());
        let mut a = SimRng::new(3);
        let mut b = SimRng::new(3);
        assert_eq!(
            m.latency(EmsCommand::OtTune, &mut a),
            m.latency(EmsCommand::OtTune, &mut b)
        );
    }

    #[test]
    fn deterministic_profile_has_no_jitter() {
        let m = EmsLatencyModel::new(EmsProfile::calibrated_deterministic());
        let mut rng = SimRng::new(1);
        let d = m.latency(EmsCommand::SetupSession, &mut rng);
        assert_eq!(d, SimDuration::from_secs(20));
    }

    #[test]
    fn optimized_profile_is_much_faster() {
        let fast = EmsProfile::optimized();
        let slow = EmsProfile::calibrated();
        assert!(fast.ot_tune < slow.ot_tune / 10.0);
        assert!(fast.setup_session < slow.setup_session / 10.0);
        // FXC was already fast; unchanged.
        assert_eq!(fast.fxc_switch, slow.fxc_switch);
    }

    #[test]
    fn every_command_has_positive_mean() {
        let p = EmsProfile::calibrated();
        for cmd in [
            EmsCommand::SetupSession,
            EmsCommand::TeardownSession,
            EmsCommand::FxcSwitch,
            EmsCommand::RoadmConfigure,
            EmsCommand::RoadmDeconfigure,
            EmsCommand::OtTune,
            EmsCommand::OtRelease,
            EmsCommand::PathValidate,
            EmsCommand::OtnXconnect,
            EmsCommand::OtnXconnectRemove,
            EmsCommand::OtnSession,
        ] {
            assert!(p.mean_secs(cmd) > 0.0, "{cmd:?}");
        }
    }
}
