//! Alarms: how the network tells the controller something broke.
//!
//! A single fiber cut raises a *storm* of alarms: the two adjacent ROADMs
//! report loss of signal (LOS) on every lit wavelength of that degree,
//! and every terminating transponder whose path crossed the cut reports
//! LOS seconds later. The GRIPhoN controller's fault-localization job
//! (implemented in `griphon::fault`) is to reduce the storm to one root
//! cause and restore the impacted connections — this module defines the
//! alarm vocabulary and the detection latency model.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use std::fmt;

use crate::fiber::FiberId;
use crate::grid::Wavelength;
use crate::roadm::{DegreeId, RoadmId};
use crate::transponder::TransponderId;

/// How urgent an alarm is (mirrors carrier practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AlarmSeverity {
    /// Informational / cleared condition.
    Minor,
    /// Service-degrading.
    Major,
    /// Service-affecting outage.
    Critical,
}

/// What was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlarmKind {
    /// A ROADM degree lost light on one wavelength.
    DegreeLos {
        /// Reporting node.
        roadm: RoadmId,
        /// The degree (and hence fiber) the light vanished from.
        degree: DegreeId,
        /// Which channel.
        wavelength: Wavelength,
    },
    /// A terminating transponder lost its receive signal.
    OtLos {
        /// The transponder reporting loss.
        ot: TransponderId,
    },
    /// A transponder hardware fault.
    OtFail {
        /// The failed transponder.
        ot: TransponderId,
    },
    /// Line-side telemetry flagged a whole fiber down (span telemetry).
    FiberDown {
        /// The fiber reported dark.
        fiber: FiberId,
    },
}

/// One alarm record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// When the EMS surfaced it to the controller.
    pub at: SimTime,
    /// What happened.
    pub kind: AlarmKind,
    /// How bad it is.
    pub severity: AlarmSeverity,
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            AlarmSeverity::Minor => "MIN",
            AlarmSeverity::Major => "MAJ",
            AlarmSeverity::Critical => "CRIT",
        };
        match self.kind {
            AlarmKind::DegreeLos {
                roadm,
                degree,
                wavelength,
            } => write!(
                f,
                "[{}] {sev} LOS {wavelength} at {roadm}/{degree}",
                self.at
            ),
            AlarmKind::OtLos { ot } => write!(f, "[{}] {sev} LOS at {ot}", self.at),
            AlarmKind::OtFail { ot } => write!(f, "[{}] {sev} FAIL {ot}", self.at),
            AlarmKind::FiberDown { fiber } => {
                write!(f, "[{}] {sev} DARK {fiber}", self.at)
            }
        }
    }
}

/// Detection latencies: how long after the physical event each class of
/// alarm reaches the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionModel {
    /// Photodiode LOS detection at the adjacent ROADM degrees (fast,
    /// hardware-level — tens of ms).
    pub degree_los: SimDuration,
    /// Terminal OT LOS surfaced through its EMS (slower — EMS polling).
    pub ot_los: SimDuration,
    /// Line telemetry declaring the whole fiber down.
    pub fiber_down: SimDuration,
}

impl Default for DetectionModel {
    fn default() -> Self {
        DetectionModel {
            degree_los: SimDuration::from_millis(50),
            ot_los: SimDuration::from_millis(2_500),
            fiber_down: SimDuration::from_millis(500),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(AlarmSeverity::Critical > AlarmSeverity::Major);
        assert!(AlarmSeverity::Major > AlarmSeverity::Minor);
    }

    #[test]
    fn detection_latencies_ordered_realistically() {
        let d = DetectionModel::default();
        assert!(d.degree_los < d.fiber_down);
        assert!(d.fiber_down < d.ot_los);
    }

    #[test]
    fn display_forms() {
        let a = Alarm {
            at: SimTime::from_secs(1),
            kind: AlarmKind::DegreeLos {
                roadm: RoadmId::new(2),
                degree: DegreeId::new(1),
                wavelength: Wavelength(9),
            },
            severity: AlarmSeverity::Critical,
        };
        assert_eq!(a.to_string(), "[t+1.00s] CRIT LOS λ9 at roadm2/deg1");
        let b = Alarm {
            at: SimTime::ZERO,
            kind: AlarmKind::FiberDown {
                fiber: FiberId::new(3),
            },
            severity: AlarmSeverity::Major,
        };
        assert!(b.to_string().contains("DARK fiber3"));
    }
}
