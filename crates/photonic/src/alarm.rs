//! Alarms: how the network tells the controller something broke.
//!
//! A single fiber cut raises a *storm* of alarms: the two adjacent ROADMs
//! report loss of signal (LOS) on every lit wavelength of that degree,
//! and every terminating transponder whose path crossed the cut reports
//! LOS seconds later. The GRIPhoN controller's fault-localization job
//! (implemented in `griphon::fault`) is to reduce the storm to one root
//! cause and restore the impacted connections — this module defines the
//! alarm vocabulary and the detection latency model.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use std::fmt;

use crate::fiber::FiberId;
use crate::grid::Wavelength;
use crate::roadm::{DegreeId, RoadmId};
use crate::transponder::TransponderId;

/// How urgent an alarm is (mirrors carrier practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AlarmSeverity {
    /// Informational / cleared condition.
    Minor,
    /// Service-degrading.
    Major,
    /// Service-affecting outage.
    Critical,
}

/// What was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlarmKind {
    /// A ROADM degree lost light on one wavelength.
    DegreeLos {
        /// Reporting node.
        roadm: RoadmId,
        /// The degree (and hence fiber) the light vanished from.
        degree: DegreeId,
        /// Which channel.
        wavelength: Wavelength,
    },
    /// A terminating transponder lost its receive signal.
    OtLos {
        /// The transponder reporting loss.
        ot: TransponderId,
    },
    /// A transponder hardware fault.
    OtFail {
        /// The failed transponder.
        ot: TransponderId,
    },
    /// Line-side telemetry flagged a whole fiber down (span telemetry).
    FiberDown {
        /// The fiber reported dark.
        fiber: FiberId,
    },
    /// An ODU layer trunk went into alarm-indication-signal: the OTN
    /// switch at the trunk's terminating line port saw its ODU container
    /// replaced by AIS when the carrying wavelength was lost. Identified
    /// by the raw trunk id — this crate cannot name `otn` types, so the
    /// OTN/controller layers own the interpretation.
    OduAis {
        /// Raw id of the affected OTN trunk.
        trunk: u32,
    },
    /// A client-facing port on an OTN switch or customer hand-off went
    /// down — the last stage of the cascade, observed where the customer
    /// plugs in. Identified by raw ids for the same layering reason as
    /// [`AlarmKind::OduAis`].
    ClientPortDown {
        /// Raw id of the switch (or hand-off site) reporting the drop.
        switch: u32,
        /// Raw id of the client connection/port that lost service.
        port: u32,
    },
}

/// One alarm record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// When the EMS surfaced it to the controller.
    pub at: SimTime,
    /// What happened.
    pub kind: AlarmKind,
    /// How bad it is.
    pub severity: AlarmSeverity,
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            AlarmSeverity::Minor => "MIN",
            AlarmSeverity::Major => "MAJ",
            AlarmSeverity::Critical => "CRIT",
        };
        match self.kind {
            AlarmKind::DegreeLos {
                roadm,
                degree,
                wavelength,
            } => write!(
                f,
                "[{}] {sev} LOS {wavelength} at {roadm}/{degree}",
                self.at
            ),
            AlarmKind::OtLos { ot } => write!(f, "[{}] {sev} LOS at {ot}", self.at),
            AlarmKind::OtFail { ot } => write!(f, "[{}] {sev} FAIL {ot}", self.at),
            AlarmKind::FiberDown { fiber } => {
                write!(f, "[{}] {sev} DARK {fiber}", self.at)
            }
            AlarmKind::OduAis { trunk } => {
                write!(f, "[{}] {sev} AIS trunk{trunk}", self.at)
            }
            AlarmKind::ClientPortDown { switch, port } => {
                write!(f, "[{}] {sev} PORT-DOWN sw{switch}/port{port}", self.at)
            }
        }
    }
}

/// Detection latencies: how long after the physical event each class of
/// alarm reaches the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionModel {
    /// Photodiode LOS detection at the adjacent ROADM degrees (fast,
    /// hardware-level — tens of ms).
    pub degree_los: SimDuration,
    /// Terminal OT LOS surfaced through its EMS (slower — EMS polling).
    pub ot_los: SimDuration,
    /// Line telemetry declaring the whole fiber down.
    pub fiber_down: SimDuration,
    /// ODU AIS raised by the OTN switch once the carrying wavelength is
    /// gone (framer hardware plus switch-EMS surfacing; between span
    /// telemetry and OT-EMS polling).
    pub odu_ais: SimDuration,
    /// Client port down at the hand-off, the tail of the cascade (client
    /// equipment hold-off timers delay it past OT LOS).
    pub client_port: SimDuration,
}

impl Default for DetectionModel {
    fn default() -> Self {
        DetectionModel {
            degree_los: SimDuration::from_millis(50),
            ot_los: SimDuration::from_millis(2_500),
            fiber_down: SimDuration::from_millis(500),
            odu_ais: SimDuration::from_millis(1_000),
            client_port: SimDuration::from_millis(3_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(AlarmSeverity::Critical > AlarmSeverity::Major);
        assert!(AlarmSeverity::Major > AlarmSeverity::Minor);
    }

    #[test]
    fn detection_latencies_ordered_realistically() {
        let d = DetectionModel::default();
        assert!(d.degree_los < d.fiber_down);
        assert!(d.fiber_down < d.ot_los);
        // Cascade ordering: span telemetry → ODU AIS → OT LOS → client
        // port (hold-off timers put the client drop last).
        assert!(d.fiber_down < d.odu_ais);
        assert!(d.odu_ais < d.ot_los);
        assert!(d.ot_los < d.client_port);
    }

    #[test]
    fn display_forms() {
        let a = Alarm {
            at: SimTime::from_secs(1),
            kind: AlarmKind::DegreeLos {
                roadm: RoadmId::new(2),
                degree: DegreeId::new(1),
                wavelength: Wavelength(9),
            },
            severity: AlarmSeverity::Critical,
        };
        assert_eq!(a.to_string(), "[t+1.00s] CRIT LOS λ9 at roadm2/deg1");
        let b = Alarm {
            at: SimTime::ZERO,
            kind: AlarmKind::FiberDown {
                fiber: FiberId::new(3),
            },
            severity: AlarmSeverity::Major,
        };
        assert!(b.to_string().contains("DARK fiber3"));
        let c = Alarm {
            at: SimTime::ZERO,
            kind: AlarmKind::OduAis { trunk: 4 },
            severity: AlarmSeverity::Critical,
        };
        assert!(c.to_string().contains("AIS trunk4"));
        let d = Alarm {
            at: SimTime::ZERO,
            kind: AlarmKind::ClientPortDown { switch: 1, port: 7 },
            severity: AlarmSeverity::Critical,
        };
        assert!(d.to_string().contains("PORT-DOWN sw1/port7"));
    }
}
