//! Deterministic, seed-parameterized continental-plant generator.
//!
//! The paper's testbed is four ROADMs; its premise is a carrier plant.
//! This module grows the gap shut: it builds hierarchical plants in the
//! metro → regional → backbone shape of deployed carrier networks
//! (metro access rings feeding regional aggregation meshes, themselves
//! hanging off a continental express backbone), at any size from the
//! 14-node NSFNET class up to many hundreds of ROADMs and thousands of
//! amplified spans.
//!
//! ## Tiering
//!
//! - **Backbone** — one hub ROADM per region (`bb{r}`), connected in a
//!   ring with long express links (auto-split into 80 km amplified
//!   spans); for six or more regions, cross-continent chords halve the
//!   ring diameter.
//! - **Regional** — each region has `metro_rings_per_region` aggregation
//!   anchors (`r{r}a{k}`) star-homed onto the hub and meshed in a ring
//!   among themselves.
//! - **Metro** — each anchor closes a metro ring of `metro_ring_size`
//!   access ROADMs (`r{r}m{k}n{s}`) through itself.
//!
//! ## The single-gateway invariant
//!
//! By construction, every link is either *internal* to one region's
//! interior (anchors + metro nodes) or touches a backbone hub, and each
//! region's interior reaches the rest of the plant **only** through its
//! own hub. The hub is therefore a cut vertex: a simple path can never
//! enter a foreign region's interior and leave again. This is what makes
//! region-restricted RWA (`griphon`'s `RegionMap`) *exact* rather than
//! heuristic — restricting path search to
//! `{region(src), region(dst), backbone}` provably returns the same
//! routes as a whole-plant search.
//!
//! Everything is a pure function of [`GeneratorConfig`]: the same seed
//! and shape produce a byte-identical plant (property-tested), so scale
//! benchmarks and sharded-equivalence tests can regenerate plants at
//! will instead of shipping fixtures.

use serde::{Deserialize, Serialize};
use simcore::SimRng;

use crate::grid::{ChannelGrid, LineRate};
use crate::roadm::RoadmId;
use crate::topology::PhotonicNetwork;

/// Region id assigned to backbone hubs in [`GeneratedPlant::region_of`]:
/// hubs belong to the transit core, not to any one region's interior.
pub const REGION_BACKBONE: u16 = u16::MAX;

/// Shape and seed of a generated plant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// RNG seed; every span length derives from it deterministically.
    pub seed: u64,
    /// Number of regions (== backbone hubs). At least 1.
    pub regions: usize,
    /// Aggregation anchors per region (each closes one metro ring).
    pub metro_rings_per_region: usize,
    /// Access ROADMs per metro ring.
    pub metro_ring_size: usize,
    /// Channels per degree; clamped to 80–96 (the u128 occupancy masks
    /// allow up to 128, deployed 50 GHz systems top out around 96).
    pub channels: u16,
    /// Tunable transponders installed at every node.
    pub ots_per_node: usize,
    /// Regens installed at every backbone hub and regional anchor
    /// (cross-region paths regenerate at transit points).
    pub regens_per_hub: usize,
    /// Line rate of the installed transponder pools.
    pub ot_rate: LineRate,
}

impl GeneratorConfig {
    /// A mid-density default shape: 4 regions × 4 anchors × 5-node metro
    /// rings ⇒ 100 ROADMs.
    pub fn default_shape(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            seed,
            regions: 4,
            metro_rings_per_region: 4,
            metro_ring_size: 5,
            channels: 96,
            ots_per_node: 4,
            regens_per_hub: 6,
            ot_rate: LineRate::Gbps10,
        }
    }

    /// The shape whose node count lands closest to `target` ROADMs,
    /// found by a deterministic scan over (regions, anchors, ring size).
    /// Exact for the scale sweep's 14 / 100 / 300 / 600 points. Region
    /// count is scanned *descending*: among equally close shapes, prefer
    /// many small regions — region-restricted RWA cost tracks region
    /// size, so this is the shape that keeps per-query cost flattest as
    /// plants grow.
    pub fn with_target_roadms(target: usize, seed: u64) -> GeneratorConfig {
        let mut best = (usize::MAX, 1usize, 1usize, 1usize);
        for regions in (2usize..=12).rev() {
            for anchors in 1..=10 {
                for ring in 1..=12 {
                    let total = regions * (1 + anchors * (1 + ring));
                    let err = total.abs_diff(target);
                    if err < best.0 {
                        best = (err, regions, anchors, ring);
                    }
                }
            }
        }
        GeneratorConfig {
            regions: best.1,
            metro_rings_per_region: best.2,
            metro_ring_size: best.3,
            ..GeneratorConfig::default_shape(seed)
        }
    }

    /// Total ROADM count this shape produces:
    /// `regions × (1 + anchors × (1 + ring_size))`.
    pub fn node_count(&self) -> usize {
        self.regions * (1 + self.metro_rings_per_region * (1 + self.metro_ring_size))
    }

    /// Total fiber-link count this shape produces (used by the generator
    /// proptests to pin span/link counts to the tier parameters).
    pub fn link_count(&self) -> usize {
        let r = self.regions;
        let k = self.metro_rings_per_region;
        let s = self.metro_ring_size;
        let backbone = match r {
            0 | 1 => 0,
            2 => 1,
            _ => r + if r >= 6 { r / 2 } else { 0 },
        };
        let anchor_ring = match k {
            0 | 1 => 0,
            2 => 1,
            _ => k,
        };
        let metro_per_ring = if s == 1 { 1 } else { s + 1 };
        backbone + r * (k + anchor_ring) + r * k * metro_per_ring
    }
}

/// A generated plant plus the region structure the RWA layer exploits.
#[derive(Debug, Clone)]
pub struct GeneratedPlant {
    /// The plant itself.
    pub net: PhotonicNetwork,
    /// Region id per ROADM index ([`REGION_BACKBONE`] for hubs).
    pub region_of: Vec<u16>,
    /// Each region's transit gateway (its backbone hub), indexed by
    /// region id.
    pub gateways: Vec<RoadmId>,
    /// Each region's interior nodes (anchors + metro), indexed by region
    /// id — the workload generators draw endpoints from these.
    pub interior: Vec<Vec<RoadmId>>,
    /// The shape that produced this plant.
    pub config: GeneratorConfig,
}

/// Build a plant from a shape. Pure: same config ⇒ byte-identical plant.
pub fn generate(cfg: &GeneratorConfig) -> GeneratedPlant {
    assert!(cfg.regions >= 1, "need at least one region");
    assert!(
        cfg.metro_rings_per_region >= 1 && cfg.metro_ring_size >= 1,
        "need at least one anchor and one metro node per ring"
    );
    let channels = cfg.channels.clamp(80, 96);
    let grid = ChannelGrid {
        channels,
        ..ChannelGrid::C_BAND_96
    };
    let mut net = PhotonicNetwork::new(grid);
    let mut rng = SimRng::new(cfg.seed);

    // Backbone hubs first so RoadmIds group by tier.
    let hubs: Vec<RoadmId> = (0..cfg.regions)
        .map(|r| net.add_roadm(format!("bb{r}")))
        .collect();
    let mut region_of = vec![REGION_BACKBONE; cfg.regions];
    let mut interior: Vec<Vec<RoadmId>> = vec![Vec::new(); cfg.regions];

    // Backbone ring + chords: long express links, auto-split into spans.
    match cfg.regions {
        0 | 1 => {}
        2 => {
            net.link(hubs[0], hubs[1], rng.range_f64(400.0, 900.0))
                .expect("backbone link");
        }
        r => {
            for i in 0..r {
                net.link(hubs[i], hubs[(i + 1) % r], rng.range_f64(300.0, 700.0))
                    .expect("backbone ring link");
            }
            if r >= 6 {
                for i in 0..r / 2 {
                    net.link(hubs[i], hubs[i + r / 2], rng.range_f64(600.0, 1_100.0))
                        .expect("backbone chord");
                }
            }
        }
    }

    // Regions: anchors star-homed on the hub, ringed among themselves,
    // each closing a metro ring through itself.
    for (r, &hub) in hubs.iter().enumerate() {
        let anchors: Vec<RoadmId> = (0..cfg.metro_rings_per_region)
            .map(|k| {
                let a = net.add_roadm(format!("r{r}a{k}"));
                region_of.push(r as u16);
                interior[r].push(a);
                a
            })
            .collect();
        for &a in &anchors {
            net.link(hub, a, rng.range_f64(100.0, 250.0))
                .expect("hub-anchor link");
        }
        let k = anchors.len();
        for i in 0..k.saturating_sub(1) {
            net.link(anchors[i], anchors[i + 1], rng.range_f64(80.0, 200.0))
                .expect("anchor ring link");
        }
        if k >= 3 {
            net.link(anchors[k - 1], anchors[0], rng.range_f64(80.0, 200.0))
                .expect("anchor ring closure");
        }
        for (k, &anchor) in anchors.iter().enumerate() {
            let metro: Vec<RoadmId> = (0..cfg.metro_ring_size)
                .map(|s| {
                    let m = net.add_roadm(format!("r{r}m{k}n{s}"));
                    region_of.push(r as u16);
                    interior[r].push(m);
                    m
                })
                .collect();
            net.link(anchor, metro[0], rng.range_f64(10.0, 60.0))
                .expect("metro entry link");
            for w in metro.windows(2) {
                net.link(w[0], w[1], rng.range_f64(10.0, 60.0))
                    .expect("metro chain link");
            }
            if metro.len() >= 2 {
                net.link(*metro.last().unwrap(), anchor, rng.range_f64(10.0, 60.0))
                    .expect("metro ring closure");
            }
        }
    }

    // Equipment: OT pools everywhere, regen pools at transit points.
    for id in net.roadm_ids().collect::<Vec<_>>() {
        net.add_transponders(id, cfg.ot_rate, cfg.ots_per_node)
            .expect("transponder pool");
    }
    for &hub in &hubs {
        for _ in 0..cfg.regens_per_hub {
            net.add_regen(hub, cfg.ot_rate).expect("hub regen pool");
        }
    }
    for region in &interior {
        for &a in region.iter().take(cfg.metro_rings_per_region) {
            for _ in 0..cfg.regens_per_hub {
                net.add_regen(a, cfg.ot_rate).expect("anchor regen pool");
            }
        }
    }

    debug_assert_eq!(net.roadm_count(), cfg.node_count());
    debug_assert_eq!(net.fiber_count(), cfg.link_count());
    GeneratedPlant {
        net,
        region_of,
        gateways: hubs,
        interior,
        config: *cfg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formulas() {
        for target in [14usize, 100, 300, 600] {
            let cfg = GeneratorConfig::with_target_roadms(target, 7);
            assert_eq!(cfg.node_count(), target, "no exact shape for {target}");
            let plant = generate(&cfg);
            assert_eq!(plant.net.roadm_count(), target);
            assert_eq!(plant.net.fiber_count(), cfg.link_count());
            assert_eq!(plant.region_of.len(), target);
            assert_eq!(plant.gateways.len(), cfg.regions);
        }
    }

    #[test]
    fn same_seed_same_plant_different_seed_different_spans() {
        let cfg = GeneratorConfig::with_target_roadms(100, 11);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(format!("{:?}", a.net), format!("{:?}", b.net));
        let other = GeneratorConfig { seed: 12, ..cfg };
        let c = generate(&other);
        assert_ne!(format!("{:?}", a.net), format!("{:?}", c.net));
    }

    #[test]
    fn plant_is_connected() {
        let plant = generate(&GeneratorConfig::with_target_roadms(300, 3));
        let from = RoadmId::new(0);
        for to in plant.net.roadm_ids().skip(1) {
            assert!(
                plant.net.shortest_path_hops(from, to).is_some(),
                "{to} unreachable"
            );
        }
    }

    #[test]
    fn interiors_touch_only_their_own_hub() {
        let plant = generate(&GeneratorConfig::with_target_roadms(100, 5));
        for f in plant.net.fiber_ids() {
            let l = plant.net.fiber(f);
            let (ra, rb) = (plant.region_of[l.a.index()], plant.region_of[l.b.index()]);
            assert!(
                ra == rb || ra == REGION_BACKBONE || rb == REGION_BACKBONE,
                "{f} crosses two region interiors"
            );
            if ra != rb {
                // The backbone endpoint must be the interior region's own
                // gateway — the single-gateway invariant.
                let (hub, region) = if ra == REGION_BACKBONE {
                    (l.a, rb)
                } else {
                    (l.b, ra)
                };
                assert_eq!(plant.gateways[region as usize], hub);
            }
        }
    }
}
