//! # cloud — the cloud-service-provider side of the paper
//!
//! GRIPhoN's motivation (§1) is inter-data-center bulk transfer:
//! replication, backup and content distribution between geographically
//! distributed sites, with traffic whose peaks are "dominated by
//! background, non-interactive, bulk data transfers" (Chen et al.'s
//! Yahoo! measurements) at terabyte-to-petabyte scale. No such traces
//! are public here, so this crate *synthesises* workloads with those
//! published characteristics and runs them against the `griphon`
//! controller.
//!
//! ## Modules
//!
//! - [`datacenter`] — CSP sites attached to carrier PoPs.
//! - [`workload`] — deterministic generators: diurnal interactive load
//!   plus Poisson-arrival, Pareto-sized bulk jobs (heavy tail: most jobs
//!   are small, the mass is in multi-terabyte transfers).
//! - [`transfer`] — the bulk-transfer bookkeeping: per-job progress under
//!   a time-varying allocated rate.
//! - [`scheduler`] — the transfer strategies experiment E5 compares:
//!   a statically-sized leased line, GRIPhoN BoD (request wavelengths
//!   when a backlog builds, release when drained), and a
//!   store-and-forward relay baseline in the spirit of NetStitcher.
//!   Policies run event-driven (cost scales with state changes, not
//!   horizon/tick) with the original tick loops kept as oracles.
//! - [`profile`] — piecewise-constant interactive-load profiles, the
//!   breakpoint representation the event engine fast-forwards between.
//! - [`cost`] — the carrier-price model: flat monthly leased-line
//!   pricing vs usage-based BoD, the economics behind Table 1.

#![deny(missing_docs)]

pub mod cost;
pub mod datacenter;
mod event;
pub mod portal;
pub mod profile;
pub mod replication;
pub mod scheduler;
pub mod transfer;
pub mod workload;

pub use cost::CostModel;
pub use datacenter::{DataCenter, DataCenterId, DataCenterSet};
pub use portal::{CspPortal, PortalError};
pub use profile::RateProfile;
pub use replication::ReplicationPolicy;
pub use scheduler::{
    BodPolicy, DeadlineBodPolicy, MeasuredBodPolicy, MeasuredMode, MeasuredRun, MultiPairBod,
    PolicyOutcome, StaticLinePolicy, StoreForwardPolicy,
};
pub use transfer::{Transfer, TransferLog};
pub use workload::{BulkJob, JobId, WorkloadConfig, WorkloadGenerator};
