//! The carrier-pricing model behind the BoD economics.
//!
//! §1: "wide area transport is expensive and costs more than the
//! internal network of a data center" (Greenberg et al.), and 1+1
//! protection is "expensive" while manual restoration is slow — the cost
//! side of Table 1. The paper proposes no concrete tariff, so this
//! module uses the industry-standard *structure* (flat monthly leased
//! lines vs usage-metered BoD with a per-order fee) with configurable
//! coefficients; experiment E5 reports cost *ratios*, which are robust
//! to the absolute numbers.

use serde::{Deserialize, Serialize};

use crate::scheduler::PolicyOutcome;

/// Tariff coefficients (arbitrary currency units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Leased line: per Gbps per month, paid on the provisioned peak
    /// whether used or not.
    pub leased_per_gbps_month: f64,
    /// BoD: per Gbps-hour actually held.
    pub bod_per_gbps_hour: f64,
    /// BoD: per setup order (amortized provisioning/OSS cost).
    pub bod_setup_fee: f64,
    /// Multiplier a 1+1-protected leased line costs over unprotected
    /// (two disjoint paths plus premium).
    pub protection_1p1_multiplier: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Structure-realistic defaults: BoD per-hour pricing carries a
        // premium such that holding capacity ~40% of the time costs about
        // the same as leasing it flat — below that BoD wins.
        CostModel {
            leased_per_gbps_month: 1_000.0,
            bod_per_gbps_hour: 1_000.0 / (730.0 * 0.4),
            bod_setup_fee: 25.0,
            protection_1p1_multiplier: 2.2,
        }
    }
}

impl CostModel {
    /// Monthly-prorated cost of a static leased line sized at
    /// `peak_gbps`, held for `hours`.
    pub fn leased_cost(&self, peak_gbps: f64, hours: f64) -> f64 {
        self.leased_per_gbps_month * peak_gbps * (hours / 730.0)
    }

    /// Cost of a BoD usage pattern.
    pub fn bod_cost(&self, gbps_hours: f64, setups: u64) -> f64 {
        self.bod_per_gbps_hour * gbps_hours + self.bod_setup_fee * setups as f64
    }

    /// Cost attributed to a policy outcome over a run of `hours`:
    /// leased policies (`setups == 0 && gbps_hours > 0` with flat peak)
    /// are billed flat; BoD outcomes by usage; harvested capacity
    /// (`gbps_hours == 0`) is free.
    pub fn outcome_cost(&self, outcome: &PolicyOutcome, hours: f64, is_bod: bool) -> f64 {
        if is_bod {
            self.bod_cost(outcome.gbps_hours, outcome.setups)
        } else if outcome.gbps_hours == 0.0 {
            0.0
        } else {
            self.leased_cost(outcome.peak_gbps, hours)
        }
    }

    /// The utilization (fraction of time capacity is held) below which
    /// BoD is cheaper than leasing the same rate flat, ignoring setup
    /// fees.
    pub fn bod_breakeven_utilization(&self) -> f64 {
        self.leased_per_gbps_month / (730.0 * self.bod_per_gbps_hour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::TransferLog;

    fn outcome(gbps_hours: f64, peak: f64, setups: u64) -> PolicyOutcome {
        PolicyOutcome {
            log: TransferLog::default(),
            gbps_hours,
            peak_gbps: peak,
            setups,
        }
    }

    #[test]
    fn breakeven_matches_construction() {
        let m = CostModel::default();
        assert!((m.bod_breakeven_utilization() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn bod_cheaper_at_low_utilization() {
        let m = CostModel::default();
        let hours = 730.0;
        // Hold 10 G for 10% of the month.
        let bod = m.bod_cost(10.0 * hours * 0.1, 20);
        let leased = m.leased_cost(10.0, hours);
        assert!(bod < leased, "bod={bod} leased={leased}");
    }

    #[test]
    fn leased_cheaper_at_high_utilization() {
        let m = CostModel::default();
        let hours = 730.0;
        let bod = m.bod_cost(10.0 * hours * 0.9, 20);
        let leased = m.leased_cost(10.0, hours);
        assert!(leased < bod);
    }

    #[test]
    fn outcome_attribution() {
        let m = CostModel::default();
        // Harvested (store-and-forward): free.
        assert_eq!(m.outcome_cost(&outcome(0.0, 4.0, 0), 730.0, false), 0.0);
        // Static line: flat on peak.
        let st = m.outcome_cost(&outcome(7300.0, 10.0, 0), 730.0, false);
        assert!((st - 10_000.0).abs() < 1e-9);
        // BoD: usage + fees.
        let bod = m.outcome_cost(&outcome(100.0, 40.0, 4), 730.0, true);
        assert!((bod - (100.0 * m.bod_per_gbps_hour + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn protection_premium_ordering() {
        let m = CostModel::default();
        let base = m.leased_cost(10.0, 730.0);
        let protected = base * m.protection_1p1_multiplier;
        assert!(protected > 2.0 * base, "1+1 costs more than two lines");
    }
}
