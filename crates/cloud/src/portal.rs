//! The CSP's portal: the customer-premises side of every order.
//!
//! Fig. 3: a data center reaches GRIPhoN through a *fixed, dedicated
//! access pipe* terminated on NTE (the 10/40 G muxponder of the
//! testbed). However elastic the core is, a site can never terminate
//! more bandwidth than its pipe — so the portal enforces per-site
//! admission *before* the carrier sees the order, tracks how many NTE
//! client ports each bundle consumes, and keeps the books a CSP's
//! operations team would keep (which bundles exist, to where, how much
//! headroom each site has left).

use std::collections::BTreeMap;

use simcore::DataRate;

use griphon::controller::{Controller, RequestError};
use griphon::{Bundle, CustomerId};

use crate::datacenter::{DataCenterId, DataCenterSet};

/// Why the portal refused an order before the carrier saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortalError {
    /// A site's access pipe cannot terminate the additional rate.
    AccessPipeFull {
        /// The constraining site.
        site: DataCenterId,
        /// Headroom remaining there.
        headroom: DataRate,
    },
    /// The carrier refused the order.
    Carrier(RequestError),
}

impl std::fmt::Display for PortalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortalError::AccessPipeFull { site, headroom } => {
                write!(f, "{site} access pipe full ({headroom} left)")
            }
            PortalError::Carrier(e) => write!(f, "carrier: {e}"),
        }
    }
}

impl std::error::Error for PortalError {}

impl From<RequestError> for PortalError {
    fn from(e: RequestError) -> Self {
        PortalError::Carrier(e)
    }
}

/// One CSP's view of its connectivity estate.
#[derive(Debug)]
pub struct CspPortal {
    /// The carrier account this portal orders under.
    pub customer: CustomerId,
    /// The CSP's sites.
    pub dcs: DataCenterSet,
    committed: BTreeMap<DataCenterId, DataRate>,
    bundles: Vec<(DataCenterId, DataCenterId, Bundle)>,
}

impl CspPortal {
    /// A portal for `customer` over its sites.
    pub fn new(customer: CustomerId, dcs: DataCenterSet) -> CspPortal {
        CspPortal {
            customer,
            dcs,
            committed: BTreeMap::new(),
            bundles: Vec::new(),
        }
    }

    /// Access-pipe headroom at a site.
    pub fn headroom(&self, site: DataCenterId) -> DataRate {
        self.dcs
            .get(site)
            .access
            .saturating_sub(self.committed.get(&site).copied().unwrap_or(DataRate::ZERO))
    }

    /// Order `rate` between two of this CSP's sites; checks both access
    /// pipes, then places the composite order with the carrier.
    pub fn order(
        &mut self,
        ctl: &mut Controller,
        from: DataCenterId,
        to: DataCenterId,
        rate: DataRate,
    ) -> Result<usize, PortalError> {
        for site in [from, to] {
            let headroom = self.headroom(site);
            if rate > headroom {
                return Err(PortalError::AccessPipeFull { site, headroom });
            }
        }
        let bundle = ctl.request_bandwidth(
            self.customer,
            self.dcs.get(from).site,
            self.dcs.get(to).site,
            rate,
        )?;
        // Commit the *delivered* rate (composite bundles can over-deliver
        // when a remainder forced a full wavelength).
        let delivered: DataRate = bundle
            .members
            .iter()
            .filter_map(|m| ctl.connection(*m))
            .map(|c| c.kind.rate())
            .sum();
        for site in [from, to] {
            *self.committed.entry(site).or_insert(DataRate::ZERO) += delivered;
        }
        self.bundles.push((from, to, bundle));
        Ok(self.bundles.len() - 1)
    }

    /// Release a previously placed order.
    ///
    /// # Panics
    /// If the handle is stale (already released or out of range).
    pub fn release(&mut self, ctl: &mut Controller, handle: usize) {
        let (from, to, bundle) = self.bundles.remove(handle);
        let delivered: DataRate = bundle
            .members
            .iter()
            .filter_map(|m| ctl.connection(*m))
            .map(|c| c.kind.rate())
            .sum();
        ctl.release_bundle(&bundle);
        for site in [from, to] {
            let c = self
                .committed
                .get_mut(&site)
                .expect("committed entry exists");
            *c = c.saturating_sub(delivered);
        }
    }

    /// Live orders: `(from, to, bundle)`.
    pub fn orders(&self) -> &[(DataCenterId, DataCenterId, Bundle)] {
        &self.bundles
    }

    /// 10 G NTE client ports a site currently needs (one per 10 G of
    /// committed bandwidth, rounded up — the muxponder arithmetic of
    /// Fig. 4's premises).
    pub fn nte_ports_needed(&self, site: DataCenterId) -> usize {
        let committed = self.committed.get(&site).copied().unwrap_or(DataRate::ZERO);
        (committed.bps() as usize).div_ceil(DataRate::from_gbps(10).bps() as usize)
    }

    /// 4-port muxponders a site needs for its committed bandwidth.
    pub fn muxponders_needed(&self, site: DataCenterId) -> usize {
        self.nte_ports_needed(site).div_ceil(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griphon::controller::ControllerConfig;
    use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork};

    fn setup() -> (Controller, CspPortal, DataCenterId, DataCenterId) {
        let (net, ids) = PhotonicNetwork::testbed(10);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                ems: EmsProfile::calibrated_deterministic(),
                equalization: EqualizationModel::calibrated_deterministic(),
                ..ControllerConfig::default()
            },
        );
        ctl.add_otn_switch(ids.i, DataRate::from_gbps(320));
        ctl.add_otn_switch(ids.iv, DataRate::from_gbps(320));
        ctl.provision_trunk(ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(400));
        let mut dcs = DataCenterSet::new();
        let a = dcs.add("ashburn", ids.i, DataRate::from_gbps(40));
        let b = dcs.add("portland", ids.iv, DataRate::from_gbps(25));
        (ctl, CspPortal::new(csp, dcs), a, b)
    }

    #[test]
    fn order_commits_both_pipes() {
        let (mut ctl, mut portal, a, b) = setup();
        let h = portal
            .order(&mut ctl, a, b, DataRate::from_gbps(12))
            .unwrap();
        assert_eq!(portal.headroom(a), DataRate::from_gbps(28));
        assert_eq!(portal.headroom(b), DataRate::from_gbps(13));
        assert_eq!(portal.orders().len(), 1);
        ctl.run_until_idle();
        portal.release(&mut ctl, h);
        ctl.run_until_idle();
        assert_eq!(portal.headroom(a), DataRate::from_gbps(40));
        assert_eq!(portal.headroom(b), DataRate::from_gbps(25));
        assert!(portal.orders().is_empty());
    }

    #[test]
    fn smaller_pipe_constrains() {
        let (mut ctl, mut portal, a, b) = setup();
        // Portland's 25 G pipe blocks a 30 G order even though Ashburn
        // could take it.
        let err = portal
            .order(&mut ctl, a, b, DataRate::from_gbps(30))
            .unwrap_err();
        assert_eq!(
            err,
            PortalError::AccessPipeFull {
                site: b,
                headroom: DataRate::from_gbps(25)
            }
        );
        // Nothing leaked at the carrier.
        assert_eq!(
            ctl.tenants.get(portal.customer).unwrap().in_use,
            DataRate::ZERO
        );
    }

    #[test]
    fn over_delivery_is_what_gets_committed() {
        let (mut ctl, mut portal, a, b) = setup();
        // 18 G decomposes to 2×10G λ (over-delivers 20 G); the pipes must
        // account for 20 G, not 18 G.
        portal
            .order(&mut ctl, a, b, DataRate::from_gbps(18))
            .unwrap();
        assert_eq!(portal.headroom(b), DataRate::from_gbps(5));
        assert_eq!(portal.nte_ports_needed(b), 2);
        assert_eq!(portal.muxponders_needed(b), 1);
    }

    #[test]
    fn carrier_refusal_propagates_and_commits_nothing() {
        let (mut ctl, mut portal, a, b) = setup();
        // Drain the carrier's OT pool at IV so the order fails there.
        for ot in ctl
            .net
            .idle_ots_at(portal.dcs.get(b).site, LineRate::Gbps10)
        {
            ctl.net.transponder_mut(ot).fail();
        }
        let err = portal
            .order(&mut ctl, a, b, DataRate::from_gbps(20))
            .unwrap_err();
        assert!(matches!(err, PortalError::Carrier(_)));
        assert_eq!(portal.headroom(a), DataRate::from_gbps(40));
        assert!(portal.orders().is_empty());
    }

    #[test]
    fn nte_arithmetic() {
        let (mut ctl, mut portal, a, b) = setup();
        portal
            .order(&mut ctl, a, b, DataRate::from_gbps(12))
            .unwrap();
        // 12 G committed → 2 × 10 G ports (ceil) → 1 muxponder.
        assert_eq!(portal.nte_ports_needed(a), 2);
        assert_eq!(portal.muxponders_needed(a), 1);
        portal
            .order(&mut ctl, a, b, DataRate::from_gbps(12))
            .unwrap();
        // 24 G → 3 ports… still 1 muxponder; a third order crosses.
        assert_eq!(portal.nte_ports_needed(a), 3);
        assert_eq!(portal.muxponders_needed(a), 1);
    }
}
