//! Cloud-service-provider data centers.
//!
//! A [`DataCenter`] is a customer premises site (Fig. 3/4): servers,
//! Ethernet switches, a 1/10 G multiplexer and a 10/40 G muxponder NTE,
//! attached to a carrier PoP (a ROADM node) through a fixed dedicated
//! access pipe. The access pipe's rate caps how much BoD bandwidth the
//! site can actually terminate — a constraint the schedulers respect.

use serde::{Deserialize, Serialize};
use simcore::{define_id, DataRate, DataSize};

use photonic::RoadmId;

define_id!(
    /// Identifier of a data center site.
    DataCenterId,
    "dc"
);

/// One CSP data center.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataCenter {
    /// This site's id.
    pub id: DataCenterId,
    /// Display name.
    pub name: String,
    /// The carrier PoP it homes to.
    pub site: RoadmId,
    /// Access-pipe capacity (the "fat pipe" of Fig. 3).
    pub access: DataRate,
    /// Content stored at the site (grows with replication).
    pub stored: DataSize,
}

/// The CSP's fleet of sites.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DataCenterSet {
    sites: Vec<DataCenter>,
}

impl DataCenterSet {
    /// An empty fleet.
    pub fn new() -> DataCenterSet {
        Self::default()
    }

    /// Add a site homed at `site` with the given access-pipe rate.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        site: RoadmId,
        access: DataRate,
    ) -> DataCenterId {
        let id = DataCenterId::from_index(self.sites.len());
        self.sites.push(DataCenter {
            id,
            name: name.into(),
            site,
            access,
            stored: DataSize::ZERO,
        });
        id
    }

    /// Read a site.
    pub fn get(&self, id: DataCenterId) -> &DataCenter {
        &self.sites[id.index()]
    }

    /// Mutate a site.
    pub fn get_mut(&mut self, id: DataCenterId) -> &mut DataCenter {
        &mut self.sites[id.index()]
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Is the fleet empty?
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// All sites.
    pub fn iter(&self) -> impl Iterator<Item = &DataCenter> {
        self.sites.iter()
    }

    /// All unordered site pairs — replication runs between each.
    pub fn pairs(&self) -> Vec<(DataCenterId, DataCenterId)> {
        let mut out = Vec::new();
        for i in 0..self.sites.len() {
            for j in i + 1..self.sites.len() {
                out.push((DataCenterId::from_index(i), DataCenterId::from_index(j)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_and_pairs() {
        let mut dcs = DataCenterSet::new();
        let a = dcs.add("ashburn", RoadmId::new(0), DataRate::from_gbps(40));
        let b = dcs.add("dallas", RoadmId::new(1), DataRate::from_gbps(40));
        let c = dcs.add("sanjose", RoadmId::new(2), DataRate::from_gbps(40));
        assert_eq!(dcs.len(), 3);
        assert_eq!(dcs.pairs(), vec![(a, b), (a, c), (b, c)]);
        assert_eq!(dcs.get(b).name, "dallas");
        assert!(!dcs.is_empty());
    }

    #[test]
    fn stored_content_grows() {
        let mut dcs = DataCenterSet::new();
        let a = dcs.add("a", RoadmId::new(0), DataRate::from_gbps(10));
        dcs.get_mut(a).stored += DataSize::from_terabytes(5);
        assert_eq!(dcs.get(a).stored, DataSize::from_terabytes(5));
    }
}
