//! Transfer-scheduling policies — the contenders of experiment E5.
//!
//! Three ways a CSP can move the same bulk workload between two sites:
//!
//! - [`StaticLinePolicy`] — today's common answer: lease a fixed line
//!   sized in advance. Bulk uses whatever the diurnal interactive load
//!   leaves over. Simple, but pay for the peak around the clock.
//! - [`StoreForwardPolicy`] — the NetStitcher-inspired baseline: no new
//!   capacity at all; harvest the *leftover* bandwidth of existing
//!   static lines, including multi-hop store-and-forward detours through
//!   relay data centers. Free, but completion is hostage to what
//!   happens to be idle.
//! - [`BodPolicy`] — GRIPhoN: when a backlog builds, order wavelengths
//!   (and OTN remainder circuits) from the carrier, sized to drain the
//!   backlog in a target time; release them when the queue empties. Pays
//!   usage-based prices and eats the 60–70 s setup latency, which this
//!   simulation faithfully inflicts via the `griphon` controller.
//!
//! All policies process a pair's jobs FIFO (bulk replication is
//! throughput work, not latency work). Decisions happen on a fixed tick
//! grid, but the default `run` methods are *event-driven*: they compute
//! the next instant at which a decision could change — job arrival,
//! transfer completion, interactive-traffic breakpoint, idle-release
//! expiry, controller event — and fast-forward through the provably
//! inert ticks in between with exact quantized arithmetic (see
//! [`crate::event`]). Every policy keeps its original fixed-tick loop as
//! `run_tick_reference`, the oracle the event engine must match
//! byte-for-byte when decisions are restricted to tick boundaries.

use simcore::{DataRate, DataSize, SimDuration, SimTime};

use griphon::controller::Controller;
use griphon::{
    ConnState, ConnectionId, CustomerId, MeasureOutcome, ProbeConfig, ProbePath, Prober,
};
use photonic::{LineRate, RoadmId};

use crate::event::{grid_ceil, FifoQueue};
use crate::profile::RateProfile;
use crate::transfer::{Transfer, TransferLog};
use crate::workload::BulkJob;

/// What a policy run produced — completion stats plus the inputs the
/// cost model needs.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyOutcome {
    /// Per-job outcomes.
    pub log: TransferLog,
    /// ∫ provisioned bandwidth dt, in gigabit-hours/hour units
    /// (Gbps·hours) — what usage-based billing charges.
    pub gbps_hours: f64,
    /// Largest bandwidth held at any instant (Gbps) — what leased-line
    /// billing must be sized to.
    pub peak_gbps: f64,
    /// Wavelength/circuit setups performed (BoD churn).
    pub setups: u64,
}

/// Shared simulation mechanics: FIFO transfer list advanced tick by tick.
struct PairRun {
    pending: Vec<BulkJob>,
    transfers: Vec<Transfer>,
    next_arrival: usize,
}

impl PairRun {
    fn new(mut jobs: Vec<BulkJob>) -> PairRun {
        jobs.sort_by_key(|j| (j.created, j.id));
        PairRun {
            pending: jobs,
            transfers: Vec::new(),
            next_arrival: 0,
        }
    }

    /// Admit jobs created up to `now`.
    fn admit(&mut self, now: SimTime) {
        while self.next_arrival < self.pending.len()
            && self.pending[self.next_arrival].created <= now
        {
            self.transfers
                .push(Transfer::new(self.pending[self.next_arrival].clone()));
            self.next_arrival += 1;
        }
    }

    /// Bytes queued but unfinished.
    fn backlog(&self) -> DataSize {
        self.transfers
            .iter()
            .filter(|t| !t.is_done())
            .map(|t| t.remaining)
            .sum()
    }

    /// Give the full `rate` to the FIFO head for `dt` (splitting across
    /// the boundary when the head finishes mid-tick).
    fn advance(&mut self, now: SimTime, dt: SimDuration, rate: DataRate) {
        let mut t = now;
        let end = now + dt;
        while t < end {
            let Some(head) = self.transfers.iter_mut().find(|tr| !tr.is_done()) else {
                return;
            };
            let window = end.since(t);
            let before_remaining = head.remaining;
            head.advance(t, window, rate);
            match head.completed {
                Some(done_at) if done_at < end => {
                    t = done_at; // hand the remainder of the tick to the next job
                }
                _ => return,
            }
            debug_assert!(before_remaining >= head.remaining);
        }
    }

    fn all_done(&self) -> bool {
        self.next_arrival == self.pending.len() && self.transfers.iter().all(Transfer::is_done)
    }
}

/// Bandwidth in service (`Active`) and bandwidth committed
/// (`Active` or `Provisioning`) across a member list, in one pass.
fn member_rates(ctl: &Controller, members: &[ConnectionId]) -> (DataRate, DataRate) {
    let mut active = DataRate::ZERO;
    let mut committed = DataRate::ZERO;
    for id in members {
        if let Some(c) = ctl.connection(*id) {
            match c.state {
                ConnState::Active => {
                    active += c.kind.rate();
                    committed += c.kind.rate();
                }
                ConnState::Provisioning => committed += c.kind.rate(),
                _ => {}
            }
        }
    }
    (active, committed)
}

/// The rate [`BodPolicy`] wants: drain the backlog within the target,
/// capped by the access pipe.
fn backlog_desired(backlog: DataSize, drain_target: SimDuration, max_rate: DataRate) -> DataRate {
    let desired_bps =
        (backlog.bits() as f64 / drain_target.as_secs_f64()).min(max_rate.bps() as f64) as u64;
    DataRate::from_bps(desired_bps)
}

/// The rate [`DeadlineBodPolicy`] needs at `now` to keep every deadline
/// in `transfers` feasible (shared by the tick and event engines so both
/// evaluate the identical float expression).
fn required_rate_for<'a>(
    transfers: impl Iterator<Item = &'a Transfer>,
    now: SimTime,
    provisioning_margin: SimDuration,
    background_drain: SimDuration,
    max_rate: DataRate,
) -> DataRate {
    let mut needed_bps = 0.0f64;
    let mut background_bits = 0u64;
    for t in transfers {
        match t.job.deadline {
            Some(d) => {
                let slack = d
                    .saturating_since(now)
                    .saturating_sub(provisioning_margin)
                    .as_secs_f64()
                    .max(60.0);
                // Aggregate: deadlines share the pipe FIFO, so sum the
                // per-job requirements (conservative).
                needed_bps += t.remaining.bits() as f64 / slack;
            }
            None => background_bits += t.remaining.bits(),
        }
    }
    needed_bps += background_bits as f64 / background_drain.as_secs_f64();
    DataRate::from_bps((needed_bps as u64).min(max_rate.bps()))
}

/// A statically provisioned leased line.
#[derive(Debug, Clone, Copy)]
pub struct StaticLinePolicy {
    /// The leased rate.
    pub line: DataRate,
}

impl StaticLinePolicy {
    /// Run the pair's jobs event-driven; `interactive` has priority on
    /// the line. Byte-identical to [`Self::run_tick_reference`] with
    /// `interactive = |t| profile.rate_at(t)`.
    pub fn run(
        &self,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
        interactive: &RateProfile,
    ) -> PolicyOutcome {
        let mut q = FifoQueue::new(jobs);
        let end = SimTime::ZERO + horizon;
        let mut t = SimTime::ZERO;
        while t < end {
            q.admit(t);
            if !q.has_work() {
                // Idle: nothing changes until the next arrival's tick.
                match q.next_arrival_time() {
                    None => break,
                    Some(c) => {
                        t = grid_ceil(SimTime::ZERO, c, tick);
                        continue;
                    }
                }
            }
            let rate = self.line.saturating_sub(interactive.rate_at(t));
            let mut seg_end = end;
            if let Some(b) = interactive.next_change_after(t) {
                seg_end = seg_end.min(grid_ceil(SimTime::ZERO, b, tick));
            }
            if let Some(c) = q.next_arrival_time() {
                seg_end = seg_end.min(grid_ceil(SimTime::ZERO, c, tick));
            }
            let n = seg_end.since(t).div_ceil(tick);
            if q.advance_ticks(t, n, tick, rate).is_some() && q.next_arrival_time().is_none() {
                break;
            }
            t += tick * n;
        }
        let hours = horizon.as_secs_f64() / 3600.0;
        PolicyOutcome {
            log: TransferLog::summarize(&q.transfers),
            gbps_hours: self.line.gbps_f64() * hours,
            peak_gbps: self.line.gbps_f64(),
            setups: 0,
        }
    }

    /// The original fixed-tick loop, kept as the oracle for the event
    /// engine.
    pub fn run_tick_reference(
        &self,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
        interactive: &dyn Fn(SimTime) -> DataRate,
    ) -> PolicyOutcome {
        let mut run = PairRun::new(jobs);
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        while t < end {
            run.admit(t);
            let leftover = self.line.saturating_sub(interactive(t));
            run.advance(t, tick, leftover);
            t += tick;
            if run.all_done() {
                break;
            }
        }
        let hours = horizon.as_secs_f64() / 3600.0;
        PolicyOutcome {
            log: TransferLog::summarize(&run.transfers),
            gbps_hours: self.line.gbps_f64() * hours,
            peak_gbps: self.line.gbps_f64(),
            setups: 0,
        }
    }
}

/// Store-and-forward over leftover capacity (NetStitcher-like).
#[derive(Debug, Clone, Copy)]
pub struct StoreForwardPolicy {
    /// The static line rate each existing edge has.
    pub line: DataRate,
    /// Relay sites offering two-hop detours.
    pub relays: usize,
    /// Phase offset (hours) between relay time zones — NetStitcher's key
    /// insight is that leftovers in different zones peak at different
    /// local times.
    pub relay_phase_hours: f64,
}

impl StoreForwardPolicy {
    /// Usable rate at `t`: direct leftover plus each relay's two-hop
    /// minimum of leftovers (phase-shifted diurnal).
    pub fn usable_rate(&self, t: SimTime, interactive: &dyn Fn(SimTime) -> DataRate) -> DataRate {
        let mut total = self.line.saturating_sub(interactive(t));
        for r in 0..self.relays {
            let shift =
                SimDuration::from_secs_f64((r as f64 + 1.0) * self.relay_phase_hours * 3600.0);
            let t_shifted = t + shift;
            let leg1 = self.line.saturating_sub(interactive(t_shifted));
            let leg2 = self.line.saturating_sub(interactive(t));
            total += DataRate::from_bps(leg1.bps().min(leg2.bps()));
        }
        total
    }

    /// The first instant after `t` at which [`Self::usable_rate`] can
    /// change: a breakpoint of the profile, either directly or through
    /// one of the relay phase shifts.
    fn next_usable_change(&self, t: SimTime, interactive: &RateProfile) -> Option<SimTime> {
        let mut next = interactive.next_change_after(t);
        for r in 0..self.relays {
            let shift =
                SimDuration::from_secs_f64((r as f64 + 1.0) * self.relay_phase_hours * 3600.0);
            if let Some(b) = interactive.next_change_after(t + shift) {
                // Breakpoint seen through the relay's shifted clock.
                let eff = SimTime::from_nanos(b.as_nanos() - shift.as_nanos());
                next = Some(next.map_or(eff, |n| n.min(eff)));
            }
        }
        next
    }

    /// Run the pair's jobs over harvested capacity only, event-driven.
    /// Byte-identical to [`Self::run_tick_reference`] with
    /// `interactive = |t| profile.rate_at(t)`.
    pub fn run(
        &self,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
        interactive: &RateProfile,
    ) -> PolicyOutcome {
        let mut q = FifoQueue::new(jobs);
        let end = SimTime::ZERO + horizon;
        let mut t = SimTime::ZERO;
        let mut peak: f64 = 0.0;
        let sample = |x: SimTime| interactive.rate_at(x);
        while t < end {
            q.admit(t);
            let rate = self.usable_rate(t, &sample);
            // The tick engine tracks peak every tick, including idle
            // stretches between arrivals, so walk every segment.
            peak = peak.max(rate.gbps_f64());
            let mut seg_end = end;
            if let Some(b) = self.next_usable_change(t, interactive) {
                seg_end = seg_end.min(grid_ceil(SimTime::ZERO, b, tick));
            }
            if let Some(c) = q.next_arrival_time() {
                seg_end = seg_end.min(grid_ceil(SimTime::ZERO, c, tick));
            }
            let n = seg_end.since(t).div_ceil(tick);
            q.advance_ticks(t, n, tick, rate);
            if !q.has_work() && q.next_arrival_time().is_none() {
                break;
            }
            t += tick * n;
        }
        PolicyOutcome {
            log: TransferLog::summarize(&q.transfers),
            // Harvested capacity is already paid for — zero marginal
            // provisioned bandwidth.
            gbps_hours: 0.0,
            peak_gbps: peak,
            setups: 0,
        }
    }

    /// The original fixed-tick loop, kept as the oracle for the event
    /// engine.
    pub fn run_tick_reference(
        &self,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
        interactive: &dyn Fn(SimTime) -> DataRate,
    ) -> PolicyOutcome {
        let mut run = PairRun::new(jobs);
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        let mut peak: f64 = 0.0;
        while t < end {
            run.admit(t);
            let rate = self.usable_rate(t, interactive);
            peak = peak.max(rate.gbps_f64());
            run.advance(t, tick, rate);
            t += tick;
            if run.all_done() {
                break;
            }
        }
        PolicyOutcome {
            log: TransferLog::summarize(&run.transfers),
            gbps_hours: 0.0,
            peak_gbps: peak,
            setups: 0,
        }
    }
}

/// GRIPhoN bandwidth-on-demand.
#[derive(Debug, Clone, Copy)]
pub struct BodPolicy {
    /// Ceiling on ordered bandwidth (the access pipe).
    pub max_rate: DataRate,
    /// Size orders to drain the current backlog within this target.
    pub drain_target: SimDuration,
    /// Tear capacity down only after the queue has been empty this long
    /// (hysteresis against thrashing).
    pub idle_release: SimDuration,
}

impl Default for BodPolicy {
    fn default() -> Self {
        BodPolicy {
            max_rate: DataRate::from_gbps(40),
            drain_target: SimDuration::from_hours(1),
            idle_release: SimDuration::from_mins(10),
        }
    }
}

/// How a BoD variant sizes its wavelength orders.
#[derive(Clone, Copy)]
enum Sizing {
    /// Drain the current backlog within a fixed target.
    Backlog { drain_target: SimDuration },
    /// Keep every queued deadline feasible.
    Deadline {
        provisioning_margin: SimDuration,
        background_drain: SimDuration,
    },
}

/// Parameters shared by all BoD variants.
#[derive(Clone, Copy)]
struct BodParams {
    max_rate: DataRate,
    idle_release: SimDuration,
    sizing: Sizing,
}

/// Per-pair state of the event-driven BoD engine.
struct PairSim {
    from: RoadmId,
    to: RoadmId,
    q: FifoQueue,
    members: Vec<ConnectionId>,
    idle_since: Option<SimTime>,
    gbit_seconds: f64,
    peak: f64,
    setups: u64,
    /// The last decision tick attempted an order and the carrier refused.
    /// Refusals have no side effects and persist until controller state
    /// changes, so a blocked pair is inert for the whole segment.
    blocked: bool,
    /// First tick at which `all_done && members.is_empty()` held.
    done_at: Option<SimTime>,
}

/// Upper-bound the number of leading ticks of a segment through which a
/// deadline-sized pair surely stays below `committed` (and therefore
/// places no order). `required_rate_for` is weakly increasing in time
/// for a fixed queue (slacks only shrink), and the queue only drains
/// within a segment, so evaluating the *current* queue at a future tick
/// bounds every intermediate decision from above. Binary search the
/// largest safe prefix.
fn deadline_inert_ticks(
    q: &FifoQueue,
    rel_start: SimTime,
    tick: SimDuration,
    n: u64,
    committed: DataRate,
    params: &BodParams,
) -> u64 {
    let Sizing::Deadline {
        provisioning_margin,
        background_drain,
    } = params.sizing
    else {
        unreachable!("deadline_inert_ticks is only used with deadline sizing");
    };
    let max_rate = params.max_rate;
    let inert_through = |w: u64| -> bool {
        // Decisions inside the segment happen at rel_start + i·tick for
        // i < w; the latest (tightest slack) is at (w-1)·tick.
        let last = rel_start + tick * (w - 1);
        required_rate_for(
            q.unfinished(),
            last,
            provisioning_margin,
            background_drain,
            max_rate,
        ) <= committed
    };
    if n == 0 || !inert_through(1) {
        return 0;
    }
    if inert_through(n) {
        return n;
    }
    let (mut lo, mut hi) = (1u64, n);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if inert_through(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The event-driven engine shared by [`BodPolicy`], [`MultiPairBod`] and
/// [`DeadlineBodPolicy`].
///
/// Decision ticks replicate the tick engine's per-tick sequence exactly
/// (controller catch-up, admission, single-pass member rates, advance,
/// accounting, order/release decision, in pair order). Between decision
/// ticks the engine proves the policy inert — no arrival, no controller
/// event, no possible release, and for deadline sizing no crossing of
/// the committed rate — and replays the whole stretch with
/// [`FifoQueue::advance_ticks`]. All arithmetic quantizes per tick just
/// like the oracle, so outcomes are byte-identical.
fn run_event_bod(
    ctl: &mut Controller,
    customer: CustomerId,
    params: BodParams,
    pairs: Vec<(RoadmId, RoadmId, Vec<BulkJob>)>,
    horizon: SimDuration,
    tick: SimDuration,
) -> Vec<PolicyOutcome> {
    let start = ctl.now();
    let end = start + horizon;
    let tick_secs = tick.as_secs_f64();
    let ten_g = DataRate::from_gbps(10);
    let rel = |abs: SimTime| SimTime::from_nanos(abs.since(start).as_nanos());
    let mut states: Vec<PairSim> = pairs
        .into_iter()
        .map(|(from, to, jobs)| PairSim {
            from,
            to,
            q: FifoQueue::new(jobs),
            members: Vec::new(),
            idle_since: None,
            gbit_seconds: 0.0,
            peak: 0.0,
            setups: 0,
            blocked: false,
            done_at: None,
        })
        .collect();
    let mut t = start;
    let mut last_tick: Option<SimTime> = None;
    let mut finished = false;
    while t < end {
        // ── decision tick: the oracle's per-tick sequence, verbatim ──
        ctl.run_until(t);
        last_tick = Some(t);
        let rel_now = rel(t);
        let mut ordered = false;
        for st in states.iter_mut() {
            st.q.admit(rel_now);
            let (active, committed) = member_rates(ctl, &st.members);
            st.q.advance_window(rel_now, tick, active);
            st.gbit_seconds += active.gbps_f64() * tick_secs;
            st.peak = st.peak.max(active.gbps_f64());
            st.blocked = false;
            let backlog = st.q.backlog();
            if backlog.is_zero() {
                if !st.members.is_empty() {
                    match st.idle_since {
                        None => st.idle_since = Some(t),
                        Some(since) if t.since(since) >= params.idle_release => {
                            if ctl.spans.is_enabled() {
                                let sp = ctl.spans.record(t, t, "policy", "policy.release", None);
                                ctl.spans.attr_u64(sp, "released", st.members.len() as u64);
                                ctl.spans.attr_u64(sp, "idle_ns", t.since(since).as_nanos());
                            }
                            for id in st.members.drain(..) {
                                let _ = ctl.request_teardown(id);
                            }
                            st.idle_since = None;
                        }
                        _ => {}
                    }
                }
            } else {
                st.idle_since = None;
                let wants = match params.sizing {
                    Sizing::Backlog { drain_target } => {
                        backlog_desired(backlog, drain_target, params.max_rate) > committed
                    }
                    Sizing::Deadline {
                        provisioning_margin,
                        background_drain,
                    } => {
                        required_rate_for(
                            st.q.unfinished(),
                            rel_now,
                            provisioning_margin,
                            background_drain,
                            params.max_rate,
                        ) > committed
                    }
                };
                if wants && committed + ten_g <= params.max_rate {
                    match ctl.request_wavelength(customer, st.from, st.to, LineRate::Gbps10) {
                        Ok(id) => {
                            if ctl.spans.is_enabled() {
                                let sp = ctl.spans.record(t, t, "policy", "policy.order", None);
                                ctl.spans.attr_u64(sp, "conn", u64::from(id.raw()));
                                ctl.spans.attr_u64(
                                    sp,
                                    "committed_gbps",
                                    committed.gbps_f64() as u64,
                                );
                            }
                            st.members.push(id);
                            st.setups += 1;
                            ordered = true;
                        }
                        Err(_) => st.blocked = true,
                    }
                }
            }
            if st.done_at.is_none() && st.q.all_done() && st.members.is_empty() {
                st.done_at = Some(t);
            }
        }
        if ctl.noc.is_enabled() {
            // Scrapes cannot see inside this loop's pair state, so the
            // policy pushes its backlog gauges at every decision tick.
            for (i, st) in states.iter().enumerate() {
                ctl.noc.observe_cloud_backlog(
                    i,
                    st.q.backlog().terabytes_f64(),
                    st.members.len() as u64,
                );
            }
        }
        t += tick;
        if states.iter().all(|st| st.done_at.is_some()) {
            finished = true;
            break;
        }
        if t >= end {
            break;
        }
        if ordered {
            // Committed bandwidth changed this tick; the next tick must
            // re-decide with it in force.
            continue;
        }

        // ── plan the longest provably-inert stretch [t, seg_end) ──
        let mut seg_end = end;
        if let Some(ev) = ctl.peek_event_time() {
            seg_end = seg_end.min(grid_ceil(start, ev, tick));
        }
        for st in &states {
            if let Some(c) = st.q.next_arrival_time() {
                let abs = start + SimDuration::from_nanos(c.as_nanos());
                seg_end = seg_end.min(grid_ceil(start, abs, tick));
            }
            if !st.members.is_empty() {
                let release_floor = match st.idle_since {
                    // Release fires at the first tick a full idle_release
                    // after the queue went idle…
                    Some(since) => since + params.idle_release,
                    // …and with a backlog still draining it cannot fire
                    // before a full idle_release from now.
                    None => t + params.idle_release,
                };
                seg_end = seg_end.min(grid_ceil(start, release_floor, tick));
            }
        }
        let mut n = seg_end.since(t).div_ceil(tick);
        if matches!(params.sizing, Sizing::Deadline { .. }) {
            for st in &states {
                if n == 0 {
                    break;
                }
                if !st.q.has_work() || st.blocked {
                    continue;
                }
                let (_, committed) = member_rates(ctl, &st.members);
                if committed + ten_g > params.max_rate {
                    continue; // at the cap: no order possible anyway
                }
                n = n.min(deadline_inert_ticks(
                    &st.q,
                    rel(t),
                    tick,
                    n,
                    committed,
                    &params,
                ));
            }
        }
        if n == 0 {
            continue; // nothing provably inert: fall back to ticking
        }

        // ── replay the inert stretch in bulk ──
        let seg_rel = rel(t);
        for st in states.iter_mut() {
            let (active, _) = member_rates(ctl, &st.members);
            let g = active.gbps_f64();
            if st.q.has_work() {
                if let Some(j) = st.q.advance_ticks(seg_rel, n, tick, active) {
                    let drain_tick = t + tick * j;
                    if !st.members.is_empty() {
                        if st.idle_since.is_none() {
                            st.idle_since = Some(drain_tick);
                        }
                    } else if st.done_at.is_none() && st.q.all_done() {
                        st.done_at = Some(drain_tick);
                    }
                }
            }
            if g != 0.0 {
                // Repeat the oracle's float accumulation value-for-value
                // (same addend, same count, same order).
                let add = g * tick_secs;
                for _ in 0..n {
                    st.gbit_seconds += add;
                }
            }
            st.peak = st.peak.max(g);
        }
        last_tick = Some(t + tick * (n - 1));
        if states.iter().all(|st| st.done_at.is_some()) {
            finished = true;
            break;
        }
        t += tick * n;
    }
    // ── wind down exactly where the oracle's loop stopped ──
    if finished {
        // The oracle exits at the tick where the last pair finished; no
        // controller events can be pending at or before it (any such
        // event would have bounded the segment).
        let done = states.iter().filter_map(|st| st.done_at).max();
        if let Some(j) = done {
            ctl.run_until(j);
        }
    } else if let Some(lt) = last_tick {
        ctl.run_until(lt);
    }
    for st in &mut states {
        for id in st.members.drain(..) {
            let _ = ctl.request_teardown(id);
        }
    }
    ctl.run_until_idle();
    states
        .into_iter()
        .map(|st| PolicyOutcome {
            log: TransferLog::summarize(&st.q.transfers),
            gbps_hours: st.gbit_seconds / 3600.0,
            peak_gbps: st.peak,
            setups: st.setups,
        })
        .collect()
}

impl BodPolicy {
    /// Run the pair's jobs against a live controller. `from`/`to` are
    /// the carrier PoPs of the two data centers.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        ctl: &mut Controller,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
    ) -> PolicyOutcome {
        run_event_bod(
            ctl,
            customer,
            BodParams {
                max_rate: self.max_rate,
                idle_release: self.idle_release,
                sizing: Sizing::Backlog {
                    drain_target: self.drain_target,
                },
            },
            vec![(from, to, jobs)],
            horizon,
            tick,
        )
        .pop()
        .expect("one pair in, one outcome out")
    }

    /// The original fixed-tick loop, kept as the oracle for the event
    /// engine.
    #[allow(clippy::too_many_arguments)]
    pub fn run_tick_reference(
        &self,
        ctl: &mut Controller,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
    ) -> PolicyOutcome {
        let mut run = PairRun::new(jobs);
        let start = ctl.now();
        let end = start + horizon;
        let mut members: Vec<ConnectionId> = Vec::new();
        let mut idle_since: Option<SimTime> = None;
        let mut gbit_seconds = 0.0;
        let mut peak: f64 = 0.0;
        let mut setups = 0u64;
        let mut t = start;
        while t < end {
            ctl.run_until(t);
            // Job times are relative to the policy start.
            let rel_now = SimTime::from_nanos(t.since(start).as_nanos());
            run.admit(rel_now);
            let (active_rate, committed) = member_rates(ctl, &members);
            run.advance(rel_now, tick, active_rate);
            gbit_seconds += active_rate.gbps_f64() * tick.as_secs_f64();
            peak = peak.max(active_rate.gbps_f64());
            // Decide.
            let backlog = run.backlog();
            if backlog.is_zero() {
                if !members.is_empty() {
                    match idle_since {
                        None => idle_since = Some(t),
                        Some(since) if t.since(since) >= self.idle_release => {
                            for id in members.drain(..) {
                                let _ = ctl.request_teardown(id);
                            }
                            idle_since = None;
                        }
                        _ => {}
                    }
                }
            } else {
                idle_since = None;
                if backlog_desired(backlog, self.drain_target, self.max_rate) > committed
                    && committed + DataRate::from_gbps(10) <= self.max_rate
                {
                    // Grow one wavelength per tick (measured pace, avoids
                    // ordering a burst the backlog won't need).
                    if let Ok(id) = ctl.request_wavelength(customer, from, to, LineRate::Gbps10) {
                        members.push(id);
                        setups += 1;
                    }
                }
            }
            t += tick;
            if run.all_done() && members.is_empty() {
                break;
            }
        }
        // Clean up anything still provisioned.
        for id in members {
            let _ = ctl.request_teardown(id);
        }
        ctl.run_until_idle();
        PolicyOutcome {
            log: TransferLog::summarize(&run.transfers),
            gbps_hours: gbit_seconds / 3600.0,
            peak_gbps: peak,
            setups,
        }
    }
}

/// GRIPhoN BoD across *several site pairs sharing one carrier*: the
/// full-mesh replication pattern the Forrester survey describes (§1,
/// "a majority of CSPs perform bulk data transfer among three or more
/// data centers"). All pairs contend for the same transponder pools,
/// wavelengths and tenant quota inside one controller — which is the
/// point: the carrier's shared-pool economics only show up under
/// concurrent demand.
#[derive(Debug, Clone, Copy)]
pub struct MultiPairBod {
    /// The per-pair policy parameters.
    pub policy: BodPolicy,
}

impl MultiPairBod {
    /// Run each pair's jobs concurrently against one controller.
    /// Returns one outcome per pair, in input order.
    pub fn run(
        &self,
        ctl: &mut Controller,
        customer: CustomerId,
        pairs: Vec<(RoadmId, RoadmId, Vec<BulkJob>)>,
        horizon: SimDuration,
        tick: SimDuration,
    ) -> Vec<PolicyOutcome> {
        run_event_bod(
            ctl,
            customer,
            BodParams {
                max_rate: self.policy.max_rate,
                idle_release: self.policy.idle_release,
                sizing: Sizing::Backlog {
                    drain_target: self.policy.drain_target,
                },
            },
            pairs,
            horizon,
            tick,
        )
    }

    /// The original fixed-tick loop, kept as the oracle for the event
    /// engine.
    pub fn run_tick_reference(
        &self,
        ctl: &mut Controller,
        customer: CustomerId,
        pairs: Vec<(RoadmId, RoadmId, Vec<BulkJob>)>,
        horizon: SimDuration,
        tick: SimDuration,
    ) -> Vec<PolicyOutcome> {
        struct PairState {
            from: RoadmId,
            to: RoadmId,
            run: PairRun,
            members: Vec<ConnectionId>,
            idle_since: Option<SimTime>,
            gbit_seconds: f64,
            peak: f64,
            setups: u64,
        }
        let start = ctl.now();
        let end = start + horizon;
        let mut states: Vec<PairState> = pairs
            .into_iter()
            .map(|(from, to, jobs)| PairState {
                from,
                to,
                run: PairRun::new(jobs),
                members: Vec::new(),
                idle_since: None,
                gbit_seconds: 0.0,
                peak: 0.0,
                setups: 0,
            })
            .collect();
        let mut t = start;
        while t < end {
            ctl.run_until(t);
            let rel_now = SimTime::from_nanos(t.since(start).as_nanos());
            for st in &mut states {
                st.run.admit(rel_now);
                let (active_rate, committed) = member_rates(ctl, &st.members);
                st.run.advance(rel_now, tick, active_rate);
                st.gbit_seconds += active_rate.gbps_f64() * tick.as_secs_f64();
                st.peak = st.peak.max(active_rate.gbps_f64());
                let backlog = st.run.backlog();
                if backlog.is_zero() {
                    if !st.members.is_empty() {
                        match st.idle_since {
                            None => st.idle_since = Some(t),
                            Some(since) if t.since(since) >= self.policy.idle_release => {
                                for id in st.members.drain(..) {
                                    let _ = ctl.request_teardown(id);
                                }
                                st.idle_since = None;
                            }
                            _ => {}
                        }
                    }
                } else {
                    st.idle_since = None;
                    if backlog_desired(backlog, self.policy.drain_target, self.policy.max_rate)
                        > committed
                        && committed + DataRate::from_gbps(10) <= self.policy.max_rate
                    {
                        if let Ok(id) =
                            ctl.request_wavelength(customer, st.from, st.to, LineRate::Gbps10)
                        {
                            st.members.push(id);
                            st.setups += 1;
                        }
                    }
                }
            }
            t += tick;
            if states
                .iter()
                .all(|st| st.run.all_done() && st.members.is_empty())
            {
                break;
            }
        }
        let mut outcomes = Vec::new();
        for st in &mut states {
            for id in st.members.drain(..) {
                let _ = ctl.request_teardown(id);
            }
        }
        ctl.run_until_idle();
        for st in states {
            outcomes.push(PolicyOutcome {
                log: TransferLog::summarize(&st.run.transfers),
                gbps_hours: st.gbit_seconds / 3600.0,
                peak_gbps: st.peak,
                setups: st.setups,
            });
        }
        outcomes
    }
}

/// Deadline-aware GRIPhoN BoD: sizes orders not to a fixed drain target
/// but to the *tightest deadline in the queue*, with a safety margin for
/// provisioning latency. Cheaper than [`BodPolicy`] when deadlines are
/// loose (holds less bandwidth), more aggressive when a deadline nears.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineBodPolicy {
    /// Ceiling on ordered bandwidth (the access pipe).
    pub max_rate: DataRate,
    /// Extra margin subtracted from every deadline to cover λ setup.
    pub provisioning_margin: SimDuration,
    /// Fallback drain target for jobs without deadlines.
    pub background_drain: SimDuration,
    /// Hysteresis before releasing idle capacity.
    pub idle_release: SimDuration,
}

impl Default for DeadlineBodPolicy {
    fn default() -> Self {
        DeadlineBodPolicy {
            max_rate: DataRate::from_gbps(40),
            provisioning_margin: SimDuration::from_mins(3),
            background_drain: SimDuration::from_hours(4),
            idle_release: SimDuration::from_mins(10),
        }
    }
}

impl DeadlineBodPolicy {
    /// The rate needed right now to keep every deadline feasible.
    fn required_rate(&self, run: &PairRun, now: SimTime) -> DataRate {
        required_rate_for(
            run.transfers.iter().filter(|t| !t.is_done()),
            now,
            self.provisioning_margin,
            self.background_drain,
            self.max_rate,
        )
    }

    /// Run the pair's jobs against a live controller, event-driven.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        ctl: &mut Controller,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
    ) -> PolicyOutcome {
        run_event_bod(
            ctl,
            customer,
            BodParams {
                max_rate: self.max_rate,
                idle_release: self.idle_release,
                sizing: Sizing::Deadline {
                    provisioning_margin: self.provisioning_margin,
                    background_drain: self.background_drain,
                },
            },
            vec![(from, to, jobs)],
            horizon,
            tick,
        )
        .pop()
        .expect("one pair in, one outcome out")
    }

    /// The original fixed-tick loop, kept as the oracle for the event
    /// engine.
    #[allow(clippy::too_many_arguments)]
    pub fn run_tick_reference(
        &self,
        ctl: &mut Controller,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
    ) -> PolicyOutcome {
        let mut run = PairRun::new(jobs);
        let start = ctl.now();
        let end = start + horizon;
        let mut members: Vec<ConnectionId> = Vec::new();
        let mut idle_since: Option<SimTime> = None;
        let mut gbit_seconds = 0.0;
        let mut peak: f64 = 0.0;
        let mut setups = 0u64;
        let mut t = start;
        while t < end {
            ctl.run_until(t);
            let rel_now = SimTime::from_nanos(t.since(start).as_nanos());
            run.admit(rel_now);
            let (active_rate, committed) = member_rates(ctl, &members);
            run.advance(rel_now, tick, active_rate);
            gbit_seconds += active_rate.gbps_f64() * tick.as_secs_f64();
            peak = peak.max(active_rate.gbps_f64());
            let backlog = run.backlog();
            if backlog.is_zero() {
                if !members.is_empty() {
                    match idle_since {
                        None => idle_since = Some(t),
                        Some(since) if t.since(since) >= self.idle_release => {
                            for id in members.drain(..) {
                                let _ = ctl.request_teardown(id);
                            }
                            idle_since = None;
                        }
                        _ => {}
                    }
                }
            } else {
                idle_since = None;
                let required = self.required_rate(&run, rel_now);
                if required > committed && committed + DataRate::from_gbps(10) <= self.max_rate {
                    if let Ok(id) = ctl.request_wavelength(customer, from, to, LineRate::Gbps10) {
                        members.push(id);
                        setups += 1;
                    }
                }
            }
            t += tick;
            if run.all_done() && members.is_empty() {
                break;
            }
        }
        for id in members {
            let _ = ctl.request_teardown(id);
        }
        ctl.run_until_idle();
        PolicyOutcome {
            log: TransferLog::summarize(&run.transfers),
            gbps_hours: gbit_seconds / 3600.0,
            peak_gbps: peak,
            setups,
        }
    }
}

/// What the estimation-aware BoD variant knows about the shared path's
/// free capacity when sizing wavelength orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasuredMode {
    /// No measurement: size as if the shared path contributes nothing.
    /// The fixed-size baseline every prior BoD policy implements.
    Fixed,
    /// Size from the prober's smoothed available-bandwidth estimate —
    /// the measurement feedback loop.
    Estimated,
    /// Size from the fluid ground truth: the perfect-knowledge
    /// reference that policy regret is measured against.
    Oracle,
}

/// GRIPhoN BoD with a measurement feedback loop (`DESIGN.md` §15).
///
/// The pair's bulk traffic rides a *shared* path — a bottleneck of
/// known capacity carrying everyone else's cross traffic — and may
/// additionally order dedicated wavelengths. The free capacity of the
/// shared path moves with the cross traffic; only paid wavelengths are
/// billed. The policy auto-sizes its calendar of orders from what it
/// believes the shared path will contribute ([`MeasuredMode`]):
/// `need_paid = desired − estimated_free`, ordered one 10 G wavelength
/// per decision tick as in [`BodPolicy`].
///
/// Two feedback actions close the loop against the SLA drain target:
///
/// - **upgrade** — when the path under-delivers (true free capacity
///   below [`Self::underdelivery_margin`] of the estimate for two
///   consecutive ticks while backlogged), order beyond the sized plan;
/// - **downgrade** — when the committed rate exceeds the sized plan by
///   a full wavelength for three consecutive ticks, release one member
///   before the idle-release timer would.
///
/// [`MeasuredRun::score`] charges paid gigabit-hours plus a lateness
/// penalty per job-hour past `created + sla_drain`; regret is the score
/// gap to the [`MeasuredMode::Oracle`] run of the same scenario.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredBodPolicy {
    /// Ceiling on *ordered* bandwidth (the access pipe).
    pub max_rate: DataRate,
    /// Size orders to drain the current backlog within this target.
    pub drain_target: SimDuration,
    /// Tear everything down only after the queue has been empty this
    /// long.
    pub idle_release: SimDuration,
    /// The SLA: every job should complete within this of its creation.
    pub sla_drain: SimDuration,
    /// Under-delivery trigger: true free capacity below this fraction
    /// of the estimate counts as a miss.
    pub underdelivery_margin: f64,
    /// Score penalty in Gbps·hours per late job-hour.
    pub lateness_penalty: f64,
    /// What the sizing loop knows about the shared path.
    pub mode: MeasuredMode,
}

impl Default for MeasuredBodPolicy {
    fn default() -> Self {
        MeasuredBodPolicy {
            max_rate: DataRate::from_gbps(40),
            drain_target: SimDuration::from_hours(1),
            idle_release: SimDuration::from_mins(10),
            sla_drain: SimDuration::from_hours(2),
            underdelivery_margin: 0.8,
            lateness_penalty: 40.0,
            mode: MeasuredMode::Estimated,
        }
    }
}

/// What a [`MeasuredBodPolicy`] run produced: the standard outcome plus
/// the estimation/SLA accounting and the measurement plane's record.
#[derive(Debug)]
pub struct MeasuredRun {
    /// Completion stats and paid-bandwidth accounting (paid wavelengths
    /// only — harvested shared capacity is free).
    pub outcome: PolicyOutcome,
    /// Σ max(0, completion − (created + sla_drain)) over jobs, hours.
    /// Unfinished jobs accrue lateness to the horizon.
    pub late_job_hours: f64,
    /// Decision ticks at which the path under-delivered vs the estimate.
    pub under_delivery_ticks: u64,
    /// Wavelengths ordered by the under-delivery trigger.
    pub upgrades: u64,
    /// Members released early by the surplus trigger.
    pub downgrades: u64,
    /// Paid Gbps·hours + lateness_penalty × late_job_hours. Lower is
    /// better; subtract the oracle's score for regret.
    pub score: f64,
    /// The prober's estimation record and observability artifacts.
    pub measure: MeasureOutcome,
}

impl MeasuredBodPolicy {
    /// Run the pair's jobs against a live controller with a prober on
    /// the shared path. The `observability` flag gates only what the
    /// measurement plane *records* (spans, samplers, metric families) —
    /// estimates, RNG draws and every decision are identical either
    /// way, which is the per-cell digest-identity invariant `repro
    /// measure` asserts.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        ctl: &mut Controller,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
        path: ProbePath,
        probe_cfg: ProbeConfig,
        seed: u64,
        observability: bool,
    ) -> MeasuredRun {
        let cap_gbps = path.capacity.gbps_f64();
        let mut prober = Prober::new(path, probe_cfg, seed, observability);
        let mut run = PairRun::new(jobs);
        let start = ctl.now();
        let end = start + horizon;
        let ten_g = DataRate::from_gbps(10);
        let mut members: Vec<ConnectionId> = Vec::new();
        let mut idle_since: Option<SimTime> = None;
        let mut gbit_seconds = 0.0;
        let mut peak: f64 = 0.0;
        let mut setups = 0u64;
        let mut under_delivery_ticks = 0u64;
        let mut upgrades = 0u64;
        let mut downgrades = 0u64;
        let mut low_streak = 0u32;
        let mut surplus_streak = 0u32;
        let mut t = start;
        while t < end {
            ctl.run_until(t);
            // Job and probe times are relative to the policy start.
            let rel_now = SimTime::from_nanos(t.since(start).as_nanos());
            prober.advance_to(rel_now);
            run.admit(rel_now);
            let (active_rate, committed) = member_rates(ctl, &members);
            // Delivered rate = true free capacity of the shared path
            // (whether or not the policy knows it) + paid wavelengths.
            let free_true = prober.true_available(rel_now);
            run.advance(rel_now, tick, active_rate + free_true);
            gbit_seconds += active_rate.gbps_f64() * tick.as_secs_f64();
            peak = peak.max(active_rate.gbps_f64());
            // What the sizing loop believes the path contributes.
            let est_free = match self.mode {
                MeasuredMode::Fixed => DataRate::ZERO,
                MeasuredMode::Estimated => prober.estimate().unwrap_or(DataRate::ZERO),
                MeasuredMode::Oracle => free_true,
            };
            ctl.noc.observe_available_bw(
                prober.path().name,
                est_free.gbps_f64(),
                100.0 * (est_free.gbps_f64() - free_true.gbps_f64()).abs() / cap_gbps,
            );
            let backlog = run.backlog();
            if backlog.is_zero() {
                low_streak = 0;
                surplus_streak = 0;
                if !members.is_empty() {
                    match idle_since {
                        None => idle_since = Some(t),
                        Some(since) if t.since(since) >= self.idle_release => {
                            for id in members.drain(..) {
                                let _ = ctl.request_teardown(id);
                            }
                            idle_since = None;
                        }
                        _ => {}
                    }
                }
            } else {
                idle_since = None;
                let desired = backlog_desired(backlog, self.drain_target, self.max_rate);
                let need_paid = desired.saturating_sub(est_free);
                let mut ordered = false;
                if need_paid > committed && committed + ten_g <= self.max_rate {
                    if let Ok(id) = ctl.request_wavelength(customer, from, to, LineRate::Gbps10) {
                        members.push(id);
                        setups += 1;
                        ordered = true;
                    }
                }
                // Under-delivery: the path gave measurably less than the
                // estimate the plan was sized with.
                let miss = free_true.gbps_f64() < self.underdelivery_margin * est_free.gbps_f64();
                if miss {
                    under_delivery_ticks += 1;
                    low_streak += 1;
                } else {
                    low_streak = 0;
                }
                if !ordered && low_streak >= 2 && committed + ten_g <= self.max_rate {
                    if let Ok(id) = ctl.request_wavelength(customer, from, to, LineRate::Gbps10) {
                        members.push(id);
                        setups += 1;
                        upgrades += 1;
                        low_streak = 0;
                    }
                }
                // Surplus: a full wavelength more than the plan needs,
                // sustained — shed it before the idle timer would.
                if committed.saturating_sub(need_paid) >= ten_g {
                    surplus_streak += 1;
                } else {
                    surplus_streak = 0;
                }
                if surplus_streak >= 3 {
                    if let Some(id) = members.pop() {
                        let _ = ctl.request_teardown(id);
                        downgrades += 1;
                    }
                    surplus_streak = 0;
                }
            }
            t += tick;
            if run.all_done() && members.is_empty() {
                break;
            }
        }
        for id in members {
            let _ = ctl.request_teardown(id);
        }
        ctl.run_until_idle();
        let horizon_rel = SimTime::ZERO + horizon;
        let mut late_job_hours = 0.0;
        for tr in &run.transfers {
            let due = tr.job.created + self.sla_drain;
            let done = tr.completed.unwrap_or(horizon_rel);
            late_job_hours += done.saturating_since(due).as_secs_f64() / 3600.0;
        }
        let outcome = PolicyOutcome {
            log: TransferLog::summarize(&run.transfers),
            gbps_hours: gbit_seconds / 3600.0,
            peak_gbps: peak,
            setups,
        };
        let score = outcome.gbps_hours + self.lateness_penalty * late_job_hours;
        MeasuredRun {
            outcome,
            late_job_hours,
            under_delivery_ticks,
            upgrades,
            downgrades,
            score,
            measure: prober.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DataCenterId;
    use crate::workload::JobId;
    use griphon::controller::ControllerConfig;
    use photonic::{EmsProfile, EqualizationModel, PhotonicNetwork};

    fn job(id: u32, tb: u64, created_s: u64) -> BulkJob {
        BulkJob {
            id: JobId::new(id),
            from: DataCenterId::new(0),
            to: DataCenterId::new(1),
            size: DataSize::from_terabytes(tb),
            created: SimTime::from_secs(created_s),
            deadline: None,
        }
    }

    #[test]
    fn static_line_fifo_completion() {
        let p = StaticLinePolicy {
            line: DataRate::from_gbps(10),
        };
        // 1 TB at 10G = 800 s. Two jobs back to back.
        let out = p.run(
            vec![job(0, 1, 0), job(1, 1, 0)],
            SimDuration::from_hours(1),
            SimDuration::from_secs(10),
            &RateProfile::flat(DataRate::ZERO),
        );
        assert_eq!(out.log.completed, 2);
        // FIFO: first ≈800 s, second ≈1600 s.
        assert!((out.log.mean_completion_secs - 1200.0).abs() < 15.0);
        assert_eq!(out.setups, 0);
        assert_eq!(out.peak_gbps, 10.0);
    }

    #[test]
    fn static_line_yields_to_interactive() {
        let p = StaticLinePolicy {
            line: DataRate::from_gbps(10),
        };
        let out = p.run(
            vec![job(0, 1, 0)],
            SimDuration::from_hours(2),
            SimDuration::from_secs(10),
            &RateProfile::flat(DataRate::from_gbps(8)),
        );
        // Only 2 G left → 4000 s.
        assert_eq!(out.log.completed, 1);
        assert!((out.log.mean_completion_secs - 4000.0).abs() < 15.0);
    }

    #[test]
    fn store_forward_harvests_relays() {
        let p = StoreForwardPolicy {
            line: DataRate::from_gbps(10),
            relays: 1,
            relay_phase_hours: 12.0,
        };
        let busy = |_: SimTime| DataRate::from_gbps(8);
        // Direct leftover 2 G + relay min(2,2) = 4 G total.
        assert_eq!(p.usable_rate(SimTime::ZERO, &busy), DataRate::from_gbps(4));
        let out = p.run(
            vec![job(0, 1, 0)],
            SimDuration::from_hours(2),
            SimDuration::from_secs(10),
            &RateProfile::flat(DataRate::from_gbps(8)),
        );
        assert_eq!(out.log.completed, 1);
        assert!(out.log.mean_completion_secs < 2100.0);
        assert_eq!(out.gbps_hours, 0.0, "harvested capacity is free");
    }

    /// A stepped diurnal-ish profile whose breakpoints sit on (or off)
    /// the tick grid, to stress the grid-snapping logic.
    fn stepped_profile() -> RateProfile {
        RateProfile::from_steps(vec![
            (SimTime::from_secs(0), DataRate::from_gbps(1)),
            (SimTime::from_secs(95), DataRate::from_gbps(7)),
            (SimTime::from_secs(3600), DataRate::from_gbps(3)),
            (SimTime::from_secs(5403), DataRate::ZERO),
            (SimTime::from_secs(9000), DataRate::from_gbps(9)),
        ])
    }

    #[test]
    fn static_event_engine_matches_tick_oracle() {
        let p = StaticLinePolicy {
            line: DataRate::from_gbps(10),
        };
        let profile = stepped_profile();
        let jobs = vec![
            job(0, 2, 0),
            job(1, 1, 500),
            job(2, 3, 7000),
            job(3, 1, 7000),
        ];
        let horizon = SimDuration::from_hours(9);
        let tick = SimDuration::from_secs(60);
        let event = p.run(jobs.clone(), horizon, tick, &profile);
        let oracle = p.run_tick_reference(jobs, horizon, tick, &|t| profile.rate_at(t));
        assert_eq!(event, oracle);
    }

    #[test]
    fn store_forward_event_engine_matches_tick_oracle() {
        let p = StoreForwardPolicy {
            line: DataRate::from_gbps(10),
            relays: 2,
            relay_phase_hours: 0.7,
        };
        let profile = stepped_profile();
        let jobs = vec![job(0, 2, 0), job(1, 4, 4000), job(2, 1, 12000)];
        let horizon = SimDuration::from_hours(12);
        let tick = SimDuration::from_secs(60);
        let event = p.run(jobs.clone(), horizon, tick, &profile);
        let oracle = p.run_tick_reference(jobs, horizon, tick, &|t| profile.rate_at(t));
        assert_eq!(event, oracle);
    }

    #[test]
    fn bod_event_engine_matches_tick_oracle() {
        let policy = BodPolicy {
            max_rate: DataRate::from_gbps(20),
            drain_target: SimDuration::from_mins(30),
            idle_release: SimDuration::from_mins(5),
        };
        let jobs = vec![job(0, 2, 0), job(1, 1, 9000), job(2, 4, 9030)];
        let horizon = SimDuration::from_hours(8);
        let tick = SimDuration::from_secs(30);
        let (mut ctl_a, from_a, to_a, csp_a) = bod_setup();
        let event = policy.run(&mut ctl_a, csp_a, from_a, to_a, jobs.clone(), horizon, tick);
        let (mut ctl_b, from_b, to_b, csp_b) = bod_setup();
        let oracle =
            policy.run_tick_reference(&mut ctl_b, csp_b, from_b, to_b, jobs, horizon, tick);
        assert_eq!(event, oracle);
        assert_eq!(ctl_a.now(), ctl_b.now(), "clocks must agree");
        assert_eq!(ctl_a.events_processed(), ctl_b.events_processed());
        assert_eq!(ctl_a.trace.dump(), ctl_b.trace.dump());
    }

    #[test]
    fn deadline_event_engine_matches_tick_oracle() {
        let policy = DeadlineBodPolicy::default();
        let mk = |id: u32, tb: u64, created_s: u64, deadline_s: Option<u64>| BulkJob {
            id: JobId::new(id),
            from: DataCenterId::new(0),
            to: DataCenterId::new(1),
            size: DataSize::from_terabytes(tb),
            created: SimTime::from_secs(created_s),
            deadline: deadline_s.map(SimTime::from_secs),
        };
        let jobs = vec![
            mk(0, 2, 0, Some(4 * 3600)),
            mk(1, 1, 1000, None),
            mk(2, 5, 7200, Some(9 * 3600)),
        ];
        let horizon = SimDuration::from_hours(12);
        let tick = SimDuration::from_secs(60);
        let (mut ctl_a, from_a, to_a, csp_a) = bod_setup();
        let event = policy.run(&mut ctl_a, csp_a, from_a, to_a, jobs.clone(), horizon, tick);
        let (mut ctl_b, from_b, to_b, csp_b) = bod_setup();
        let oracle =
            policy.run_tick_reference(&mut ctl_b, csp_b, from_b, to_b, jobs, horizon, tick);
        assert_eq!(event, oracle);
        assert_eq!(ctl_a.trace.dump(), ctl_b.trace.dump());
    }

    #[test]
    fn multi_pair_event_engine_matches_tick_oracle() {
        let mk_ctl = || {
            let (net, ids) = photonic::PhotonicNetwork::testbed(6);
            let mut ctl = Controller::new(
                net,
                ControllerConfig {
                    ems: EmsProfile::calibrated_deterministic(),
                    equalization: EqualizationModel::calibrated_deterministic(),
                    ..ControllerConfig::default()
                },
            );
            let csp = ctl.tenants.register("acme", DataRate::from_gbps(400));
            (ctl, ids, csp)
        };
        let mk = |id: u32, tb: u64, created_s: u64| BulkJob {
            id: JobId::new(id),
            from: DataCenterId::new(0),
            to: DataCenterId::new(1),
            size: DataSize::from_terabytes(tb),
            created: SimTime::from_secs(created_s),
            deadline: None,
        };
        let runner = MultiPairBod {
            policy: BodPolicy {
                max_rate: DataRate::from_gbps(20),
                drain_target: SimDuration::from_mins(30),
                idle_release: SimDuration::from_mins(5),
            },
        };
        let horizon = SimDuration::from_hours(8);
        let tick = SimDuration::from_secs(60);
        let (mut ctl_a, ids_a, csp_a) = mk_ctl();
        let pairs_a = vec![
            (ids_a.i, ids_a.iv, vec![mk(0, 4, 0), mk(3, 2, 14000)]),
            (ids_a.i, ids_a.iii, vec![mk(1, 2, 600)]),
            (ids_a.iii, ids_a.iv, vec![mk(2, 6, 3000)]),
        ];
        let event = runner.run(&mut ctl_a, csp_a, pairs_a, horizon, tick);
        let (mut ctl_b, ids_b, csp_b) = mk_ctl();
        let pairs_b = vec![
            (ids_b.i, ids_b.iv, vec![mk(0, 4, 0), mk(3, 2, 14000)]),
            (ids_b.i, ids_b.iii, vec![mk(1, 2, 600)]),
            (ids_b.iii, ids_b.iv, vec![mk(2, 6, 3000)]),
        ];
        let oracle = runner.run_tick_reference(&mut ctl_b, csp_b, pairs_b, horizon, tick);
        assert_eq!(event, oracle);
        assert_eq!(ctl_a.trace.dump(), ctl_b.trace.dump());
    }

    fn bod_setup() -> (Controller, RoadmId, RoadmId, CustomerId) {
        let (net, ids) = PhotonicNetwork::testbed(8);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                ems: EmsProfile::calibrated_deterministic(),
                equalization: EqualizationModel::calibrated_deterministic(),
                ..ControllerConfig::default()
            },
        );
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(400));
        (ctl, ids.i, ids.iv, csp)
    }

    #[test]
    fn bod_orders_capacity_then_releases() {
        let (mut ctl, from, to, csp) = bod_setup();
        let policy = BodPolicy {
            max_rate: DataRate::from_gbps(20),
            drain_target: SimDuration::from_mins(30),
            idle_release: SimDuration::from_mins(5),
        };
        let out = policy.run(
            &mut ctl,
            csp,
            from,
            to,
            vec![job(0, 2, 0)],
            SimDuration::from_hours(4),
            SimDuration::from_secs(30),
        );
        assert_eq!(out.log.completed, 1);
        assert!(out.setups >= 1);
        // Setup latency visible: > pure transfer time at 10G (1600 s).
        assert!(out.log.mean_completion_secs > 1600.0);
        assert!(out.log.mean_completion_secs < 3000.0);
        // Everything released afterwards.
        assert_eq!(ctl.tenants.get(csp).unwrap().in_use, DataRate::ZERO);
        // Paid only for what was held.
        assert!(out.gbps_hours < 20.0 * 4.0);
        assert!(out.gbps_hours > 0.0);
    }

    #[test]
    fn multi_pair_full_mesh_shares_one_carrier() {
        let (net, ids) = photonic::PhotonicNetwork::testbed(6);
        let mut ctl = Controller::new(
            net,
            griphon::controller::ControllerConfig {
                ems: photonic::EmsProfile::calibrated_deterministic(),
                equalization: photonic::EqualizationModel::calibrated_deterministic(),
                ..griphon::controller::ControllerConfig::default()
            },
        );
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(400));
        let mk = |id: u32, from: DataCenterId, to: DataCenterId| BulkJob {
            id: JobId::new(id),
            from,
            to,
            size: DataSize::from_terabytes(4),
            created: SimTime::ZERO,
            deadline: None,
        };
        let d = |i| DataCenterId::new(i);
        let pairs = vec![
            (ids.i, ids.iv, vec![mk(0, d(0), d(1))]),
            (ids.i, ids.iii, vec![mk(1, d(0), d(2))]),
            (ids.iii, ids.iv, vec![mk(2, d(2), d(1))]),
        ];
        let runner = MultiPairBod {
            policy: BodPolicy {
                max_rate: DataRate::from_gbps(20),
                drain_target: SimDuration::from_mins(30),
                idle_release: SimDuration::from_mins(5),
            },
        };
        let outcomes = runner.run(
            &mut ctl,
            csp,
            pairs,
            SimDuration::from_hours(6),
            SimDuration::from_secs(60),
        );
        assert_eq!(outcomes.len(), 3);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.log.completed, 1, "pair {i}");
            assert!(o.setups >= 1);
        }
        // All capacity back at the carrier afterwards.
        assert_eq!(ctl.tenants.get(csp).unwrap().in_use, DataRate::ZERO);
        // Concurrency really happened: the carrier held wavelengths for
        // several pairs in the same period (peak over pairs > any single
        // pair's needs alone would imply).
        let total_setups: u64 = outcomes.iter().map(|o| o.setups).sum();
        assert!(total_setups >= 3);
    }

    #[test]
    fn deadline_policy_holds_less_for_loose_deadlines() {
        // Same 2 TB job, deadline 8 h away: the deadline policy should
        // order less capacity (lower gbps-hours) than the fixed
        // 30-minute-drain policy while still making the deadline.
        let mk_job = || BulkJob {
            id: JobId::new(0),
            from: DataCenterId::new(0),
            to: DataCenterId::new(1),
            size: DataSize::from_terabytes(2),
            created: SimTime::ZERO,
            deadline: Some(SimTime::from_secs(8 * 3600)),
        };
        let (mut ctl, from, to, csp) = bod_setup();
        let eager = BodPolicy {
            max_rate: DataRate::from_gbps(40),
            drain_target: SimDuration::from_mins(30),
            idle_release: SimDuration::from_mins(5),
        }
        .run(
            &mut ctl,
            csp,
            from,
            to,
            vec![mk_job()],
            SimDuration::from_hours(10),
            SimDuration::from_secs(60),
        );
        let (mut ctl2, from2, to2, csp2) = bod_setup();
        let lazy = DeadlineBodPolicy::default().run(
            &mut ctl2,
            csp2,
            from2,
            to2,
            vec![mk_job()],
            SimDuration::from_hours(10),
            SimDuration::from_secs(60),
        );
        assert_eq!(eager.log.completed, 1);
        assert_eq!(lazy.log.completed, 1);
        assert!((lazy.log.deadline_hit_rate - 1.0).abs() < 1e-9);
        assert!(
            lazy.peak_gbps <= eager.peak_gbps,
            "lazy peak {} vs eager {}",
            lazy.peak_gbps,
            eager.peak_gbps
        );
        assert!(lazy.setups <= eager.setups);
    }

    #[test]
    fn deadline_policy_escalates_for_tight_deadlines() {
        let job = BulkJob {
            id: JobId::new(0),
            from: DataCenterId::new(0),
            to: DataCenterId::new(1),
            size: DataSize::from_terabytes(10),
            created: SimTime::ZERO,
            // 10 TB in 45 min needs ~30 G: the policy must stack
            // wavelengths fast.
            deadline: Some(SimTime::from_secs(45 * 60)),
        };
        let (mut ctl, from, to, csp) = bod_setup();
        let out = DeadlineBodPolicy {
            max_rate: DataRate::from_gbps(40),
            ..DeadlineBodPolicy::default()
        }
        .run(
            &mut ctl,
            csp,
            from,
            to,
            vec![job],
            SimDuration::from_hours(2),
            SimDuration::from_secs(30),
        );
        assert_eq!(out.log.completed, 1);
        assert!(
            out.setups >= 3,
            "needed several wavelengths: {}",
            out.setups
        );
        assert!(out.peak_gbps >= 30.0);
    }

    #[test]
    fn bod_scales_with_backlog() {
        let (mut ctl, from, to, csp) = bod_setup();
        let policy = BodPolicy {
            max_rate: DataRate::from_gbps(40),
            drain_target: SimDuration::from_mins(10),
            idle_release: SimDuration::from_mins(5),
        };
        // A large backlog: 20 TB, drain target 10 min → wants the full
        // 40 G (4 wavelengths).
        let out = policy.run(
            &mut ctl,
            csp,
            from,
            to,
            vec![job(0, 20, 0)],
            SimDuration::from_hours(6),
            SimDuration::from_secs(30),
        );
        assert_eq!(out.log.completed, 1);
        assert!(out.setups >= 3, "setups={}", out.setups);
        assert!(out.peak_gbps >= 30.0, "peak={}", out.peak_gbps);
    }

    use griphon::CrossTraffic;

    /// A 40 G shared path carrying stationary ~20 G cross traffic.
    fn stationary_path() -> ProbePath {
        ProbePath {
            name: "dc-a:dc-b",
            capacity: DataRate::from_gbps(40),
            cross: CrossTraffic::stationary(
                17,
                DataRate::from_gbps(20),
                0.1,
                SimDuration::from_secs(60),
                SimTime::from_secs(12 * 3600),
            ),
        }
    }

    fn measured_run(mode: MeasuredMode, observability: bool) -> (u32, MeasuredRun) {
        let (mut ctl, from, to, csp) = bod_setup();
        let policy = MeasuredBodPolicy {
            mode,
            ..MeasuredBodPolicy::default()
        };
        let run = policy.run(
            &mut ctl,
            csp,
            from,
            to,
            vec![job(0, 30, 0)],
            SimDuration::from_hours(8),
            SimDuration::from_secs(60),
            stationary_path(),
            ProbeConfig::default(),
            1234,
            observability,
        );
        (ctl.state_digest_crc(), run)
    }

    #[test]
    fn estimation_aware_bod_beats_fixed_on_regret() {
        let (_, fixed) = measured_run(MeasuredMode::Fixed, false);
        let (_, est) = measured_run(MeasuredMode::Estimated, false);
        let (_, oracle) = measured_run(MeasuredMode::Oracle, false);
        assert_eq!(fixed.outcome.log.completed, 1);
        assert_eq!(est.outcome.log.completed, 1);
        // Fixed sizing ignores ~20 G of free shared capacity and pays
        // for it; the measured plan pays less for similar lateness.
        let regret_fixed = fixed.score - oracle.score;
        let regret_est = est.score - oracle.score;
        assert!(
            regret_est < regret_fixed,
            "estimated regret {regret_est:.2} >= fixed regret {regret_fixed:.2}"
        );
        assert!(
            regret_est >= -1e-9,
            "the oracle must not lose to an estimate: {regret_est:.2}"
        );
        assert!(est.measure.trains > 10, "the prober must have run");
    }

    #[test]
    fn measured_bod_observability_is_passive() {
        let (digest_on, on) = measured_run(MeasuredMode::Estimated, true);
        let (digest_off, off) = measured_run(MeasuredMode::Estimated, false);
        assert_eq!(
            digest_on, digest_off,
            "measurement observability changed controller state"
        );
        assert_eq!(on.outcome, off.outcome);
        assert_eq!(on.score.to_bits(), off.score.to_bits());
        assert_eq!(on.measure.samples.len(), off.measure.samples.len());
        // Only the observability artifacts differ.
        assert!(on.measure.exemplars >= 1);
        assert_eq!(off.measure.exemplars, 0);
        assert_eq!(on.measure.span_dropped, 0);
    }

    #[test]
    fn measured_bod_upgrades_on_underdelivery() {
        // Adversarial square wave: free capacity collapses 35 G → 5 G
        // at t = 2 h while a fresh backlog is queued. The EWMA estimate
        // lags the collapse, so the sizing plan under-delivers until
        // the upgrade trigger fires.
        let (mut ctl, from, to, csp) = bod_setup();
        let path = ProbePath {
            name: "dc-a:dc-b",
            capacity: DataRate::from_gbps(40),
            cross: CrossTraffic::square(
                DataRate::from_gbps(5),
                DataRate::from_gbps(35),
                SimDuration::from_hours(2),
                SimTime::from_secs(12 * 3600),
            ),
        };
        let policy = MeasuredBodPolicy {
            mode: MeasuredMode::Estimated,
            ..MeasuredBodPolicy::default()
        };
        let run = policy.run(
            &mut ctl,
            csp,
            from,
            to,
            vec![job(0, 16, 0), job(1, 6, 7100)],
            SimDuration::from_hours(6),
            SimDuration::from_secs(60),
            path,
            ProbeConfig::default(),
            7,
            false,
        );
        assert!(
            run.under_delivery_ticks >= 1,
            "the collapse must register as under-delivery"
        );
        assert!(
            run.upgrades >= 1,
            "the under-delivery streak must trigger an upgrade order"
        );
        assert_eq!(run.outcome.log.completed, 2);
    }

    #[test]
    fn measured_bod_downgrades_on_surplus() {
        // Oracle knowledge + a shrinking backlog: desired falls while
        // free capacity stays ~20 G, so committed wavelengths become
        // surplus and the downgrade trigger sheds them early.
        let (mut ctl, from, to, csp) = bod_setup();
        let policy = MeasuredBodPolicy {
            mode: MeasuredMode::Oracle,
            ..MeasuredBodPolicy::default()
        };
        let run = policy.run(
            &mut ctl,
            csp,
            from,
            to,
            vec![job(0, 40, 0)],
            SimDuration::from_hours(10),
            SimDuration::from_secs(60),
            stationary_path(),
            ProbeConfig::default(),
            99,
            false,
        );
        assert_eq!(run.outcome.log.completed, 1);
        assert!(
            run.downgrades >= 1,
            "a draining backlog must shed surplus wavelengths"
        );
        // Shed wavelengths really stop billing.
        assert_eq!(ctl.tenants.get(csp).unwrap().in_use, DataRate::ZERO);
    }
}
