//! Transfer-scheduling policies — the contenders of experiment E5.
//!
//! Three ways a CSP can move the same bulk workload between two sites:
//!
//! - [`StaticLinePolicy`] — today's common answer: lease a fixed line
//!   sized in advance. Bulk uses whatever the diurnal interactive load
//!   leaves over. Simple, but pay for the peak around the clock.
//! - [`StoreForwardPolicy`] — the NetStitcher-inspired baseline: no new
//!   capacity at all; harvest the *leftover* bandwidth of existing
//!   static lines, including multi-hop store-and-forward detours through
//!   relay data centers. Free, but completion is hostage to what
//!   happens to be idle.
//! - [`BodPolicy`] — GRIPhoN: when a backlog builds, order wavelengths
//!   (and OTN remainder circuits) from the carrier, sized to drain the
//!   backlog in a target time; release them when the queue empties. Pays
//!   usage-based prices and eats the 60–70 s setup latency, which this
//!   simulation faithfully inflicts via the `griphon` controller.
//!
//! All policies process a pair's jobs FIFO (bulk replication is
//! throughput work, not latency work) and advance in fixed ticks.

use simcore::{DataRate, DataSize, SimDuration, SimTime};

use griphon::controller::Controller;
use griphon::{ConnState, ConnectionId, CustomerId};
use photonic::{LineRate, RoadmId};

use crate::transfer::{Transfer, TransferLog};
use crate::workload::BulkJob;

/// What a policy run produced — completion stats plus the inputs the
/// cost model needs.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyOutcome {
    /// Per-job outcomes.
    pub log: TransferLog,
    /// ∫ provisioned bandwidth dt, in gigabit-hours/hour units
    /// (Gbps·hours) — what usage-based billing charges.
    pub gbps_hours: f64,
    /// Largest bandwidth held at any instant (Gbps) — what leased-line
    /// billing must be sized to.
    pub peak_gbps: f64,
    /// Wavelength/circuit setups performed (BoD churn).
    pub setups: u64,
}

/// Shared simulation mechanics: FIFO transfer list advanced tick by tick.
struct PairRun {
    pending: Vec<BulkJob>,
    transfers: Vec<Transfer>,
    next_arrival: usize,
}

impl PairRun {
    fn new(mut jobs: Vec<BulkJob>) -> PairRun {
        jobs.sort_by_key(|j| (j.created, j.id));
        PairRun {
            pending: jobs,
            transfers: Vec::new(),
            next_arrival: 0,
        }
    }

    /// Admit jobs created up to `now`.
    fn admit(&mut self, now: SimTime) {
        while self.next_arrival < self.pending.len()
            && self.pending[self.next_arrival].created <= now
        {
            self.transfers
                .push(Transfer::new(self.pending[self.next_arrival].clone()));
            self.next_arrival += 1;
        }
    }

    /// Bytes queued but unfinished.
    fn backlog(&self) -> DataSize {
        self.transfers
            .iter()
            .filter(|t| !t.is_done())
            .map(|t| t.remaining)
            .sum()
    }

    /// Give the full `rate` to the FIFO head for `dt` (splitting across
    /// the boundary when the head finishes mid-tick).
    fn advance(&mut self, now: SimTime, dt: SimDuration, rate: DataRate) {
        let mut t = now;
        let end = now + dt;
        while t < end {
            let Some(head) = self.transfers.iter_mut().find(|tr| !tr.is_done()) else {
                return;
            };
            let window = end.since(t);
            let before_remaining = head.remaining;
            head.advance(t, window, rate);
            match head.completed {
                Some(done_at) if done_at < end => {
                    t = done_at; // hand the remainder of the tick to the next job
                }
                _ => return,
            }
            debug_assert!(before_remaining >= head.remaining);
        }
    }

    fn all_done(&self) -> bool {
        self.next_arrival == self.pending.len() && self.transfers.iter().all(Transfer::is_done)
    }
}

/// A statically provisioned leased line.
#[derive(Debug, Clone, Copy)]
pub struct StaticLinePolicy {
    /// The leased rate.
    pub line: DataRate,
}

impl StaticLinePolicy {
    /// Run the pair's jobs; `interactive(t)` has priority on the line.
    pub fn run(
        &self,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
        interactive: &dyn Fn(SimTime) -> DataRate,
    ) -> PolicyOutcome {
        let mut run = PairRun::new(jobs);
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        while t < end {
            run.admit(t);
            let leftover = self.line.saturating_sub(interactive(t));
            run.advance(t, tick, leftover);
            t += tick;
            if run.all_done() {
                break;
            }
        }
        let hours = horizon.as_secs_f64() / 3600.0;
        PolicyOutcome {
            log: TransferLog::summarize(&run.transfers),
            gbps_hours: self.line.gbps_f64() * hours,
            peak_gbps: self.line.gbps_f64(),
            setups: 0,
        }
    }
}

/// Store-and-forward over leftover capacity (NetStitcher-like).
#[derive(Debug, Clone, Copy)]
pub struct StoreForwardPolicy {
    /// The static line rate each existing edge has.
    pub line: DataRate,
    /// Relay sites offering two-hop detours.
    pub relays: usize,
    /// Phase offset (hours) between relay time zones — NetStitcher's key
    /// insight is that leftovers in different zones peak at different
    /// local times.
    pub relay_phase_hours: f64,
}

impl StoreForwardPolicy {
    /// Usable rate at `t`: direct leftover plus each relay's two-hop
    /// minimum of leftovers (phase-shifted diurnal).
    pub fn usable_rate(&self, t: SimTime, interactive: &dyn Fn(SimTime) -> DataRate) -> DataRate {
        let mut total = self.line.saturating_sub(interactive(t));
        for r in 0..self.relays {
            let shift =
                SimDuration::from_secs_f64((r as f64 + 1.0) * self.relay_phase_hours * 3600.0);
            let t_shifted = t + shift;
            let leg1 = self.line.saturating_sub(interactive(t_shifted));
            let leg2 = self.line.saturating_sub(interactive(t));
            total += DataRate::from_bps(leg1.bps().min(leg2.bps()));
        }
        total
    }

    /// Run the pair's jobs over harvested capacity only.
    pub fn run(
        &self,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
        interactive: &dyn Fn(SimTime) -> DataRate,
    ) -> PolicyOutcome {
        let mut run = PairRun::new(jobs);
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        let mut peak: f64 = 0.0;
        while t < end {
            run.admit(t);
            let rate = self.usable_rate(t, interactive);
            peak = peak.max(rate.gbps_f64());
            run.advance(t, tick, rate);
            t += tick;
            if run.all_done() {
                break;
            }
        }
        PolicyOutcome {
            log: TransferLog::summarize(&run.transfers),
            // Harvested capacity is already paid for — zero marginal
            // provisioned bandwidth.
            gbps_hours: 0.0,
            peak_gbps: peak,
            setups: 0,
        }
    }
}

/// GRIPhoN bandwidth-on-demand.
#[derive(Debug, Clone, Copy)]
pub struct BodPolicy {
    /// Ceiling on ordered bandwidth (the access pipe).
    pub max_rate: DataRate,
    /// Size orders to drain the current backlog within this target.
    pub drain_target: SimDuration,
    /// Tear capacity down only after the queue has been empty this long
    /// (hysteresis against thrashing).
    pub idle_release: SimDuration,
}

impl Default for BodPolicy {
    fn default() -> Self {
        BodPolicy {
            max_rate: DataRate::from_gbps(40),
            drain_target: SimDuration::from_hours(1),
            idle_release: SimDuration::from_mins(10),
        }
    }
}

impl BodPolicy {
    /// Run the pair's jobs against a live controller. `from`/`to` are
    /// the carrier PoPs of the two data centers.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        ctl: &mut Controller,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
    ) -> PolicyOutcome {
        let mut run = PairRun::new(jobs);
        let start = ctl.now();
        let end = start + horizon;
        let mut members: Vec<ConnectionId> = Vec::new();
        let mut idle_since: Option<SimTime> = None;
        let mut gbit_seconds = 0.0;
        let mut peak: f64 = 0.0;
        let mut setups = 0u64;
        let mut t = start;
        while t < end {
            ctl.run_until(t);
            // Job times are relative to the policy start.
            let rel_now = SimTime::from_nanos(t.since(start).as_nanos());
            run.admit(rel_now);
            // Bandwidth actually in service right now.
            let active_rate: DataRate = members
                .iter()
                .filter_map(|id| ctl.connection(*id))
                .filter(|c| c.state == ConnState::Active)
                .map(|c| c.kind.rate())
                .sum();
            let committed: DataRate = members
                .iter()
                .filter_map(|id| ctl.connection(*id))
                .filter(|c| matches!(c.state, ConnState::Active | ConnState::Provisioning))
                .map(|c| c.kind.rate())
                .sum();
            run.advance(rel_now, tick, active_rate);
            gbit_seconds += active_rate.gbps_f64() * tick.as_secs_f64();
            peak = peak.max(active_rate.gbps_f64());
            // Decide.
            let backlog = run.backlog();
            if backlog.is_zero() {
                if !members.is_empty() {
                    match idle_since {
                        None => idle_since = Some(t),
                        Some(since) if t.since(since) >= self.idle_release => {
                            for id in members.drain(..) {
                                let _ = ctl.request_teardown(id);
                            }
                            idle_since = None;
                        }
                        _ => {}
                    }
                }
            } else {
                idle_since = None;
                let desired_bps = (backlog.bits() as f64 / self.drain_target.as_secs_f64())
                    .min(self.max_rate.bps() as f64) as u64;
                if DataRate::from_bps(desired_bps) > committed
                    && committed + DataRate::from_gbps(10) <= self.max_rate
                {
                    // Grow one wavelength per tick (measured pace, avoids
                    // ordering a burst the backlog won't need).
                    if let Ok(id) = ctl.request_wavelength(customer, from, to, LineRate::Gbps10) {
                        members.push(id);
                        setups += 1;
                    }
                }
            }
            t += tick;
            if run.all_done() && members.is_empty() {
                break;
            }
        }
        // Clean up anything still provisioned.
        for id in members {
            let _ = ctl.request_teardown(id);
        }
        ctl.run_until_idle();
        PolicyOutcome {
            log: TransferLog::summarize(&run.transfers),
            gbps_hours: gbit_seconds / 3600.0,
            peak_gbps: peak,
            setups,
        }
    }
}

/// GRIPhoN BoD across *several site pairs sharing one carrier*: the
/// full-mesh replication pattern the Forrester survey describes (§1,
/// "a majority of CSPs perform bulk data transfer among three or more
/// data centers"). All pairs contend for the same transponder pools,
/// wavelengths and tenant quota inside one controller — which is the
/// point: the carrier's shared-pool economics only show up under
/// concurrent demand.
#[derive(Debug, Clone, Copy)]
pub struct MultiPairBod {
    /// The per-pair policy parameters.
    pub policy: BodPolicy,
}

impl MultiPairBod {
    /// Run each pair's jobs concurrently against one controller.
    /// Returns one outcome per pair, in input order.
    pub fn run(
        &self,
        ctl: &mut Controller,
        customer: CustomerId,
        pairs: Vec<(RoadmId, RoadmId, Vec<BulkJob>)>,
        horizon: SimDuration,
        tick: SimDuration,
    ) -> Vec<PolicyOutcome> {
        struct PairState {
            from: RoadmId,
            to: RoadmId,
            run: PairRun,
            members: Vec<ConnectionId>,
            idle_since: Option<SimTime>,
            gbit_seconds: f64,
            peak: f64,
            setups: u64,
        }
        let start = ctl.now();
        let end = start + horizon;
        let mut states: Vec<PairState> = pairs
            .into_iter()
            .map(|(from, to, jobs)| PairState {
                from,
                to,
                run: PairRun::new(jobs),
                members: Vec::new(),
                idle_since: None,
                gbit_seconds: 0.0,
                peak: 0.0,
                setups: 0,
            })
            .collect();
        let mut t = start;
        while t < end {
            ctl.run_until(t);
            let rel_now = SimTime::from_nanos(t.since(start).as_nanos());
            for st in &mut states {
                st.run.admit(rel_now);
                let active_rate: DataRate = st
                    .members
                    .iter()
                    .filter_map(|id| ctl.connection(*id))
                    .filter(|c| c.state == ConnState::Active)
                    .map(|c| c.kind.rate())
                    .sum();
                let committed: DataRate = st
                    .members
                    .iter()
                    .filter_map(|id| ctl.connection(*id))
                    .filter(|c| matches!(c.state, ConnState::Active | ConnState::Provisioning))
                    .map(|c| c.kind.rate())
                    .sum();
                st.run.advance(rel_now, tick, active_rate);
                st.gbit_seconds += active_rate.gbps_f64() * tick.as_secs_f64();
                st.peak = st.peak.max(active_rate.gbps_f64());
                let backlog = st.run.backlog();
                if backlog.is_zero() {
                    if !st.members.is_empty() {
                        match st.idle_since {
                            None => st.idle_since = Some(t),
                            Some(since) if t.since(since) >= self.policy.idle_release => {
                                for id in st.members.drain(..) {
                                    let _ = ctl.request_teardown(id);
                                }
                                st.idle_since = None;
                            }
                            _ => {}
                        }
                    }
                } else {
                    st.idle_since = None;
                    let desired_bps =
                        (backlog.bits() as f64 / self.policy.drain_target.as_secs_f64())
                            .min(self.policy.max_rate.bps() as f64) as u64;
                    if DataRate::from_bps(desired_bps) > committed
                        && committed + DataRate::from_gbps(10) <= self.policy.max_rate
                    {
                        if let Ok(id) =
                            ctl.request_wavelength(customer, st.from, st.to, LineRate::Gbps10)
                        {
                            st.members.push(id);
                            st.setups += 1;
                        }
                    }
                }
            }
            t += tick;
            if states
                .iter()
                .all(|st| st.run.all_done() && st.members.is_empty())
            {
                break;
            }
        }
        let mut outcomes = Vec::new();
        for st in &mut states {
            for id in st.members.drain(..) {
                let _ = ctl.request_teardown(id);
            }
        }
        ctl.run_until_idle();
        for st in states {
            outcomes.push(PolicyOutcome {
                log: TransferLog::summarize(&st.run.transfers),
                gbps_hours: st.gbit_seconds / 3600.0,
                peak_gbps: st.peak,
                setups: st.setups,
            });
        }
        outcomes
    }
}

/// Deadline-aware GRIPhoN BoD: sizes orders not to a fixed drain target
/// but to the *tightest deadline in the queue*, with a safety margin for
/// provisioning latency. Cheaper than [`BodPolicy`] when deadlines are
/// loose (holds less bandwidth), more aggressive when a deadline nears.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineBodPolicy {
    /// Ceiling on ordered bandwidth (the access pipe).
    pub max_rate: DataRate,
    /// Extra margin subtracted from every deadline to cover λ setup.
    pub provisioning_margin: SimDuration,
    /// Fallback drain target for jobs without deadlines.
    pub background_drain: SimDuration,
    /// Hysteresis before releasing idle capacity.
    pub idle_release: SimDuration,
}

impl Default for DeadlineBodPolicy {
    fn default() -> Self {
        DeadlineBodPolicy {
            max_rate: DataRate::from_gbps(40),
            provisioning_margin: SimDuration::from_mins(3),
            background_drain: SimDuration::from_hours(4),
            idle_release: SimDuration::from_mins(10),
        }
    }
}

impl DeadlineBodPolicy {
    /// The rate needed right now to keep every deadline feasible.
    fn required_rate(&self, run: &PairRun, now: SimTime) -> DataRate {
        let mut needed_bps = 0.0f64;
        let mut background_bits = 0u64;
        for t in run.transfers.iter().filter(|t| !t.is_done()) {
            match t.job.deadline {
                Some(d) => {
                    let slack = d
                        .saturating_since(now)
                        .saturating_sub(self.provisioning_margin)
                        .as_secs_f64()
                        .max(60.0);
                    // Aggregate: deadlines share the pipe FIFO, so sum
                    // the per-job requirements (conservative).
                    needed_bps += t.remaining.bits() as f64 / slack;
                }
                None => background_bits += t.remaining.bits(),
            }
        }
        needed_bps += background_bits as f64 / self.background_drain.as_secs_f64();
        DataRate::from_bps((needed_bps as u64).min(self.max_rate.bps()))
    }

    /// Run the pair's jobs against a live controller.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        ctl: &mut Controller,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        jobs: Vec<BulkJob>,
        horizon: SimDuration,
        tick: SimDuration,
    ) -> PolicyOutcome {
        let mut run = PairRun::new(jobs);
        let start = ctl.now();
        let end = start + horizon;
        let mut members: Vec<ConnectionId> = Vec::new();
        let mut idle_since: Option<SimTime> = None;
        let mut gbit_seconds = 0.0;
        let mut peak: f64 = 0.0;
        let mut setups = 0u64;
        let mut t = start;
        while t < end {
            ctl.run_until(t);
            let rel_now = SimTime::from_nanos(t.since(start).as_nanos());
            run.admit(rel_now);
            let active_rate: DataRate = members
                .iter()
                .filter_map(|id| ctl.connection(*id))
                .filter(|c| c.state == ConnState::Active)
                .map(|c| c.kind.rate())
                .sum();
            let committed: DataRate = members
                .iter()
                .filter_map(|id| ctl.connection(*id))
                .filter(|c| matches!(c.state, ConnState::Active | ConnState::Provisioning))
                .map(|c| c.kind.rate())
                .sum();
            run.advance(rel_now, tick, active_rate);
            gbit_seconds += active_rate.gbps_f64() * tick.as_secs_f64();
            peak = peak.max(active_rate.gbps_f64());
            let backlog = run.backlog();
            if backlog.is_zero() {
                if !members.is_empty() {
                    match idle_since {
                        None => idle_since = Some(t),
                        Some(since) if t.since(since) >= self.idle_release => {
                            for id in members.drain(..) {
                                let _ = ctl.request_teardown(id);
                            }
                            idle_since = None;
                        }
                        _ => {}
                    }
                }
            } else {
                idle_since = None;
                let required = self.required_rate(&run, rel_now);
                if required > committed && committed + DataRate::from_gbps(10) <= self.max_rate {
                    if let Ok(id) = ctl.request_wavelength(customer, from, to, LineRate::Gbps10) {
                        members.push(id);
                        setups += 1;
                    }
                }
            }
            t += tick;
            if run.all_done() && members.is_empty() {
                break;
            }
        }
        for id in members {
            let _ = ctl.request_teardown(id);
        }
        ctl.run_until_idle();
        PolicyOutcome {
            log: TransferLog::summarize(&run.transfers),
            gbps_hours: gbit_seconds / 3600.0,
            peak_gbps: peak,
            setups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DataCenterId;
    use crate::workload::JobId;
    use griphon::controller::ControllerConfig;
    use photonic::{EmsProfile, EqualizationModel, PhotonicNetwork};

    fn job(id: u32, tb: u64, created_s: u64) -> BulkJob {
        BulkJob {
            id: JobId::new(id),
            from: DataCenterId::new(0),
            to: DataCenterId::new(1),
            size: DataSize::from_terabytes(tb),
            created: SimTime::from_secs(created_s),
            deadline: None,
        }
    }

    fn no_interactive(_: SimTime) -> DataRate {
        DataRate::ZERO
    }

    #[test]
    fn static_line_fifo_completion() {
        let p = StaticLinePolicy {
            line: DataRate::from_gbps(10),
        };
        // 1 TB at 10G = 800 s. Two jobs back to back.
        let out = p.run(
            vec![job(0, 1, 0), job(1, 1, 0)],
            SimDuration::from_hours(1),
            SimDuration::from_secs(10),
            &no_interactive,
        );
        assert_eq!(out.log.completed, 2);
        // FIFO: first ≈800 s, second ≈1600 s.
        assert!((out.log.mean_completion_secs - 1200.0).abs() < 15.0);
        assert_eq!(out.setups, 0);
        assert_eq!(out.peak_gbps, 10.0);
    }

    #[test]
    fn static_line_yields_to_interactive() {
        let p = StaticLinePolicy {
            line: DataRate::from_gbps(10),
        };
        let busy = |_: SimTime| DataRate::from_gbps(8);
        let out = p.run(
            vec![job(0, 1, 0)],
            SimDuration::from_hours(2),
            SimDuration::from_secs(10),
            &busy,
        );
        // Only 2 G left → 4000 s.
        assert_eq!(out.log.completed, 1);
        assert!((out.log.mean_completion_secs - 4000.0).abs() < 15.0);
    }

    #[test]
    fn store_forward_harvests_relays() {
        let p = StoreForwardPolicy {
            line: DataRate::from_gbps(10),
            relays: 1,
            relay_phase_hours: 12.0,
        };
        let busy = |_: SimTime| DataRate::from_gbps(8);
        // Direct leftover 2 G + relay min(2,2) = 4 G total.
        assert_eq!(p.usable_rate(SimTime::ZERO, &busy), DataRate::from_gbps(4));
        let out = p.run(
            vec![job(0, 1, 0)],
            SimDuration::from_hours(2),
            SimDuration::from_secs(10),
            &busy,
        );
        assert_eq!(out.log.completed, 1);
        assert!(out.log.mean_completion_secs < 2100.0);
        assert_eq!(out.gbps_hours, 0.0, "harvested capacity is free");
    }

    fn bod_setup() -> (Controller, RoadmId, RoadmId, CustomerId) {
        let (net, ids) = PhotonicNetwork::testbed(8);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                ems: EmsProfile::calibrated_deterministic(),
                equalization: EqualizationModel::calibrated_deterministic(),
                ..ControllerConfig::default()
            },
        );
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(400));
        (ctl, ids.i, ids.iv, csp)
    }

    #[test]
    fn bod_orders_capacity_then_releases() {
        let (mut ctl, from, to, csp) = bod_setup();
        let policy = BodPolicy {
            max_rate: DataRate::from_gbps(20),
            drain_target: SimDuration::from_mins(30),
            idle_release: SimDuration::from_mins(5),
        };
        let out = policy.run(
            &mut ctl,
            csp,
            from,
            to,
            vec![job(0, 2, 0)],
            SimDuration::from_hours(4),
            SimDuration::from_secs(30),
        );
        assert_eq!(out.log.completed, 1);
        assert!(out.setups >= 1);
        // Setup latency visible: > pure transfer time at 10G (1600 s).
        assert!(out.log.mean_completion_secs > 1600.0);
        assert!(out.log.mean_completion_secs < 3000.0);
        // Everything released afterwards.
        assert_eq!(ctl.tenants.get(csp).unwrap().in_use, DataRate::ZERO);
        // Paid only for what was held.
        assert!(out.gbps_hours < 20.0 * 4.0);
        assert!(out.gbps_hours > 0.0);
    }

    #[test]
    fn multi_pair_full_mesh_shares_one_carrier() {
        let (net, ids) = photonic::PhotonicNetwork::testbed(6);
        let mut ctl = Controller::new(
            net,
            griphon::controller::ControllerConfig {
                ems: photonic::EmsProfile::calibrated_deterministic(),
                equalization: photonic::EqualizationModel::calibrated_deterministic(),
                ..griphon::controller::ControllerConfig::default()
            },
        );
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(400));
        let mk = |id: u32, from: DataCenterId, to: DataCenterId| BulkJob {
            id: JobId::new(id),
            from,
            to,
            size: DataSize::from_terabytes(4),
            created: SimTime::ZERO,
            deadline: None,
        };
        let d = |i| DataCenterId::new(i);
        let pairs = vec![
            (ids.i, ids.iv, vec![mk(0, d(0), d(1))]),
            (ids.i, ids.iii, vec![mk(1, d(0), d(2))]),
            (ids.iii, ids.iv, vec![mk(2, d(2), d(1))]),
        ];
        let runner = MultiPairBod {
            policy: BodPolicy {
                max_rate: DataRate::from_gbps(20),
                drain_target: SimDuration::from_mins(30),
                idle_release: SimDuration::from_mins(5),
            },
        };
        let outcomes = runner.run(
            &mut ctl,
            csp,
            pairs,
            SimDuration::from_hours(6),
            SimDuration::from_secs(60),
        );
        assert_eq!(outcomes.len(), 3);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.log.completed, 1, "pair {i}");
            assert!(o.setups >= 1);
        }
        // All capacity back at the carrier afterwards.
        assert_eq!(ctl.tenants.get(csp).unwrap().in_use, DataRate::ZERO);
        // Concurrency really happened: the carrier held wavelengths for
        // several pairs in the same period (peak over pairs > any single
        // pair's needs alone would imply).
        let total_setups: u64 = outcomes.iter().map(|o| o.setups).sum();
        assert!(total_setups >= 3);
    }

    #[test]
    fn deadline_policy_holds_less_for_loose_deadlines() {
        // Same 2 TB job, deadline 8 h away: the deadline policy should
        // order less capacity (lower gbps-hours) than the fixed
        // 30-minute-drain policy while still making the deadline.
        let mk_job = || BulkJob {
            id: JobId::new(0),
            from: DataCenterId::new(0),
            to: DataCenterId::new(1),
            size: DataSize::from_terabytes(2),
            created: SimTime::ZERO,
            deadline: Some(SimTime::from_secs(8 * 3600)),
        };
        let (mut ctl, from, to, csp) = bod_setup();
        let eager = BodPolicy {
            max_rate: DataRate::from_gbps(40),
            drain_target: SimDuration::from_mins(30),
            idle_release: SimDuration::from_mins(5),
        }
        .run(
            &mut ctl,
            csp,
            from,
            to,
            vec![mk_job()],
            SimDuration::from_hours(10),
            SimDuration::from_secs(60),
        );
        let (mut ctl2, from2, to2, csp2) = bod_setup();
        let lazy = DeadlineBodPolicy::default().run(
            &mut ctl2,
            csp2,
            from2,
            to2,
            vec![mk_job()],
            SimDuration::from_hours(10),
            SimDuration::from_secs(60),
        );
        assert_eq!(eager.log.completed, 1);
        assert_eq!(lazy.log.completed, 1);
        assert!((lazy.log.deadline_hit_rate - 1.0).abs() < 1e-9);
        assert!(
            lazy.peak_gbps <= eager.peak_gbps,
            "lazy peak {} vs eager {}",
            lazy.peak_gbps,
            eager.peak_gbps
        );
        assert!(lazy.setups <= eager.setups);
    }

    #[test]
    fn deadline_policy_escalates_for_tight_deadlines() {
        let job = BulkJob {
            id: JobId::new(0),
            from: DataCenterId::new(0),
            to: DataCenterId::new(1),
            size: DataSize::from_terabytes(10),
            created: SimTime::ZERO,
            // 10 TB in 45 min needs ~30 G: the policy must stack
            // wavelengths fast.
            deadline: Some(SimTime::from_secs(45 * 60)),
        };
        let (mut ctl, from, to, csp) = bod_setup();
        let out = DeadlineBodPolicy {
            max_rate: DataRate::from_gbps(40),
            ..DeadlineBodPolicy::default()
        }
        .run(
            &mut ctl,
            csp,
            from,
            to,
            vec![job],
            SimDuration::from_hours(2),
            SimDuration::from_secs(30),
        );
        assert_eq!(out.log.completed, 1);
        assert!(
            out.setups >= 3,
            "needed several wavelengths: {}",
            out.setups
        );
        assert!(out.peak_gbps >= 30.0);
    }

    #[test]
    fn bod_scales_with_backlog() {
        let (mut ctl, from, to, csp) = bod_setup();
        let policy = BodPolicy {
            max_rate: DataRate::from_gbps(40),
            drain_target: SimDuration::from_mins(10),
            idle_release: SimDuration::from_mins(5),
        };
        // A large backlog: 20 TB, drain target 10 min → wants the full
        // 40 G (4 wavelengths).
        let out = policy.run(
            &mut ctl,
            csp,
            from,
            to,
            vec![job(0, 20, 0)],
            SimDuration::from_hours(6),
            SimDuration::from_secs(30),
        );
        assert_eq!(out.log.completed, 1);
        assert!(out.setups >= 3, "setups={}", out.setups);
        assert!(out.peak_gbps >= 30.0, "peak={}", out.peak_gbps);
    }
}
