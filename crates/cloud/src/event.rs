//! Exact bulk advancement for FIFO transfer queues.
//!
//! The event-driven engine in [`crate::scheduler`] never simulates a tick
//! it can predict: between two decision points it knows the service rate
//! is constant, so the whole stretch can be replayed analytically. The
//! subtlety is that "analytically" must mean *bit-identically* to the
//! tick engine, whose arithmetic quantizes per tick:
//!
//! - each full tick moves exactly `rate.over(tick)` bits (integer
//!   truncation in [`DataRate::over`]), and
//! - a transfer finishing mid-tick hands the remainder of that tick to
//!   its FIFO successor, with the completion instant computed by
//!   [`simcore::DataSize::time_at`].
//!
//! [`FifoQueue::advance_ticks`] therefore skips the ticks in which the
//! head job cannot finish with one integer division (they all move the
//! same `rate.over(tick)` bits) and replays the tick containing each
//! completion through the exact per-tick code path. Cost is
//! O(completions + 1) per constant-rate segment instead of O(ticks).

use simcore::{DataRate, DataSize, SimDuration, SimTime};

use crate::transfer::Transfer;
use crate::workload::BulkJob;

/// Snap `at` (an absolute instant) up to the tick grid anchored at
/// `start`: the first grid point at or after `at`.
pub(crate) fn grid_ceil(start: SimTime, at: SimTime, tick: SimDuration) -> SimTime {
    start + tick * at.since(start).div_ceil(tick)
}

/// FIFO transfer queue with an exact fast-forward operation.
///
/// Mirrors the tick engine's `PairRun` (sorted arrivals, head-of-line
/// service) but keeps an O(1) head cursor and an incrementally-maintained
/// integer backlog instead of rescanning the transfer list every tick.
/// Completed transfers form a contiguous prefix because only the head
/// ever receives bandwidth.
pub(crate) struct FifoQueue {
    pending: Vec<BulkJob>,
    pub(crate) transfers: Vec<Transfer>,
    next_arrival: usize,
    head: usize,
    backlog: DataSize,
}

impl FifoQueue {
    pub(crate) fn new(mut jobs: Vec<BulkJob>) -> FifoQueue {
        jobs.sort_by_key(|j| (j.created, j.id));
        FifoQueue {
            pending: jobs,
            transfers: Vec::new(),
            next_arrival: 0,
            head: 0,
            backlog: DataSize::ZERO,
        }
    }

    /// Admit jobs created at or before `now` (relative time).
    pub(crate) fn admit(&mut self, now: SimTime) {
        while self.next_arrival < self.pending.len()
            && self.pending[self.next_arrival].created <= now
        {
            let job = self.pending[self.next_arrival].clone();
            self.backlog += job.size;
            self.transfers.push(Transfer::new(job));
            self.next_arrival += 1;
        }
    }

    /// Creation time of the next not-yet-admitted job.
    pub(crate) fn next_arrival_time(&self) -> Option<SimTime> {
        self.pending.get(self.next_arrival).map(|j| j.created)
    }

    /// Bits queued but unfinished. Maintained incrementally; integer
    /// arithmetic, so identical to the tick engine's per-tick rescan.
    pub(crate) fn backlog(&self) -> DataSize {
        self.backlog
    }

    /// True when at least one admitted transfer is unfinished.
    pub(crate) fn has_work(&self) -> bool {
        self.head < self.transfers.len()
    }

    pub(crate) fn all_done(&self) -> bool {
        self.next_arrival == self.pending.len() && !self.has_work()
    }

    /// The unfinished transfers, oldest first.
    pub(crate) fn unfinished(&self) -> impl Iterator<Item = &Transfer> {
        self.transfers[self.head..].iter()
    }

    /// Give the full `rate` to the FIFO head for `dt`, splitting across
    /// completions exactly like the tick engine does within one tick.
    pub(crate) fn advance_window(&mut self, now: SimTime, dt: SimDuration, rate: DataRate) {
        let mut t = now;
        let end = now + dt;
        while t < end {
            let Some(head) = self.transfers.get_mut(self.head) else {
                return;
            };
            let window = end.since(t);
            let before = head.remaining;
            head.advance(t, window, rate);
            self.backlog -= before - head.remaining;
            match head.completed {
                Some(done_at) if done_at < end => {
                    self.head += 1;
                    t = done_at; // remainder of the tick goes to the next job
                }
                _ => {
                    if head.is_done() {
                        self.head += 1;
                    }
                    return;
                }
            }
        }
    }

    /// Fast-forward `n` ticks of constant `rate` starting at `seg_start`
    /// (the time of the first tick), replaying completions exactly.
    ///
    /// Returns the 0-based index of the tick during which the queue
    /// drained (head caught up with the admitted transfers), or `None`
    /// if work remains (or none was pending) after all `n` ticks.
    pub(crate) fn advance_ticks(
        &mut self,
        seg_start: SimTime,
        n: u64,
        tick: SimDuration,
        rate: DataRate,
    ) -> Option<u64> {
        if rate == DataRate::ZERO {
            return None;
        }
        let per_tick = rate.over(tick);
        if per_tick.is_zero() {
            // Degenerate: the quantized tick moves nothing, ever.
            return None;
        }
        let mut i = 0u64;
        while i < n {
            let head = self.transfers.get(self.head)?;
            let remaining = head.remaining;
            if per_tick < remaining {
                // The head survives s more whole ticks: every one of them
                // subtracts exactly `per_tick` bits, so do it in one step.
                let s = (remaining.bits() - 1) / per_tick.bits();
                let skip = s.min(n - i);
                if skip > 0 {
                    // skip ≤ s ⇒ skip·per_tick < remaining: no overflow,
                    // no completion.
                    let moved = DataSize::from_bits(per_tick.bits() * skip);
                    self.transfers[self.head].remaining = remaining - moved;
                    self.backlog -= moved;
                    i += skip;
                }
                if i == n {
                    return None;
                }
            }
            // The head finishes during tick `i`: replay it through the
            // exact per-tick path (mid-tick hand-off included).
            self.advance_window(seg_start + tick * i, tick, rate);
            if !self.has_work() {
                return Some(i);
            }
            i += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DataCenterId;
    use crate::workload::JobId;

    fn job(id: u32, gb: u64, created_s: u64) -> BulkJob {
        BulkJob {
            id: JobId::new(id),
            from: DataCenterId::new(0),
            to: DataCenterId::new(1),
            size: DataSize::from_gigabytes(gb),
            created: SimTime::from_secs(created_s),
            deadline: None,
        }
    }

    /// Reference: the tick engine's inner loop, verbatim.
    fn tick_reference(
        jobs: Vec<BulkJob>,
        ticks: u64,
        tick: SimDuration,
        rate: DataRate,
    ) -> Vec<Transfer> {
        let mut q = FifoQueue::new(jobs);
        let mut t = SimTime::ZERO;
        q.admit(t);
        for _ in 0..ticks {
            q.advance_window(t, tick, rate);
            t += tick;
        }
        q.transfers
    }

    #[test]
    fn bulk_advance_matches_per_tick_advance() {
        let tick = SimDuration::from_secs(7);
        let rate = DataRate::from_mbps(933);
        let jobs = vec![job(0, 10, 0), job(1, 3, 0), job(2, 17, 0), job(3, 1, 0)];
        let reference = tick_reference(jobs.clone(), 500, tick, rate);

        let mut q = FifoQueue::new(jobs);
        q.admit(SimTime::ZERO);
        q.advance_ticks(SimTime::ZERO, 500, tick, rate);
        assert_eq!(q.transfers.len(), reference.len());
        for (a, b) in q.transfers.iter().zip(reference.iter()) {
            assert_eq!(a.remaining, b.remaining);
            assert_eq!(a.completed, b.completed);
        }
    }

    #[test]
    fn drain_tick_index_is_exact() {
        let tick = SimDuration::from_secs(10);
        let rate = DataRate::from_gbps(1);
        // 3 GB = 24 Gbit at 10 Gbit per tick → completes during tick 2
        // (0-based).
        let mut q = FifoQueue::new(vec![job(0, 3, 0)]);
        q.admit(SimTime::ZERO);
        assert_eq!(q.advance_ticks(SimTime::ZERO, 100, tick, rate), Some(2));
        assert!(q.all_done());
        assert!(q.backlog().is_zero());
    }

    #[test]
    fn zero_rate_moves_nothing() {
        let mut q = FifoQueue::new(vec![job(0, 5, 0)]);
        q.admit(SimTime::ZERO);
        let before = q.backlog();
        assert_eq!(
            q.advance_ticks(
                SimTime::ZERO,
                1000,
                SimDuration::from_secs(60),
                DataRate::ZERO
            ),
            None
        );
        assert_eq!(q.backlog(), before);
    }
}
