//! Piecewise-constant interactive-traffic profiles.
//!
//! The tick engine samples interactive load through a closure at every
//! tick; the event engine instead needs to *enumerate* the instants at
//! which the load changes, so it can fast-forward through the constant
//! stretches in between. [`RateProfile`] is that representation: a step
//! function over simulated time, queryable at a point and iterable by
//! breakpoint.

use simcore::{DataRate, SimDuration, SimTime};

/// A piecewise-constant bandwidth profile: the rate at `t` is the value
/// of the last step at or before `t`, and the last step extends to
/// infinity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateProfile {
    /// `(start, rate)` steps, strictly increasing in time, first at
    /// [`SimTime::ZERO`].
    steps: Vec<(SimTime, DataRate)>,
}

impl RateProfile {
    /// A constant rate for all time.
    pub fn flat(rate: DataRate) -> RateProfile {
        RateProfile {
            steps: vec![(SimTime::ZERO, rate)],
        }
    }

    /// Build from explicit steps. Steps are sorted by time; for duplicate
    /// times the last value wins; a step at time zero is added (rate zero)
    /// if none is given; consecutive equal rates are merged.
    pub fn from_steps(steps: Vec<(SimTime, DataRate)>) -> RateProfile {
        let mut steps = steps;
        steps.sort_by_key(|(t, _)| *t);
        let mut out: Vec<(SimTime, DataRate)> = Vec::with_capacity(steps.len() + 1);
        out.push((SimTime::ZERO, DataRate::ZERO));
        for (t, r) in steps {
            if out.last().map(|(lt, _)| *lt) == Some(t) {
                out.last_mut().unwrap().1 = r;
            } else if out.last().map(|(_, lr)| *lr) != Some(r) {
                out.push((t, r));
            }
        }
        RateProfile { steps: out }
    }

    /// Sample a closure on a regular grid and collapse equal neighbours.
    ///
    /// Used to convert the tick engine's closure-based interactive load
    /// into breakpoint form: sampling with `step` equal to the simulation
    /// tick reproduces exactly what the tick engine would have seen.
    pub fn sampled(
        f: impl Fn(SimTime) -> DataRate,
        until: SimTime,
        step: SimDuration,
    ) -> RateProfile {
        assert!(!step.is_zero(), "sampling step must be positive");
        let mut steps = Vec::new();
        let mut t = SimTime::ZERO;
        let mut last: Option<DataRate> = None;
        while t <= until {
            let r = f(t);
            if last != Some(r) {
                steps.push((t, r));
                last = Some(r);
            }
            t += step;
        }
        RateProfile { steps }
    }

    /// The rate in force at `t`.
    pub fn rate_at(&self, t: SimTime) -> DataRate {
        let idx = self.steps.partition_point(|(s, _)| *s <= t);
        // idx ≥ 1 because the first step is at time zero.
        self.steps[idx - 1].1
    }

    /// The first breakpoint strictly after `t`, if any.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        let idx = self.steps.partition_point(|(s, _)| *s <= t);
        self.steps.get(idx).map(|(s, _)| *s)
    }

    /// Number of steps (diagnostics).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the profile has no steps beyond the implicit zero start.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_profile_constant_everywhere() {
        let p = RateProfile::flat(DataRate::from_gbps(3));
        assert_eq!(p.rate_at(SimTime::ZERO), DataRate::from_gbps(3));
        assert_eq!(
            p.rate_at(SimTime::from_secs(1 << 30)),
            DataRate::from_gbps(3)
        );
        assert_eq!(p.next_change_after(SimTime::ZERO), None);
    }

    #[test]
    fn steps_take_effect_at_their_start() {
        let p = RateProfile::from_steps(vec![
            (SimTime::from_secs(10), DataRate::from_gbps(5)),
            (SimTime::from_secs(20), DataRate::from_gbps(1)),
        ]);
        assert_eq!(p.rate_at(SimTime::ZERO), DataRate::ZERO);
        assert_eq!(p.rate_at(SimTime::from_secs(9)), DataRate::ZERO);
        assert_eq!(p.rate_at(SimTime::from_secs(10)), DataRate::from_gbps(5));
        assert_eq!(p.rate_at(SimTime::from_secs(19)), DataRate::from_gbps(5));
        assert_eq!(p.rate_at(SimTime::from_secs(25)), DataRate::from_gbps(1));
        assert_eq!(
            p.next_change_after(SimTime::from_secs(10)),
            Some(SimTime::from_secs(20))
        );
        assert_eq!(p.next_change_after(SimTime::from_secs(20)), None);
    }

    #[test]
    fn sampled_matches_closure_on_grid() {
        let f = |t: SimTime| DataRate::from_mbps(100 + (t.as_nanos() / 1_000_000_000) % 7);
        let step = SimDuration::from_secs(1);
        let until = SimTime::from_secs(100);
        let p = RateProfile::sampled(f, until, step);
        let mut t = SimTime::ZERO;
        while t <= until {
            assert_eq!(p.rate_at(t), f(t), "at {t}");
            t += step;
        }
    }

    #[test]
    fn equal_neighbours_collapse() {
        let p = RateProfile::sampled(
            |_| DataRate::from_gbps(2),
            SimTime::from_secs(1000),
            SimDuration::from_secs(1),
        );
        assert_eq!(p.len(), 1);
    }
}
