//! Synthetic inter-data-center workloads.
//!
//! Built to the published characteristics the paper cites:
//!
//! - **Chen et al. \\[6\\]** (Yahoo! datasets): inter-DC traffic peaks are
//!   dominated by *background, non-interactive bulk transfers*; the
//!   interactive component follows a diurnal curve.
//! - **§1**: bulk sizes range "from several terabytes … to petabytes",
//!   i.e. heavy-tailed — modelled as bounded Pareto.
//! - **Forrester \\[14\\]**: a majority of CSPs transfer among three or more
//!   data centers — the default scenario uses three sites and full-mesh
//!   replication.
//!
//! Everything is a deterministic function of the seed, so experiments
//! cite `(config, seed)` and reproduce exactly.

use serde::{Deserialize, Serialize};
use simcore::{define_id, DataRate, DataSize, SimDuration, SimRng, SimTime};

use crate::datacenter::DataCenterId;

define_id!(
    /// Identifier of a bulk-transfer job.
    JobId,
    "job"
);

/// One bulk transfer to be performed between two sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BulkJob {
    /// This job's id.
    pub id: JobId,
    /// Source site.
    pub from: DataCenterId,
    /// Destination site.
    pub to: DataCenterId,
    /// Bytes to move.
    pub size: DataSize,
    /// When the job was submitted.
    pub created: SimTime,
    /// Completion deadline, if the application has one (backups do;
    /// opportunistic replication does not).
    pub deadline: Option<SimTime>,
}

/// Workload shape parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Mean bulk-job inter-arrival time per site pair.
    pub bulk_interarrival: SimDuration,
    /// Pareto scale: the minimum bulk size.
    pub bulk_min: DataSize,
    /// Pareto shape (1 < α < 2 ⇒ heavy tail with finite mean).
    pub bulk_alpha: f64,
    /// Cap on a single job (petabyte-scale ceiling).
    pub bulk_max: DataSize,
    /// Fraction of jobs carrying a deadline.
    pub deadline_fraction: f64,
    /// Deadline slack: deadline = created + slack × (size / 10 G time).
    pub deadline_slack: f64,
    /// Peak interactive demand per site pair (diurnal curve's crest).
    pub interactive_peak: DataRate,
    /// Trough-to-peak ratio of the diurnal curve.
    pub diurnal_floor: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            bulk_interarrival: SimDuration::from_hours(2),
            bulk_min: DataSize::from_terabytes(1),
            bulk_alpha: 1.3,
            bulk_max: DataSize::from_terabytes(500),
            deadline_fraction: 0.5,
            deadline_slack: 3.0,
            interactive_peak: DataRate::from_gbps(2),
            diurnal_floor: 0.3,
        }
    }
}

/// Deterministic workload generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    /// The shape parameters.
    pub config: WorkloadConfig,
    rng: SimRng,
    next_job: u32,
}

impl WorkloadGenerator {
    /// A generator with the given seed.
    pub fn new(config: WorkloadConfig, seed: u64) -> WorkloadGenerator {
        WorkloadGenerator {
            config,
            rng: SimRng::new(seed),
            next_job: 0,
        }
    }

    /// Interactive demand between a site pair at time `t` — a smooth
    /// diurnal curve with its peak at local noon and floor at midnight.
    pub fn interactive_rate(&self, t: SimTime) -> DataRate {
        let scale = simcore::diurnal_day_factor(t.as_secs_f64(), self.config.diurnal_floor);
        DataRate::from_bps((self.config.interactive_peak.bps() as f64 * scale) as u64)
    }

    /// Generate all bulk jobs for one site pair over `[0, horizon)`,
    /// Poisson arrivals with bounded-Pareto sizes.
    pub fn bulk_jobs(
        &mut self,
        from: DataCenterId,
        to: DataCenterId,
        horizon: SimDuration,
    ) -> Vec<BulkJob> {
        let mut jobs = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let gap = SimDuration::from_secs_f64(
                self.rng.exp(self.config.bulk_interarrival.as_secs_f64()),
            );
            t += gap;
            if t.as_nanos() >= horizon.as_nanos() {
                break;
            }
            let bits = simcore::bounded_pareto_bits(
                &mut self.rng,
                self.config.bulk_min.bits() as f64,
                self.config.bulk_alpha,
                self.config.bulk_max.bits(),
            );
            let size = DataSize::from_bits(bits);
            let deadline = self.rng.chance(self.config.deadline_fraction).then(|| {
                let base = size.time_at(DataRate::from_gbps(10));
                t + base.mul_f64(self.config.deadline_slack)
            });
            let id = JobId::new(self.next_job);
            self.next_job += 1;
            jobs.push(BulkJob {
                id,
                from,
                to,
                size,
                created: t,
                deadline,
            });
        }
        jobs
    }

    /// Generate a full-mesh workload over the given pairs, merged and
    /// sorted by creation time.
    pub fn full_mesh(
        &mut self,
        pairs: &[(DataCenterId, DataCenterId)],
        horizon: SimDuration,
    ) -> Vec<BulkJob> {
        let mut all = Vec::new();
        for (a, b) in pairs {
            all.extend(self.bulk_jobs(*a, *b, horizon));
        }
        all.sort_by_key(|j| (j.created, j.id));
        all
    }

    /// Nightly backup jobs: one fixed-size job per pair per simulated
    /// day at 02:00, with a dawn deadline — the §1 "backup and
    /// replication applications" pattern.
    pub fn nightly_backups(
        &mut self,
        pairs: &[(DataCenterId, DataCenterId)],
        size: DataSize,
        days: u64,
    ) -> Vec<BulkJob> {
        let mut jobs = Vec::new();
        for day in 0..days {
            let t = SimTime::from_secs(day * 86_400 + 2 * 3_600);
            for (a, b) in pairs {
                let id = JobId::new(self.next_job);
                self.next_job += 1;
                jobs.push(BulkJob {
                    id,
                    from: *a,
                    to: *b,
                    size,
                    created: t,
                    deadline: Some(t + SimDuration::from_hours(4)),
                });
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(i: u32) -> DataCenterId {
        DataCenterId::new(i)
    }

    #[test]
    fn generation_is_deterministic() {
        let mut g1 = WorkloadGenerator::new(WorkloadConfig::default(), 7);
        let mut g2 = WorkloadGenerator::new(WorkloadConfig::default(), 7);
        let a = g1.bulk_jobs(dc(0), dc(1), SimDuration::from_hours(240));
        let b = g2.bulk_jobs(dc(0), dc(1), SimDuration::from_hours(240));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn sizes_are_heavy_tailed_and_bounded() {
        let cfg = WorkloadConfig::default();
        let mut g = WorkloadGenerator::new(cfg.clone(), 11);
        let jobs = g.bulk_jobs(dc(0), dc(1), SimDuration::from_hours(24 * 365));
        assert!(jobs.len() > 1000);
        let min = jobs.iter().map(|j| j.size).min().unwrap();
        let max = jobs.iter().map(|j| j.size).max().unwrap();
        assert!(min >= cfg.bulk_min);
        assert!(max <= cfg.bulk_max);
        // Heavy tail: the top 10% of jobs carry the majority of bytes.
        let mut sizes: Vec<u64> = jobs.iter().map(|j| j.size.bits()).collect();
        sizes.sort_unstable();
        let total: u128 = sizes.iter().map(|s| *s as u128).sum();
        let top: u128 = sizes[sizes.len() * 9 / 10..]
            .iter()
            .map(|s| *s as u128)
            .sum();
        assert!(top * 2 > total, "top decile carries {top} of {total} bits");
    }

    #[test]
    fn arrivals_match_configured_rate() {
        let cfg = WorkloadConfig::default();
        let mut g = WorkloadGenerator::new(cfg, 13);
        let horizon = SimDuration::from_hours(24 * 200);
        let jobs = g.bulk_jobs(dc(0), dc(1), horizon);
        let expect = horizon.as_secs_f64() / (2.0 * 3600.0);
        let got = jobs.len() as f64;
        assert!(
            (got - expect).abs() < expect * 0.1,
            "got {got}, expected ≈{expect}"
        );
        // Sorted by construction, within the horizon.
        assert!(jobs.windows(2).all(|w| w[0].created <= w[1].created));
        assert!(jobs.iter().all(|j| j.created < SimTime::ZERO + horizon));
    }

    #[test]
    fn diurnal_curve_shape() {
        let g = WorkloadGenerator::new(WorkloadConfig::default(), 1);
        let midnight = g.interactive_rate(SimTime::ZERO);
        let noon = g.interactive_rate(SimTime::from_secs(43_200));
        let next_midnight = g.interactive_rate(SimTime::from_secs(86_400));
        assert!(noon > midnight);
        assert_eq!(midnight, next_midnight, "24 h periodic");
        // Floor ratio respected.
        let peak = g.config.interactive_peak.bps() as f64;
        assert!((midnight.bps() as f64 - peak * 0.3).abs() < peak * 0.01);
        assert!((noon.bps() as f64 - peak).abs() < peak * 0.01);
    }

    #[test]
    fn deadlines_scale_with_size() {
        let cfg = WorkloadConfig {
            deadline_fraction: 1.0,
            ..WorkloadConfig::default()
        };
        let mut g = WorkloadGenerator::new(cfg, 17);
        let jobs = g.bulk_jobs(dc(0), dc(1), SimDuration::from_hours(1000));
        for j in &jobs {
            let d = j.deadline.expect("all jobs have deadlines");
            let needed = j.size.time_at(DataRate::from_gbps(10));
            assert_eq!(d, j.created + needed.mul_f64(3.0));
        }
    }

    #[test]
    fn nightly_backups_daily_at_2am() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::default(), 19);
        let pairs = [(dc(0), dc(1)), (dc(0), dc(2))];
        let jobs = g.nightly_backups(&pairs, DataSize::from_terabytes(10), 3);
        assert_eq!(jobs.len(), 6);
        assert_eq!(jobs[0].created, SimTime::from_secs(2 * 3600));
        assert_eq!(jobs[2].created, SimTime::from_secs(86_400 + 2 * 3600));
        assert!(jobs.iter().all(|j| j.deadline.is_some()));
    }

    #[test]
    fn full_mesh_merges_and_sorts() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::default(), 23);
        let pairs = [(dc(0), dc(1)), (dc(1), dc(2)), (dc(0), dc(2))];
        let jobs = g.full_mesh(&pairs, SimDuration::from_hours(24 * 30));
        assert!(jobs.windows(2).all(|w| w[0].created <= w[1].created));
        // All three pairs appear.
        for (a, b) in &pairs {
            assert!(jobs.iter().any(|j| j.from == *a && j.to == *b));
        }
    }
}
