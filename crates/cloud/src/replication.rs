//! Replication policies: how data centers decide *what* to transfer.
//!
//! §1: CSPs "often replicate the content on a regular basis across
//! multiple data centers" for performance and for "high availability
//! under failures", and "a majority of CSPs perform bulk data transfer
//! among three or more data centers" (Forrester). The workload module
//! generates generic bulk jobs; this module generates the *structured*
//! jobs real replication policies produce:
//!
//! - [`ReplicationPolicy::PeriodicBackup`] — every site pushes a full
//!   snapshot to a designated backup site every period.
//! - [`ReplicationPolicy::GeoRedundant`] — content written at any site
//!   (a growth-rate model) is replicated to `copies − 1` other sites in
//!   delta batches, the geo-redundancy pattern of Hamilton's
//!   inter-datacenter replication note \\[20\\].
//! - [`ReplicationPolicy::VodPush`] — a content library refresh pushed
//!   from an origin to every edge site at once (the testbed's
//!   video-on-demand application).

use serde::{Deserialize, Serialize};
use simcore::{DataRate, DataSize, SimDuration, SimTime};

use crate::datacenter::{DataCenterId, DataCenterSet};
use crate::workload::{BulkJob, JobId};

/// A replication behaviour that emits bulk jobs over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplicationPolicy {
    /// Full snapshot from every site to `target` every `period`.
    PeriodicBackup {
        /// The backup site.
        target: DataCenterId,
        /// Snapshot period.
        period: SimDuration,
        /// Snapshot size per source site.
        snapshot: DataSize,
        /// Deadline slack as a multiple of the period (≤1.0 means the
        /// snapshot must land before the next one starts).
        deadline_frac: f64,
    },
    /// Continuous content growth at `ingest_rate` per site, shipped to
    /// `copies − 1` other sites in `batch`-sized deltas.
    GeoRedundant {
        /// Total replicas of each byte (including the original).
        copies: usize,
        /// Per-site ingest rate.
        ingest_rate: DataRate,
        /// Delta batch size that triggers a transfer.
        batch: DataSize,
    },
    /// One origin pushes a library refresh of `library` bytes to every
    /// other site at `at`.
    VodPush {
        /// The origin site.
        origin: DataCenterId,
        /// Library refresh size.
        library: DataSize,
        /// When the push is scheduled.
        at: SimTime,
    },
}

impl ReplicationPolicy {
    /// Emit this policy's bulk jobs over `[0, horizon)` for the given
    /// fleet, consuming ids from `next_id`.
    pub fn jobs(
        &self,
        dcs: &DataCenterSet,
        horizon: SimDuration,
        next_id: &mut u32,
    ) -> Vec<BulkJob> {
        let mut out = Vec::new();
        let mut fresh = |out: &mut Vec<BulkJob>,
                         from: DataCenterId,
                         to: DataCenterId,
                         size: DataSize,
                         created: SimTime,
                         deadline: Option<SimTime>| {
            let id = JobId::new(*next_id);
            *next_id += 1;
            out.push(BulkJob {
                id,
                from,
                to,
                size,
                created,
                deadline,
            });
        };
        match self {
            ReplicationPolicy::PeriodicBackup {
                target,
                period,
                snapshot,
                deadline_frac,
            } => {
                assert!(!period.is_zero(), "backup period must be positive");
                let mut t = SimTime::ZERO + *period;
                while t < SimTime::ZERO + horizon {
                    for dc in dcs.iter() {
                        if dc.id != *target {
                            let deadline = t + period.mul_f64(*deadline_frac);
                            fresh(&mut out, dc.id, *target, *snapshot, t, Some(deadline));
                        }
                    }
                    t += *period;
                }
            }
            ReplicationPolicy::GeoRedundant {
                copies,
                ingest_rate,
                batch,
            } => {
                assert!(*copies >= 2, "geo-redundancy needs ≥ 2 copies");
                assert!(!batch.is_zero(), "batch must be positive");
                // A batch fills every `batch / ingest_rate`.
                let fill = batch.time_at(*ingest_rate);
                if fill == SimDuration::MAX {
                    return out;
                }
                for dc in dcs.iter() {
                    let replicas: Vec<DataCenterId> = dcs
                        .iter()
                        .filter(|d| d.id != dc.id)
                        .take(copies - 1)
                        .map(|d| d.id)
                        .collect();
                    let mut t = SimTime::ZERO + fill;
                    while t < SimTime::ZERO + horizon {
                        for r in &replicas {
                            fresh(&mut out, dc.id, *r, *batch, t, None);
                        }
                        t += fill;
                    }
                }
            }
            ReplicationPolicy::VodPush {
                origin,
                library,
                at,
            } => {
                if *at < SimTime::ZERO + horizon {
                    for dc in dcs.iter() {
                        if dc.id != *origin {
                            fresh(&mut out, *origin, dc.id, *library, *at, None);
                        }
                    }
                }
            }
        }
        out.sort_by_key(|j| (j.created, j.id));
        out
    }

    /// Total bytes this policy moves over the horizon — capacity
    /// planning input.
    pub fn bytes_over(&self, dcs: &DataCenterSet, horizon: SimDuration) -> DataSize {
        let mut next = 0;
        self.jobs(dcs, horizon, &mut next)
            .iter()
            .map(|j| j.size)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonic::RoadmId;

    fn fleet(n: usize) -> DataCenterSet {
        let mut dcs = DataCenterSet::new();
        for i in 0..n {
            dcs.add(
                format!("dc{i}"),
                RoadmId::new(i as u32),
                DataRate::from_gbps(40),
            );
        }
        dcs
    }

    #[test]
    fn periodic_backup_targets_one_site() {
        let dcs = fleet(3);
        let target = DataCenterId::new(2);
        let policy = ReplicationPolicy::PeriodicBackup {
            target,
            period: SimDuration::from_hours(24),
            snapshot: DataSize::from_terabytes(10),
            deadline_frac: 0.25,
        };
        let mut id = 0;
        let jobs = policy.jobs(&dcs, SimDuration::from_hours(72), &mut id);
        // 2 sources × 2 full periods inside the horizon (t=24h, 48h).
        assert_eq!(jobs.len(), 4);
        assert!(jobs.iter().all(|j| j.to == target && j.from != target));
        // Deadlines: 6 h after each snapshot.
        let first = &jobs[0];
        assert_eq!(
            first.deadline,
            Some(first.created + SimDuration::from_hours(6))
        );
    }

    #[test]
    fn geo_redundancy_fans_out_deltas() {
        let dcs = fleet(3);
        let policy = ReplicationPolicy::GeoRedundant {
            copies: 3,
            ingest_rate: DataRate::from_gbps(1),
            batch: DataSize::from_terabytes(1),
        };
        // 1 TB at 1 Gbps fills in 8000 s; horizon 24 h → 10 batches/site.
        let mut id = 0;
        let jobs = policy.jobs(&dcs, SimDuration::from_hours(24), &mut id);
        // 3 sites × 10 batches × 2 replicas = 60.
        assert_eq!(jobs.len(), 60);
        // Every site replicates to both others.
        for dc in dcs.iter() {
            let outgoing: Vec<_> = jobs.iter().filter(|j| j.from == dc.id).collect();
            let mut targets: Vec<_> = outgoing.iter().map(|j| j.to).collect();
            targets.sort();
            targets.dedup();
            assert_eq!(targets.len(), 2);
        }
    }

    #[test]
    fn vod_push_reaches_every_edge() {
        let dcs = fleet(4);
        let origin = DataCenterId::new(0);
        let policy = ReplicationPolicy::VodPush {
            origin,
            library: DataSize::from_terabytes(50),
            at: SimTime::from_secs(3600),
        };
        let mut id = 0;
        let jobs = policy.jobs(&dcs, SimDuration::from_hours(2), &mut id);
        assert_eq!(jobs.len(), 3);
        assert!(jobs.iter().all(|j| j.from == origin));
        // A push scheduled beyond the horizon emits nothing.
        let late = ReplicationPolicy::VodPush {
            origin,
            library: DataSize::from_terabytes(50),
            at: SimTime::from_secs(3 * 3600),
        };
        assert!(late
            .jobs(&dcs, SimDuration::from_hours(2), &mut id)
            .is_empty());
    }

    #[test]
    fn bytes_over_sums_jobs() {
        let dcs = fleet(3);
        let policy = ReplicationPolicy::PeriodicBackup {
            target: DataCenterId::new(0),
            period: SimDuration::from_hours(24),
            snapshot: DataSize::from_terabytes(10),
            deadline_frac: 0.5,
        };
        // 2 sources × 1 period in 36 h → 20 TB.
        assert_eq!(
            policy.bytes_over(&dcs, SimDuration::from_hours(36)),
            DataSize::from_terabytes(20)
        );
    }

    #[test]
    fn ids_are_unique_across_policies() {
        let dcs = fleet(3);
        let mut id = 0;
        let a = ReplicationPolicy::PeriodicBackup {
            target: DataCenterId::new(0),
            period: SimDuration::from_hours(12),
            snapshot: DataSize::from_terabytes(1),
            deadline_frac: 1.0,
        }
        .jobs(&dcs, SimDuration::from_hours(48), &mut id);
        let b = ReplicationPolicy::GeoRedundant {
            copies: 2,
            ingest_rate: DataRate::from_gbps(2),
            batch: DataSize::from_terabytes(2),
        }
        .jobs(&dcs, SimDuration::from_hours(48), &mut id);
        let mut all: Vec<u32> = a.iter().chain(b.iter()).map(|j| j.id.raw()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "no id reuse");
    }

    #[test]
    #[should_panic(expected = "copies")]
    fn geo_redundancy_requires_two_copies() {
        let dcs = fleet(2);
        let mut id = 0;
        ReplicationPolicy::GeoRedundant {
            copies: 1,
            ingest_rate: DataRate::from_gbps(1),
            batch: DataSize::from_terabytes(1),
        }
        .jobs(&dcs, SimDuration::from_hours(1), &mut id);
    }
}
