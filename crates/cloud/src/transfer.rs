//! Bulk-transfer progress tracking.
//!
//! A [`Transfer`] is a [`crate::workload::BulkJob`] in flight: it
//! accumulates bytes whenever the scheduler gives it rate, and records
//! completion. [`TransferLog`] aggregates per-job outcomes into the
//! statistics experiment E5 reports (completion time, deadline hit rate,
//! byte-weighted throughput).

use serde::{Deserialize, Serialize};
use simcore::{DataRate, DataSize, SimDuration, SimTime};

use crate::workload::BulkJob;

/// One job in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// The job being moved.
    pub job: BulkJob,
    /// Bytes still to move.
    pub remaining: DataSize,
    /// Completion time, once done.
    pub completed: Option<SimTime>,
}

impl Transfer {
    /// Start a transfer for `job`.
    pub fn new(job: BulkJob) -> Transfer {
        let remaining = job.size;
        Transfer {
            job,
            remaining,
            completed: None,
        }
    }

    /// Is the job done?
    pub fn is_done(&self) -> bool {
        self.completed.is_some()
    }

    /// Advance by `dt` at `rate`; marks completion at the *interpolated*
    /// instant inside the window if the job finishes mid-step. `now` is
    /// the time at the *start* of the window.
    pub fn advance(&mut self, now: SimTime, dt: SimDuration, rate: DataRate) {
        if self.is_done() || rate == DataRate::ZERO {
            return;
        }
        let movable = rate.over(dt);
        if movable >= self.remaining {
            let finish_after = self.remaining.time_at(rate);
            self.remaining = DataSize::ZERO;
            self.completed = Some(now + finish_after);
        } else {
            self.remaining = self.remaining.saturating_sub(movable);
        }
    }

    /// Time from submission to completion (None while in flight).
    pub fn completion_time(&self) -> Option<SimDuration> {
        self.completed.map(|t| t.saturating_since(self.job.created))
    }

    /// Did it meet its deadline? `None` if it had none or is unfinished.
    pub fn met_deadline(&self) -> Option<bool> {
        match (self.job.deadline, self.completed) {
            (Some(d), Some(c)) => Some(c <= d),
            _ => None,
        }
    }
}

/// Aggregated outcomes of a batch of transfers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferLog {
    /// Jobs finished.
    pub completed: usize,
    /// Jobs still unfinished at the end of the run.
    pub unfinished: usize,
    /// Bytes delivered.
    pub bytes_moved: DataSize,
    /// Mean completion time over finished jobs (seconds).
    pub mean_completion_secs: f64,
    /// 95th-percentile completion time (seconds).
    pub p95_completion_secs: f64,
    /// Of deadline-carrying finished jobs, the fraction that met it.
    pub deadline_hit_rate: f64,
}

impl TransferLog {
    /// Summarize a finished batch.
    pub fn summarize(transfers: &[Transfer]) -> TransferLog {
        let mut times: Vec<f64> = Vec::new();
        let mut bytes = DataSize::ZERO;
        let mut unfinished = 0;
        let mut dl_total = 0usize;
        let mut dl_hit = 0usize;
        for t in transfers {
            match t.completion_time() {
                Some(ct) => {
                    times.push(ct.as_secs_f64());
                    bytes += t.job.size;
                }
                None => {
                    unfinished += 1;
                    bytes += t.job.size.saturating_sub(t.remaining);
                }
            }
            if let Some(met) = t.met_deadline() {
                dl_total += 1;
                if met {
                    dl_hit += 1;
                }
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = if times.is_empty() {
            0.0
        } else {
            times.iter().sum::<f64>() / times.len() as f64
        };
        let p95 = if times.is_empty() {
            0.0
        } else {
            times[((times.len() as f64 * 0.95).ceil() as usize - 1).min(times.len() - 1)]
        };
        TransferLog {
            completed: times.len(),
            unfinished,
            bytes_moved: bytes,
            mean_completion_secs: mean,
            p95_completion_secs: p95,
            deadline_hit_rate: if dl_total == 0 {
                1.0
            } else {
                dl_hit as f64 / dl_total as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DataCenterId;
    use crate::workload::JobId;

    fn job(size_tb: u64, deadline: Option<SimTime>) -> BulkJob {
        BulkJob {
            id: JobId::new(0),
            from: DataCenterId::new(0),
            to: DataCenterId::new(1),
            size: DataSize::from_terabytes(size_tb),
            created: SimTime::from_secs(100),
            deadline,
        }
    }

    #[test]
    fn advances_and_completes_mid_window() {
        let mut t = Transfer::new(job(1, None));
        // 1 TB at 10 G takes 800 s; advance in 300 s windows from t=100.
        let rate = DataRate::from_gbps(10);
        let mut now = SimTime::from_secs(100);
        for _ in 0..2 {
            t.advance(now, SimDuration::from_secs(300), rate);
            now += SimDuration::from_secs(300);
            assert!(!t.is_done());
        }
        t.advance(now, SimDuration::from_secs(300), rate);
        assert!(t.is_done());
        // Interpolated completion: 100 + 800 = 900, not 1000.
        assert_eq!(t.completed, Some(SimTime::from_secs(900)));
        assert_eq!(t.completion_time(), Some(SimDuration::from_secs(800)));
    }

    #[test]
    fn zero_rate_means_no_progress() {
        let mut t = Transfer::new(job(1, None));
        t.advance(SimTime::ZERO, SimDuration::from_hours(10), DataRate::ZERO);
        assert_eq!(t.remaining, DataSize::from_terabytes(1));
        assert!(!t.is_done());
    }

    #[test]
    fn advance_after_done_is_noop() {
        let mut t = Transfer::new(job(1, None));
        t.advance(
            SimTime::from_secs(100),
            SimDuration::from_hours(1),
            DataRate::from_gbps(10),
        );
        let done_at = t.completed.unwrap();
        t.advance(done_at, SimDuration::from_hours(1), DataRate::from_gbps(10));
        assert_eq!(t.completed, Some(done_at));
    }

    #[test]
    fn deadline_accounting() {
        let deadline = SimTime::from_secs(1000);
        let mut hit = Transfer::new(job(1, Some(deadline)));
        hit.advance(
            SimTime::from_secs(100),
            SimDuration::from_secs(800),
            DataRate::from_gbps(10),
        );
        assert_eq!(hit.met_deadline(), Some(true));
        let mut miss = Transfer::new(job(1, Some(SimTime::from_secs(500))));
        miss.advance(
            SimTime::from_secs(100),
            SimDuration::from_secs(800),
            DataRate::from_gbps(10),
        );
        assert_eq!(miss.met_deadline(), Some(false));
        let nodl = Transfer::new(job(1, None));
        assert_eq!(nodl.met_deadline(), None);
    }

    #[test]
    fn summary_statistics() {
        let mut a = Transfer::new(job(1, Some(SimTime::from_secs(10_000))));
        a.advance(
            SimTime::from_secs(100),
            SimDuration::from_secs(800),
            DataRate::from_gbps(10),
        );
        let b = Transfer::new(job(2, None)); // unfinished
        let log = TransferLog::summarize(&[a, b]);
        assert_eq!(log.completed, 1);
        assert_eq!(log.unfinished, 1);
        assert_eq!(log.bytes_moved, DataSize::from_terabytes(1));
        assert!((log.mean_completion_secs - 800.0).abs() < 1e-6);
        assert!((log.deadline_hit_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_progress_counts_in_bytes_moved() {
        let mut t = Transfer::new(job(2, None));
        t.advance(
            SimTime::ZERO,
            SimDuration::from_secs(800),
            DataRate::from_gbps(10),
        );
        // Half of 2 TB moved.
        let log = TransferLog::summarize(&[t]);
        assert_eq!(log.bytes_moved, DataSize::from_terabytes(1));
        assert_eq!(log.completed, 0);
    }
}
