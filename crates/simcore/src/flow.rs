//! Rate-limiting and admission-queue primitives for request planes.
//!
//! Exact-integer building blocks for the northbound service plane:
//!
//! - [`TokenBucket`] — a classic token bucket in integer pico-token
//!   arithmetic. Rates are specified in *millitokens per second* so
//!   sub-1/s tiers (a free tenant allowed one request every ten
//!   seconds) are representable without floats; refill is computed as
//!   `rate_mt_per_s × elapsed_ns` pico-tokens, which is exact — no
//!   rounding residue accumulates, so refill-at-the-exact-boundary
//!   admits precisely when the arithmetic says it should.
//! - [`BoundedQueue`] — a FIFO with a hard capacity that reports
//!   overflow to the caller (returning the rejected item) instead of
//!   growing, plus depth book-keeping for queue-depth time series.
//!
//! Both are plain state machines: time is passed in, nothing is global,
//! and identical call sequences produce identical states on every run.

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// Pico-tokens per token: the internal fixed-point scale.
const PT_PER_TOKEN: u128 = 1_000_000_000_000;

/// Millitokens per token.
const MT_PER_TOKEN: u128 = 1_000;

/// Nanoseconds per second, as u128 for the refill arithmetic.
const NS_PER_SEC: u128 = 1_000_000_000;

/// Why a [`TokenBucket::try_take`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimited {
    /// Earliest wait after which the same request can succeed, or
    /// `None` when it never can (zero refill rate or a request larger
    /// than the bucket's capacity).
    pub retry_after: Option<SimDuration>,
}

/// Exact-integer token bucket.
///
/// A bucket holds up to `burst` whole tokens and refills continuously
/// at `rate` millitokens per second. Requests withdraw whole tokens.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_mt_per_s: u64,
    capacity_pt: u128,
    level_pt: u128,
    last: SimTime,
}

impl TokenBucket {
    /// A bucket refilling at `rate_millitokens_per_sec` with capacity
    /// `burst_tokens`, starting full at time zero.
    pub fn new(rate_millitokens_per_sec: u64, burst_tokens: u64) -> TokenBucket {
        let capacity_pt = burst_tokens as u128 * PT_PER_TOKEN;
        TokenBucket {
            rate_mt_per_s: rate_millitokens_per_sec,
            capacity_pt,
            level_pt: capacity_pt,
            last: SimTime::ZERO,
        }
    }

    /// Advance the refill clock to `now`. Time never runs backwards in
    /// the simulation; stale calls (same timestamp) are no-ops.
    fn refill(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        let elapsed_ns = (now - self.last).as_nanos() as u128;
        // 1 mt/s = 10⁻³ token / 10⁹ ns = 1 pico-token per nanosecond:
        // the refill product is exact in pico-tokens.
        let add_pt = self.rate_mt_per_s as u128 * elapsed_ns;
        self.level_pt = (self.level_pt + add_pt).min(self.capacity_pt);
        self.last = now;
    }

    /// Withdraw `tokens` whole tokens at `now`. On refusal, reports the
    /// exact earliest retry time that will succeed (given no competing
    /// withdrawals in between).
    pub fn try_take(&mut self, now: SimTime, tokens: u64) -> Result<(), RateLimited> {
        self.refill(now);
        let cost_pt = tokens as u128 * PT_PER_TOKEN;
        if cost_pt <= self.level_pt {
            self.level_pt -= cost_pt;
            return Ok(());
        }
        if cost_pt > self.capacity_pt || self.rate_mt_per_s == 0 {
            return Err(RateLimited { retry_after: None });
        }
        let deficit_pt = cost_pt - self.level_pt;
        // ceil(deficit / rate) nanoseconds until the deficit refills.
        let wait_ns = deficit_pt.div_ceil(self.rate_mt_per_s as u128);
        Err(RateLimited {
            retry_after: Some(SimDuration::from_nanos(wait_ns as u64)),
        })
    }

    /// Current level in whole tokens (rounded down), after refilling to
    /// `now`.
    pub fn level_tokens(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        (self.level_pt / PT_PER_TOKEN) as u64
    }

    /// The configured burst capacity in whole tokens.
    pub fn burst_tokens(&self) -> u64 {
        (self.capacity_pt / PT_PER_TOKEN) as u64
    }

    /// The configured refill rate in millitokens per second.
    pub fn rate_millitokens_per_sec(&self) -> u64 {
        self.rate_mt_per_s
    }

    /// Tokens the bucket can hand out over `window` starting now from a
    /// full bucket: `burst + rate × window`, the admission ceiling the
    /// shadow-model proptest checks against.
    pub fn ceiling_over(&self, window: SimDuration) -> u64 {
        let refill_mt = self.rate_mt_per_s as u128 * window.as_nanos() as u128 / NS_PER_SEC;
        self.burst_tokens() + (refill_mt / MT_PER_TOKEN) as u64
    }
}

/// Outcome of a [`BoundedQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The item was enqueued; the payload is the resulting depth.
    Enqueued(usize),
    /// The queue was full; the item was not enqueued.
    Full,
}

/// FIFO queue with a hard capacity and depth book-keeping.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    enqueued: u64,
    shed: u64,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            items: VecDeque::new(),
            capacity,
            high_water: 0,
            enqueued: 0,
            shed: 0,
        }
    }

    /// Enqueue `item`, or return it to the caller when full.
    pub fn push(&mut self, item: T) -> Result<PushOutcome, T> {
        if self.items.len() >= self.capacity {
            self.shed += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.enqueued += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(PushOutcome::Enqueued(self.items.len()))
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The hard capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Items accepted over the queue's lifetime.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Items refused over the queue's lifetime.
    pub fn total_shed(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn burst_then_refill() {
        // 2 tokens/s, burst 4.
        let mut b = TokenBucket::new(2_000, 4);
        for _ in 0..4 {
            assert!(b.try_take(at(0), 1).is_ok());
        }
        let err = b.try_take(at(0), 1).unwrap_err();
        assert_eq!(err.retry_after, Some(SimDuration::from_millis(500)));
        // Exactly at the boundary the take must succeed.
        assert!(b.try_take(at(0) + SimDuration::from_millis(500), 1).is_ok());
        // And one nanosecond earlier it must not.
        let mut c = TokenBucket::new(2_000, 1);
        assert!(c.try_take(at(0), 1).is_ok());
        let early = SimTime::from_nanos(500_000_000 - 1);
        assert!(c.try_take(early, 1).is_err());
        assert!(c.try_take(at(0) + SimDuration::from_millis(500), 1).is_ok());
    }

    #[test]
    fn zero_capacity_and_zero_rate_never_admit() {
        let mut z = TokenBucket::new(1_000, 0);
        assert_eq!(
            z.try_take(at(100), 1),
            Err(RateLimited { retry_after: None })
        );
        let mut r = TokenBucket::new(0, 3);
        assert!(r.try_take(at(0), 3).is_ok());
        assert_eq!(
            r.try_take(at(1_000), 1),
            Err(RateLimited { retry_after: None })
        );
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(10_000, 5);
        for _ in 0..5 {
            assert!(b.try_take(at(0), 1).is_ok());
        }
        // A week later the bucket holds exactly `burst`, not more.
        assert_eq!(b.level_tokens(at(7 * 86_400)), 5);
    }

    #[test]
    fn sub_unit_rates_are_exact() {
        // 0.1 token/s = 100 mt/s: one request every 10 s exactly.
        let mut b = TokenBucket::new(100, 1);
        assert!(b.try_take(at(0), 1).is_ok());
        let err = b.try_take(at(0), 1).unwrap_err();
        assert_eq!(err.retry_after, Some(SimDuration::from_secs(10)));
        assert!(b.try_take(at(10), 1).is_ok());
        assert!(b.try_take(at(19), 1).is_err());
    }

    #[test]
    fn bounded_queue_sheds_at_capacity() {
        let mut q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert_eq!(q.push(1), Ok(PushOutcome::Enqueued(1)));
        assert_eq!(q.push(2), Ok(PushOutcome::Enqueued(2)));
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.total_shed(), 1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(PushOutcome::Enqueued(2)));
        assert_eq!(q.total_enqueued(), 3);
    }
}

#[cfg(test)]
mod flow_props {
    use super::*;
    use proptest::prelude::*;

    /// Shadow model: an independently-written bucket that tracks the
    /// *cumulative* refill budget instead of a decaying level. Admitted
    /// work can never exceed `burst + rate × elapsed`, so the shadow
    /// admits iff `spent + cost ≤ burst + refill(t)` — no level decay,
    /// no capacity clamp, a different formulation of the same policy.
    struct ShadowBucket {
        rate_mt: u128,
        burst_pt: u128,
        spent_pt: u128,
        /// Refill credit forfeited to the capacity clamp while full.
        forfeited_pt: u128,
    }

    impl ShadowBucket {
        fn new(rate_mt: u64, burst: u64) -> ShadowBucket {
            ShadowBucket {
                rate_mt: rate_mt as u128,
                burst_pt: burst as u128 * 1_000_000_000_000,
                spent_pt: 0,
                forfeited_pt: 0,
            }
        }

        /// Unclamped available credit: `burst + rate·t − forfeited − spent`.
        fn avail_pt(&self, now: SimTime) -> u128 {
            let refill = self.rate_mt * (now - SimTime::ZERO).as_nanos() as u128;
            self.burst_pt + refill - self.forfeited_pt - self.spent_pt
        }

        fn try_take(&mut self, now: SimTime, tokens: u64) -> bool {
            // The level only rises between calls, so forfeiting overflow
            // at call boundaries is exactly the continuous clamp.
            let avail = self.avail_pt(now);
            if avail > self.burst_pt {
                self.forfeited_pt += avail - self.burst_pt;
            }
            let cost = tokens as u128 * 1_000_000_000_000;
            if self.avail_pt(now) >= cost {
                self.spent_pt += cost;
                true
            } else {
                false
            }
        }
    }

    proptest! {
        /// The bucket and the cumulative-budget shadow model agree on
        /// every admit/refuse decision over arbitrary op sequences.
        #[test]
        fn bucket_matches_shadow_model(
            rate_mt in 1u64..50_000,
            burst in 0u64..64,
            ops in prop::collection::vec((0u64..30_000_000_000, 1u64..8), 1..128),
        ) {
            let mut bucket = TokenBucket::new(rate_mt, burst);
            let mut shadow = ShadowBucket::new(rate_mt, burst);
            let mut now = SimTime::ZERO;
            for (dt_ns, tokens) in ops {
                now += SimDuration::from_nanos(dt_ns);
                let got = bucket.try_take(now, tokens).is_ok();
                let want = shadow.try_take(now, tokens);
                prop_assert_eq!(got, want, "divergence at t={:?} take {}", now, tokens);
            }
        }

        /// Cumulative admissions never exceed `burst + rate × elapsed`
        /// (the hard budget), for any op sequence.
        #[test]
        fn never_admits_beyond_budget(
            rate_mt in 0u64..50_000,
            burst in 0u64..64,
            ops in prop::collection::vec((0u64..10_000_000_000, 1u64..8), 1..256),
        ) {
            let mut bucket = TokenBucket::new(rate_mt, burst);
            let mut now = SimTime::ZERO;
            let mut admitted_pt: u128 = 0;
            for (dt_ns, tokens) in ops {
                now += SimDuration::from_nanos(dt_ns);
                if bucket.try_take(now, tokens).is_ok() {
                    admitted_pt += tokens as u128 * 1_000_000_000_000;
                }
                let budget_pt = burst as u128 * 1_000_000_000_000
                    + rate_mt as u128 * (now - SimTime::ZERO).as_nanos() as u128;
                prop_assert!(admitted_pt <= budget_pt, "admitted beyond budget at {:?}", now);
            }
        }

        /// A compliant tenant is never deadlocked: any refusal of a
        /// request within capacity carries a finite retry hint, retrying
        /// exactly then succeeds, and one nanosecond earlier still fails.
        #[test]
        fn retry_hint_is_exact_boundary(
            rate_mt in 1u64..50_000,
            burst in 1u64..64,
            ops in prop::collection::vec((0u64..5_000_000_000, 1u64..8), 0..64),
            req in 1u64..8,
        ) {
            let mut bucket = TokenBucket::new(rate_mt, burst);
            let mut now = SimTime::ZERO;
            for (dt_ns, tokens) in ops {
                now += SimDuration::from_nanos(dt_ns);
                let _ = bucket.try_take(now, tokens);
            }
            let req = req.min(burst);
            if let Err(limited) = bucket.try_take(now, req) {
                let wait = limited.retry_after.expect("within-capacity refusal has a hint");
                prop_assert!(wait > SimDuration::ZERO);
                if wait.as_nanos() > 1 {
                    let mut early = bucket.clone();
                    let just_before = now + (wait - SimDuration::from_nanos(1));
                    prop_assert!(early.try_take(just_before, req).is_err(),
                        "admitted before the hinted boundary");
                }
                prop_assert!(bucket.try_take(now + wait, req).is_ok(),
                    "hinted retry time did not admit");
            }
        }
    }
}
