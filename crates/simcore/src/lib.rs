//! # simcore — deterministic discrete-event simulation kernel
//!
//! The foundation every other crate in this workspace builds on. The design
//! follows the smoltcp idiom: *explicit state machines with time passed in
//! from the outside*. Nothing in this crate reads a wall clock, allocates
//! hidden global state, or behaves differently across runs with the same
//! seed.
//!
//! ## Components
//!
//! - [`time`] — [`SimTime`]/[`SimDuration`], nanosecond-resolution simulated
//!   time with checked arithmetic and human-readable formatting.
//! - [`queue`] — [`Scheduler`], a calendar queue (binary heap with a
//!   monotonic sequence tiebreak) supporting cancellable timers. Events at
//!   equal timestamps pop in scheduling order, which makes every simulation
//!   built on it deterministic. Also [`FluidQueue`], an exact-integer
//!   fluid bottleneck queue used by the active-probing measurement plane.
//! - [`rng`] — [`SimRng`], a small, fully reproducible PRNG
//!   (SplitMix64-seeded xoshiro256**) with the distributions the workload
//!   generators need (uniform, exponential, normal, lognormal, Pareto,
//!   weighted choice).
//! - [`dist`] — shared heavy-tailed and diurnal sampling helpers
//!   (Zipf rank sampling, bounded Pareto, diurnal factors) used by the
//!   workload, measurement and service planes.
//! - [`flow`] — exact-integer request-plane primitives: [`TokenBucket`]
//!   rate limiting and [`BoundedQueue`] admission queues with explicit
//!   shed-load reporting.
//! - [`metrics`] — counters, gauges, log-linear histograms and time series
//!   for recording experiment output, plus labeled metric families
//!   ([`FamilyRegistry`]) with Prometheus-style text exposition and a
//!   typed JSON snapshot (the NOC telemetry substrate, `DESIGN.md` §10).
//! - [`trace`] — a bounded structured event log for debugging and for
//!   asserting on simulation behaviour in tests.
//! - [`span`] — hierarchical, sim-time-stamped spans for per-phase latency
//!   attribution, with a Chrome trace-event exporter and a rollup
//!   aggregator (the observability substrate; see `DESIGN.md` §9).
//! - [`codec`] — a deterministic, checksummed binary codec (fixed-width
//!   little-endian fields + CRC-32C frames) used by the durability
//!   subsystem's write-ahead log; distinguishes torn tail writes from
//!   corruption.
//! - [`units`] — [`DataRate`] / [`DataSize`] newtypes shared by all layers.
//! - [`ids`] — the [`define_id!`] macro for typed entity identifiers.
//!
//! ## Example
//!
//! ```
//! use simcore::{Scheduler, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_after(SimDuration::from_secs(2), Ev::Pong);
//! sched.schedule_after(SimDuration::from_secs(1), Ev::Ping);
//! let (t1, e1) = sched.pop().unwrap();
//! assert_eq!((t1, e1), (SimTime::from_secs(1), Ev::Ping));
//! let (t2, e2) = sched.pop().unwrap();
//! assert_eq!((t2, e2), (SimTime::from_secs(2), Ev::Pong));
//! assert_eq!(sched.now(), SimTime::from_secs(2));
//! ```

#![deny(missing_docs)]

pub mod codec;
pub mod dist;
pub mod flow;
pub mod ids;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod span;
pub mod time;
pub mod trace;
pub mod units;

pub use codec::{crc32c, crc32c_reference, CodecError, Crc32c, CrcWriter, Decoder, Encoder};
pub use dist::{bounded_pareto_bits, diurnal_day_factor, diurnal_sin, zipf_weights, ZipfSampler};
pub use flow::{BoundedQueue, PushOutcome, RateLimited, TokenBucket};
pub use metrics::{
    Counter, CounterSample, Exemplar, FamilyRegistry, Footprint, Gauge, GaugeSample, Histogram,
    HistogramSample, LatencyRecorder, MetricsRegistry, MetricsSnapshot, TimeSeries,
};
pub use queue::{EventId, FluidQueue, Scheduler};
pub use rng::SimRng;
pub use span::{
    AttrValue, Span, SpanId, SpanRecorder, TailSampleConfig, TailSampleStats, TailSampler,
};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceLog};
pub use units::{DataRate, DataSize};
