//! Data-rate and data-size units shared by every layer of the stack.
//!
//! Rates appear all over GRIPhoN at very different magnitudes — DS1
//! (1.5 Mbps) private lines, GbE clients, ODU0 (1.244 Gbps) tributaries,
//! 10/40/100 G wavelengths — so both types store plain bits (per second)
//! in `u64` and never floats. `u64` bits holds up to ~2.3 exabytes, far
//! beyond the petabyte-scale transfers the paper motivates.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use crate::time::SimDuration;

/// A data rate in bits per second.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct DataRate(u64);

/// An amount of data in bits.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct DataSize(u64);

impl DataRate {
    /// Zero bits per second.
    pub const ZERO: DataRate = DataRate(0);

    /// From bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        DataRate(bps)
    }
    /// From kilobits per second (decimal, as in telecom).
    pub const fn from_kbps(k: u64) -> Self {
        DataRate(k * 1_000)
    }
    /// From megabits per second.
    pub const fn from_mbps(m: u64) -> Self {
        DataRate(m * 1_000_000)
    }
    /// From gigabits per second.
    pub const fn from_gbps(g: u64) -> Self {
        DataRate(g * 1_000_000_000)
    }

    /// Bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }
    /// Gigabits per second as a float.
    pub fn gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// How much data flows at this rate over `d`.
    pub fn over(self, d: SimDuration) -> DataSize {
        let bits = (self.0 as u128 * d.as_nanos() as u128) / 1_000_000_000u128;
        DataSize(u64::try_from(bits).expect("DataSize overflow"))
    }

    /// Saturating subtraction (rate headroom computations).
    pub fn saturating_sub(self, other: DataRate) -> DataRate {
        DataRate(self.0.saturating_sub(other.0))
    }

    /// Integer division: how many whole `unit`s fit in this rate.
    pub fn units_of(self, unit: DataRate) -> u64 {
        assert!(unit.0 > 0, "units_of zero rate");
        self.0 / unit.0
    }
}

impl DataSize {
    /// Zero bits.
    pub const ZERO: DataSize = DataSize(0);

    /// From bits.
    pub const fn from_bits(b: u64) -> Self {
        DataSize(b)
    }
    /// From bytes.
    pub const fn from_bytes(b: u64) -> Self {
        DataSize(b * 8)
    }
    /// From decimal gigabytes.
    pub const fn from_gigabytes(gb: u64) -> Self {
        DataSize(gb * 8_000_000_000)
    }
    /// From decimal terabytes.
    pub const fn from_terabytes(tb: u64) -> Self {
        DataSize(tb * 8_000_000_000_000)
    }

    /// Bits.
    pub const fn bits(self) -> u64 {
        self.0
    }
    /// Whole bytes (truncating).
    pub const fn bytes(self) -> u64 {
        self.0 / 8
    }
    /// Decimal terabytes as a float.
    pub fn terabytes_f64(self) -> f64 {
        self.0 as f64 / 8e12
    }

    /// Time to move this much data at `rate`. Returns [`SimDuration::MAX`]
    /// for a zero rate (it never completes).
    pub fn time_at(self, rate: DataRate) -> SimDuration {
        if rate.0 == 0 {
            return SimDuration::MAX;
        }
        let ns = (self.0 as u128 * 1_000_000_000u128) / rate.0 as u128;
        SimDuration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: DataSize) -> DataSize {
        DataSize(self.0.saturating_sub(other.0))
    }

    /// True if zero bits.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two sizes.
    pub fn min(self, other: DataSize) -> DataSize {
        DataSize(self.0.min(other.0))
    }
}

macro_rules! impl_linear_ops {
    ($t:ident) => {
        impl Add for $t {
            type Output = $t;
            fn add(self, o: $t) -> $t {
                $t(self
                    .0
                    .checked_add(o.0)
                    .expect(concat!(stringify!($t), " overflow")))
            }
        }
        impl AddAssign for $t {
            fn add_assign(&mut self, o: $t) {
                *self = *self + o;
            }
        }
        impl Sub for $t {
            type Output = $t;
            fn sub(self, o: $t) -> $t {
                $t(self
                    .0
                    .checked_sub(o.0)
                    .expect(concat!(stringify!($t), " underflow")))
            }
        }
        impl SubAssign for $t {
            fn sub_assign(&mut self, o: $t) {
                *self = *self - o;
            }
        }
        impl Sum for $t {
            fn sum<I: Iterator<Item = $t>>(iter: I) -> $t {
                iter.fold($t(0), |a, b| a + b)
            }
        }
    };
}

impl_linear_ops!(DataRate);
impl_linear_ops!(DataSize);

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1_000_000_000 && b.is_multiple_of(100_000_000) {
            write!(f, "{}G", b as f64 / 1e9)
        } else if b >= 1_000_000_000 {
            write!(f, "{:.2}G", b as f64 / 1e9)
        } else if b >= 1_000_000 {
            write!(f, "{:.1}M", b as f64 / 1e6)
        } else if b >= 1_000 {
            write!(f, "{:.1}k", b as f64 / 1e3)
        } else {
            write!(f, "{}bps", b)
        }
    }
}

impl fmt::Debug for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.0 as f64 / 8.0;
        if bytes >= 1e12 {
            write!(f, "{:.2}TB", bytes / 1e12)
        } else if bytes >= 1e9 {
            write!(f, "{:.2}GB", bytes / 1e9)
        } else if bytes >= 1e6 {
            write!(f, "{:.1}MB", bytes / 1e6)
        } else if bytes >= 1e3 {
            write!(f, "{:.1}kB", bytes / 1e3)
        } else {
            write!(f, "{}B", bytes as u64)
        }
    }
}

impl fmt::Debug for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_constructors() {
        assert_eq!(DataRate::from_gbps(1), DataRate::from_mbps(1000));
        assert_eq!(DataRate::from_mbps(1), DataRate::from_kbps(1000));
        assert_eq!(DataRate::from_kbps(1), DataRate::from_bps(1000));
    }

    #[test]
    fn size_constructors() {
        assert_eq!(DataSize::from_bytes(1), DataSize::from_bits(8));
        assert_eq!(DataSize::from_terabytes(1), DataSize::from_gigabytes(1000));
    }

    #[test]
    fn rate_times_duration() {
        let moved = DataRate::from_gbps(10).over(SimDuration::from_secs(8));
        assert_eq!(moved, DataSize::from_gigabytes(10));
    }

    #[test]
    fn transfer_time_roundtrip() {
        let size = DataSize::from_terabytes(1);
        let t = size.time_at(DataRate::from_gbps(40));
        assert_eq!(t, SimDuration::from_secs(200));
        assert_eq!(size.time_at(DataRate::ZERO), SimDuration::MAX);
    }

    #[test]
    fn units_of_counts_whole_units() {
        // A 40G wavelength fits 32 ODU0-ish 1.244G tributaries? No — by
        // pure rate division it's 32; the OTN crate applies real TS rules.
        assert_eq!(
            DataRate::from_gbps(40).units_of(DataRate::from_mbps(1244)),
            32
        );
        assert_eq!(DataRate::from_gbps(10).units_of(DataRate::from_gbps(10)), 1);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: DataRate = [DataRate::from_gbps(1), DataRate::from_gbps(2)]
            .into_iter()
            .sum();
        assert_eq!(total, DataRate::from_gbps(3));
        let mut s = DataSize::from_bytes(100);
        s += DataSize::from_bytes(50);
        s -= DataSize::from_bytes(25);
        assert_eq!(s, DataSize::from_bytes(125));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn rate_underflow_panics() {
        let _ = DataRate::from_gbps(1) - DataRate::from_gbps(2);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            DataRate::from_gbps(1).saturating_sub(DataRate::from_gbps(2)),
            DataRate::ZERO
        );
        assert_eq!(
            DataSize::from_bytes(1).saturating_sub(DataSize::from_bytes(2)),
            DataSize::ZERO
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(DataRate::from_gbps(40).to_string(), "40G");
        assert_eq!(DataRate::from_mbps(2500).to_string(), "2.5G");
        assert_eq!(DataRate::from_mbps(622).to_string(), "622.0M");
        assert_eq!(DataRate::from_kbps(64).to_string(), "64.0k");
        assert_eq!(DataSize::from_terabytes(2).to_string(), "2.00TB");
        assert_eq!(DataSize::from_bytes(512).to_string(), "512B");
    }
}
