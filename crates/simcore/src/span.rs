//! Hierarchical, sim-time-stamped spans for control-plane latency
//! attribution.
//!
//! A [`Span`] names an interval of *simulated* time — a whole workflow
//! ("conn.setup"), a phase within it ("phase.roadm"), or a single device
//! operation ("wss.reconfigure") — and carries typed attributes. Spans
//! form a tree through parent ids, so an aggregator can roll per-device
//! operations up into per-phase rows and per-phase rows up into the
//! end-to-end workflow latency (the mechanism behind the Table 2
//! breakdown the `repro trace` target regenerates).
//!
//! ## Determinism contract
//!
//! The recorder never reads a wall clock: ids are assigned sequentially,
//! timestamps are the [`SimTime`] values the caller passes in, and
//! storage is a plain append-only vector. Two runs of the same seeded
//! scenario therefore produce byte-identical span streams — asserted by
//! the golden-file test under `tests/`. The one escape hatch is
//! *host attributes* (wall-clock measurements such as planning latency in
//! host nanoseconds): they are gated behind a separate opt-in flag
//! ([`SpanRecorder::set_host_attrs`]) so deterministic artifacts stay
//! deterministic by default.
//!
//! ## Overhead contract
//!
//! Recording is disabled by default. Every mutating method starts with a
//! single `enabled` branch and returns immediately when disabled; the
//! backing vector is never allocated ([`SpanRecorder::buffered_capacity`]
//! stays 0), so an instrumented controller with recording off does the
//! same work as an uninstrumented one. Span and attribute names are
//! `&'static str` — no formatting happens on the disabled path.
//!
//! The recorder is bounded: once `capacity` spans are buffered, further
//! opens are counted in [`SpanRecorder::dropped`] and return
//! [`SpanId::INVALID`] (which every other method ignores). Dropping new
//! spans rather than evicting old ones keeps parent links intact.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::LatencyRecorder;
use crate::time::{SimDuration, SimTime};

/// Identifier of a recorded span, assigned sequentially from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u32);

impl SpanId {
    /// Sentinel returned when the recorder is disabled or full. All
    /// recorder methods accept and ignore it, so call sites need no
    /// branches of their own.
    pub const INVALID: SpanId = SpanId(u32::MAX);

    /// Does this id refer to a recorded span?
    pub fn is_valid(self) -> bool {
        self.0 != u32::MAX
    }

    /// The raw index (ids are dense, so this indexes the span vector).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An unsigned integer (ids, counts, nanoseconds).
    U64(u64),
    /// A float (seconds, ratios).
    F64(f64),
    /// A string (names resolved at record time).
    Str(String),
}

/// One recorded span: a named interval of simulated time in a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// The enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Coarse grouping ("conn", "phase", "device", "plan", "policy").
    pub category: &'static str,
    /// The span's name ("conn.setup", "phase.roadm", "wss.reconfigure").
    pub name: &'static str,
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval; `None` while still open.
    pub end: Option<SimTime>,
    /// Typed key/value attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// The span's duration, if closed.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e.saturating_since(self.start))
    }

    /// Read a `U64` attribute by key.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find_map(|(k, v)| match v {
            AttrValue::U64(n) if *k == key => Some(*n),
            _ => None,
        })
    }
}

/// Default bound on buffered spans (drop-new beyond this).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// A bounded, deterministic recorder of [`Span`]s (see module docs for
/// the determinism and overhead contracts).
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    enabled: bool,
    host_attrs: bool,
    capacity: usize,
    spans: Vec<Span>,
    dropped: u64,
}

impl Default for SpanRecorder {
    /// A *disabled* recorder with the default capacity — the state every
    /// controller starts in, so un-instrumented workloads pay nothing.
    fn default() -> Self {
        SpanRecorder {
            enabled: false,
            host_attrs: false,
            capacity: DEFAULT_SPAN_CAPACITY,
            spans: Vec::new(),
            dropped: 0,
        }
    }
}

impl SpanRecorder {
    /// An *enabled* recorder holding at most `capacity` spans.
    pub fn new(capacity: usize) -> SpanRecorder {
        SpanRecorder {
            enabled: true,
            ..SpanRecorder::default()
        }
        .with_capacity(capacity)
    }

    fn with_capacity(mut self, capacity: usize) -> SpanRecorder {
        self.capacity = capacity;
        self
    }

    /// Turn recording on or off. Spans already buffered are kept.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opt in to wall-clock ("host") attributes such as planning latency
    /// in host nanoseconds. Off by default: host attributes are
    /// non-deterministic, and deterministic artifacts (golden traces,
    /// Chrome exports) must not contain them.
    pub fn set_host_attrs(&mut self, on: bool) {
        self.host_attrs = on;
    }

    /// Are wall-clock attributes being recorded?
    pub fn host_attrs_enabled(&self) -> bool {
        self.enabled && self.host_attrs
    }

    fn push(
        &mut self,
        start: SimTime,
        end: Option<SimTime>,
        category: &'static str,
        name: &'static str,
        parent: Option<SpanId>,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::INVALID;
        }
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return SpanId::INVALID;
        }
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(Span {
            id,
            parent: parent.filter(|p| p.is_valid()),
            category,
            name,
            start,
            end,
            attrs: Vec::new(),
        });
        id
    }

    /// Open a span at `start` under `parent` (`None` for a root). Close
    /// it later with [`Self::close`]. Returns [`SpanId::INVALID`] when
    /// disabled or full.
    pub fn open(
        &mut self,
        start: SimTime,
        category: &'static str,
        name: &'static str,
        parent: Option<SpanId>,
    ) -> SpanId {
        self.push(start, None, category, name, parent)
    }

    /// Close an open span at `end`. Ignores [`SpanId::INVALID`] and
    /// already-closed spans.
    pub fn close(&mut self, id: SpanId, end: SimTime) {
        if !self.enabled || !id.is_valid() {
            return;
        }
        if let Some(s) = self.spans.get_mut(id.index()) {
            if s.end.is_none() {
                s.end = Some(end);
            }
        }
    }

    /// Record an already-closed span over `[start, end]`. This is the
    /// workhorse for phase attribution: the controller computes workflow
    /// durations analytically up front, so phase intervals are known at
    /// request time rather than bracketing executing code.
    pub fn record(
        &mut self,
        start: SimTime,
        end: SimTime,
        category: &'static str,
        name: &'static str,
        parent: Option<SpanId>,
    ) -> SpanId {
        self.push(start, Some(end), category, name, parent)
    }

    /// Attach an unsigned-integer attribute to `id`.
    pub fn attr_u64(&mut self, id: SpanId, key: &'static str, value: u64) {
        self.attr(id, key, AttrValue::U64(value));
    }

    /// Attach a float attribute to `id`.
    pub fn attr_f64(&mut self, id: SpanId, key: &'static str, value: f64) {
        self.attr(id, key, AttrValue::F64(value));
    }

    /// Attach a string attribute to `id`.
    pub fn attr_str(&mut self, id: SpanId, key: &'static str, value: String) {
        self.attr(id, key, AttrValue::Str(value));
    }

    fn attr(&mut self, id: SpanId, key: &'static str, value: AttrValue) {
        if !self.enabled || !id.is_valid() {
            return;
        }
        if let Some(s) = self.spans.get_mut(id.index()) {
            s.attrs.push((key, value));
        }
    }

    /// All recorded spans, in id order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans refused because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// A one-line warning when spans were dropped, for repro targets.
    pub fn drop_warning(&self) -> Option<String> {
        (self.dropped > 0).then(|| {
            format!(
                "warning: span recorder dropped {} spans (capacity {})",
                self.dropped, self.capacity
            )
        })
    }

    /// Allocated capacity of the backing vector — 0 until the first span
    /// is actually recorded, which is the cheap in-repo guard that a
    /// disabled recorder performs no work.
    pub fn buffered_capacity(&self) -> usize {
        self.spans.capacity()
    }

    /// Forget all spans and reset ids to 0 (the drop counter survives).
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Take ownership of the buffered spans, leaving the recorder empty.
    pub fn take_spans(&mut self) -> Vec<Span> {
        std::mem::take(&mut self.spans)
    }

    /// Structural invariants the Chrome exporter and aggregator rely on:
    /// every span closed, parents recorded before children, children
    /// contained in their parent's interval. Returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        validate(&self.spans)
    }
}

/// Validate a span slice (see [`SpanRecorder::validate`]).
pub fn validate(spans: &[Span]) -> Result<(), String> {
    for s in spans {
        let Some(end) = s.end else {
            return Err(format!("{} span {} never closed", s.name, s.id.index()));
        };
        if end < s.start {
            return Err(format!(
                "{} span {} ends before it starts",
                s.name,
                s.id.index()
            ));
        }
        if let Some(p) = s.parent {
            let Some(parent) = spans.get(p.index()) else {
                return Err(format!(
                    "{} span {} has unknown parent",
                    s.name,
                    s.id.index()
                ));
            };
            if p >= s.id {
                return Err(format!(
                    "{} span {} parented to a later span",
                    s.name,
                    s.id.index()
                ));
            }
            let pend = parent.end.unwrap_or(SimTime::ZERO);
            if s.start < parent.start || end > pend {
                return Err(format!(
                    "{} span {} [{}..{}] escapes parent {} [{}..{}]",
                    s.name,
                    s.id.index(),
                    s.start,
                    end,
                    parent.name,
                    parent.start,
                    pend
                ));
            }
        }
    }
    Ok(())
}

// ── Chrome trace-event export ───────────────────────────────────────────

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_micros(out: &mut String, ns: u64) {
    // Chrome trace timestamps are microseconds; emit fixed 3-decimal
    // values so the output is byte-stable across platforms.
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Lane (`tid`) of a span: the id of its root ancestor, so every
/// top-level workflow renders as its own row in Perfetto.
fn root_of(spans: &[Span], s: &Span) -> SpanId {
    let mut cur = s;
    while let Some(p) = cur.parent {
        cur = &spans[p.index()];
    }
    cur.id
}

/// Export span groups as Chrome trace-event JSON ("X" complete events,
/// `ts`/`dur` in microseconds), loadable in Perfetto or chrome://tracing.
/// Each `(label, spans)` group becomes one process (`pid`), named by a
/// metadata event; each root span becomes one thread lane (`tid`).
pub fn chrome_trace(groups: &[(&str, &[Span])]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n  ");
    };
    for (gi, (label, spans)) in groups.iter().enumerate() {
        let pid = gi + 1;
        push_sep(&mut out, &mut first);
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        let _ = write!(out, "{pid}");
        out.push_str(",\"tid\":0,\"args\":{\"name\":\"");
        json_escape(&mut out, label);
        out.push_str("\"}}");
        // One thread-name metadata event per root span (lane).
        for s in spans.iter().filter(|s| s.parent.is_none()) {
            push_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{}",
                s.id.index()
            );
            out.push_str(",\"args\":{\"name\":\"");
            json_escape(&mut out, &format!("{} #{}", s.name, s.id.index()));
            out.push_str("\"}}");
        }
        for s in spans.iter() {
            let Some(end) = s.end else { continue };
            let tid = root_of(spans, s).index();
            push_sep(&mut out, &mut first);
            out.push_str("{\"name\":\"");
            json_escape(&mut out, s.name);
            out.push_str("\",\"cat\":\"");
            json_escape(&mut out, s.category);
            let _ = write!(out, "\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":");
            write_micros(&mut out, s.start.as_nanos());
            out.push_str(",\"dur\":");
            write_micros(&mut out, end.saturating_since(s.start).as_nanos());
            let _ = write!(out, ",\"args\":{{\"span\":{}", s.id.index());
            if let Some(p) = s.parent {
                let _ = write!(out, ",\"parent\":{}", p.index());
            }
            for (k, v) in &s.attrs {
                out.push_str(",\"");
                json_escape(&mut out, k);
                out.push_str("\":");
                match v {
                    AttrValue::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    AttrValue::F64(x) => {
                        let _ = write!(out, "{x:.6}");
                    }
                    AttrValue::Str(t) => {
                        out.push('"');
                        json_escape(&mut out, t);
                        out.push('"');
                    }
                }
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

// ── Aggregation ─────────────────────────────────────────────────────────

/// Accumulated statistics of one phase (direct child name) under a root.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStat {
    /// Occurrences of the phase.
    pub count: u64,
    /// Summed duration across occurrences.
    pub total: SimDuration,
}

/// Per-group rollup of root spans named `root_name`: workflow totals plus
/// per-phase sums of their direct children.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RootRollup {
    /// The grouping attribute's value (0 when no grouping was asked for).
    pub group: u64,
    /// Root spans aggregated into this row.
    pub count: u64,
    /// Summed end-to-end duration of the roots.
    pub total: SimDuration,
    /// Direct-child phase sums, keyed by phase name.
    pub phases: BTreeMap<&'static str, PhaseStat>,
}

impl RootRollup {
    /// Sum of all phase durations — equals `total` when the phases tile
    /// the root exactly (the invariant `repro trace` checks).
    pub fn phase_sum(&self) -> SimDuration {
        self.phases
            .values()
            .fold(SimDuration::ZERO, |acc, p| acc + p.total)
    }
}

/// Roll closed root spans named `root_name` up into per-phase rows,
/// grouped by the root's `group_attr` `U64` attribute (all in one row
/// with group 0 when `group_attr` is `None`). Phases are the roots'
/// *direct* children; deeper descendants (per-device operations) are
/// already contained in their phase's interval.
pub fn rollup(spans: &[Span], root_name: &str, group_attr: Option<&str>) -> Vec<RootRollup> {
    let mut by_group: BTreeMap<u64, RootRollup> = BTreeMap::new();
    for root in spans.iter().filter(|s| s.name == root_name) {
        let Some(dur) = root.duration() else { continue };
        let group = group_attr.and_then(|k| root.attr_u64(k)).unwrap_or(0);
        let row = by_group.entry(group).or_insert_with(|| RootRollup {
            group,
            ..RootRollup::default()
        });
        row.count += 1;
        row.total += dur;
        for child in spans.iter().filter(|s| s.parent == Some(root.id)) {
            if let Some(d) = child.duration() {
                let p = row.phases.entry(child.name).or_default();
                p.count += 1;
                p.total += d;
            }
        }
    }
    by_group.into_values().collect()
}

/// Feed the `U64` attribute `key` of every span named `name` into a
/// [`LatencyRecorder`] — the bridge that lets wall-clock percentiles
/// (e.g. planning latency recorded as `host_ns`) come out of the span
/// pipeline with exactly the same nearest-rank arithmetic as the
/// recorder they replaced.
pub fn latency_from_attr(spans: &[Span], name: &str, key: &str) -> LatencyRecorder {
    let mut rec = LatencyRecorder::new();
    for s in spans.iter().filter(|s| s.name == name) {
        if let Some(ns) = s.attr_u64(key) {
            rec.record_ns(ns);
        }
    }
    rec
}

// ── Deterministic tail sampling ─────────────────────────────────────────

/// Configuration of a [`TailSampler`].
#[derive(Debug, Clone, Copy)]
pub struct TailSampleConfig {
    /// Width of the sampling window; root spans are bucketed by
    /// `start / window`. A zero window puts every root in one bucket.
    pub window: SimDuration,
    /// Slowest root traces kept per (root name, window) bucket.
    pub keep_slowest: usize,
    /// Roots at least this slow are *always* kept, beyond `keep_slowest`
    /// — SLO violators must never be sampled away.
    pub slow_threshold: Option<SimDuration>,
}

impl Default for TailSampleConfig {
    fn default() -> Self {
        TailSampleConfig {
            window: SimDuration::from_mins(5),
            keep_slowest: 4,
            slow_threshold: None,
        }
    }
}

/// Counters describing one sampler's lifetime (exact, not estimates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailSampleStats {
    /// Closed root spans ingested.
    pub roots_seen: u64,
    /// Root traces currently retained.
    pub roots_kept: u64,
    /// Retained roots that crossed `slow_threshold`.
    pub violators_kept: u64,
    /// Total spans ingested (roots plus descendants).
    pub spans_seen: u64,
    /// Spans currently retained.
    pub spans_kept: u64,
    /// Roots discarded because they were never closed.
    pub open_roots_dropped: u64,
}

struct KeptRoot {
    spans: Vec<Span>,
    duration: SimDuration,
}

/// Keeps the slowest-N and every SLO-violating root trace per window,
/// dropping the rest — the release valve that stops a bounded
/// [`SpanRecorder`] from silently saturating on long fleet-scale runs.
///
/// Feed it the batches a periodic [`SpanRecorder::take_spans`] drain
/// produces. Batch-local ids (dense, restarting at 0 per drain) are
/// remapped onto one global id space, and whole trees are kept or
/// dropped together, so parent links inside every retained trace stay
/// valid. Selection is a pure function of the ingested spans: eviction
/// removes the minimum `(duration, global id)` root, so the survivors
/// are independent of batch boundaries and thread count.
pub struct TailSampler {
    config: TailSampleConfig,
    next_id: u32,
    kept: BTreeMap<u32, KeptRoot>,
    /// Non-violator survivors per (root name, window index).
    buckets: BTreeMap<(&'static str, u64), Vec<u32>>,
    roots_seen: u64,
    violators_kept: u64,
    spans_seen: u64,
    open_roots_dropped: u64,
}

impl TailSampler {
    /// A sampler with the given retention policy.
    pub fn new(config: TailSampleConfig) -> TailSampler {
        TailSampler {
            config,
            next_id: 0,
            kept: BTreeMap::new(),
            buckets: BTreeMap::new(),
            roots_seen: 0,
            violators_kept: 0,
            spans_seen: 0,
            open_roots_dropped: 0,
        }
    }

    fn window_index(&self, start: SimTime) -> u64 {
        // A zero window means one global bucket.
        start
            .as_nanos()
            .checked_div(self.config.window.as_nanos())
            .unwrap_or(0)
    }

    /// Ingest one drained batch (dense batch-local ids, parents before
    /// children — exactly what [`SpanRecorder::take_spans`] yields).
    pub fn ingest(&mut self, batch: &[Span]) {
        let base = self.next_id;
        self.next_id += batch.len() as u32;
        self.spans_seen += batch.len() as u64;
        // Root of every batch-local index (parents precede children).
        let mut root_of = vec![0usize; batch.len()];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); batch.len()];
        for (i, s) in batch.iter().enumerate() {
            debug_assert_eq!(s.id.index(), i, "batches must carry dense ids");
            match s.parent {
                Some(p) => {
                    root_of[i] = root_of[p.index()];
                    children[root_of[i]].push(i);
                }
                None => root_of[i] = i,
            }
        }
        for (i, root) in batch.iter().enumerate() {
            if root.parent.is_some() {
                continue;
            }
            let Some(dur) = root.duration() else {
                self.open_roots_dropped += 1;
                continue;
            };
            self.roots_seen += 1;
            let gid = base + i as u32;
            let violator = self
                .config
                .slow_threshold
                .is_some_and(|thr| dur >= thr && !thr.is_zero());
            if !violator && self.config.keep_slowest == 0 {
                continue;
            }
            let remap = |idx: usize| SpanId(base + idx as u32);
            let mut spans = Vec::with_capacity(1 + children[i].len());
            for &idx in std::iter::once(&i).chain(children[i].iter()) {
                let mut s = batch[idx].clone();
                s.id = remap(idx);
                s.parent = s.parent.map(|p| remap(p.index()));
                spans.push(s);
            }
            self.kept.insert(
                gid,
                KeptRoot {
                    spans,
                    duration: dur,
                },
            );
            if violator {
                self.violators_kept += 1;
                continue;
            }
            let key = (root.name, self.window_index(root.start));
            let bucket = self.buckets.entry(key).or_default();
            bucket.push(gid);
            if bucket.len() > self.config.keep_slowest {
                // Evict the fastest survivor; gid breaks exact ties so
                // the choice is total regardless of arrival order.
                let evict_at = (0..bucket.len())
                    .min_by_key(|&j| (self.kept[&bucket[j]].duration, bucket[j]))
                    .expect("bucket is non-empty");
                let evicted = bucket.swap_remove(evict_at);
                self.kept.remove(&evicted);
            }
        }
    }

    /// The retained traces, flattened in global-id order (each root
    /// immediately followed by its descendants). Ids are globally unique
    /// but no longer dense, so [`validate`] does not apply to the output.
    pub fn into_spans(self) -> Vec<Span> {
        self.kept
            .into_values()
            .flat_map(|k| k.spans.into_iter())
            .collect()
    }

    /// Global ids of the retained roots, ascending — the linkage set
    /// exemplar `span_id`s are checked against.
    pub fn kept_root_ids(&self) -> Vec<u64> {
        self.kept.keys().map(|&gid| gid as u64).collect()
    }

    /// Current counters.
    pub fn stats(&self) -> TailSampleStats {
        TailSampleStats {
            roots_seen: self.roots_seen,
            roots_kept: self.kept.len() as u64,
            violators_kept: self.violators_kept,
            spans_seen: self.spans_seen,
            spans_kept: self.kept.values().map(|k| k.spans.len() as u64).sum(),
            open_roots_dropped: self.open_roots_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn ids_are_sequential_and_tree_links_hold() {
        let mut r = SpanRecorder::new(16);
        let root = r.open(t(0), "conn", "conn.setup", None);
        let a = r.record(t(0), t(2), "phase", "phase.session", Some(root));
        let b = r.record(t(2), t(5), "phase", "phase.roadm", Some(root));
        r.close(root, t(5));
        assert_eq!(root.index(), 0);
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert_eq!(r.spans()[1].parent, Some(root));
        assert_eq!(r.spans()[0].duration(), Some(SimDuration::from_secs(5)));
        r.validate().unwrap();
    }

    #[test]
    fn disabled_recorder_is_inert_and_allocation_free() {
        let mut r = SpanRecorder::default();
        assert!(!r.is_enabled());
        for _ in 0..10_000 {
            let id = r.open(t(1), "conn", "conn.setup", None);
            assert_eq!(id, SpanId::INVALID);
            r.attr_u64(id, "hops", 3);
            r.record(t(1), t(2), "phase", "phase.fxc", Some(id));
            r.close(id, t(2));
        }
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert_eq!(
            r.buffered_capacity(),
            0,
            "no backing allocation when disabled"
        );
    }

    #[test]
    fn capacity_bound_drops_new_spans_and_counts_them() {
        let mut r = SpanRecorder::new(2);
        let a = r.record(t(0), t(1), "x", "a", None);
        let b = r.record(t(1), t(2), "x", "b", None);
        let c = r.record(t(2), t(3), "x", "c", None);
        assert!(a.is_valid() && b.is_valid());
        assert_eq!(c, SpanId::INVALID);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        assert!(r.drop_warning().unwrap().contains("dropped 1"));
    }

    #[test]
    fn validate_rejects_open_and_escaping_spans() {
        let mut r = SpanRecorder::new(8);
        let root = r.open(t(0), "conn", "conn.setup", None);
        assert!(r.validate().unwrap_err().contains("never closed"));
        r.close(root, t(4));
        r.validate().unwrap();
        r.record(t(3), t(6), "phase", "phase.late", Some(root));
        assert!(r.validate().unwrap_err().contains("escapes parent"));
    }

    #[test]
    fn chrome_trace_layout() {
        let mut r = SpanRecorder::new(8);
        let root = r.open(t(0), "conn", "conn.setup", None);
        r.attr_u64(root, "hops", 2);
        let ph = r.record(t(0), t(20), "phase", "phase.session", Some(root));
        r.attr_f64(ph, "share", 0.5);
        r.close(root, t(60));
        let json = chrome_trace(&[("setup", r.spans())]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"conn.setup\""));
        // 60 s root → ts 0.000 µs, dur 60e6 µs.
        assert!(json.contains("\"ts\":0.000,\"dur\":60000000.000"), "{json}");
        assert!(json.contains("\"hops\":2"));
        assert!(json.contains("\"share\":0.500000"));
        // Child rides its root's lane.
        assert!(json.contains("\"parent\":0"));
    }

    #[test]
    fn rollup_groups_and_tiles() {
        let mut r = SpanRecorder::new(16);
        for (hops, dur) in [(1u64, 10u64), (2, 20)] {
            let root = r.open(t(100 * hops), "conn", "conn.setup", None);
            r.attr_u64(root, "hops", hops);
            r.record(
                t(100 * hops),
                t(100 * hops + dur / 2),
                "phase",
                "phase.a",
                Some(root),
            );
            r.record(
                t(100 * hops + dur / 2),
                t(100 * hops + dur),
                "phase",
                "phase.b",
                Some(root),
            );
            r.close(root, t(100 * hops + dur));
        }
        let rows = rollup(r.spans(), "conn.setup", Some("hops"));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].group, 1);
        assert_eq!(rows[1].group, 2);
        assert_eq!(rows[1].total, SimDuration::from_secs(20));
        assert_eq!(rows[1].phase_sum(), rows[1].total);
        assert_eq!(rows[0].phases["phase.a"].count, 1);
    }

    #[test]
    fn latency_pipeline_matches_direct_recorder() {
        let mut r = SpanRecorder::new(16);
        r.set_host_attrs(true);
        let mut direct = LatencyRecorder::new();
        for ns in [500u64, 1500, 2500, 10_000] {
            let s = r.record(t(0), t(0), "plan", "rwa.plan", None);
            r.attr_u64(s, "host_ns", ns);
            direct.record_ns(ns);
        }
        let derived = latency_from_attr(r.spans(), "rwa.plan", "host_ns");
        assert_eq!(derived.summary(), direct.summary());
    }

    fn root_with_child(r: &mut SpanRecorder, start: u64, dur: u64) -> SpanId {
        let root = r.open(t(start), "conn", "conn.setup", None);
        r.record(t(start), t(start + dur), "phase", "phase.roadm", Some(root));
        r.close(root, t(start + dur));
        root
    }

    #[test]
    fn tail_sampler_keeps_slowest_and_violators() {
        let mut rec = SpanRecorder::new(64);
        // Four roots in one window: durations 1, 9, 5, 30 s.
        for dur in [1u64, 9, 5, 30] {
            root_with_child(&mut rec, 10, dur);
        }
        let mut sampler = TailSampler::new(TailSampleConfig {
            window: SimDuration::from_mins(5),
            keep_slowest: 2,
            slow_threshold: Some(SimDuration::from_secs(25)),
        });
        sampler.ingest(&rec.take_spans());
        let stats = sampler.stats();
        assert_eq!(stats.roots_seen, 4);
        assert_eq!(stats.violators_kept, 1, "30 s root crosses the threshold");
        assert_eq!(stats.roots_kept, 3, "violator + two slowest survivors");
        assert_eq!(stats.spans_kept, 6);
        // 1 s root (gid 0) evicted; 9 s (gid 2), 5 s (gid 4), 30 s (gid 6) kept.
        assert_eq!(sampler.kept_root_ids(), vec![2, 4, 6]);
        let spans = sampler.into_spans();
        assert_eq!(spans.len(), 6);
        assert_eq!(spans[0].id.index(), 2);
        assert_eq!(spans[1].parent, Some(spans[0].id), "links survive remap");
    }

    #[test]
    fn tail_sampler_is_batch_boundary_independent() {
        let build = |splits: &[usize]| {
            let mut sampler = TailSampler::new(TailSampleConfig {
                window: SimDuration::from_secs(60),
                keep_slowest: 3,
                slow_threshold: Some(SimDuration::from_secs(40)),
            });
            let mut rec = SpanRecorder::new(1024);
            let durs = [7u64, 3, 50, 11, 11, 2, 45, 9, 1, 30];
            for (i, dur) in durs.iter().enumerate() {
                root_with_child(&mut rec, (i as u64) * 70, *dur);
                if splits.contains(&i) {
                    sampler.ingest(&rec.take_spans());
                }
            }
            sampler.ingest(&rec.take_spans());
            let stats = sampler.stats();
            let spans = sampler.into_spans();
            (stats, spans)
        };
        let (s1, spans1) = build(&[]);
        let (s2, spans2) = build(&[0, 3, 4, 7]);
        assert_eq!(s1, s2);
        assert_eq!(spans1, spans2, "drain cadence must not change survivors");
        assert_eq!(s1.roots_seen, 10);
        assert_eq!(s1.violators_kept, 2);
    }

    #[test]
    fn tail_sampler_drops_open_roots_and_handles_zero_window() {
        let mut rec = SpanRecorder::new(16);
        rec.open(t(0), "conn", "conn.setup", None); // never closed
        root_with_child(&mut rec, 1_000_000, 5);
        root_with_child(&mut rec, 2_000_000, 9);
        let mut sampler = TailSampler::new(TailSampleConfig {
            window: SimDuration::ZERO,
            keep_slowest: 1,
            slow_threshold: None,
        });
        sampler.ingest(&rec.take_spans());
        let stats = sampler.stats();
        assert_eq!(stats.open_roots_dropped, 1);
        assert_eq!(stats.roots_kept, 1, "zero window = one global bucket");
        assert_eq!(sampler.kept_root_ids(), vec![3], "9 s root wins");
    }

    #[test]
    fn host_attrs_are_opt_in() {
        let r = SpanRecorder::new(4);
        assert!(!r.host_attrs_enabled(), "deterministic by default");
        let mut r = r;
        r.set_host_attrs(true);
        assert!(r.host_attrs_enabled());
        r.set_enabled(false);
        assert!(!r.host_attrs_enabled(), "disabled recorder records nothing");
    }
}
