//! A small checksummed binary codec: the wire format for the durability
//! subsystem's write-ahead log and snapshot metadata.
//!
//! Design goals, in order:
//!
//! 1. **Deterministic** — encoding a value twice yields identical bytes;
//!    the byte stream is a pure function of the encoded values (little
//!    endian, fixed-width integers, length-prefixed strings). No
//!    alignment, no varints, no host-dependent layout.
//! 2. **Self-verifying** — the frame layer wraps every payload in
//!    `[len u32][crc32c u32][payload]`, so a reader can tell a cleanly
//!    written record from a **torn tail** (the process died mid-write:
//!    truncated length/payload) and from **corruption** (full-length
//!    record whose checksum fails). Recovery treats the two very
//!    differently: torn tails are rolled back, corruption is an error.
//! 3. **Dependency-free** — like [`crate::rng`], the format is pinned by
//!    this crate's own code so it can never shift under an upgrade.
//!
//! The checksum is CRC-32C (Castagnoli), computed with a byte-at-a-time
//! table — plenty for an in-simulation log, and the same polynomial real
//! storage stacks (ext4, iSCSI, RocksDB) use for record framing.

/// CRC-32C (Castagnoli) lookup table, generated at first use.
fn crc32c_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        const POLY: u32 = 0x82F6_3B78; // reflected 0x1EDC6F41
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    })
}

/// CRC-32C checksum of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let table = crc32c_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// Bytes needed to finish the read.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A length-prefixed string held invalid UTF-8.
    BadUtf8,
    /// A tag byte had no corresponding variant.
    BadTag(u8),
    /// A declared length was implausibly large for the buffer.
    BadLength(u64),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "truncated: needed {needed} bytes, {remaining} remain")
            }
            CodecError::BadUtf8 => write!(f, "length-prefixed string is not UTF-8"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            CodecError::BadLength(n) => write!(f, "implausible length {n}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink with fixed-width little-endian writers.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consume the encoder, yielding the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a length-prefixed (`u32`) byte slice.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// Cursor over a byte slice with fixed-width little-endian readers.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if the cursor reached the end.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        if len > self.buf.len() {
            return Err(CodecError::BadLength(len as u64));
        }
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::BadUtf8)
    }
}

/// What [`read_frame`] found at the cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame<'a> {
    /// A complete, checksum-verified payload.
    Ok(&'a [u8]),
    /// The buffer ended mid-frame: the writer died partway through an
    /// append. Everything before this point is intact; the torn bytes
    /// are safe to discard (the write never "committed").
    Torn {
        /// How many trailing bytes belong to the torn frame.
        bytes: usize,
    },
    /// A full-length frame whose checksum failed: the log was damaged
    /// *after* being written. Unlike a torn tail this cannot be rolled
    /// back silently — data that was acknowledged is gone.
    Corrupt {
        /// Checksum stored in the frame header.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
}

/// Wrap `payload` as `[len u32][crc32c u32][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Read one frame starting at `buf[*pos]`, advancing `pos` past it on
/// success. Returns `None` at a clean end of buffer.
pub fn read_frame<'a>(buf: &'a [u8], pos: &mut usize) -> Option<Frame<'a>> {
    let remaining = buf.len() - *pos;
    if remaining == 0 {
        return None;
    }
    if remaining < 8 {
        return Some(Frame::Torn { bytes: remaining });
    }
    let len = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(buf[*pos + 4..*pos + 8].try_into().expect("4 bytes"));
    if remaining - 8 < len {
        return Some(Frame::Torn { bytes: remaining });
    }
    let payload = &buf[*pos + 8..*pos + 8 + len];
    let computed = crc32c(payload);
    if computed != stored {
        return Some(Frame::Corrupt { stored, computed });
    }
    *pos += 8 + len;
    Some(Frame::Ok(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 §B.4 test vectors.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut e = Encoder::new();
        e.u8(7).u32(0xDEAD_BEEF).u64(u64::MAX).str("griphon");
        e.bytes(&[1, 2, 3]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.str().unwrap(), "griphon");
        assert_eq!(d.bytes().unwrap(), &[1, 2, 3]);
        assert!(d.is_done());
    }

    #[test]
    fn truncated_read_is_typed() {
        let mut d = Decoder::new(&[1, 2]);
        assert_eq!(
            d.u32(),
            Err(CodecError::Truncated {
                needed: 4,
                remaining: 2
            })
        );
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut e = Encoder::new();
        e.bytes(&[0xFF, 0xFE]);
        let buf = e.finish();
        assert_eq!(Decoder::new(&buf).str(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn implausible_length_is_typed() {
        let mut e = Encoder::new();
        e.u32(u32::MAX);
        let buf = e.finish();
        assert_eq!(
            Decoder::new(&buf).bytes(),
            Err(CodecError::BadLength(u32::MAX as u64))
        );
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = frame(b"alpha");
        buf.extend_from_slice(&frame(b"beta"));
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos), Some(Frame::Ok(&b"alpha"[..])));
        assert_eq!(read_frame(&buf, &mut pos), Some(Frame::Ok(&b"beta"[..])));
        assert_eq!(read_frame(&buf, &mut pos), None);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn torn_tail_at_every_byte_offset() {
        let mut buf = frame(b"alpha");
        buf.extend_from_slice(&frame(b"the second record"));
        let first_len = frame(b"alpha").len();
        // Truncating anywhere strictly inside the second frame must read
        // the first frame cleanly, then report Torn — never Corrupt.
        for cut in first_len + 1..buf.len() {
            let cut_buf = &buf[..cut];
            let mut pos = 0;
            assert_eq!(
                read_frame(cut_buf, &mut pos),
                Some(Frame::Ok(&b"alpha"[..]))
            );
            match read_frame(cut_buf, &mut pos) {
                Some(Frame::Torn { bytes }) => assert_eq!(bytes, cut - first_len),
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_not_torn() {
        let mut buf = frame(b"payload-bytes");
        let last = buf.len() - 1;
        buf[last] ^= 0x01; // flip a payload bit, length intact
        let mut pos = 0;
        match read_frame(&buf, &mut pos) {
            Some(Frame::Corrupt { stored, computed }) => assert_ne!(stored, computed),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn empty_payload_frames_cleanly() {
        let buf = frame(b"");
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos), Some(Frame::Ok(&b""[..])));
        assert_eq!(read_frame(&buf, &mut pos), None);
    }
}
