//! A small checksummed binary codec: the wire format for the durability
//! subsystem's write-ahead log and snapshot metadata.
//!
//! Design goals, in order:
//!
//! 1. **Deterministic** — encoding a value twice yields identical bytes;
//!    the byte stream is a pure function of the encoded values (little
//!    endian, fixed-width integers, length-prefixed strings). No
//!    alignment, no varints, no host-dependent layout.
//! 2. **Self-verifying** — the frame layer wraps every payload in
//!    `[len u32][crc32c u32][payload]`, so a reader can tell a cleanly
//!    written record from a **torn tail** (the process died mid-write:
//!    truncated length/payload) and from **corruption** (full-length
//!    record whose checksum fails). Recovery treats the two very
//!    differently: torn tails are rolled back, corruption is an error.
//! 3. **Dependency-free** — like [`crate::rng`], the format is pinned by
//!    this crate's own code so it can never shift under an upgrade.
//!
//! The checksum is CRC-32C (Castagnoli) — the same polynomial real
//! storage stacks (ext4, iSCSI, RocksDB) use for record framing. The
//! production [`crc32c`] runs a slice-by-32 table kernel (32 bytes per
//! iteration — the 32 lookups in a block are independent, so the CPU
//! overlaps them instead of serializing on the per-byte CRC dependency
//! chain; ~an order of magnitude faster than a byte loop). The original
//! byte-at-a-time implementation survives as [`crc32c_reference`], the
//! oracle the fast path is property-tested against.

/// Number of slice tables: the fast kernel consumes this many bytes per
/// iteration.
const CRC_SLICES: usize = 32;

/// Slice-by-32 CRC-32C tables, generated at first use. `TABLES[0]` is
/// the classic byte-at-a-time table; `TABLES[k]` advances a byte that
/// sits `k` positions ahead of the end of the 32-byte block.
fn crc32c_tables() -> &'static [[u32; 256]; CRC_SLICES] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; CRC_SLICES]> = OnceLock::new();
    TABLES.get_or_init(|| {
        const POLY: u32 = 0x82F6_3B78; // reflected 0x1EDC6F41
        let mut tables = [[0u32; 256]; CRC_SLICES];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            tables[0][i] = crc;
            i += 1;
        }
        let mut k = 1;
        while k < CRC_SLICES {
            let mut i = 0;
            while i < 256 {
                let prev = tables[k - 1][i];
                tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
                i += 1;
            }
            k += 1;
        }
        tables
    })
}

/// Advance a raw (pre-inversion) CRC-32C state over `data` with the
/// slice-by-32 kernel. The state convention matches the classic loop:
/// start from `!0`, finish with `!state`.
fn crc32c_advance(mut crc: u32, data: &[u8]) -> u32 {
    let t = crc32c_tables();
    let mut chunks = data.chunks_exact(CRC_SLICES);
    for d in &mut chunks {
        // Four wide little-endian loads; the compiler turns the
        // `try_into` on a fixed-size chunk into a plain unaligned read,
        // and fully unrolls the lookup loop below.
        let a = u64::from_le_bytes(d[0..8].try_into().expect("8-byte chunk")) ^ crc as u64;
        let b = u64::from_le_bytes(d[8..16].try_into().expect("8-byte chunk"));
        let c = u64::from_le_bytes(d[16..24].try_into().expect("8-byte chunk"));
        let e = u64::from_le_bytes(d[24..32].try_into().expect("8-byte chunk"));
        let mut x = 0u32;
        for i in 0..8 {
            x ^= t[31 - i][((a >> (8 * i)) & 0xFF) as usize]
                ^ t[23 - i][((b >> (8 * i)) & 0xFF) as usize]
                ^ t[15 - i][((c >> (8 * i)) & 0xFF) as usize]
                ^ t[7 - i][((e >> (8 * i)) & 0xFF) as usize];
        }
        crc = x;
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC-32C checksum of `data` (slice-by-32 fast path).
pub fn crc32c(data: &[u8]) -> u32 {
    !crc32c_advance(!0u32, data)
}

/// The original byte-at-a-time CRC-32C — kept as the oracle the
/// slice-by-32 kernel is property-tested against, and as the honest
/// "before" side of the `repro bench-wal` comparison.
pub fn crc32c_reference(data: &[u8]) -> u32 {
    let table = &crc32c_tables()[0];
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32C: feed bytes in arbitrary chunks, then [`finish`].
/// Chunk boundaries never change the result —
/// `Crc32c::new().update(a).update(b).finish() == crc32c(a ++ b)`.
///
/// [`finish`]: Crc32c::finish
#[derive(Debug, Clone, Copy)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Fresh hasher (equivalent to having consumed zero bytes).
    pub fn new() -> Crc32c {
        Crc32c { state: !0u32 }
    }

    /// Consume `data`.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.state = crc32c_advance(self.state, data);
        self
    }

    /// The checksum of everything consumed so far (the hasher remains
    /// usable; `finish` does not reset it).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

/// A [`std::fmt::Write`] sink that feeds formatted text straight into an
/// incremental [`Crc32c`] — a digest of a canonical rendering without
/// ever materialising the `String`.
#[derive(Debug, Default)]
pub struct CrcWriter {
    crc: Crc32c,
    bytes: u64,
}

impl CrcWriter {
    /// Fresh writer.
    pub fn new() -> CrcWriter {
        CrcWriter::default()
    }

    /// CRC-32C of every byte written so far.
    pub fn finish(&self) -> u32 {
        self.crc.finish()
    }

    /// Bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl std::fmt::Write for CrcWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.crc.update(s.as_bytes());
        self.bytes += s.len() as u64;
        Ok(())
    }
}

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// Bytes needed to finish the read.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A length-prefixed string held invalid UTF-8.
    BadUtf8,
    /// A tag byte had no corresponding variant.
    BadTag(u8),
    /// A declared length was implausibly large for the buffer.
    BadLength(u64),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "truncated: needed {needed} bytes, {remaining} remain")
            }
            CodecError::BadUtf8 => write!(f, "length-prefixed string is not UTF-8"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            CodecError::BadLength(n) => write!(f, "implausible length {n}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink with fixed-width little-endian writers.
///
/// Cloneable and resettable: hot paths keep one encoder alive as a
/// scratch buffer ([`Encoder::clear`] + [`Encoder::as_slice`]) so
/// steady-state encoding performs no heap allocation.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consume the encoder, yielding the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Reset to empty, keeping the allocated capacity — the scratch-reuse
    /// primitive behind the zero-allocation append path.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The bytes written so far, without consuming the encoder.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a length-prefixed (`u32`) byte slice.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// Cursor over a byte slice with fixed-width little-endian readers.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if the cursor reached the end.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        if len > self.buf.len() {
            return Err(CodecError::BadLength(len as u64));
        }
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::BadUtf8)
    }
}

/// What [`read_frame`] found at the cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame<'a> {
    /// A complete, checksum-verified payload.
    Ok(&'a [u8]),
    /// The buffer ended mid-frame: the writer died partway through an
    /// append. Everything before this point is intact; the torn bytes
    /// are safe to discard (the write never "committed").
    Torn {
        /// How many trailing bytes belong to the torn frame.
        bytes: usize,
    },
    /// A full-length frame whose checksum failed: the log was damaged
    /// *after* being written. Unlike a torn tail this cannot be rolled
    /// back silently — data that was acknowledged is gone.
    Corrupt {
        /// Checksum stored in the frame header.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
}

/// Append `payload` framed as `[len u32][crc32c u32][payload]` to `out`
/// — the zero-copy variant of [`frame`]: no intermediate `Vec`, bytes go
/// straight into the caller's buffer.
pub fn frame_into(payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Wrap `payload` as `[len u32][crc32c u32][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    frame_into(payload, &mut out);
    out
}

/// Read one frame starting at `buf[*pos]`, advancing `pos` past it on
/// success. Returns `None` at a clean end of buffer.
pub fn read_frame<'a>(buf: &'a [u8], pos: &mut usize) -> Option<Frame<'a>> {
    let remaining = buf.len() - *pos;
    if remaining == 0 {
        return None;
    }
    if remaining < 8 {
        return Some(Frame::Torn { bytes: remaining });
    }
    let len = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(buf[*pos + 4..*pos + 8].try_into().expect("4 bytes"));
    if remaining - 8 < len {
        return Some(Frame::Torn { bytes: remaining });
    }
    let payload = &buf[*pos + 8..*pos + 8 + len];
    let computed = crc32c(payload);
    if computed != stored {
        return Some(Frame::Corrupt { stored, computed });
    }
    *pos += 8 + len;
    Some(Frame::Ok(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 §B.4 test vectors — both the slice-by-32 fast path and
        // the byte-at-a-time reference must hit them.
        for crc in [crc32c, crc32c_reference] {
            assert_eq!(crc(b""), 0x0000_0000);
            assert_eq!(crc(&[0u8; 32]), 0x8A91_36AA);
            assert_eq!(crc(&[0xFFu8; 32]), 0x62A8_AB43);
            let ascending: Vec<u8> = (0u8..32).collect();
            assert_eq!(crc(&ascending), 0x46DD_794E);
            assert_eq!(crc(b"123456789"), 0xE306_9283);
        }
    }

    /// A deterministic pseudo-random buffer (splitmix-ish byte stream).
    fn long_buffer(len: usize) -> Vec<u8> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn crc32c_long_inputs_match_reference() {
        // >64 KiB inputs: exercise thousands of slice-by-32 blocks plus
        // every remainder length, against the byte-at-a-time oracle.
        for len in [64 * 1024 + 1, 100_000, 100_007, 100_015] {
            let buf = long_buffer(len);
            assert_eq!(crc32c(&buf), crc32c_reference(&buf), "len={len}");
        }
        // Pinned long vectors so a table-generation regression cannot
        // slip past a reference that shares the same tables.
        let zeros = vec![0u8; 64 * 1024 + 3];
        assert_eq!(crc32c(&zeros), 0x1D0A_F0A0);
        let ones = vec![0xFFu8; 100_000];
        assert_eq!(crc32c(&ones), 0x2F0B_8293);
    }

    #[test]
    fn crc32c_incremental_is_boundary_blind() {
        let buf = long_buffer(4096);
        let whole = crc32c(&buf);
        for split in [0, 1, 7, 15, 16, 17, 1024, 4095, 4096] {
            let mut h = Crc32c::new();
            h.update(&buf[..split]).update(&buf[split..]);
            assert_eq!(h.finish(), whole, "split={split}");
        }
    }

    #[test]
    fn crc_writer_digests_formatted_text() {
        use std::fmt::Write;
        let mut w = CrcWriter::new();
        write!(w, "now={} rng={:?}", 42, [1u64, 2]).unwrap();
        let mut s = String::new();
        write!(s, "now={} rng={:?}", 42, [1u64, 2]).unwrap();
        assert_eq!(w.finish(), crc32c(s.as_bytes()));
        assert_eq!(w.bytes(), s.len() as u64);
    }

    #[test]
    fn frame_into_matches_frame() {
        let mut out = vec![0xAB, 0xCD]; // pre-existing bytes survive
        frame_into(b"payload", &mut out);
        let mut want = vec![0xAB, 0xCD];
        want.extend_from_slice(&frame(b"payload"));
        assert_eq!(out, want);
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut e = Encoder::new();
        e.u8(7).u32(0xDEAD_BEEF).u64(u64::MAX).str("griphon");
        e.bytes(&[1, 2, 3]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.str().unwrap(), "griphon");
        assert_eq!(d.bytes().unwrap(), &[1, 2, 3]);
        assert!(d.is_done());
    }

    #[test]
    fn truncated_read_is_typed() {
        let mut d = Decoder::new(&[1, 2]);
        assert_eq!(
            d.u32(),
            Err(CodecError::Truncated {
                needed: 4,
                remaining: 2
            })
        );
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut e = Encoder::new();
        e.bytes(&[0xFF, 0xFE]);
        let buf = e.finish();
        assert_eq!(Decoder::new(&buf).str(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn implausible_length_is_typed() {
        let mut e = Encoder::new();
        e.u32(u32::MAX);
        let buf = e.finish();
        assert_eq!(
            Decoder::new(&buf).bytes(),
            Err(CodecError::BadLength(u32::MAX as u64))
        );
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = frame(b"alpha");
        buf.extend_from_slice(&frame(b"beta"));
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos), Some(Frame::Ok(&b"alpha"[..])));
        assert_eq!(read_frame(&buf, &mut pos), Some(Frame::Ok(&b"beta"[..])));
        assert_eq!(read_frame(&buf, &mut pos), None);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn torn_tail_at_every_byte_offset() {
        let mut buf = frame(b"alpha");
        buf.extend_from_slice(&frame(b"the second record"));
        let first_len = frame(b"alpha").len();
        // Truncating anywhere strictly inside the second frame must read
        // the first frame cleanly, then report Torn — never Corrupt.
        for cut in first_len + 1..buf.len() {
            let cut_buf = &buf[..cut];
            let mut pos = 0;
            assert_eq!(
                read_frame(cut_buf, &mut pos),
                Some(Frame::Ok(&b"alpha"[..]))
            );
            match read_frame(cut_buf, &mut pos) {
                Some(Frame::Torn { bytes }) => assert_eq!(bytes, cut - first_len),
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_not_torn() {
        let mut buf = frame(b"payload-bytes");
        let last = buf.len() - 1;
        buf[last] ^= 0x01; // flip a payload bit, length intact
        let mut pos = 0;
        match read_frame(&buf, &mut pos) {
            Some(Frame::Corrupt { stored, computed }) => assert_ne!(stored, computed),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn empty_payload_frames_cleanly() {
        let buf = frame(b"");
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos), Some(Frame::Ok(&b""[..])));
        assert_eq!(read_frame(&buf, &mut pos), None);
    }
}

#[cfg(test)]
mod crc_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The slice-by-32 kernel is byte-for-byte equivalent to the
        /// byte-at-a-time reference on arbitrary inputs (lengths cover
        /// sub-block, exact-block, and multi-block cases).
        #[test]
        fn slice_by_32_equals_reference(data in prop::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(crc32c(&data), crc32c_reference(&data));
        }

        /// Incremental feeding over arbitrary chunk boundaries equals the
        /// one-shot reference: split points land inside and between
        /// 16-byte blocks at random.
        #[test]
        fn chunked_feeding_equals_one_shot(
            data in prop::collection::vec(any::<u8>(), 0..2048),
            cuts in prop::collection::vec(0usize..2048, 0..8),
        ) {
            let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(data.len())).collect();
            cuts.sort_unstable();
            let mut h = Crc32c::new();
            let mut prev = 0;
            for c in cuts {
                h.update(&data[prev..c]);
                prev = c;
            }
            h.update(&data[prev..]);
            prop_assert_eq!(h.finish(), crc32c_reference(&data));
        }
    }
}
