//! Simulated time.
//!
//! [`SimTime`] is an absolute instant measured in nanoseconds since the
//! start of the simulation; [`SimDuration`] is a span between instants.
//! Both are plain `u64` newtypes: a `u64` of nanoseconds covers ~584 years
//! of simulated time, comfortably more than the 4–12 *hour* manual
//! restoration windows this workspace simulates.
//!
//! All arithmetic that could overflow is either checked or saturating and
//! spelled out in the method name; the `Add`/`Sub` operator impls panic on
//! overflow (a simulation bug, not a recoverable condition).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant in simulated time (nanoseconds since simulation start).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far
    /// away" sentinel for deadlines that are never reached.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is after `self`"),
        )
    }

    /// Duration since an earlier instant, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }
    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000_000)
    }
    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a float scale factor (clamped at zero).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }

    /// How many whole `unit`s are needed to cover this duration
    /// (ceiling division). Used for snapping event times onto a tick grid.
    ///
    /// # Panics
    /// If `unit` is zero.
    pub const fn div_ceil(self, unit: SimDuration) -> u64 {
        assert!(unit.0 > 0, "div_ceil by zero duration");
        self.0.div_ceil(unit.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("SimDuration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

/// Format a nanosecond count as the most natural human unit
/// (`1h02m03s`, `4.25s`, `310ms`, `42µs`, `7ns`).
fn fmt_nanos(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 3_600_000_000_000 {
        let s = ns / 1_000_000_000;
        write!(f, "{}h{:02}m{:02}s", s / 3600, (s % 3600) / 60, s % 60)
    } else if ns >= 60_000_000_000 {
        let s = ns / 1_000_000_000;
        write!(f, "{}m{:02}s", s / 60, s % 60)
    } else if ns >= 1_000_000_000 {
        write!(f, "{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.1}µs", ns as f64 / 1e3)
    } else {
        write!(f, "{}ns", ns)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+")?;
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_secs_f64(62.48);
        assert!((t.as_secs_f64() - 62.48).abs() < 1e-9);
        let d = SimDuration::from_secs_f64(0.0503);
        assert!((d.as_secs_f64() - 0.0503).abs() < 1e-9);
    }

    #[test]
    fn negative_float_clamps_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn since_and_operators() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert_eq!(a.since(b), SimDuration::from_secs(6));
        assert_eq!(a - b, SimDuration::from_secs(6));
        assert_eq!(b + SimDuration::from_secs(6), a);
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_reversed() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2500));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(20)),
            SimDuration::ZERO
        );
        assert_eq!(d.checked_sub(SimDuration::from_secs(20)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimDuration::from_micros(42).to_string(), "42.0µs");
        assert_eq!(SimDuration::from_millis(310).to_string(), "310.0ms");
        assert_eq!(SimDuration::from_secs_f64(4.25).to_string(), "4.25s");
        assert_eq!(SimDuration::from_secs(62).to_string(), "1m02s");
        assert_eq!(SimDuration::from_secs(3723).to_string(), "1h02m03s");
        assert_eq!(SimTime::from_secs(5).to_string(), "t+5.00s");
    }

    #[test]
    fn saturating_add_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
    }
}
