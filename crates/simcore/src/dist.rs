//! Shared heavy-tailed and diurnal sampling helpers.
//!
//! Three subsystems draw from the same family of distributions: the
//! `cloud` workload generator (bounded-Pareto bulk sizes, diurnal
//! interactive demand), the `measure` cross-traffic engine (diurnal
//! drift profiles), and the northbound fleet generator (Zipf tenant
//! popularity × Pareto request rates under diurnal modulation). This
//! module is the single home for those draws so the three planes agree
//! on shape by construction instead of by copy.
//!
//! The formulas here are transplanted *operation-for-operation* from
//! their original call sites: the refactor is bit-identical, so golden
//! files and digest fingerprints pinned before the extraction still
//! hold after it.

use crate::rng::SimRng;

/// The canonical diurnal day length used by the day-shaped factor.
pub const DAY_SECS: f64 = 86_400.0;

/// Day-shaped diurnal factor in `[floor, 1]`: the crest is at local
/// noon, the trough (`floor`) at midnight, following
/// `floor + (1 − floor) · (0.5 − 0.5·cos(2πt/86400))`.
///
/// This is the `cloud` interactive-demand curve; multiply by a peak
/// rate to obtain the instantaneous demand.
pub fn diurnal_day_factor(t_secs: f64, floor: f64) -> f64 {
    let phase = (t_secs % DAY_SECS) / DAY_SECS * std::f64::consts::TAU;
    // cos peaks at phase 0 = midnight; shift so noon is the crest.
    let level = 0.5 - 0.5 * phase.cos(); // 0 at midnight, 1 at noon
    floor + (1.0 - floor) * level
}

/// Sinusoidal diurnal term `sin(2πt/period + φ)` in `[-1, 1]`.
///
/// This is the `measure` cross-traffic drift shape; callers scale by an
/// amplitude and add a base level.
pub fn diurnal_sin(t_secs: f64, period_secs: f64, phase: f64) -> f64 {
    let x = std::f64::consts::TAU * t_secs / period_secs + phase;
    x.sin()
}

/// One bounded-Pareto draw in integer "bits" units: a Pareto(`min_bits`,
/// `alpha`) sample truncated to `max_bits`. Heavy-tailed for
/// `1 < alpha < 2` (finite mean, unbounded variance before the cap).
pub fn bounded_pareto_bits(rng: &mut SimRng, min_bits: f64, alpha: f64, max_bits: u64) -> u64 {
    let raw = rng.pareto(min_bits, alpha);
    (raw as u64).min(max_bits)
}

/// Zipf rank weights: `weight(i) = 1 / (i+1)^s` for ranks `0..n`.
///
/// `s = 0` is uniform; `s ≈ 1` is the classic web-popularity curve. The
/// weights are unnormalised — [`ZipfSampler`] normalises internally.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

/// Cumulative-weight sampler over a fixed finite population.
///
/// Construction is O(n); each draw is one uniform variate plus a binary
/// search (O(log n)), which is what makes million-tenant attribution
/// affordable — [`SimRng::weighted_index`] is O(n) per draw and is only
/// suitable for small weight vectors.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Inclusive prefix sums of the weights; `cum[i]` is the total
    /// weight of ranks `0..=i`.
    cum: Vec<f64>,
}

impl ZipfSampler {
    /// Sampler over `n` ranks with Zipf exponent `s`.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        ZipfSampler::from_weights(zipf_weights(n, s))
    }

    /// Sampler over arbitrary non-negative weights. Panics if the
    /// weights are empty or sum to zero.
    pub fn from_weights(weights: Vec<f64>) -> ZipfSampler {
        assert!(!weights.is_empty(), "ZipfSampler needs at least one rank");
        let mut cum = weights;
        let mut acc = 0.0;
        for w in cum.iter_mut() {
            assert!(*w >= 0.0 && w.is_finite(), "weights must be finite ≥ 0");
            acc += *w;
            *w = acc;
        }
        assert!(acc > 0.0, "weights must not sum to zero");
        ZipfSampler { cum }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// True when the sampler has no ranks (never: construction forbids
    /// it), kept for `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Total weight across all ranks.
    pub fn total_weight(&self) -> f64 {
        *self.cum.last().expect("non-empty by construction")
    }

    /// Draw one rank in `0..len()`, popularity-weighted.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let target = rng.f64() * self.total_weight();
        // partition_point finds the first prefix sum exceeding the
        // target; clamp guards the (measure-zero) target == total case.
        self.cum
            .partition_point(|&c| c <= target)
            .min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_factor_matches_cloud_curve() {
        // Midnight trough at the floor, noon crest at 1, 24 h periodic.
        assert!((diurnal_day_factor(0.0, 0.3) - 0.3).abs() < 1e-12);
        assert!((diurnal_day_factor(43_200.0, 0.3) - 1.0).abs() < 1e-12);
        assert_eq!(
            diurnal_day_factor(0.0, 0.3),
            diurnal_day_factor(86_400.0, 0.3)
        );
    }

    #[test]
    fn sin_term_is_bounded_and_periodic() {
        for i in 0..100 {
            let t = i as f64 * 977.0;
            let v = diurnal_sin(t, 3600.0, 1.25);
            assert!((-1.0..=1.0).contains(&v));
        }
        let a = diurnal_sin(100.0, 3600.0, 0.5);
        let b = diurnal_sin(100.0 + 3600.0, 3600.0, 0.5);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut rng = SimRng::new(42);
        for _ in 0..10_000 {
            let v = bounded_pareto_bits(&mut rng, 1_000.0, 1.3, 50_000);
            assert!((1_000..=50_000).contains(&v));
        }
    }

    #[test]
    fn zipf_sampler_matches_weighted_index_on_small_n() {
        // Same uniform draw → same rank as the O(n) reference sampler.
        let weights = zipf_weights(17, 1.1);
        let sampler = ZipfSampler::from_weights(weights.clone());
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..2_000 {
            assert_eq!(sampler.sample(&mut a), b.weighted_index(&weights));
        }
    }

    #[test]
    fn zipf_head_dominates() {
        let sampler = ZipfSampler::new(10_000, 1.0);
        let mut rng = SimRng::new(9);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if sampler.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // Top 1% of ranks should carry roughly half the draws at s=1.
        assert!(head > n / 3, "head draws {head} of {n}");
    }
}

#[cfg(test)]
mod dist_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Bounded Pareto never leaves `[min_bits, max_bits]` for any
        /// seed, shape, or bound combination.
        #[test]
        fn bounded_pareto_shape(
            seed in any::<u64>(),
            min_kb in 1u64..1_000,
            alpha in 1.05f64..1.95,
            span in 2u64..10_000,
        ) {
            let min_bits = min_kb * 1_000;
            let max_bits = min_bits * span;
            let mut rng = SimRng::new(seed);
            for _ in 0..64 {
                let v = bounded_pareto_bits(&mut rng, min_bits as f64, alpha, max_bits);
                prop_assert!(v >= min_bits && v <= max_bits, "draw {v} outside bounds");
            }
        }

        /// The prefix-sum sampler agrees draw-for-draw with the O(n)
        /// reference sampler on arbitrary weight vectors.
        #[test]
        fn zipf_sampler_equals_reference(
            seed in any::<u64>(),
            weights in prop::collection::vec(0.01f64..100.0, 1..64),
        ) {
            let sampler = ZipfSampler::from_weights(weights.clone());
            let mut a = SimRng::new(seed);
            let mut b = SimRng::new(seed);
            for _ in 0..128 {
                prop_assert_eq!(sampler.sample(&mut a), b.weighted_index(&weights));
            }
        }

        /// The day factor stays inside `[floor, 1]` and the Zipf head
        /// monotonically outweighs the tail as the exponent grows.
        #[test]
        fn diurnal_factor_in_band(t in 0.0f64..1e7, floor in 0.0f64..1.0) {
            let f = diurnal_day_factor(t, floor);
            prop_assert!(f >= floor - 1e-9 && f <= 1.0 + 1e-9, "factor {f} outside band");
        }

        /// Heavier exponents concentrate more probability mass in the
        /// head rank — the defining Zipf shape property.
        #[test]
        fn zipf_mass_concentrates_with_exponent(n in 2usize..2_000) {
            let flat = ZipfSampler::new(n, 0.5);
            let steep = ZipfSampler::new(n, 1.5);
            let head_flat = flat.total_weight();
            let head_steep = steep.total_weight();
            // weight(0) = 1 in both; a steeper tail sums to less, so the
            // head's *share* strictly grows with the exponent.
            prop_assert!(1.0 / head_steep > 1.0 / head_flat);
        }
    }
}
