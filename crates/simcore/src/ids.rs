//! Typed entity identifiers.
//!
//! Every domain crate defines its own id types (`RoadmId`, `FiberId`,
//! `ConnectionId`, …) with the [`define_id!`](crate::define_id) macro. A typed newtype per
//! entity kind prevents the classic simulator bug of indexing the wrong
//! table with a bare `usize`.

/// Define a `Copy` newtype identifier over `u32` with `Display`/`Debug`
/// and conversion helpers.
///
/// ```
/// simcore::define_id!(WidgetId, "wid");
/// let w = WidgetId::new(7);
/// assert_eq!(w.index(), 7);
/// assert_eq!(w.to_string(), "wid7");
/// ```
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Clone,
            Copy,
            PartialEq,
            Eq,
            PartialOrd,
            Ord,
            Hash,
            ::serde::Serialize,
            ::serde::Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Construct from a raw index.
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }
            /// Construct from a `usize` index (panics if it does not fit).
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect(concat!(stringify!($name), " index overflow")))
            }
            /// The raw index, for table lookups.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
            /// The raw `u32` value.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                ::std::fmt::Display::fmt(self, f)
            }
        }
    };
}

/// A monotonically increasing id allocator for use alongside [`define_id!`]
/// types.
///
/// ```
/// simcore::define_id!(WidgetId, "wid");
/// let mut alloc = simcore::ids::IdAllocator::new();
/// let a: WidgetId = WidgetId::new(alloc.next());
/// let b: WidgetId = WidgetId::new(alloc.next());
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Default, Clone)]
pub struct IdAllocator {
    next: u32,
}

impl IdAllocator {
    /// A fresh allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next raw id.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u32 {
        let v = self.next;
        self.next = self.next.checked_add(1).expect("id space exhausted");
        v
    }

    /// How many ids have been handed out so far.
    pub fn allocated(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    define_id!(TestId, "t");

    #[test]
    fn roundtrip_and_display() {
        let id = TestId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.to_string(), "t42");
        assert_eq!(format!("{id:?}"), "t42");
        assert_eq!(TestId::from_index(42), id);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(TestId::new(1) < TestId::new(2));
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut a = super::IdAllocator::new();
        let ids: Vec<u32> = (0..5).map(|_| a.next()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(a.allocated(), 5);
    }
}
