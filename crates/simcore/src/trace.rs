//! Structured trace log.
//!
//! Domain state machines append [`TraceEvent`]s as they transition; tests
//! and the fault-localization logic assert on the sequence. The log is
//! bounded (a ring) so week-long simulated runs cannot exhaust memory.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Coarse category, e.g. `"ems"`, `"roadm"`, `"conn"`, `"alarm"`.
    pub category: &'static str,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:<6} {}", self.at, self.category, self.detail)
    }
}

/// Bounded in-memory trace log.
#[derive(Debug, Clone)]
pub struct TraceLog {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new(65_536)
    }
}

impl TraceLog {
    /// A log holding at most `capacity` events (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceLog {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// Turn recording on/off (e.g. during warm-up).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Append an event.
    pub fn emit(&mut self, at: SimTime, category: &'static str, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            category,
            detail: detail.into(),
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events in a category.
    pub fn in_category<'a>(
        &'a self,
        category: &'static str,
    ) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// Count of events whose detail contains `needle` (test helper).
    pub fn count_containing(&self, needle: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.detail.contains(needle))
            .count()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// A one-line warning when the ring evicted events, for repro targets
    /// to surface instead of silently reporting from a truncated log.
    pub fn drop_warning(&self) -> Option<String> {
        (self.dropped > 0).then(|| {
            format!(
                "warning: trace ring dropped {} events (capacity {}); oldest history is missing",
                self.dropped, self.capacity
            )
        })
    }

    /// Render the whole retained log.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_query() {
        let mut log = TraceLog::new(16);
        log.emit(SimTime::from_secs(1), "ems", "cmd start");
        log.emit(SimTime::from_secs(2), "roadm", "wss reconfig");
        log.emit(SimTime::from_secs(3), "ems", "cmd done");
        assert_eq!(log.len(), 3);
        assert_eq!(log.in_category("ems").count(), 2);
        assert_eq!(log.count_containing("cmd"), 2);
        assert!(log.dump().contains("wss reconfig"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = TraceLog::new(3);
        for i in 0..5u64 {
            log.emit(SimTime::from_secs(i), "t", format!("e{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let first = log.events().next().unwrap();
        assert_eq!(first.detail, "e2");
    }

    #[test]
    fn drop_warning_tracks_dropped_count() {
        let mut log = TraceLog::new(2);
        log.emit(SimTime::ZERO, "t", "a");
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.drop_warning(), None);
        log.emit(SimTime::ZERO, "t", "b");
        log.emit(SimTime::ZERO, "t", "c");
        log.emit(SimTime::ZERO, "t", "d");
        assert_eq!(log.dropped(), 2);
        let w = log.drop_warning().unwrap();
        assert!(w.contains("dropped 2 events"), "{w}");
        assert!(w.contains("capacity 2"), "{w}");
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(4);
        log.set_enabled(false);
        log.emit(SimTime::ZERO, "t", "x");
        assert!(log.is_empty());
        log.set_enabled(true);
        log.emit(SimTime::ZERO, "t", "y");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            at: SimTime::from_secs(5),
            category: "conn",
            detail: "active".into(),
        };
        assert_eq!(e.to_string(), "[t+5.00s] conn   active");
    }
}
