//! Deterministic pseudo-random numbers and the distributions the workload
//! generators need.
//!
//! [`SimRng`] is xoshiro256** seeded through SplitMix64 — the standard
//! recipe for turning a single `u64` seed into a well-mixed 256-bit state.
//! It is implemented here rather than pulled from `rand` so that the
//! simulation's numeric stream is pinned by this crate's own code and can
//! never shift under a dependency upgrade; experiments cite seeds.
//!
//! The distribution helpers are methods (not separate sampler structs) so
//! call sites read naturally: `rng.exp(mean)`, `rng.pareto(xm, alpha)`.

/// Deterministic PRNG (xoshiro256**, SplitMix64 seeding).
///
/// ```
/// use simcore::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second normal variate from the last Box–Muller draw.
    gauss_spare: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a seed. Equal seeds produce identical
    /// streams forever.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// The raw 256-bit generator state plus the cached Box–Muller spare
    /// (as bits; `u64::MAX` when empty). Two generators with equal state
    /// words produce identical streams forever — used by controller
    /// state digests to prove recovered replicas bit-exact.
    pub fn state_words(&self) -> [u64; 5] {
        [
            self.s[0],
            self.s[1],
            self.s[2],
            self.s[3],
            self.gauss_spare.map_or(u64::MAX, f64::to_bits),
        ]
    }

    /// Derive an independent child generator (for giving each workload
    /// source its own stream while keeping one top-level seed).
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Lemire's multiply-shift rejection method: unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let l = m as u64;
            if l >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential with the given mean (rate = 1/mean). Mean 0 returns 0.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Avoid ln(0) by sampling from (0,1].
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (with spare caching).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Normal truncated below at `floor` (resampled, not clamped, unless it
    /// fails 64 times — then clamps — to stay loop-free under adversarial
    /// parameters).
    pub fn normal_min(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        for _ in 0..64 {
            let x = self.normal(mean, std_dev);
            if x >= floor {
                return x;
            }
        }
        floor
    }

    /// Log-normal: `exp(N(mu, sigma))` where `mu`/`sigma` are the
    /// parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto with scale `xm > 0` and shape `alpha > 0` — heavy-tailed bulk
    /// transfer sizes.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0, "pareto parameters must be > 0");
        let u = 1.0 - self.f64();
        xm / u.powf(1.0 / alpha)
    }

    /// Pick an index with probability proportional to `weights[i]`.
    /// Panics if all weights are zero/negative or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        assert!(total > 0.0, "weighted_index: no positive weights");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if x < *w {
                return i;
            }
            x -= *w;
        }
        // Floating-point fell off the end; return the last positive weight.
        weights
            .iter()
            .rposition(|w| *w > 0.0)
            .expect("checked above")
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues should appear");
    }

    #[test]
    fn range_u64_inclusive() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let x = r.range_u64(5, 7);
            assert!((5..=7).contains(&x));
        }
        assert_eq!(r.range_u64(4, 4), 4);
    }

    #[test]
    fn exp_mean_close() {
        let mut r = SimRng::new(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn exp_zero_mean_is_zero() {
        let mut r = SimRng::new(1);
        assert_eq!(r.exp(0.0), 0.0);
        assert_eq!(r.exp(-1.0), 0.0);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn normal_min_floors() {
        let mut r = SimRng::new(17);
        for _ in 0..1000 {
            assert!(r.normal_min(0.0, 5.0, 0.0) >= 0.0);
        }
    }

    #[test]
    fn pareto_at_least_scale() {
        let mut r = SimRng::new(19);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(23);
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio={ratio}");
    }

    #[test]
    #[should_panic(expected = "no positive weights")]
    fn weighted_index_rejects_all_zero() {
        SimRng::new(1).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut parent1 = SimRng::new(99);
        let mut parent2 = SimRng::new(99);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut d = parent1.fork(2);
        assert_ne!(c1.next_u64(), d.next_u64());
    }

    #[test]
    fn choose_returns_member() {
        let mut r = SimRng::new(31);
        let items = ["a", "b", "c"];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
