//! The event scheduler: a calendar queue with deterministic ordering and
//! cancellable entries.
//!
//! [`Scheduler`] is deliberately *not* a framework — it is a data structure.
//! The owning simulation pops `(time, event)` pairs and dispatches them
//! itself, which keeps domain state machines in plain Rust with no
//! callbacks, trait objects, or interior mutability (the smoltcp idiom).
//!
//! Two properties matter for reproducibility:
//!
//! 1. Events with equal timestamps pop in the order they were scheduled
//!    (FIFO tiebreak via a monotonic sequence number).
//! 2. Cancellation is tombstone-based: [`Scheduler::cancel`] marks the
//!    [`EventId`]; cancelled entries are skipped lazily at pop time, so
//!    cancel is O(1) and pop stays O(log n) amortised.
//!
//! Bookkeeping memory is O(pending events): the scheduler tracks which
//! sequence numbers are still in the heap, not which ones ever fired, so
//! arbitrarily long simulations run in bounded space.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};
use crate::units::{DataRate, DataSize};

/// Handle to a scheduled event, used to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

#[derive(Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// The scheduler tracks `now`: popping an event advances the clock to that
/// event's timestamp. Scheduling into the past is a logic error and panics.
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Tombstones for cancelled entries still sitting in the heap; drained
    /// lazily by `skip_cancelled`, so never larger than the heap.
    cancelled: HashSet<u64>,
    /// Sequence numbers currently pending (in the heap, not cancelled).
    /// An id is live iff it is here, which makes `cancel` exact without
    /// remembering every event ever delivered.
    live: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Clone> Clone for Scheduler<E> {
    fn clone(&self) -> Self {
        Scheduler {
            heap: self.heap.clone(),
            cancelled: self.cancelled.clone(),
            live: self.live.clone(),
            now: self.now,
            next_seq: self.next_seq,
            popped: self.popped,
        }
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            live: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// The current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events still pending.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Size of the internal bookkeeping sets (live ids + tombstones).
    ///
    /// Exposed for memory-regression tests: this stays O(pending) no
    /// matter how many events have ever been scheduled or delivered.
    pub fn bookkeeping_len(&self) -> usize {
        self.live.len() + self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Total number of events ever delivered by [`pop`](Self::pop).
    pub fn events_delivered(&self) -> u64 {
        self.popped
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduled into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.live.insert(seq);
        EventId(seq)
    }

    /// Schedule `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending, `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // An id is pending iff it is in the live set; delivered, cancelled,
        // and never-issued ids all fail the removal below. The entry itself
        // stays in the heap as a tombstone and is skipped lazily at pop.
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Timestamp of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.popped += 1;
        self.live.remove(&entry.seq);
        Some((entry.at, entry.event))
    }

    /// Pop the next live event only if it fires at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Advance the clock to `at` without delivering anything.
    ///
    /// # Panics
    /// If a live event is pending before `at` (that would silently reorder
    /// time), or if `at` is in the past.
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "advance_to into the past");
        if let Some(t) = self.peek_time() {
            assert!(
                t >= at,
                "advance_to({at}) would skip a pending event at {t}"
            );
        }
        self.now = at;
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Snapshot of the live (non-cancelled) pending entries in
    /// deterministic `(time, seq)` delivery order.
    ///
    /// Used by state digests: two schedulers that would deliver the same
    /// events in the same order at the same times — regardless of heap
    /// internals or tombstone residue — produce identical listings.
    pub fn pending_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> = self
            .heap
            .iter()
            .filter(|e| self.live.contains(&e.seq))
            .map(|e| (e.at, e.seq, &e.event))
            .collect();
        out.sort_by_key(|(at, seq, _)| (*at, *seq));
        out
    }

    /// Release excess capacity held by the internal collections.
    ///
    /// Bookkeeping is already bounded by the number of pending events, so
    /// this only returns allocator space after a burst; behaviour is
    /// completely unaffected. Kept for API compatibility.
    pub fn compact(&mut self) {
        self.heap.shrink_to_fit();
        self.live.shrink_to_fit();
        self.cancelled.shrink_to_fit();
    }
}

/// A fluid single-server bottleneck queue with exact integer arithmetic.
///
/// The measurement plane (`griphon::measure`) models a shared path as one
/// FIFO bottleneck of fixed `capacity` fed by piecewise-constant cross
/// traffic. Between rate breakpoints the fluid evolution is linear, so
/// the queue can be advanced one constant-rate segment at a time with a
/// single integer update — no per-packet events, and bit-identical
/// results regardless of how a segment is subdivided at the same
/// breakpoints.
///
/// All arithmetic goes through [`DataRate::over`] (truncating bits per
/// segment), which *defines* the model: two simulations advancing through
/// the same segment boundaries compute the same backlog, which is what
/// the determinism gates assert.
#[derive(Clone, Debug)]
pub struct FluidQueue {
    capacity: DataRate,
    backlog: DataSize,
}

impl FluidQueue {
    /// An empty queue served at `capacity`.
    ///
    /// # Panics
    /// If `capacity` is zero (the queue would never drain).
    pub fn new(capacity: DataRate) -> FluidQueue {
        assert!(capacity > DataRate::ZERO, "FluidQueue with zero capacity");
        FluidQueue {
            capacity,
            backlog: DataSize::ZERO,
        }
    }

    /// The service rate.
    pub fn capacity(&self) -> DataRate {
        self.capacity
    }

    /// Bits currently queued.
    pub fn backlog(&self) -> DataSize {
        self.backlog
    }

    /// Advance the queue `dt` under constant fluid `inflow`.
    ///
    /// The fluid backlog obeys `W' = inflow − capacity` clamped at zero:
    /// over a constant-rate segment the closed form is
    /// `max(W + (inflow − capacity)·dt, 0)`, computed here in integer
    /// bits. Callers must split at every cross-traffic breakpoint so each
    /// call really is constant-rate.
    pub fn advance(&mut self, dt: SimDuration, inflow: DataRate) {
        self.backlog = (self.backlog + inflow.over(dt)).saturating_sub(self.capacity.over(dt));
    }

    /// Enqueue a discrete burst (e.g. one probe packet) instantaneously.
    pub fn push(&mut self, size: DataSize) {
        self.backlog += size;
    }

    /// Time until the current backlog drains at `capacity` — the queueing
    /// delay a bit arriving now would see.
    pub fn delay(&self) -> SimDuration {
        self.backlog.time_at(self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3), "c");
        s.schedule_at(SimTime::from_secs(1), "a");
        s.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_secs(3));
        assert_eq!(s.events_delivered(), 3);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            s.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(5), "first");
        s.pop().unwrap();
        s.schedule_after(SimDuration::from_secs(2), "second");
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(5), ());
        s.pop();
        s.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_secs(1), "a");
        s.schedule_at(SimTime::from_secs(2), "b");
        assert!(s.cancel(a));
        assert_eq!(s.pending(), 1);
        let (_, e) = s.pop().unwrap();
        assert_eq!(e, "b");
        assert!(s.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_secs(1), "a");
        s.pop().unwrap();
        assert!(!s.cancel(a));
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_secs(1), "a");
        assert!(s.cancel(a));
        assert!(!s.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_returns_false() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert!(!s.cancel(EventId(999)));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), "a");
        s.schedule_at(SimTime::from_secs(5), "b");
        assert_eq!(s.pop_until(SimTime::from_secs(3)).unwrap().1, "a");
        assert!(s.pop_until(SimTime::from_secs(3)).is_none());
        assert_eq!(s.pop_until(SimTime::from_secs(5)).unwrap().1, "b");
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.advance_to(SimTime::from_secs(10));
        assert_eq!(s.now(), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "skip a pending event")]
    fn advance_past_pending_event_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), ());
        s.advance_to(SimTime::from_secs(2));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_secs(1), "a");
        s.schedule_at(SimTime::from_secs(2), "b");
        s.cancel(a);
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn compact_clears_when_idle() {
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.schedule_at(SimTime::from_secs(i), i);
        }
        while s.pop().is_some() {}
        s.compact();
        assert!(s.is_empty());
    }

    #[test]
    fn pending_entries_sorted_and_skips_cancelled() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3), "c");
        let b = s.schedule_at(SimTime::from_secs(2), "b");
        s.schedule_at(SimTime::from_secs(1), "a");
        s.cancel(b);
        let listed: Vec<(SimTime, &str)> = s
            .pending_entries()
            .into_iter()
            .map(|(at, _, e)| (at, *e))
            .collect();
        assert_eq!(
            listed,
            vec![(SimTime::from_secs(1), "a"), (SimTime::from_secs(3), "c")]
        );
    }

    #[test]
    fn clone_preserves_delivery_order_and_clock() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), "a");
        let b = s.schedule_at(SimTime::from_secs(2), "b");
        s.schedule_at(SimTime::from_secs(2), "c");
        s.cancel(b);
        let mut t = s.clone();
        let from_s: Vec<&str> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        let from_t: Vec<&str> = std::iter::from_fn(|| t.pop().map(|(_, e)| e)).collect();
        assert_eq!(from_s, from_t);
        assert_eq!(s.now(), t.now());
    }

    /// Bookkeeping must stay O(pending) over an arbitrarily long run: a
    /// million schedule/pop/cancel cycles may not leave more than a few
    /// entries of side-table state behind.
    #[test]
    fn bookkeeping_bounded_after_long_churn() {
        let mut s = Scheduler::new();
        let mut cancelled_ok = 0u64;
        for i in 0..1_000_000u64 {
            let id = s.schedule_at(SimTime::from_secs(i + 1), i);
            if i % 3 == 0 {
                // Cancel before delivery: tombstone drains at the next pop.
                assert!(s.cancel(id));
                cancelled_ok += 1;
            } else {
                let (_, ev) = s.pop().expect("live event pending");
                assert_eq!(ev, i);
                // Cancelling after the fact must fail and leave no residue.
                assert!(!s.cancel(id));
            }
        }
        while s.pop().is_some() {}
        assert_eq!(cancelled_ok, 333_334);
        assert_eq!(s.pending(), 0);
        assert!(
            s.bookkeeping_len() <= 1,
            "bookkeeping grew to {} entries after 1M cycles",
            s.bookkeeping_len()
        );
    }

    #[test]
    fn fluid_queue_underload_stays_empty() {
        let mut q = FluidQueue::new(DataRate::from_gbps(10));
        q.advance(SimDuration::from_secs(5), DataRate::from_gbps(4));
        assert!(q.backlog().is_zero());
        assert_eq!(q.delay(), SimDuration::ZERO);
    }

    #[test]
    fn fluid_queue_overload_accumulates_exactly() {
        let mut q = FluidQueue::new(DataRate::from_gbps(10));
        // 12G into a 10G server for 3 s: 6 Gbit of backlog.
        q.advance(SimDuration::from_secs(3), DataRate::from_gbps(12));
        assert_eq!(q.backlog(), DataSize::from_bits(6_000_000_000));
        // Drains at 10G: 600 ms of delay.
        assert_eq!(q.delay(), SimDuration::from_millis(600));
        // 2 s of silence drains 20 Gbit worth — clamps at zero.
        q.advance(SimDuration::from_secs(2), DataRate::ZERO);
        assert!(q.backlog().is_zero());
    }

    #[test]
    fn fluid_queue_split_segments_match_whole() {
        // Subdividing a constant-rate segment must not change the result.
        let mut whole = FluidQueue::new(DataRate::from_gbps(10));
        whole.push(DataSize::from_bytes(9000));
        whole.advance(
            SimDuration::from_nanos(123_456_789),
            DataRate::from_mbps(12_300),
        );

        let mut split = FluidQueue::new(DataRate::from_gbps(10));
        split.push(DataSize::from_bytes(9000));
        split.advance(
            SimDuration::from_nanos(100_000_000),
            DataRate::from_mbps(12_300),
        );
        split.advance(
            SimDuration::from_nanos(23_456_789),
            DataRate::from_mbps(12_300),
        );
        assert_eq!(whole.backlog(), split.backlog());
        assert!(!whole.backlog().is_zero());
    }

    #[test]
    fn fluid_queue_push_adds_delay() {
        let mut q = FluidQueue::new(DataRate::from_gbps(1));
        q.push(DataSize::from_bits(1_000_000));
        assert_eq!(q.delay(), SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn fluid_queue_zero_capacity_panics() {
        let _ = FluidQueue::new(DataRate::ZERO);
    }
}
