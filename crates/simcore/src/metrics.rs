//! Experiment metrics: counters, gauges, histograms, and time series.
//!
//! The benchmark harness regenerates the paper's tables from these
//! recorders. Everything is plain data — snapshots are cheap and the whole
//! registry can be dumped as text for `EXPERIMENTS.md`.
//!
//! [`Histogram`] keeps exact running moments (count, sum, min, max, sum of
//! squares) *and* log-linear buckets for quantile estimation, the same
//! trade-off HdrHistogram makes: bounded memory, ~4 % relative quantile
//! error, no stored samples.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }
    /// Add one.
    pub fn incr(&mut self) {
        self.value += 1;
    }
    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }
    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A point-in-time value that can move both ways (e.g. wavelengths in use).
#[derive(Debug, Default, Clone)]
pub struct Gauge {
    value: f64,
    max_seen: f64,
    seen: bool,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }
    /// Set the current value.
    pub fn set(&mut self, v: f64) {
        self.value = v;
        if !self.seen || v > self.max_seen {
            self.max_seen = v;
            self.seen = true;
        }
    }
    /// Adjust by a delta.
    pub fn adjust(&mut self, delta: f64) {
        self.set(self.value + delta);
    }
    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }
    /// High-water mark over every value ever set — *not* clamped to zero,
    /// so a gauge that has only held negative values (e.g. a power margin
    /// in dB below tolerance) reports its true maximum rather than 0.
    /// Returns 0 only before the first `set`/`adjust`.
    pub fn max_seen(&self) -> f64 {
        if self.seen {
            self.max_seen
        } else {
            0.0
        }
    }

    /// Fold another gauge into this one: the other gauge's value wins
    /// (last-writer semantics, matching how a fleet rollup absorbs a
    /// cell's final sample) and the high-water mark is the max of both.
    /// A never-set `other` leaves `self` untouched.
    pub fn merge_from(&mut self, other: &Gauge) {
        if !other.seen {
            return;
        }
        self.max_seen = if self.seen {
            self.max_seen.max(other.max_seen)
        } else {
            other.max_seen
        };
        self.value = other.value;
        self.seen = true;
    }
}

/// One exemplar: an observed value linked back to the span (trace) that
/// produced it, plus the labels that identify where it came from. The
/// OpenMetrics idea — every latency bucket can name the exact trace
/// behind its tail — realised deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// The observed value.
    pub value: f64,
    /// Id of the span that produced the observation (a tail-sampled,
    /// globally remapped id — see `simcore::span::TailSampler`).
    pub span_id: u64,
    /// Labels identifying the origin (e.g. `region`).
    pub labels: LabelSet,
}

/// SplitMix64 finaliser — the same mixer `SimRng` seeds with.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A bounded, deterministic exemplar reservoir using bottom-k hashing:
/// every observation gets a priority that is a pure hash of
/// `(seed, value, span id, labels)`, and the reservoir keeps the k
/// smallest priorities. Selection is therefore *content-addressed* —
/// independent of arrival order and of how observations were sharded —
/// so merging per-cell reservoirs yields byte-identical exemplars to a
/// single-stream run with the same seed (proptested in
/// `tests/properties.rs`).
#[derive(Debug, Clone, PartialEq)]
struct ExemplarReservoir {
    seed: u64,
    capacity: usize,
    /// Ascending by `(priority, span_id, value bits)`; at most
    /// `capacity` entries.
    entries: Vec<(u64, Exemplar)>,
}

impl ExemplarReservoir {
    fn new(seed: u64, capacity: usize) -> Self {
        ExemplarReservoir {
            seed,
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    fn priority(&self, ex: &Exemplar) -> u64 {
        let mut h = mix64(self.seed ^ ex.value.to_bits());
        h = mix64(h ^ ex.span_id);
        for (k, v) in &ex.labels {
            for b in k.bytes().chain(v.bytes()) {
                h = mix64(h ^ u64::from(b));
            }
        }
        h
    }

    fn sort_key(pr: u64, ex: &Exemplar) -> (u64, u64, u64) {
        (pr, ex.span_id, ex.value.to_bits())
    }

    fn insert(&mut self, pr: u64, ex: Exemplar) {
        let key = Self::sort_key(pr, &ex);
        let pos = self
            .entries
            .partition_point(|(p, e)| Self::sort_key(*p, e) < key);
        self.entries.insert(pos, (pr, ex));
        self.entries.truncate(self.capacity);
    }

    fn offer(&mut self, ex: Exemplar) {
        let pr = self.priority(&ex);
        self.insert(pr, ex);
    }

    /// Union-then-truncate: because priorities are stored, merging is
    /// exactly "offer every entry again", and bottom-k of a union equals
    /// bottom-k of bottom-k's.
    fn merge(&mut self, other: &ExemplarReservoir) {
        self.capacity = self.capacity.max(other.capacity);
        for (pr, ex) in &other.entries {
            self.insert(*pr, ex.clone());
        }
    }

    /// Exemplars in display order: value descending (the tail first),
    /// span id ascending on ties.
    fn exemplars(&self) -> Vec<&Exemplar> {
        let mut v: Vec<&Exemplar> = self.entries.iter().map(|(_, e)| e).collect();
        v.sort_by(|a, b| {
            b.value
                .total_cmp(&a.value)
                .then_with(|| a.span_id.cmp(&b.span_id))
        });
        v
    }
}

const BUCKETS_PER_DECADE: usize = 16;

/// Log-linear histogram over non-negative values with exact moments.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    /// bucket index -> count; index derived from log10 of the value.
    buckets: BTreeMap<i32, u64>,
    zeros: u64,
    /// Deterministic exemplar reservoir; absent (and free) unless
    /// [`Histogram::enable_exemplars`] was called.
    exemplars: Option<Box<ExemplarReservoir>>,
}

/// Same as [`Histogram::new`]. (A derived `Default` would zero `min`,
/// which silently corrupts `min()` and quantile clamping for registries
/// that create histograms with `or_default()`.)
impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
            zeros: 0,
            exemplars: None,
        }
    }

    /// Attach a deterministic bottom-k exemplar reservoir (see
    /// [`Exemplar`]): subsequent [`record_linked`](Self::record_linked) /
    /// [`link_exemplar`](Self::link_exemplar) calls may keep up to
    /// `capacity` exemplars, selected purely by a hash of
    /// `(seed, value, span id, labels)` so the kept set is independent of
    /// arrival order and sharding.
    pub fn enable_exemplars(&mut self, seed: u64, capacity: usize) {
        self.exemplars = Some(Box::new(ExemplarReservoir::new(seed, capacity)));
    }

    /// Is an exemplar reservoir attached?
    pub fn exemplars_enabled(&self) -> bool {
        self.exemplars.is_some()
    }

    /// Record an observation *and* offer it to the exemplar reservoir
    /// (a no-op link when exemplars are not enabled).
    pub fn record_linked(&mut self, v: f64, span_id: u64, labels: &[(&str, &str)]) {
        self.record(v);
        self.link_exemplar(v, span_id, labels);
    }

    /// Offer an exemplar for an observation that was already recorded —
    /// the path tail samplers use: the histogram sees *every* root span's
    /// duration via [`record`](Self::record), while only the retained
    /// traces are offered as exemplars so every kept exemplar links to a
    /// span that still exists.
    pub fn link_exemplar(&mut self, v: f64, span_id: u64, labels: &[(&str, &str)]) {
        if let Some(res) = self.exemplars.as_mut() {
            res.offer(Exemplar {
                value: v,
                span_id,
                labels: canon_labels(labels),
            });
        }
    }

    /// Kept exemplars in display order (value descending, span id
    /// ascending on ties); empty when exemplars are disabled.
    pub fn exemplars(&self) -> Vec<&Exemplar> {
        self.exemplars
            .as_deref()
            .map(ExemplarReservoir::exemplars)
            .unwrap_or_default()
    }

    fn bucket_of(v: f64) -> i32 {
        // log-linear: BUCKETS_PER_DECADE buckets per power of ten.
        (v.log10() * BUCKETS_PER_DECADE as f64).floor() as i32
    }

    fn bucket_midpoint(b: i32) -> f64 {
        10f64.powf((b as f64 + 0.5) / BUCKETS_PER_DECADE as f64)
    }

    /// Record one observation. Negative values are a logic error and panic.
    pub fn record(&mut self, v: f64) {
        assert!(v >= 0.0 && v.is_finite(), "histogram value {v}");
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        if v == 0.0 {
            self.zeros += 1;
        } else {
            *self.buckets.entry(Self::bucket_of(v)).or_insert(0) += 1;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }
    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
    /// Population standard deviation, or 0 for fewer than 2 samples.
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sum_sq / n - (self.sum / n).powi(2)).max(0.0);
        var.sqrt()
    }
    /// Smallest observation (exact). 0 for empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }
    /// Largest observation (exact). 0 for empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile (`q` in `[0,1]`), within one log-linear bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q}");
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.zeros;
        if seen >= target {
            return 0.0;
        }
        for (b, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return Self::bucket_midpoint(*b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.zeros += other.zeros;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (b, c) in &other.buckets {
            *self.buckets.entry(*b).or_insert(0) += c;
        }
        if let Some(theirs) = other.exemplars.as_deref() {
            match self.exemplars.as_deref_mut() {
                Some(ours) => ours.merge(theirs),
                None => self.exemplars = Some(Box::new(theirs.clone())),
            }
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p50={:.3} p95={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.quantile(0.5),
            self.quantile(0.95),
            self.max()
        )
    }
}

/// A `(time, value)` series, e.g. provisioned bandwidth over a day.
#[derive(Debug, Default, Clone)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point. Time must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some((last, _)) = self.points.last() {
            assert!(t >= *last, "time series must be appended in order");
        }
        self.points.push((t, v));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Value in force at time `t` (step interpolation), or `None` before
    /// the first point.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.partition_point(|(pt, _)| *pt <= t) {
            0 => None,
            i => Some(self.points[i - 1].1),
        }
    }

    /// Time integral of the step function over `[start, end]` — e.g.
    /// gigabit-seconds of provisioned capacity, for the cost model.
    pub fn integral(&self, start: SimTime, end: SimTime) -> f64 {
        assert!(end >= start);
        let mut acc = 0.0;
        let mut cur_t = start;
        let mut cur_v = self.value_at(start).unwrap_or(0.0);
        for (t, v) in &self.points {
            if *t <= start {
                continue;
            }
            if *t >= end {
                break;
            }
            acc += cur_v * (*t - cur_t).as_secs_f64();
            cur_t = *t;
            cur_v = *v;
        }
        acc += cur_v * (end - cur_t).as_secs_f64();
        acc
    }

    /// Largest value in the series (0 if empty).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }
}

/// Wall-clock latency percentiles from raw samples — for *host-side*
/// performance measurement (e.g. how long `plan_wavelength` takes on this
/// machine), not simulated time.
///
/// Deliberately **not** part of [`MetricsRegistry`]: registry reports feed
/// deterministic scenario comparisons, and wall-clock readings would break
/// the same-seed ⇒ same-report contract. Keep recorders of this type in a
/// side channel and surface them only in performance summaries.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample, in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.samples_ns.push(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples_ns.len()
    }

    /// The raw samples, in recording order — lets callers merge several
    /// recorders (e.g. per-shard) before taking percentiles.
    pub fn samples_ns(&self) -> &[u64] {
        &self.samples_ns
    }

    /// Nearest-rank percentile in nanoseconds (`p` in 0..=100).
    /// Returns 0 with no samples.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Median latency in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }
    /// 95th-percentile latency in nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.percentile_ns(95.0)
    }
    /// 99th-percentile latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }

    /// One-line human summary, e.g. `n=120 p50=14µs p95=89µs p99=210µs`.
    pub fn summary(&self) -> String {
        fn us(ns: u64) -> String {
            if ns >= 1_000_000 {
                format!("{:.2}ms", ns as f64 / 1e6)
            } else {
                format!("{:.0}µs", ns as f64 / 1e3)
            }
        }
        format!(
            "n={} p50={} p95={} p99={}",
            self.count(),
            us(self.p50_ns()),
            us(self.p95_ns()),
            us(self.p99_ns())
        )
    }
}

/// A named collection of metrics for one experiment run.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Named counter (created on first use).
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }
    /// Named gauge (created on first use).
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        self.gauges.entry(name.to_string()).or_default()
    }
    /// Named histogram (created on first use).
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }
    /// Named time series (created on first use).
    pub fn series(&mut self, name: &str) -> &mut TimeSeries {
        self.series.entry(name.to_string()).or_default()
    }

    /// Read a counter if it exists.
    pub fn get_counter(&self, name: &str) -> Option<&Counter> {
        self.counters.get(name)
    }
    /// Read a histogram if it exists.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
    /// Read a time series if it exists.
    pub fn get_series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }
    /// Read a gauge if it exists.
    pub fn get_gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// Human-readable dump of everything, globally sorted by metric name
    /// (ties between metric kinds break counter < gauge < hist < series),
    /// so golden files can depend on the order.
    pub fn report(&self) -> String {
        let mut lines: Vec<(&str, String)> = Vec::new();
        for (k, v) in &self.counters {
            lines.push((k, format!("counter  {k} = {}\n", v.get())));
        }
        for (k, v) in &self.gauges {
            lines.push((
                k,
                format!("gauge    {k} = {:.3} (max {:.3})\n", v.get(), v.max_seen()),
            ));
        }
        for (k, v) in &self.histograms {
            lines.push((k, format!("hist     {k}: {v}\n")));
        }
        for (k, v) in &self.series {
            lines.push((
                k,
                format!(
                    "series   {k}: {} points, max {:.3}\n",
                    v.points().len(),
                    v.max()
                ),
            ));
        }
        // Stable sort: equal names keep the kind order they were pushed in.
        lines.sort_by(|a, b| a.0.cmp(b.0));
        lines.into_iter().map(|(_, l)| l).collect()
    }
}

/// A canonical label set: key/value pairs sorted by key. Families index
/// their children by this, so `[("a","1"),("b","2")]` and
/// `[("b","2"),("a","1")]` name the same child.
pub type LabelSet = Vec<(String, String)>;

fn canon_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut v: LabelSet = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    for w in v.windows(2) {
        assert!(w[0].0 != w[1].0, "duplicate label key {:?}", w[0].0);
    }
    v
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// One exported sample of a counter family child.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CounterSample {
    /// Family name.
    pub name: String,
    /// Sorted label set identifying the child.
    pub labels: LabelSet,
    /// Counter value.
    pub value: u64,
}

/// One exported sample of a gauge family child.
#[derive(Debug, Clone, serde::Serialize)]
pub struct GaugeSample {
    /// Family name.
    pub name: String,
    /// Sorted label set identifying the child.
    pub labels: LabelSet,
    /// Current value.
    pub value: f64,
    /// High-water mark (see [`Gauge::max_seen`]).
    pub max_seen: f64,
}

/// One exported sample of a histogram family child (summary form).
#[derive(Debug, Clone, serde::Serialize)]
pub struct HistogramSample {
    /// Family name.
    pub name: String,
    /// Sorted label set identifying the child.
    pub labels: LabelSet,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Median (log-linear bucket estimate).
    pub p50: f64,
    /// 95th percentile (log-linear bucket estimate).
    pub p95: f64,
    /// 99th percentile (log-linear bucket estimate).
    pub p99: f64,
    /// Largest observation.
    pub max: f64,
}

/// A typed point-in-time snapshot of a [`FamilyRegistry`], serializable to
/// JSON via the vendored serde stand-in. Children appear in deterministic
/// (name, sorted-label) order.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MetricsSnapshot {
    /// All counter children.
    pub counters: Vec<CounterSample>,
    /// All gauge children.
    pub gauges: Vec<GaugeSample>,
    /// All histogram children.
    pub histograms: Vec<HistogramSample>,
}

/// Labeled metric families: counters, gauges, and histograms keyed by a
/// sorted label set, in the mold of a Prometheus client registry.
///
/// All maps are `BTreeMap`s, so iteration — and therefore [`expose`]
/// output and [`snapshot`] contents — is deterministic for a given set of
/// recordings, independent of insertion order.
///
/// [`expose`]: FamilyRegistry::expose
/// [`snapshot`]: FamilyRegistry::snapshot
#[derive(Debug, Default, Clone)]
pub struct FamilyRegistry {
    counters: BTreeMap<String, BTreeMap<LabelSet, Counter>>,
    gauges: BTreeMap<String, BTreeMap<LabelSet, Gauge>>,
    histograms: BTreeMap<String, BTreeMap<LabelSet, Histogram>>,
}

impl FamilyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter child for `(name, labels)`, created on first use. Label
    /// order does not matter; duplicate label keys panic.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> &mut Counter {
        self.counters
            .entry(name.to_string())
            .or_default()
            .entry(canon_labels(labels))
            .or_default()
    }

    /// Gauge child for `(name, labels)`, created on first use.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> &mut Gauge {
        self.gauges
            .entry(name.to_string())
            .or_default()
            .entry(canon_labels(labels))
            .or_default()
    }

    /// Histogram child for `(name, labels)`, created on first use.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)]) -> &mut Histogram {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .entry(canon_labels(labels))
            .or_default()
    }

    /// Read a counter child if it exists.
    pub fn get_counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Counter> {
        self.counters.get(name)?.get(&canon_labels(labels))
    }
    /// Read a gauge child if it exists.
    pub fn get_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Gauge> {
        self.gauges.get(name)?.get(&canon_labels(labels))
    }
    /// Read a histogram child if it exists.
    pub fn get_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(name)?.get(&canon_labels(labels))
    }

    /// Sum a counter family across all children (0 if the family is absent).
    pub fn counter_family_total(&self, name: &str) -> u64 {
        self.counters
            .get(name)
            .map(|f| f.values().map(Counter::get).sum())
            .unwrap_or(0)
    }

    /// True if nothing has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another registry into this one: counters add, histograms
    /// [`merge`](Histogram::merge) (including exemplar reservoirs), and
    /// gauges fold via [`Gauge::merge_from`]. Children are matched by
    /// `(name, label set)`.
    pub fn merge_from(&mut self, other: &FamilyRegistry) {
        self.merge_with_extra(other, None);
    }

    /// Merge another registry while appending one extra label to every
    /// absorbed child — the per-region rollup primitive: a cell's
    /// registry comes in unlabeled and lands in the fleet view as
    /// `...{region="3"}`. Panics if a child already carries `key`.
    pub fn merge_labeled(&mut self, other: &FamilyRegistry, key: &str, value: &str) {
        self.merge_with_extra(other, Some((key, value)));
    }

    fn merge_with_extra(&mut self, other: &FamilyRegistry, extra: Option<(&str, &str)>) {
        let relabel = |labels: &LabelSet| -> LabelSet {
            let Some((k, v)) = extra else {
                return labels.clone();
            };
            let mut out = labels.clone();
            assert!(
                out.iter().all(|(ek, _)| ek != k),
                "merge_labeled: child already carries label key {k:?}"
            );
            let pos = out.partition_point(|(ek, _)| ek.as_str() < k);
            out.insert(pos, (k.to_string(), v.to_string()));
            out
        };
        for (name, children) in &other.counters {
            let fam = self.counters.entry(name.clone()).or_default();
            for (labels, c) in children {
                fam.entry(relabel(labels)).or_default().add(c.get());
            }
        }
        for (name, children) in &other.gauges {
            let fam = self.gauges.entry(name.clone()).or_default();
            for (labels, g) in children {
                fam.entry(relabel(labels)).or_default().merge_from(g);
            }
        }
        for (name, children) in &other.histograms {
            let fam = self.histograms.entry(name.clone()).or_default();
            for (labels, h) in children {
                fam.entry(relabel(labels)).or_default().merge(h);
            }
        }
    }

    /// Prometheus-style text exposition. Counter families come first, then
    /// gauges, then histograms (as summaries with `quantile` labels plus
    /// `_sum`/`_count`); families sort by name and children by label set.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for (name, children) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n"));
            for (labels, c) in children {
                out.push_str(&format!(
                    "{name}{} {}\n",
                    render_labels(labels, None),
                    c.get()
                ));
            }
        }
        for (name, children) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            for (labels, g) in children {
                out.push_str(&format!(
                    "{name}{} {}\n",
                    render_labels(labels, None),
                    g.get()
                ));
            }
        }
        for (name, children) in &self.histograms {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (labels, h) in children {
                for (q, v) in [
                    ("0.5", h.quantile(0.5)),
                    ("0.95", h.quantile(0.95)),
                    ("0.99", h.quantile(0.99)),
                ] {
                    out.push_str(&format!(
                        "{name}{} {v}\n",
                        render_labels(labels, Some(("quantile", q)))
                    ));
                }
                out.push_str(&format!(
                    "{name}_sum{} {}\n",
                    render_labels(labels, None),
                    h.sum()
                ));
                out.push_str(&format!(
                    "{name}_count{} {}\n",
                    render_labels(labels, None),
                    h.count()
                ));
                // OpenMetrics-style exemplars: one line per kept
                // exemplar, value-descending, carrying the span id that
                // links the observation back to its retained trace.
                // Only present when the histogram enabled exemplars, so
                // pre-existing expositions are byte-unchanged.
                for ex in h.exemplars() {
                    let mut all = labels.clone();
                    for (k, v) in &ex.labels {
                        if !all.iter().any(|(ek, _)| ek == k) {
                            all.push((k.clone(), v.clone()));
                        }
                    }
                    all.sort();
                    out.push_str(&format!(
                        "{name}_count{} {} # {{span_id=\"{}\"}} {}\n",
                        render_labels(&all, None),
                        h.count(),
                        ex.span_id,
                        ex.value
                    ));
                }
            }
        }
        out
    }

    /// Typed snapshot of every child, in deterministic order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .flat_map(|(name, ch)| {
                    ch.iter().map(move |(labels, c)| CounterSample {
                        name: name.clone(),
                        labels: labels.clone(),
                        value: c.get(),
                    })
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .flat_map(|(name, ch)| {
                    ch.iter().map(move |(labels, g)| GaugeSample {
                        name: name.clone(),
                        labels: labels.clone(),
                        value: g.get(),
                        max_seen: g.max_seen(),
                    })
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .flat_map(|(name, ch)| {
                    ch.iter().map(move |(labels, h)| HistogramSample {
                        name: name.clone(),
                        labels: labels.clone(),
                        count: h.count(),
                        sum: h.sum(),
                        min: h.min(),
                        p50: h.quantile(0.5),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                        max: h.max(),
                    })
                })
                .collect(),
        }
    }

    /// [`snapshot`](FamilyRegistry::snapshot) serialized as pretty JSON.
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("snapshot serializes")
    }
}

/// An itemised memory-footprint estimate: labelled byte counts that sum
/// to a total. Subsystems report their estimated heap usage into one of
/// these (plant tables, route cache, scheduler queue, …) so scale
/// benchmarks can publish a per-component memory column. Estimates, not
/// allocator measurements — the point is relative growth across plant
/// sizes, not absolute RSS.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Footprint {
    items: Vec<(String, u64)>,
}

impl Footprint {
    /// An empty footprint.
    pub fn new() -> Footprint {
        Footprint::default()
    }

    /// Add a labelled byte count.
    pub fn add(&mut self, label: impl Into<String>, bytes: u64) {
        self.items.push((label.into(), bytes));
    }

    /// The labelled items, in insertion order.
    pub fn items(&self) -> &[(String, u64)] {
        &self.items
    }

    /// Sum of all items in bytes.
    pub fn total(&self) -> u64 {
        self.items.iter().map(|(_, b)| b).sum()
    }

    /// One `label: N KiB` line per item plus a total line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, bytes) in &self.items {
            out.push_str(&format!("  {label}: {:.1} KiB\n", *bytes as f64 / 1024.0));
        }
        out.push_str(&format!(
            "  total: {:.1} KiB\n",
            self.total() as f64 / 1024.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn latency_recorder_percentiles() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.p50_ns(), 0);
        for ns in (1..=100).rev() {
            r.record_ns(ns * 1000);
        }
        assert_eq!(r.count(), 100);
        assert_eq!(r.p50_ns(), 50_000);
        assert_eq!(r.p95_ns(), 95_000);
        assert_eq!(r.p99_ns(), 99_000);
        assert_eq!(r.percentile_ns(100.0), 100_000);
        assert!(r.summary().contains("n=100"));
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let mut g = Gauge::new();
        g.set(3.0);
        g.adjust(-1.0);
        assert_eq!(g.get(), 2.0);
        assert_eq!(g.max_seen(), 3.0);
    }

    #[test]
    fn histogram_exact_moments() {
        let mut h = Histogram::new();
        for v in [2.0, 4.0, 6.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 4.0).abs() < 1e-12);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 6.0);
        assert!((h.std_dev() - (8.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_within_bucket_error() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5);
        assert!((p50 - 500.0).abs() / 500.0 < 0.16, "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((p99 - 990.0).abs() / 990.0 < 0.16, "p99={p99}");
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn histogram_zeros_and_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        h.record(0.0);
        h.record(0.0);
        h.record(10.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.quantile(0.99) > 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    #[should_panic(expected = "histogram value")]
    fn histogram_rejects_negative() {
        Histogram::new().record(-1.0);
    }

    #[test]
    fn series_step_semantics() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(10), 1.0);
        ts.push(SimTime::from_secs(20), 3.0);
        assert_eq!(ts.value_at(SimTime::from_secs(5)), None);
        assert_eq!(ts.value_at(SimTime::from_secs(10)), Some(1.0));
        assert_eq!(ts.value_at(SimTime::from_secs(15)), Some(1.0));
        assert_eq!(ts.value_at(SimTime::from_secs(25)), Some(3.0));
        assert_eq!(ts.max(), 3.0);
    }

    #[test]
    fn series_integral() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::ZERO, 2.0);
        ts.push(SimTime::from_secs(10), 4.0);
        // [0,10)=2.0, [10,20)=4.0 → integral over [0,20] = 20 + 40 = 60.
        let i = ts.integral(SimTime::ZERO, SimTime::from_secs(20));
        assert!((i - 60.0).abs() < 1e-9);
        // Partial window [5, 15] = 2*5 + 4*5 = 30.
        let i2 = ts.integral(SimTime::from_secs(5), SimTime::from_secs(15));
        assert!((i2 - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn series_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(10), 1.0);
        ts.push(SimTime::from_secs(5), 2.0);
    }

    #[test]
    fn gauge_max_seen_survives_downward_then_upward() {
        let mut g = Gauge::new();
        g.set(5.0);
        g.adjust(-4.0);
        g.adjust(2.0); // 3.0 — below the old peak
        assert_eq!(g.get(), 3.0);
        assert_eq!(g.max_seen(), 5.0);
        g.adjust(4.0); // 7.0 — new peak after the dip
        assert_eq!(g.max_seen(), 7.0);
    }

    #[test]
    fn gauge_max_seen_tracks_negative_only_values() {
        // Regression: max_seen used to start at 0.0, so a gauge that only
        // ever held negative values (a power margin below tolerance)
        // reported a high-water mark of 0.0 it never actually reached.
        let mut g = Gauge::new();
        g.set(-5.0);
        g.set(-2.0);
        g.set(-3.0);
        assert_eq!(g.max_seen(), -2.0);
        // Untouched gauges still report 0.
        assert_eq!(Gauge::new().max_seen(), 0.0);
    }

    #[test]
    fn report_is_globally_name_sorted_and_format_locked() {
        let mut m = MetricsRegistry::new();
        // Insert deliberately out of name order and across kinds.
        m.series("zz.series").push(SimTime::ZERO, 1.0);
        m.gauge("aa.gauge").set(1.5);
        m.counter("mm.counter").add(7);
        m.histogram("bb.hist").record(2.0);
        let expected = "gauge    aa.gauge = 1.500 (max 1.500)\n\
             hist     bb.hist: n=1 mean=2.000 sd=0.000 min=2.000 p50=2.000 p95=2.000 max=2.000\n\
             counter  mm.counter = 7\n\
             series   zz.series: 1 points, max 1.000\n";
        assert_eq!(
            m.report(),
            expected,
            "report format is load-bearing for golden files"
        );
    }

    #[test]
    fn family_registry_label_order_is_canonical() {
        let mut f = FamilyRegistry::new();
        f.counter("alarms_total", &[("kind", "los"), ("sev", "crit")])
            .incr();
        f.counter("alarms_total", &[("sev", "crit"), ("kind", "los")])
            .incr();
        assert_eq!(
            f.get_counter("alarms_total", &[("kind", "los"), ("sev", "crit")])
                .unwrap()
                .get(),
            2,
            "label order must not mint a new child"
        );
        assert_eq!(f.counter_family_total("alarms_total"), 2);
        assert_eq!(f.counter_family_total("missing"), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate label key")]
    fn family_registry_rejects_duplicate_label_keys() {
        FamilyRegistry::new().counter("x", &[("k", "1"), ("k", "2")]);
    }

    #[test]
    fn family_exposition_is_deterministic_and_prometheus_shaped() {
        let build = || {
            let mut f = FamilyRegistry::new();
            f.gauge("occupancy", &[("roadm", "b"), ("degree", "1")])
                .set(4.0);
            f.gauge("occupancy", &[("degree", "0"), ("roadm", "a")])
                .set(2.0);
            f.counter("alarms_total", &[("kind", "los")]).add(3);
            let h = f.histogram("latency_seconds", &[]);
            h.record(0.5);
            h.record(1.5);
            f
        };
        let a = build().expose();
        let b = build().expose();
        assert_eq!(a, b, "expose() must be byte-identical across runs");
        assert!(a.contains("# TYPE alarms_total counter\n"));
        assert!(a.contains("alarms_total{kind=\"los\"} 3\n"));
        assert!(a.contains("occupancy{degree=\"0\",roadm=\"a\"} 2\n"));
        assert!(a.contains("latency_seconds_count 2\n"));
        assert!(a.contains("latency_seconds_sum 2\n"));
        assert!(a.contains("quantile=\"0.5\""));
        // Children sort by label set: degree=0 before degree=1.
        let i0 = a.find("degree=\"0\"").unwrap();
        let i1 = a.find("degree=\"1\"").unwrap();
        assert!(i0 < i1);
    }

    #[test]
    fn family_snapshot_json_round_trips_structure() {
        let mut f = FamilyRegistry::new();
        f.counter("c", &[("a", "x")]).incr();
        f.gauge("g", &[]).set(-1.25);
        f.histogram("h", &[("l", "v")]).record(3.0);
        let js = f.snapshot_json();
        assert_eq!(js, f.snapshot_json(), "snapshot JSON must be stable");
        assert!(js.contains("\"name\": \"c\""));
        assert!(js.contains("\"max_seen\": -1.25"));
        assert!(js.contains("\"count\": 1"));
        let snap = f.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(
            snap.histograms[0].labels,
            vec![("l".to_string(), "v".to_string())]
        );
    }

    #[test]
    fn exemplar_reservoir_is_order_and_shard_independent() {
        let obs: Vec<(f64, u64)> = (0..40).map(|i| (10.0 + i as f64, 1000 + i)).collect();
        let single = {
            let mut h = Histogram::new();
            h.enable_exemplars(7, 4);
            for (v, id) in &obs {
                h.record_linked(*v, *id, &[("region", "0")]);
            }
            h
        };
        // Same observations, reversed order, sharded into three
        // histograms then merged.
        let mut shards = vec![Histogram::new(), Histogram::new(), Histogram::new()];
        for s in &mut shards {
            s.enable_exemplars(7, 4);
        }
        for (i, (v, id)) in obs.iter().enumerate().rev() {
            shards[i % 3].record_linked(*v, *id, &[("region", "0")]);
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.count(), single.count());
        let a: Vec<Exemplar> = single.exemplars().into_iter().cloned().collect();
        let b: Vec<Exemplar> = merged.exemplars().into_iter().cloned().collect();
        assert_eq!(a, b, "bottom-k selection must not depend on sharding");
        assert_eq!(a.len(), 4);
        // A different seed keeps different exemplars.
        let mut other = Histogram::new();
        other.enable_exemplars(8, 4);
        for (v, id) in &obs {
            other.record_linked(*v, *id, &[("region", "0")]);
        }
        let c: Vec<Exemplar> = other.exemplars().into_iter().cloned().collect();
        assert_ne!(a, c, "seed must steer the reservoir");
    }

    #[test]
    fn link_exemplar_does_not_record() {
        let mut h = Histogram::new();
        h.enable_exemplars(1, 2);
        h.record(5.0);
        h.link_exemplar(5.0, 42, &[]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.exemplars()[0].span_id, 42);
        // Without a reservoir the link is a free no-op.
        let mut plain = Histogram::new();
        plain.link_exemplar(5.0, 42, &[]);
        assert!(plain.exemplars().is_empty());
    }

    #[test]
    fn expose_emits_exemplar_lines_only_when_enabled() {
        let mut f = FamilyRegistry::new();
        f.histogram("lat_seconds", &[("region", "2")]).record(1.0);
        assert!(!f.expose().contains("span_id"), "no exemplars by default");
        let h = f.histogram("lat_seconds", &[("region", "2")]);
        h.enable_exemplars(3, 2);
        h.link_exemplar(1.0, 9, &[]);
        let exp = f.expose();
        assert!(
            exp.contains("lat_seconds_count{region=\"2\"} 1 # {span_id=\"9\"} 1\n"),
            "{exp}"
        );
    }

    #[test]
    fn registry_merge_labeled_equals_direct_recording() {
        let mut cell = FamilyRegistry::new();
        cell.counter("reqs_total", &[("kind", "setup")]).add(3);
        cell.gauge("inflight", &[]).set(2.0);
        cell.histogram("lat", &[]).record(4.0);
        let mut fleet = FamilyRegistry::new();
        fleet.merge_labeled(&cell, "region", "3");
        fleet.merge_labeled(&cell, "region", "4");
        let mut direct = FamilyRegistry::new();
        for r in ["3", "4"] {
            direct
                .counter("reqs_total", &[("kind", "setup"), ("region", r)])
                .add(3);
            direct.gauge("inflight", &[("region", r)]).set(2.0);
            direct.histogram("lat", &[("region", r)]).record(4.0);
        }
        assert_eq!(fleet.expose(), direct.expose());
        // Unlabeled merge accumulates instead.
        let mut sum = FamilyRegistry::new();
        sum.merge_from(&cell);
        sum.merge_from(&cell);
        assert_eq!(sum.counter_family_total("reqs_total"), 6);
        assert_eq!(sum.get_histogram("lat", &[]).unwrap().count(), 2);
        assert_eq!(sum.get_gauge("inflight", &[]).unwrap().get(), 2.0);
    }

    #[test]
    #[should_panic(expected = "already carries label key")]
    fn merge_labeled_rejects_duplicate_region_key() {
        let mut cell = FamilyRegistry::new();
        cell.counter("c", &[("region", "1")]).incr();
        FamilyRegistry::new().merge_labeled(&cell, "region", "2");
    }

    #[test]
    fn gauge_merge_from_semantics() {
        let mut a = Gauge::new();
        a.set(5.0);
        a.set(1.0);
        let mut b = Gauge::new();
        b.set(3.0);
        a.merge_from(&b);
        assert_eq!(a.get(), 3.0, "other's value wins");
        assert_eq!(a.max_seen(), 5.0, "high-water is the max of both");
        let untouched = Gauge::new();
        a.merge_from(&untouched);
        assert_eq!(a.get(), 3.0, "never-set gauges merge as no-ops");
    }

    #[test]
    fn registry_report_contains_entries() {
        let mut m = MetricsRegistry::new();
        m.counter("setup.count").add(3);
        m.histogram("setup.seconds").record(62.5);
        m.gauge("lambdas.active").set(4.0);
        m.series("bw").push(SimTime::ZERO, 10.0);
        let r = m.report();
        assert!(r.contains("setup.count = 3"));
        assert!(r.contains("setup.seconds"));
        assert!(r.contains("lambdas.active"));
        assert!(r.contains("bw"));
        let _ = SimDuration::ZERO;
    }
}
