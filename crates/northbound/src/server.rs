//! The intent API server: a modeled async request plane.
//!
//! One deterministic sim-time event loop on [`simcore::Scheduler`] —
//! no real sockets, honestly benchmarked — in front of the GRIPhoN
//! controller:
//!
//! ```text
//!  fleet ──▶ auth ──▶ token bucket ──▶ bounded tier queue ──▶ drain tick
//!            401        429 + retry     503 + retry │            │ batch
//!                       quota 403 ◀─────────────────┘            ▼
//!                                             Controller::journal_batch
//! ```
//!
//! Every admission decision happens at the edge; only admitted intents
//! reach [`Controller::reserve_bandwidth`], batched per drain tick
//! through [`Controller::journal_batch`] so the PR 5/6 WAL remains the
//! durability boundary. The server's own observability (metric
//! families, `api.admit` spans, tail sampling, SLO streams) never
//! touches controller state: replaying the admitted-intent stream
//! against a bare controller must — and is asserted to — produce a
//! byte-identical `state_digest_crc`.

use std::collections::HashMap;

use griphon::{Controller, ControllerConfig, CustomerId, RegionMap, SloEngine, SloSpec};
use photonic::{generate, GeneratorConfig, RoadmId};
use simcore::metrics::FamilyRegistry;
use simcore::span::AttrValue;
use simcore::{
    BoundedQueue, DataRate, Scheduler, SimDuration, SimRng, SimTime, SpanRecorder,
    TailSampleConfig, TailSampleStats, TailSampler, TokenBucket,
};

use crate::directory::{TenantDirectory, Tier};
use crate::fleet::Request;
use crate::quota::{QuotaError, QuotaLedger, TierPolicy};

/// A typed rejection at the API edge — the wire response's semantics
/// without the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// 401: unknown tenant or forged token.
    Unauthorized,
    /// 429: the tenant's token bucket is empty; retry after the hint
    /// (`None` when the request can never pass, e.g. burst 0).
    RateLimited {
        /// Exact earliest retry that can succeed.
        retry_after: Option<SimDuration>,
    },
    /// 403: a quota budget is exhausted; retrying does not help until
    /// reservations end or budgets reset.
    QuotaExhausted(QuotaError),
    /// 503: the tier's admission queue is full — shed load, retry
    /// after roughly one drain interval.
    ShedLoad {
        /// Backpressure hint: time until the next drain tick.
        retry_after: SimDuration,
    },
}

impl Rejection {
    /// HTTP-style status code.
    pub fn status(&self) -> u16 {
        match self {
            Rejection::Unauthorized => 401,
            Rejection::QuotaExhausted(_) => 403,
            Rejection::RateLimited { .. } => 429,
            Rejection::ShedLoad { .. } => 503,
        }
    }

    /// Stable metric-label name.
    pub fn label(&self) -> &'static str {
        match self {
            Rejection::Unauthorized => "unauthorized",
            Rejection::QuotaExhausted(_) => "quota_exhausted",
            Rejection::RateLimited { .. } => "rate_limited",
            Rejection::ShedLoad { .. } => "shed_load",
        }
    }
}

/// What the server answered a submission with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Enqueued for the next drain; payload is the queue depth after.
    Accepted {
        /// Depth of the tier queue after enqueueing.
        depth: usize,
    },
    /// Refused with a typed rejection.
    Rejected(Rejection),
}

/// One admitted intent as handed off to the controller — the replayable
/// stream whose digest the server-on/off identity gate compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmittedIntent {
    /// Drain tick at which the hand-off happened.
    pub at: SimTime,
    /// Tenant tier (selects the controller-side tier customer).
    pub tier: Tier,
    /// Endpoint-pair index into the testbed pair table.
    pub pair: usize,
    /// Reserved rate, bps.
    pub rate_bps: u64,
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
    /// The requesting tenant.
    pub tenant: u64,
    /// True when the request came from the abuser overlay.
    pub abusive: bool,
}

/// Server shape parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Hand-off cadence.
    pub drain_interval: SimDuration,
    /// Max intents handed off per drain tick (service capacity =
    /// `drain_budget / drain_interval`).
    pub drain_budget: usize,
    /// Admission-queue capacity per tier (drain-priority order).
    pub queue_capacity: [usize; 3],
    /// Token-bucket refill per tier, millitokens/s.
    pub bucket_rate_mt: [u64; 3],
    /// Token-bucket burst per tier, tokens.
    pub bucket_burst: [u64; 3],
    /// Quota policy per tier.
    pub quota: [TierPolicy; 3],
    /// Reservations start this far after their drain tick (the tenant
    /// books ahead; also keeps activation outside the serving horizon).
    pub booking_offset: SimDuration,
    /// Admission-latency SLO threshold.
    pub slo_latency: SimDuration,
    /// Admission-latency SLO objective (good fraction).
    pub slo_latency_objective: f64,
    /// Shed-rate SLO objective (non-shed fraction).
    pub slo_shed_objective: f64,
    /// Tail-sampler window.
    pub sample_window: SimDuration,
    /// Slowest admissions kept per sampler window.
    pub keep_slowest: usize,
    /// Exemplars retained per latency histogram.
    pub exemplar_capacity: usize,
    /// Sample queue depths every N drain ticks.
    pub depth_sample_every: u64,
    /// Exemplar-reservoir seed.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            drain_interval: SimDuration::from_millis(100),
            drain_budget: 10,
            queue_capacity: [64, 128, 256],
            bucket_rate_mt: [2_000, 500, 100],
            bucket_burst: [10, 5, 3],
            quota: [
                TierPolicy {
                    tenant_budget_mgh: 100_000,
                    tier_budget_mgh: 50_000_000,
                    max_concurrent: 64,
                },
                TierPolicy {
                    tenant_budget_mgh: 30_000,
                    tier_budget_mgh: 100_000_000,
                    max_concurrent: 16,
                },
                TierPolicy {
                    tenant_budget_mgh: 10_000,
                    tier_budget_mgh: 10_000_000,
                    max_concurrent: 4,
                },
            ],
            booking_offset: SimDuration::from_hours(1),
            slo_latency: SimDuration::from_secs(1),
            slo_latency_objective: 0.99,
            slo_shed_objective: 0.90,
            sample_window: SimDuration::from_secs(10),
            keep_slowest: 4,
            exemplar_capacity: 4,
            depth_sample_every: 10,
            seed: 0xA91,
        }
    }
}

/// The controller-side fixture the server fronts: a generated plant,
/// one controller customer per tier, and the endpoint-pair table.
/// Shared by the server-on run and the replay run so genesis is
/// single-sourced.
pub struct Testbed {
    /// The controller over the generated plant.
    pub ctl: Controller,
    /// Tier customers (drain-priority order).
    pub customers: [CustomerId; 3],
    /// Endpoint pairs tenants can book between.
    pub pairs: Vec<(RoadmId, RoadmId)>,
}

/// Build the testbed: paper-scale plant, deterministic device profiles,
/// tier customers, and effectively-unbounded booking caps on the pair
/// table (admission control lives at the API edge in this scenario —
/// the calendar's own cap enforcement has its own tests).
pub fn build_testbed(target_roadms: usize, pair_count: usize, seed: u64) -> Testbed {
    let plant = generate(&GeneratorConfig::with_target_roadms(target_roadms, seed));
    let cfg = ControllerConfig {
        seed,
        ems: photonic::EmsProfile::calibrated_deterministic(),
        equalization: photonic::EqualizationModel::calibrated_deterministic(),
        ..ControllerConfig::default()
    };
    let mut ctl = Controller::new(plant.net.clone(), cfg);
    ctl.install_region_map(RegionMap::new(plant.region_of.clone()))
        .expect("generated plants satisfy the single-gateway invariant");
    let customers = [
        ctl.register_tenant("tier-premium", DataRate::from_gbps(1_000_000)),
        ctl.register_tenant("tier-standard", DataRate::from_gbps(1_000_000)),
        ctl.register_tenant("tier-free", DataRate::from_gbps(1_000_000)),
    ];
    let mut rng = SimRng::new(seed).fork(0x9A12);
    let all: Vec<RoadmId> = plant.interior.iter().flatten().copied().collect();
    let mut pairs = Vec::with_capacity(pair_count);
    for r in 0..pair_count {
        let a = *rng.choose(&all);
        let mut b = *rng.choose(&all);
        if a == b {
            b = plant.gateways[r % plant.gateways.len()];
        }
        pairs.push((a, b));
        ctl.set_booking_capacity(a, b, DataRate::from_gbps(100_000_000));
    }
    Testbed {
        ctl,
        customers,
        pairs,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerEvent {
    Arrival(u32),
    Drain,
}

/// Everything a finished serve run reports.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Controller `state_digest_crc` after the run.
    pub digest_crc: u32,
    /// The replayable admitted-intent stream, in hand-off order.
    pub admitted: Vec<AdmittedIntent>,
    /// Per-tier labeled metric families (admission latency histograms
    /// with exemplars, outcome counters, southbound-pressure gauges,
    /// SLO exports).
    pub families: FamilyRegistry,
    /// Tail-sampler accounting for the `api.admit` spans.
    pub sampler: TailSampleStats,
    /// Exemplars retained across the latency histograms.
    pub exemplars: usize,
    /// Spans dropped by the bounded recorder (must be 0).
    pub span_dropped: u64,
    /// Controller trace-ring drops (must be 0).
    pub trace_dropped: u64,
    /// Requests offered to the server.
    pub offered: u64,
    /// Admitted (handed off) per tier.
    pub admitted_per_tier: [u64; 3],
    /// 429s per tier.
    pub rate_limited_per_tier: [u64; 3],
    /// 403s per tier.
    pub quota_per_tier: [u64; 3],
    /// 503s per tier.
    pub shed_per_tier: [u64; 3],
    /// 401s (tier unknown at rejection time).
    pub unauthorized: u64,
    /// Sim-time admission latencies (arrival → hand-off), ns, per tier.
    pub latencies_ns: [Vec<u64>; 3],
    /// Queue-depth samples `(t, [premium, standard, free])`.
    pub depth_series: Vec<(SimTime, [usize; 3])>,
    /// Deepest each tier queue ever got.
    pub queue_high_water: [usize; 3],
    /// Items still queued when the horizon closed.
    pub final_depth: [usize; 3],
    /// Tenants that actually touched the quota ledger.
    pub active_tenants: usize,
    /// Admitted intents the controller itself refused (must be 0 in
    /// the bench scenario — the edge is the admission authority).
    pub controller_refusals: u64,
    /// Controller events processed during the run.
    pub events_processed: u64,
}

/// The modeled API server.
pub struct ApiServer {
    cfg: ServerConfig,
    dir: TenantDirectory,
    ctl: Controller,
    customers: [CustomerId; 3],
    pairs: Vec<(RoadmId, RoadmId)>,
    sched: Scheduler<ServerEvent>,
    queues: [BoundedQueue<u32>; 3],
    buckets: HashMap<u64, TokenBucket>,
    quota: QuotaLedger,
    spans: SpanRecorder,
    sampler: TailSampler,
    slo: SloEngine,
    families: FamilyRegistry,
    admitted: Vec<AdmittedIntent>,
    latencies_ns: [Vec<u64>; 3],
    depth_series: Vec<(SimTime, [usize; 3])>,
    admitted_per_tier: [u64; 3],
    rate_limited_per_tier: [u64; 3],
    quota_per_tier: [u64; 3],
    shed_per_tier: [u64; 3],
    unauthorized: u64,
    controller_refusals: u64,
    drains: u64,
    horizon: SimTime,
}

/// SLO spec names the server feeds.
pub const SLO_ADMISSION: &str = "api_admission_latency";
/// Shed-rate SLO name.
pub const SLO_SHED: &str = "api_shed_rate";

impl ApiServer {
    /// A server fronting `testbed` for the fleet described by `dir`.
    pub fn new(testbed: Testbed, dir: TenantDirectory, cfg: ServerConfig) -> ApiServer {
        let slo = SloEngine::new(vec![
            SloSpec {
                name: SLO_ADMISSION,
                objective: cfg.slo_latency_objective,
                threshold_secs: cfg.slo_latency.as_secs_f64(),
            },
            SloSpec {
                name: SLO_SHED,
                objective: cfg.slo_shed_objective,
                threshold_secs: 0.0,
            },
        ]);
        let sampler = TailSampler::new(TailSampleConfig {
            window: cfg.sample_window,
            keep_slowest: cfg.keep_slowest,
            slow_threshold: Some(cfg.slo_latency),
        });
        let mut families = FamilyRegistry::new();
        for tier in Tier::ALL {
            families
                .histogram("api_admission_latency_ms", &[("tier", tier.label())])
                .enable_exemplars(cfg.seed ^ tier.index() as u64, cfg.exemplar_capacity);
        }
        ApiServer {
            quota: QuotaLedger::new(cfg.quota),
            queues: [
                BoundedQueue::new(cfg.queue_capacity[0]),
                BoundedQueue::new(cfg.queue_capacity[1]),
                BoundedQueue::new(cfg.queue_capacity[2]),
            ],
            spans: SpanRecorder::new(4 * cfg.drain_budget.max(64)),
            sampler,
            slo,
            families,
            cfg,
            dir,
            ctl: testbed.ctl,
            customers: testbed.customers,
            pairs: testbed.pairs,
            sched: Scheduler::new(),
            buckets: HashMap::new(),
            admitted: Vec::new(),
            latencies_ns: [Vec::new(), Vec::new(), Vec::new()],
            depth_series: Vec::new(),
            admitted_per_tier: [0; 3],
            rate_limited_per_tier: [0; 3],
            quota_per_tier: [0; 3],
            shed_per_tier: [0; 3],
            unauthorized: 0,
            controller_refusals: 0,
            drains: 0,
            horizon: SimTime::ZERO,
        }
    }

    /// Submit one request at its arrival time — the full edge pipeline:
    /// authentication, rate limit, backpressure, quota, enqueue.
    pub fn submit(&mut self, now: SimTime, idx: u32, req: &Request) -> SubmitOutcome {
        let Some(tier) = self.dir.authenticate(req.tenant, req.token) else {
            self.unauthorized += 1;
            self.count_outcome("unknown", "unauthorized");
            return SubmitOutcome::Rejected(Rejection::Unauthorized);
        };
        let ti = tier.index();

        // Per-tenant token bucket, created lazily at the tier's policy.
        let bucket = self.buckets.entry(req.tenant).or_insert_with(|| {
            TokenBucket::new(self.cfg.bucket_rate_mt[ti], self.cfg.bucket_burst[ti])
        });
        if let Err(limited) = bucket.try_take(now, 1) {
            self.rate_limited_per_tier[ti] += 1;
            self.count_outcome(tier.label(), "rate_limited");
            self.slo.observe(SLO_SHED, tier.label(), now, true);
            return SubmitOutcome::Rejected(Rejection::RateLimited {
                retry_after: limited.retry_after,
            });
        }

        // Backpressure before quota: a request that would be shed must
        // not consume budget.
        if self.queues[ti].len() >= self.queues[ti].capacity() {
            self.shed_per_tier[ti] += 1;
            self.count_outcome(tier.label(), "shed_load");
            self.slo.observe(SLO_SHED, tier.label(), now, false);
            let retry_after = self.time_to_next_drain(now);
            return SubmitOutcome::Rejected(Rejection::ShedLoad { retry_after });
        }

        if let Err(e) = self
            .quota
            .charge(req.tenant, tier, req.rate_bps, req.duration_secs)
        {
            self.quota_per_tier[ti] += 1;
            self.count_outcome(tier.label(), "quota_exhausted");
            self.slo.observe(SLO_SHED, tier.label(), now, true);
            return SubmitOutcome::Rejected(Rejection::QuotaExhausted(e));
        }

        let depth = match self.queues[ti].push(idx) {
            Ok(simcore::PushOutcome::Enqueued(d)) => d,
            _ => unreachable!("capacity checked above"),
        };
        self.count_outcome(tier.label(), "accepted");
        self.slo.observe(SLO_SHED, tier.label(), now, true);
        SubmitOutcome::Accepted { depth }
    }

    fn count_outcome(&mut self, tier: &'static str, outcome: &'static str) {
        self.families
            .counter(
                "api_requests_total",
                &[("tier", tier), ("outcome", outcome)],
            )
            .incr();
    }

    fn time_to_next_drain(&self, now: SimTime) -> SimDuration {
        let iv = self.cfg.drain_interval.as_nanos();
        let since = now.as_nanos() % iv;
        SimDuration::from_nanos(if since == 0 { 0 } else { iv - since })
    }

    fn on_drain(&mut self, now: SimTime, requests: &[Request]) {
        self.drains += 1;
        // Keep the controller's clock at the drain edge so window
        // validation sees the same `now` the hand-off uses.
        self.ctl.run_until(now);

        // Strict priority drain: premium first, then standard, free.
        let mut picked: Vec<(u32, Tier)> = Vec::with_capacity(self.cfg.drain_budget);
        for tier in Tier::ALL {
            while picked.len() < self.cfg.drain_budget {
                match self.queues[tier.index()].pop() {
                    Some(idx) => picked.push((idx, tier)),
                    None => break,
                }
            }
        }

        if !picked.is_empty() {
            // Resolve everything the hand-off closure needs up front.
            struct Item {
                idx: u32,
                tier: Tier,
                customer: CustomerId,
                from: RoadmId,
                to: RoadmId,
                rate_bps: u64,
                start: SimTime,
                end: SimTime,
            }
            let items: Vec<Item> = picked
                .iter()
                .map(|&(idx, tier)| {
                    let req = &requests[idx as usize];
                    let (from, to) = self.pairs[req.pair];
                    let start = now + self.cfg.booking_offset;
                    Item {
                        idx,
                        tier,
                        customer: self.customers[tier.index()],
                        from,
                        to,
                        rate_bps: req.rate_bps,
                        start,
                        end: start + SimDuration::from_secs(req.duration_secs),
                    }
                })
                .collect();
            // One group-committed batch per drain tick: with a WAL
            // attached this is a single flush — the API edge's
            // durability boundary.
            let (results, _) = self.ctl.journal_batch(|c| {
                items
                    .iter()
                    .map(|it| {
                        c.reserve_bandwidth(
                            it.customer,
                            it.from,
                            it.to,
                            DataRate::from_bps(it.rate_bps),
                            it.start,
                            it.end,
                        )
                    })
                    .collect::<Vec<_>>()
            });
            for (it, res) in items.iter().zip(&results) {
                let req = &requests[it.idx as usize];
                if res.is_err() {
                    self.controller_refusals += 1;
                    self.count_outcome(it.tier.label(), "controller_refused");
                    continue;
                }
                let ti = it.tier.index();
                self.admitted_per_tier[ti] += 1;
                self.admitted.push(AdmittedIntent {
                    at: now,
                    tier: it.tier,
                    pair: req.pair,
                    rate_bps: it.rate_bps,
                    start: it.start,
                    end: it.end,
                    tenant: req.tenant,
                    abusive: req.abusive,
                });
                let latency = now.saturating_since(req.arrival);
                let latency_ms = latency.as_secs_f64() * 1e3;
                self.latencies_ns[ti].push(latency.as_nanos());
                self.families
                    .histogram("api_admission_latency_ms", &[("tier", it.tier.label())])
                    .record(latency_ms);
                self.slo
                    .observe_latency(SLO_ADMISSION, it.tier.label(), now, latency);
                // One closed api.admit span per hand-off; the tail
                // sampler decides which survive the window.
                let span = self
                    .spans
                    .record(req.arrival, now, "api", "api.admit", None);
                self.spans.attr_f64(span, "latency_ms", latency_ms);
                self.spans.attr_u64(span, "tenant", req.tenant);
                self.spans
                    .attr_str(span, "tier", it.tier.label().to_string());
            }
        }

        // Drain the bounded recorder every tick; retention is the
        // sampler's decision, drops are a hard failure.
        let batch = self.spans.take_spans();
        self.sampler.ingest(&batch);

        // Southbound pressure (satellite: NOC-scrapable gauge from
        // `peek_event_time` / `pending_events` at every drain).
        let pending = self.ctl.pending_events();
        self.families
            .gauge(
                "api_southbound_pending_events",
                &[("surface", "southbound")],
            )
            .set(pending as f64);
        let lag = self
            .ctl
            .peek_event_time()
            .map(|t| t.saturating_since(now).as_secs_f64())
            .unwrap_or(0.0);
        self.families
            .gauge(
                "api_southbound_next_event_lag_secs",
                &[("surface", "southbound")],
            )
            .set(lag);

        if self.drains.is_multiple_of(self.cfg.depth_sample_every) {
            self.depth_series.push((
                now,
                [
                    self.queues[0].len(),
                    self.queues[1].len(),
                    self.queues[2].len(),
                ],
            ));
        }

        let next = now + self.cfg.drain_interval;
        if next <= self.horizon {
            self.sched.schedule_at(next, ServerEvent::Drain);
        }
    }

    /// Run the server over `requests` until `horizon`.
    pub fn run(&mut self, requests: &[Request], horizon: SimTime) {
        self.horizon = horizon;
        for (i, r) in requests.iter().enumerate() {
            debug_assert!(r.arrival < horizon);
            self.sched
                .schedule_at(r.arrival, ServerEvent::Arrival(i as u32));
        }
        self.sched
            .schedule_at(SimTime::ZERO + self.cfg.drain_interval, ServerEvent::Drain);
        while let Some((t, ev)) = self.sched.pop_until(horizon) {
            match ev {
                ServerEvent::Arrival(i) => {
                    let _ = self.submit(t, i, &requests[i as usize]);
                }
                ServerEvent::Drain => self.on_drain(t, requests),
            }
        }
        self.ctl.run_until(horizon);
    }

    /// Close out the run: final SLO export, exemplar linkage from the
    /// sampler-retained traces, and the full outcome record.
    ///
    /// # Panics
    /// If any exemplar fails to resolve to a retained `api.admit`
    /// trace, or the span recorder dropped spans.
    pub fn finish(self) -> ServeOutcome {
        let ApiServer {
            ctl,
            sampler,
            spans,
            slo,
            mut families,
            admitted,
            latencies_ns,
            depth_series,
            admitted_per_tier,
            rate_limited_per_tier,
            quota_per_tier,
            shed_per_tier,
            unauthorized,
            controller_refusals,
            quota,
            queues,
            horizon,
            ..
        } = self;
        let span_dropped = spans.dropped();
        let stats = sampler.stats();

        // Exemplars only from retained traces (the measure-plane
        // pattern): every kept exemplar links to a span that survives.
        let retained = sampler.into_spans();
        for s in retained.iter().filter(|s| s.name == "api.admit") {
            let tier = s.attrs.iter().find_map(|(k, v)| match v {
                AttrValue::Str(t) if *k == "tier" => Some(t.as_str()),
                _ => None,
            });
            let latency = s.attrs.iter().find_map(|(k, v)| match v {
                AttrValue::F64(ms) if *k == "latency_ms" => Some(*ms),
                _ => None,
            });
            if let (Some(tier), Some(ms)) = (tier, latency) {
                // Label set must match the histogram child's own labels.
                let tier: &'static str = Tier::ALL
                    .iter()
                    .map(|t| t.label())
                    .find(|l| *l == tier)
                    .expect("tier label from our own span");
                let labels = [("tier", tier)];
                families
                    .histogram("api_admission_latency_ms", &labels)
                    .link_exemplar(ms, s.id.index() as u64, &labels);
            }
        }
        let retained_ids: std::collections::BTreeSet<u64> =
            retained.iter().map(|s| s.id.index() as u64).collect();
        let mut exemplars = 0usize;
        for tier in Tier::ALL {
            let h = families
                .get_histogram("api_admission_latency_ms", &[("tier", tier.label())])
                .expect("histogram created at construction");
            for e in h.exemplars() {
                assert!(
                    retained_ids.contains(&e.span_id),
                    "exemplar span {} does not resolve to a retained trace",
                    e.span_id
                );
                exemplars += 1;
            }
        }

        slo.export(horizon, &mut families);
        ServeOutcome {
            digest_crc: ctl.state_digest_crc(),
            admitted,
            sampler: stats,
            exemplars,
            span_dropped,
            trace_dropped: ctl.trace.dropped(),
            offered: unauthorized
                + admitted_per_tier.iter().sum::<u64>()
                + rate_limited_per_tier.iter().sum::<u64>()
                + quota_per_tier.iter().sum::<u64>()
                + shed_per_tier.iter().sum::<u64>()
                + queues.iter().map(|q| q.len() as u64).sum::<u64>()
                + controller_refusals,
            admitted_per_tier,
            rate_limited_per_tier,
            quota_per_tier,
            shed_per_tier,
            unauthorized,
            latencies_ns,
            depth_series,
            queue_high_water: [
                queues[0].high_water(),
                queues[1].high_water(),
                queues[2].high_water(),
            ],
            final_depth: [queues[0].len(), queues[1].len(), queues[2].len()],
            active_tenants: quota.active_tenants(),
            controller_refusals,
            events_processed: ctl.events_processed(),
            families,
        }
    }

    /// The tier-labeled metric families so far (NOC scrape surface).
    pub fn families(&self) -> &FamilyRegistry {
        &self.families
    }
}

/// Replay an admitted-intent stream against a bare testbed controller —
/// the "server-off" run. The resulting `state_digest_crc` must equal
/// the server-on digest: the edge plane (auth, limits, queues, spans,
/// metrics) must leave zero residue in controller state.
pub fn replay_admitted(testbed: Testbed, admitted: &[AdmittedIntent], horizon: SimTime) -> u32 {
    let Testbed {
        mut ctl,
        customers,
        pairs,
    } = testbed;
    let mut i = 0;
    while i < admitted.len() {
        let at = admitted[i].at;
        ctl.run_until(at);
        let j = i + admitted[i..].iter().take_while(|a| a.at == at).count();
        let (refused, _) = ctl.journal_batch(|c| {
            let mut refused = 0u32;
            for a in &admitted[i..j] {
                let (from, to) = pairs[a.pair];
                if c.reserve_bandwidth(
                    customers[a.tier.index()],
                    from,
                    to,
                    DataRate::from_bps(a.rate_bps),
                    a.start,
                    a.end,
                )
                .is_err()
                {
                    refused += 1;
                }
            }
            refused
        });
        assert_eq!(refused, 0, "replay refused an admitted intent");
        i = j;
    }
    ctl.run_until(horizon);
    ctl.state_digest_crc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{self, FleetConfig};

    fn small_run(seed: u64) -> (ServeOutcome, Testbed) {
        let fleet_cfg = FleetConfig {
            tenants: 1_000,
            seed,
            ..FleetConfig::default()
        };
        let dir = TenantDirectory::new(fleet_cfg.tenants, seed);
        let requests = fleet::generate(&fleet_cfg, &dir);
        let testbed = build_testbed(14, fleet_cfg.pairs, seed);
        let replay_bed = build_testbed(14, fleet_cfg.pairs, seed);
        let mut server = ApiServer::new(testbed, dir, ServerConfig::default());
        server.run(&requests, fleet_cfg.horizon);
        (server.finish(), replay_bed)
    }

    #[test]
    fn server_off_replay_matches_digest() {
        let (outcome, replay_bed) = small_run(0xBEEF);
        assert!(!outcome.admitted.is_empty(), "nothing was admitted");
        let off = replay_admitted(replay_bed, &outcome.admitted, SimTime::from_secs(60));
        assert_eq!(
            outcome.digest_crc, off,
            "server-on and replay digests diverged"
        );
        assert_eq!(outcome.controller_refusals, 0);
        assert_eq!(outcome.span_dropped, 0);
        assert_eq!(outcome.trace_dropped, 0);
    }

    #[test]
    fn every_request_is_accounted_once() {
        let (outcome, _) = small_run(0xACC1);
        let requests = {
            let cfg = FleetConfig {
                tenants: 1_000,
                seed: 0xACC1,
                ..FleetConfig::default()
            };
            let dir = TenantDirectory::new(cfg.tenants, 0xACC1);
            fleet::generate(&cfg, &dir)
        };
        assert_eq!(outcome.offered, requests.len() as u64);
    }

    #[test]
    fn queues_never_exceed_capacity() {
        let (outcome, _) = small_run(0xCA9);
        let caps = ServerConfig::default().queue_capacity;
        for (hw, cap) in outcome.queue_high_water.iter().zip(caps) {
            assert!(hw <= &cap, "queue high water {hw} over capacity {cap}");
        }
    }

    #[test]
    fn exemplars_resolve_and_latency_recorded() {
        let (outcome, _) = small_run(0xE7);
        // finish() asserts resolution internally; sanity-check volume.
        assert!(outcome.admitted_per_tier.iter().sum::<u64>() > 0);
        assert!(outcome.latencies_ns.iter().any(|v| !v.is_empty()));
        assert!(outcome.sampler.roots_seen > 0);
    }

    #[test]
    fn rejections_carry_retry_hints() {
        let seed = 0x4229;
        let dir = TenantDirectory::new(100, seed);
        let testbed = build_testbed(14, 2, seed);
        let mut server = ApiServer::new(testbed, dir.clone(), ServerConfig::default());
        server.horizon = SimTime::from_secs(60);
        let mk = |tenant: u64, at: u64| Request {
            tenant,
            token: dir.token_for(tenant),
            arrival: SimTime::from_millis(at),
            pair: 0,
            rate_bps: 1_000_000_000,
            duration_secs: 600,
            abusive: false,
        };
        // Free-tier tenant 42: burst 3, then 429 with a finite hint.
        let reqs: Vec<Request> = (0..5).map(|i| mk(42, i)).collect();
        let mut last = SubmitOutcome::Accepted { depth: 0 };
        for (i, r) in reqs.iter().enumerate() {
            last = server.submit(r.arrival, i as u32, r);
        }
        match last {
            SubmitOutcome::Rejected(Rejection::RateLimited { retry_after }) => {
                assert!(retry_after.expect("finite hint") > SimDuration::ZERO);
            }
            other => panic!("expected 429, got {other:?}"),
        }
        // Forged token: 401.
        let mut forged = mk(7, 10);
        forged.token ^= 1;
        assert_eq!(
            server.submit(forged.arrival, 99, &forged),
            SubmitOutcome::Rejected(Rejection::Unauthorized)
        );
    }
}
