//! # northbound — the GRIPhoN service plane
//!
//! The intent API server the paper's BoD service would expose to
//! tenants, modeled as a deterministic sim-time request plane in front
//! of the `griphon` controller. No sockets, no threads: arrivals,
//! admission decisions, and batched controller hand-offs are all events
//! on a [`simcore::Scheduler`], so a million-tenant load test is a pure
//! function of `(config, seed)` and replays bit-identically.
//!
//! The crate splits along the request path:
//!
//! - [`directory`] — fleet-scale tenant registry: derivational tiers
//!   and keyed-hash bearer tokens, O(1) memory at any fleet size.
//! - [`quota`] — hierarchical budgets: per-tenant and per-tier
//!   gbps-hour integrals plus concurrent-reservation caps.
//! - [`fleet`] — the synthetic workload: Zipf-attributed heavy-tailed
//!   arrivals with diurnal modulation and an optional abuser overlay.
//! - [`server`] — the edge pipeline (auth → token bucket → bounded
//!   queue → quota → priority drain into
//!   [`griphon::Controller::journal_batch`]) and its observability:
//!   per-tier metric families, `api.admit` spans with tail-sampled
//!   exemplars, SLO streams, southbound-pressure gauges.
//!
//! The load-bearing invariant, asserted by [`server::replay_admitted`]
//! consumers: the service plane leaves **zero residue** in controller
//! state. Replaying the admitted-intent stream against a bare
//! controller produces the same `state_digest_crc` as the full
//! server-on run.

pub mod directory;
pub mod fleet;
pub mod quota;
pub mod server;

pub use directory::{TenantDirectory, Tier};
pub use fleet::{generate as generate_fleet, AbuserConfig, FleetConfig, Request};
pub use quota::{milli_gbps_hours, QuotaError, QuotaLedger, TierPolicy};
pub use server::{
    build_testbed, replay_admitted, AdmittedIntent, ApiServer, Rejection, ServeOutcome,
    ServerConfig, SubmitOutcome, Testbed, SLO_ADMISSION, SLO_SHED,
};
