//! Tenant directory: tiers and token authentication at fleet scale.
//!
//! A million-tenant registry cannot be a million heap entries when only
//! a few thousand tenants are active in any window. The directory is
//! therefore *derivational*: a tenant's tier is a pure function of its
//! index, and its bearer token is a keyed hash of the index — O(1)
//! memory regardless of fleet size, with authentication recomputing the
//! expected token instead of looking it up.

use serde::Serialize;

/// Service tier of a tenant, priced and rate-limited differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Tier {
    /// Contracted capacity: widest quotas, drained first.
    Premium,
    /// Standard pay-as-you-go.
    Standard,
    /// Free / trial tier: tightest limits, shed first.
    Free,
}

impl Tier {
    /// All tiers in drain-priority order.
    pub const ALL: [Tier; 3] = [Tier::Premium, Tier::Standard, Tier::Free];

    /// Stable metric-label name.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Premium => "premium",
            Tier::Standard => "standard",
            Tier::Free => "free",
        }
    }

    /// Index into per-tier arrays (drain-priority order).
    pub fn index(self) -> usize {
        match self {
            Tier::Premium => 0,
            Tier::Standard => 1,
            Tier::Free => 2,
        }
    }
}

/// SplitMix64 finalizer — the same mixing function [`simcore::SimRng`]
/// seeds itself with; good enough to make tokens unguessable-in-practice
/// for a simulation while staying a pure function of `(secret, index)`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fleet-scale tenant directory.
#[derive(Debug, Clone)]
pub struct TenantDirectory {
    fleet: u64,
    secret: u64,
}

impl TenantDirectory {
    /// A directory over `fleet` tenants keyed by `secret`.
    pub fn new(fleet: u64, secret: u64) -> TenantDirectory {
        assert!(fleet > 0, "a fleet needs at least one tenant");
        TenantDirectory { fleet, secret }
    }

    /// Fleet size.
    pub fn fleet(&self) -> u64 {
        self.fleet
    }

    /// Tier of tenant `idx`: 1% premium, 9% standard, 90% free,
    /// interleaved by index so every tier spans the whole popularity
    /// range of the Zipf rank distribution.
    pub fn tier_of(&self, idx: u64) -> Tier {
        match idx % 100 {
            0 => Tier::Premium,
            1..=9 => Tier::Standard,
            _ => Tier::Free,
        }
    }

    /// The bearer token issued to tenant `idx`.
    pub fn token_for(&self, idx: u64) -> u64 {
        mix(self.secret ^ mix(idx))
    }

    /// Authenticate a presented `(idx, token)` pair; `None` rejects
    /// unknown tenants and forged tokens alike.
    pub fn authenticate(&self, idx: u64, token: u64) -> Option<Tier> {
        if idx >= self.fleet || token != self.token_for(idx) {
            return None;
        }
        Some(self.tier_of(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_split_is_1_9_90() {
        let d = TenantDirectory::new(1_000, 7);
        let mut counts = [0usize; 3];
        for i in 0..1_000 {
            counts[d.tier_of(i).index()] += 1;
        }
        assert_eq!(counts, [10, 90, 900]);
    }

    #[test]
    fn tokens_authenticate_and_forgeries_fail() {
        let d = TenantDirectory::new(100, 0x5EC);
        for idx in [0u64, 1, 50, 99] {
            let tok = d.token_for(idx);
            assert_eq!(d.authenticate(idx, tok), Some(d.tier_of(idx)));
            assert_eq!(d.authenticate(idx, tok ^ 1), None);
        }
        // Out-of-fleet index fails even with a "valid" token shape.
        assert_eq!(d.authenticate(100, d.token_for(100)), None);
    }

    #[test]
    fn tokens_are_distinct_across_secrets() {
        let a = TenantDirectory::new(10, 1);
        let b = TenantDirectory::new(10, 2);
        assert_ne!(a.token_for(3), b.token_for(3));
    }
}
