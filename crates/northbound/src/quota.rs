//! Hierarchical quotas: per-tenant and per-tier bandwidth-time budgets.
//!
//! Two budget axes, both enforced at admission time (before the intent
//! ever reaches the controller):
//!
//! - **gbps-hours** — the integral of reserved rate over the window, in
//!   exact milli-gbps-hour integer units (`rate_bps × secs / 3.6e9`).
//!   Charged per tenant *and* against the tenant's tier aggregate, so a
//!   tier full of modest tenants cannot collectively exhaust the plant.
//! - **concurrent reservations** — outstanding bookings per tenant; the
//!   cheap anti-hoarding cap.
//!
//! State is lazy: only tenants that actually submit intents get a ledger
//! entry, which keeps a million-tenant fleet's quota plane proportional
//! to the *active* population.

use std::collections::HashMap;

use crate::directory::Tier;

/// Milli-gbps-hours for a reservation of `rate_bps` over `secs`.
///
/// `gbps·h = bps/1e9 × secs/3600`, so milli-units are
/// `bps × secs / 3.6e9`, computed in u128 to avoid overflow.
pub fn milli_gbps_hours(rate_bps: u64, secs: u64) -> u64 {
    (rate_bps as u128 * secs as u128 / 3_600_000_000) as u64
}

/// Why a quota charge was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaError {
    /// The tenant's own gbps-hour budget is exhausted.
    TenantBudget,
    /// The tier-wide aggregate gbps-hour budget is exhausted.
    TierBudget,
    /// The tenant already holds its maximum concurrent reservations.
    Concurrent,
}

/// Per-tier quota policy.
#[derive(Debug, Clone, Copy)]
pub struct TierPolicy {
    /// Per-tenant gbps-hour budget, in milli-gbps-hours.
    pub tenant_budget_mgh: u64,
    /// Tier-wide aggregate budget, in milli-gbps-hours.
    pub tier_budget_mgh: u64,
    /// Max outstanding reservations per tenant.
    pub max_concurrent: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct TenantUsage {
    used_mgh: u64,
    concurrent: u32,
}

/// The quota ledger: lazy per-tenant usage plus tier aggregates.
#[derive(Debug, Clone)]
pub struct QuotaLedger {
    policy: [TierPolicy; 3],
    tenants: HashMap<u64, TenantUsage>,
    tier_used_mgh: [u64; 3],
}

impl QuotaLedger {
    /// A ledger enforcing `policy` (indexed by [`Tier::index`]).
    pub fn new(policy: [TierPolicy; 3]) -> QuotaLedger {
        QuotaLedger {
            policy,
            tenants: HashMap::new(),
            tier_used_mgh: [0; 3],
        }
    }

    /// Charge tenant `idx` (of `tier`) for one reservation of
    /// `rate_bps` over `secs`. All-or-nothing: a refusal leaves every
    /// budget untouched.
    pub fn charge(
        &mut self,
        idx: u64,
        tier: Tier,
        rate_bps: u64,
        secs: u64,
    ) -> Result<(), QuotaError> {
        let cost = milli_gbps_hours(rate_bps, secs);
        let pol = self.policy[tier.index()];
        let usage = self.tenants.entry(idx).or_default();
        if usage.concurrent >= pol.max_concurrent {
            return Err(QuotaError::Concurrent);
        }
        if usage.used_mgh.saturating_add(cost) > pol.tenant_budget_mgh {
            return Err(QuotaError::TenantBudget);
        }
        if self.tier_used_mgh[tier.index()].saturating_add(cost) > pol.tier_budget_mgh {
            return Err(QuotaError::TierBudget);
        }
        usage.used_mgh += cost;
        usage.concurrent += 1;
        self.tier_used_mgh[tier.index()] += cost;
        Ok(())
    }

    /// Return one concurrent slot (a reservation ended or was
    /// cancelled). Consumed gbps-hours are *not* refunded — budget is
    /// an allowance, not a deposit.
    pub fn release(&mut self, idx: u64) {
        if let Some(u) = self.tenants.get_mut(&idx) {
            u.concurrent = u.concurrent.saturating_sub(1);
        }
    }

    /// Milli-gbps-hours consumed by tenant `idx` so far.
    pub fn tenant_used_mgh(&self, idx: u64) -> u64 {
        self.tenants.get(&idx).map(|u| u.used_mgh).unwrap_or(0)
    }

    /// Outstanding reservations held by tenant `idx`.
    pub fn tenant_concurrent(&self, idx: u64) -> u32 {
        self.tenants.get(&idx).map(|u| u.concurrent).unwrap_or(0)
    }

    /// Milli-gbps-hours consumed by the whole tier.
    pub fn tier_used_mgh(&self, tier: Tier) -> u64 {
        self.tier_used_mgh[tier.index()]
    }

    /// Tenants with ledger entries (the *active* population).
    pub fn active_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The policy for `tier`.
    pub fn policy(&self, tier: Tier) -> TierPolicy {
        self.policy[tier.index()]
    }
}

#[cfg(test)]
mod quota_props {
    use super::*;
    use crate::directory::Tier;
    use proptest::prelude::*;

    /// `(kind, tenant, rate_gbps, secs)`: kind 0 is a release, anything
    /// else a charge (3:1 charge-heavy mix).
    type RawOp = (u64, u64, u64, u64);

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Charge {
            tenant: u64,
            rate_gbps: u64,
            secs: u64,
        },
        Release {
            tenant: u64,
        },
    }

    fn decode(raw: &RawOp) -> Op {
        let &(kind, tenant, rate_gbps, secs) = raw;
        if kind == 0 {
            Op::Release { tenant }
        } else {
            Op::Charge {
                tenant,
                rate_gbps,
                secs,
            }
        }
    }

    fn ops(raw: &[RawOp]) -> Vec<Op> {
        raw.iter().map(decode).collect()
    }

    fn raw_op() -> impl Strategy<Value = RawOp> {
        (0u64..4, 0u64..8, 1u64..40, 60u64..7_200)
    }

    fn tight_policy() -> [TierPolicy; 3] {
        let p = TierPolicy {
            tenant_budget_mgh: 40_000,
            tier_budget_mgh: 120_000,
            max_concurrent: 3,
        };
        [p; 3]
    }

    proptest! {
        /// The ledger never admits beyond any budget, refusals charge
        /// nothing, and the tier aggregate is exactly the sum of its
        /// tenants — all checked against a shadow model that replays
        /// the same op sequence with plain arithmetic.
        #[test]
        fn ledger_matches_shadow_model(raw in proptest::collection::vec(raw_op(), 1..120)) {
            let ops = ops(&raw);
            let pol = tight_policy();
            let mut ledger = QuotaLedger::new(pol);
            // Shadow: (used_mgh, concurrent) per tenant, plus tier sum.
            let mut shadow: std::collections::HashMap<u64, (u64, u32)> =
                std::collections::HashMap::new();
            let mut shadow_tier = 0u64;
            let tier = Tier::Free;
            let p = pol[tier.index()];
            for o in &ops {
                match *o {
                    Op::Charge { tenant, rate_gbps, secs } => {
                        let rate_bps = rate_gbps * 1_000_000_000;
                        let cost = milli_gbps_hours(rate_bps, secs);
                        let entry = shadow.entry(tenant).or_default();
                        let expect = if entry.1 >= p.max_concurrent {
                            Err(QuotaError::Concurrent)
                        } else if entry.0 + cost > p.tenant_budget_mgh {
                            Err(QuotaError::TenantBudget)
                        } else if shadow_tier + cost > p.tier_budget_mgh {
                            Err(QuotaError::TierBudget)
                        } else {
                            entry.0 += cost;
                            entry.1 += 1;
                            shadow_tier += cost;
                            Ok(())
                        };
                        prop_assert_eq!(
                            ledger.charge(tenant, tier, rate_bps, secs),
                            expect
                        );
                    }
                    Op::Release { tenant } => {
                        if let Some(e) = shadow.get_mut(&tenant) {
                            e.1 = e.1.saturating_sub(1);
                        }
                        ledger.release(tenant);
                    }
                }
                // Invariants hold after every op, not just at the end.
                let mut sum = 0u64;
                for (t, (used, conc)) in &shadow {
                    prop_assert_eq!(ledger.tenant_used_mgh(*t), *used);
                    prop_assert_eq!(ledger.tenant_concurrent(*t), *conc);
                    prop_assert!(*used <= p.tenant_budget_mgh);
                    prop_assert!(*conc <= p.max_concurrent);
                    sum += used;
                }
                prop_assert_eq!(ledger.tier_used_mgh(tier), sum);
                prop_assert!(sum <= p.tier_budget_mgh);
            }
        }

        /// A compliant tenant is never deadlocked: whenever it holds no
        /// reservations and both its own and the tier budget have room
        /// for the request, the charge succeeds — regardless of what
        /// other tenants did before.
        #[test]
        fn compliant_tenant_always_admits(raw in proptest::collection::vec(raw_op(), 0..80)) {
            let ops = ops(&raw);
            let pol = tight_policy();
            let mut ledger = QuotaLedger::new(pol);
            let tier = Tier::Standard;
            let p = pol[tier.index()];
            for o in &ops {
                match *o {
                    Op::Charge { tenant, rate_gbps, secs } => {
                        // Background noise from tenants 0..8; tenant 99
                        // is ours alone.
                        let _ = ledger.charge(tenant, tier, rate_gbps * 1_000_000_000, secs);
                    }
                    Op::Release { tenant } => ledger.release(tenant),
                }
            }
            // 1 Gbps × 36 s = 10 mgh: tiny but non-zero.
            let cost = milli_gbps_hours(1_000_000_000, 36);
            prop_assert!(cost > 0);
            let fits = ledger.tenant_used_mgh(99) + cost <= p.tenant_budget_mgh
                && ledger.tier_used_mgh(tier) + cost <= p.tier_budget_mgh;
            if fits {
                prop_assert_eq!(ledger.charge(99, tier, 1_000_000_000, 36), Ok(()));
                ledger.release(99);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> [TierPolicy; 3] {
        let p = TierPolicy {
            tenant_budget_mgh: 10_000,
            tier_budget_mgh: 25_000,
            max_concurrent: 2,
        };
        [p; 3]
    }

    #[test]
    fn unit_conversion_is_exact() {
        // 10 Gbps for one hour = 10 gbps-hours = 10_000 milli.
        assert_eq!(milli_gbps_hours(10_000_000_000, 3_600), 10_000);
        // 1 Gbps for 36 s = 0.01 gbps-hours = 10 milli.
        assert_eq!(milli_gbps_hours(1_000_000_000, 36), 10);
    }

    #[test]
    fn tenant_budget_is_all_or_nothing() {
        let mut q = QuotaLedger::new(policy());
        // 9 gbps-hours: fits. A second charge of 9 would exceed 10.
        assert!(q.charge(1, Tier::Free, 9_000_000_000, 3_600).is_ok());
        assert_eq!(
            q.charge(1, Tier::Free, 9_000_000_000, 3_600),
            Err(QuotaError::TenantBudget)
        );
        // The refusal charged nothing.
        assert_eq!(q.tenant_used_mgh(1), 9_000);
        assert_eq!(q.tenant_concurrent(1), 1);
    }

    #[test]
    fn concurrent_cap_and_release() {
        let mut q = QuotaLedger::new(policy());
        assert!(q.charge(5, Tier::Standard, 1_000_000_000, 60).is_ok());
        assert!(q.charge(5, Tier::Standard, 1_000_000_000, 60).is_ok());
        assert_eq!(
            q.charge(5, Tier::Standard, 1_000_000_000, 60),
            Err(QuotaError::Concurrent)
        );
        q.release(5);
        assert!(q.charge(5, Tier::Standard, 1_000_000_000, 60).is_ok());
    }

    #[test]
    fn tier_aggregate_caps_the_sum_of_tenants() {
        let mut q = QuotaLedger::new(policy());
        // Three tenants × 9 gbps-hours = 27 > 25 tier budget.
        assert!(q.charge(10, Tier::Free, 9_000_000_000, 3_600).is_ok());
        assert!(q.charge(11, Tier::Free, 9_000_000_000, 3_600).is_ok());
        assert_eq!(
            q.charge(12, Tier::Free, 9_000_000_000, 3_600),
            Err(QuotaError::TierBudget)
        );
        // Another tier is unaffected.
        assert!(q.charge(13, Tier::Premium, 9_000_000_000, 3_600).is_ok());
    }
}
