//! Synthetic million-tenant fleet: heavy-tailed request processes.
//!
//! The fleet is modeled as one aggregate arrival process instead of a
//! million per-tenant timers: a non-homogeneous Poisson stream (diurnal
//! rate modulation via [`simcore::diurnal_sin`], the same profile shape
//! the `measure` cross-traffic engine uses, realised by thinning)
//! whose arrivals are *attributed* to tenants by a Zipf rank draw —
//! O(log n) per request via [`simcore::ZipfSampler`] — with per-request
//! rates drawn bounded-Pareto. Statistically this is exactly the
//! superposition of a million independent Poisson tenants with
//! Zipf-proportional rates, at one-timer cost.
//!
//! An optional **abuser** is a separate superimposed process with its
//! own RNG stream: switching it on does not perturb a single draw of
//! the well-behaved stream, which is what makes the fairness comparison
//! (abuser-on vs abuser-off) exact rather than statistical.

use simcore::{SimDuration, SimRng, SimTime, ZipfSampler};

use crate::directory::TenantDirectory;

/// One API request as it arrives at the server's front door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Claimed tenant index.
    pub tenant: u64,
    /// Presented bearer token (possibly forged).
    pub token: u64,
    /// Arrival time at the API edge.
    pub arrival: SimTime,
    /// Endpoint-pair index into the server's pair table.
    pub pair: usize,
    /// Requested rate in bits per second.
    pub rate_bps: u64,
    /// Requested window length in seconds.
    pub duration_secs: u64,
    /// True when this request came from the abuser process.
    pub abusive: bool,
}

/// The abusive-tenant overlay: one tenant flooding at a fixed rate.
#[derive(Debug, Clone, Copy)]
pub struct AbuserConfig {
    /// The flooding tenant's index.
    pub tenant: u64,
    /// Mean requests per second of the flood.
    pub rate_per_sec: f64,
}

/// Fleet shape parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fleet size (tenant population).
    pub tenants: u64,
    /// RNG seed; everything is a pure function of `(config, seed)`.
    pub seed: u64,
    /// Generate arrivals over `[0, horizon)`.
    pub horizon: SimTime,
    /// Mean aggregate arrival rate before diurnal modulation, req/s.
    pub base_rate_per_sec: f64,
    /// Zipf popularity exponent across tenant ranks.
    pub zipf_exponent: f64,
    /// Diurnal modulation amplitude in `[0, 1)`:
    /// `λ(t) = base × (1 + amp·sin(2πt/period + φ))`.
    pub diurnal_amplitude: f64,
    /// Diurnal modulation period.
    pub diurnal_period: SimDuration,
    /// Bounded-Pareto request rate: minimum bps.
    pub rate_min_bps: u64,
    /// Pareto shape for request rates.
    pub rate_alpha: f64,
    /// Cap on a single request's rate, bps.
    pub rate_max_bps: u64,
    /// Uniform window length: minimum seconds.
    pub duration_min_secs: u64,
    /// Uniform window length: maximum seconds.
    pub duration_max_secs: u64,
    /// Fraction of requests presenting a forged token.
    pub invalid_token_frac: f64,
    /// Endpoint pairs the server exposes.
    pub pairs: usize,
    /// Optional abusive-tenant overlay.
    pub abuser: Option<AbuserConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            tenants: 10_000,
            seed: 0xF1EE7,
            horizon: SimTime::from_secs(60),
            base_rate_per_sec: 100.0,
            zipf_exponent: 1.0,
            diurnal_amplitude: 0.3,
            diurnal_period: SimDuration::from_secs(60),
            rate_min_bps: 1_000_000_000,
            rate_alpha: 1.3,
            rate_max_bps: 100_000_000_000,
            duration_min_secs: 600,
            duration_max_secs: 7_200,
            invalid_token_frac: 0.005,
            pairs: 4,
            abuser: None,
        }
    }
}

/// Generate the request stream for one run, sorted by arrival time.
pub fn generate(cfg: &FleetConfig, dir: &TenantDirectory) -> Vec<Request> {
    assert_eq!(cfg.tenants, dir.fleet(), "fleet size must match directory");
    assert!(cfg.diurnal_amplitude >= 0.0 && cfg.diurnal_amplitude < 1.0);
    let zipf = ZipfSampler::new(cfg.tenants as usize, cfg.zipf_exponent);

    let mut rng = SimRng::new(cfg.seed).fork(0xF1EE7);
    // The diurnal phase comes off its own fork — the same idiom as
    // `measure`'s CrossTraffic::diurnal profile.
    let phase = SimRng::new(cfg.seed).fork(0xD109).f64() * std::f64::consts::TAU;
    let period = cfg.diurnal_period.as_secs_f64();

    let lambda_max = cfg.base_rate_per_sec * (1.0 + cfg.diurnal_amplitude);
    let mut requests = Vec::new();
    let mut t = SimTime::ZERO;
    // Non-homogeneous Poisson by thinning: draw at the envelope rate,
    // accept with probability λ(t)/λ_max.
    loop {
        let gap = SimDuration::from_secs_f64(rng.exp(1.0 / lambda_max));
        t += gap;
        if t >= cfg.horizon {
            break;
        }
        let lambda = cfg.base_rate_per_sec
            * (1.0 + cfg.diurnal_amplitude * simcore::diurnal_sin(t.as_secs_f64(), period, phase));
        if !rng.chance(lambda / lambda_max) {
            continue;
        }
        let tenant = zipf.sample(&mut rng) as u64;
        let token = if rng.chance(cfg.invalid_token_frac) {
            dir.token_for(tenant) ^ 0xBAD_C0DE
        } else {
            dir.token_for(tenant)
        };
        requests.push(Request {
            tenant,
            token,
            arrival: t,
            pair: rng.below(cfg.pairs as u64) as usize,
            rate_bps: simcore::bounded_pareto_bits(
                &mut rng,
                cfg.rate_min_bps as f64,
                cfg.rate_alpha,
                cfg.rate_max_bps,
            ),
            duration_secs: rng.range_u64(cfg.duration_min_secs, cfg.duration_max_secs),
            abusive: false,
        });
    }

    // The abuser rides on an independent stream: enabling it leaves the
    // well-behaved draws above bit-identical.
    if let Some(ab) = cfg.abuser {
        let mut arng = SimRng::new(cfg.seed).fork(0xAB05E);
        let mut t = SimTime::ZERO;
        loop {
            let gap = SimDuration::from_secs_f64(arng.exp(1.0 / ab.rate_per_sec));
            t += gap;
            if t >= cfg.horizon {
                break;
            }
            requests.push(Request {
                tenant: ab.tenant,
                token: dir.token_for(ab.tenant),
                arrival: t,
                pair: arng.below(cfg.pairs as u64) as usize,
                rate_bps: simcore::bounded_pareto_bits(
                    &mut arng,
                    cfg.rate_min_bps as f64,
                    cfg.rate_alpha,
                    cfg.rate_max_bps,
                ),
                duration_secs: arng.range_u64(cfg.duration_min_secs, cfg.duration_max_secs),
                abusive: true,
            });
        }
        // Stable merge: ties keep well-behaved before abusive arrivals.
        requests.sort_by_key(|r| (r.arrival, r.abusive));
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(n: u64) -> TenantDirectory {
        TenantDirectory::new(n, 0x5EED)
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FleetConfig::default();
        let d = dir(cfg.tenants);
        assert_eq!(generate(&cfg, &d), generate(&cfg, &d));
    }

    #[test]
    fn arrival_volume_tracks_base_rate() {
        let cfg = FleetConfig {
            horizon: SimTime::from_secs(300),
            ..FleetConfig::default()
        };
        let reqs = generate(&cfg, &dir(cfg.tenants));
        let expect = 100.0 * 300.0;
        let got = reqs.len() as f64;
        assert!(
            (got - expect).abs() < expect * 0.15,
            "got {got}, expected ≈{expect}"
        );
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn abuser_does_not_perturb_well_behaved_stream() {
        let base = FleetConfig::default();
        let with = FleetConfig {
            abuser: Some(AbuserConfig {
                tenant: 4_242,
                rate_per_sec: 50.0,
            }),
            ..base.clone()
        };
        let d = dir(base.tenants);
        let clean = generate(&base, &d);
        let flooded = generate(&with, &d);
        let well: Vec<&Request> = flooded.iter().filter(|r| !r.abusive).collect();
        assert_eq!(well.len(), clean.len());
        for (a, b) in well.iter().zip(clean.iter()) {
            assert_eq!(**a, *b, "well-behaved stream perturbed by the abuser");
        }
        assert!(flooded.iter().any(|r| r.abusive));
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let cfg = FleetConfig {
            horizon: SimTime::from_secs(600),
            ..FleetConfig::default()
        };
        let reqs = generate(&cfg, &dir(cfg.tenants));
        let head = reqs.iter().filter(|r| r.tenant < 100).count();
        // Top 1% of ranks draws far more than 1% of traffic at s=1.
        assert!(
            head * 5 > reqs.len(),
            "head tenants drew {head} of {}",
            reqs.len()
        );
        // Rates respect the Pareto bounds.
        assert!(reqs
            .iter()
            .all(|r| (cfg.rate_min_bps..=cfg.rate_max_bps).contains(&r.rate_bps)));
    }

    #[test]
    fn forged_tokens_appear_at_the_configured_rate() {
        let cfg = FleetConfig {
            horizon: SimTime::from_secs(600),
            invalid_token_frac: 0.05,
            ..FleetConfig::default()
        };
        let d = dir(cfg.tenants);
        let reqs = generate(&cfg, &d);
        let forged = reqs
            .iter()
            .filter(|r| d.authenticate(r.tenant, r.token).is_none())
            .count();
        let expect = reqs.len() as f64 * 0.05;
        assert!(
            (forged as f64 - expect).abs() < expect * 0.5 + 10.0,
            "forged {forged}, expected ≈{expect}"
        );
    }
}
