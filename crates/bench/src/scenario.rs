//! Declarative scenario runner.
//!
//! An operations exercise — orders, failures, repairs, maintenance —
//! described as JSON and replayed against a live controller. This is
//! how non-Rust users (and the `scenarios/*.json` files shipped in the
//! repository) drive the stack:
//!
//! ```json
//! {
//!   "topology": { "testbed": { "ots_per_node": 6 } },
//!   "deterministic": true,
//!   "tenants": [ { "name": "acme", "quota_gbps": 100 } ],
//!   "events": [
//!     { "at_secs": 0,    "do": { "wavelength": { "tenant": 0, "from": "I", "to": "IV", "gbps": 10 } } },
//!     { "at_secs": 300,  "do": { "cut_fiber": { "a": "I", "b": "IV" } } },
//!     { "at_secs": 300,  "do": { "repair": { "a": "I", "b": "IV", "after_secs": 28800 } } },
//!     { "at_secs": 7200, "do": "report" }
//!   ]
//! }
//! ```
//!
//! Events execute in time order; `report` snapshots customer views, SLA
//! aggregates and headline metrics into the runner's output.

use serde::Deserialize;
use std::fmt::Write as _;

use griphon::controller::{Controller, ControllerConfig};
use griphon::{ConnectionId, CustomerId};
use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork, RoadmId};
use simcore::{DataRate, SimDuration, SimTime};

/// Which plant to build.
#[derive(Debug, Clone, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TopologySpec {
    /// The paper's Fig. 4 testbed.
    Testbed {
        /// Transponders per node.
        ots_per_node: usize,
    },
    /// The 14-node NSFNET backbone.
    Nsfnet {
        /// Transponders per node.
        ots_per_node: usize,
        /// Regens per node.
        regens_per_node: usize,
    },
    /// A generated hierarchical plant (`photonic::generator`) of roughly
    /// `target_roadms` nodes; the region partition is installed on the
    /// controller's path engine automatically.
    Generated {
        /// Approximate plant size in ROADMs (exact for 14/100/300/600).
        target_roadms: usize,
        /// Generator seed (independent of the scenario seed).
        plant_seed: u64,
    },
}

/// One tenant to onboard.
#[derive(Debug, Clone, Deserialize)]
pub struct TenantSpec {
    /// Display name.
    pub name: String,
    /// Quota in Gbps.
    pub quota_gbps: u64,
}

/// An action within the scenario. Node references use display names
/// ("I"…"IV" on the testbed, city names on NSFNET).
#[derive(Debug, Clone, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ActionSpec {
    /// Order an unprotected wavelength (gbps ∈ {10, 40, 100}).
    Wavelength {
        /// Tenant index.
        tenant: usize,
        /// A-end node name.
        from: String,
        /// Z-end node name.
        to: String,
        /// Line rate in Gbps.
        gbps: u64,
    },
    /// Order a 1+1-protected wavelength.
    ProtectedWavelength {
        /// Tenant index.
        tenant: usize,
        /// A-end node name.
        from: String,
        /// Z-end node name.
        to: String,
        /// Line rate in Gbps.
        gbps: u64,
    },
    /// Order a composite bundle of the given aggregate rate.
    Bundle {
        /// Tenant index.
        tenant: usize,
        /// A-end node name.
        from: String,
        /// Z-end node name.
        to: String,
        /// Aggregate rate in Gbps.
        gbps: u64,
    },
    /// Tear down the n-th successfully ordered connection (0-based,
    /// order of issue; bundles count each member).
    Teardown {
        /// Order index.
        order: usize,
    },
    /// Cut the fiber between two nodes.
    CutFiber {
        /// One endpoint name.
        a: String,
        /// Other endpoint name.
        b: String,
    },
    /// Schedule repair of the fiber between two nodes.
    Repair {
        /// One endpoint name.
        a: String,
        /// Other endpoint name.
        b: String,
        /// Crew time in seconds.
        after_secs: u64,
    },
    /// Drain a fiber for maintenance via bridge-and-roll.
    Maintenance {
        /// One endpoint name.
        a: String,
        /// Other endpoint name.
        b: String,
    },
    /// Return a fiber from maintenance.
    EndMaintenance {
        /// One endpoint name.
        a: String,
        /// Other endpoint name.
        b: String,
    },
    /// Book an advance reservation (calendared BoD window).
    Reserve {
        /// Tenant index.
        tenant: usize,
        /// A-end node name.
        from: String,
        /// Z-end node name.
        to: String,
        /// Aggregate rate in Gbps.
        gbps: u64,
        /// Window start (seconds from scenario start).
        start_secs: u64,
        /// Window end (seconds from scenario start).
        end_secs: u64,
    },
    /// Snapshot customer views, SLAs and metrics into the output.
    Report,
}

/// One timed event.
#[derive(Debug, Clone, Deserialize)]
pub struct EventSpec {
    /// When (seconds from scenario start).
    pub at_secs: u64,
    /// What.
    #[serde(rename = "do")]
    pub action: ActionSpec,
}

/// The whole scenario.
#[derive(Debug, Clone, Deserialize)]
pub struct ScenarioSpec {
    /// Plant to build.
    pub topology: TopologySpec,
    /// RNG seed (default 1).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Disable latency jitter for exactly reproducible reports.
    #[serde(default)]
    pub deterministic: bool,
    /// Tenants to onboard, referenced by index in actions.
    pub tenants: Vec<TenantSpec>,
    /// Node names to give OTN switches (320 G fabric each).
    #[serde(default)]
    pub otn_switches: Vec<String>,
    /// Trunks to pre-provision between OTN switch nodes (10 G each).
    #[serde(default)]
    pub trunks: Vec<(String, String)>,
    /// Enable the NOC with this scrape cadence (seconds). Absent (the
    /// default) leaves the NOC off; the scenario report is byte-identical
    /// either way — see `griphon::noc` for the determinism contract.
    #[serde(default)]
    pub noc_scrape_secs: Option<u64>,
    /// Journal every northbound intent to the write-ahead log before
    /// executing it (`griphon::durability`). The scenario outcome is
    /// byte-identical either way; the log is what crash recovery and the
    /// warm standby replay.
    #[serde(default)]
    pub wal: bool,
    /// The timed actions.
    pub events: Vec<EventSpec>,
}

fn default_seed() -> u64 {
    1
}

/// Errors surfaced while parsing or executing a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// The JSON did not parse.
    Parse(serde_json::Error),
    /// A node name did not resolve.
    UnknownNode(String),
    /// A tenant index was out of range.
    UnknownTenant(usize),
    /// An order index did not resolve to a connection.
    UnknownOrder(usize),
    /// An unsupported line rate was requested.
    BadRate(u64),
    /// Two named nodes are not adjacent.
    NotAdjacent(String, String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "parse: {e}"),
            ScenarioError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            ScenarioError::UnknownTenant(i) => write!(f, "unknown tenant #{i}"),
            ScenarioError::UnknownOrder(i) => write!(f, "unknown order #{i}"),
            ScenarioError::BadRate(g) => write!(f, "unsupported rate {g} G"),
            ScenarioError::NotAdjacent(a, b) => write!(f, "{a} and {b} not adjacent"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Parse and run a scenario from JSON; returns the accumulated report.
pub fn run_json(json: &str) -> Result<String, ScenarioError> {
    let spec: ScenarioSpec = serde_json::from_str(json).map_err(ScenarioError::Parse)?;
    run(&spec)
}

fn rate_of(gbps: u64) -> Result<LineRate, ScenarioError> {
    match gbps {
        10 => Ok(LineRate::Gbps10),
        40 => Ok(LineRate::Gbps40),
        100 => Ok(LineRate::Gbps100),
        other => Err(ScenarioError::BadRate(other)),
    }
}

/// Execute a parsed scenario.
pub fn run(spec: &ScenarioSpec) -> Result<String, ScenarioError> {
    run_with(spec).map(|(out, _)| out)
}

/// Execute a parsed scenario and also hand back the finished controller,
/// so callers (the NOC bench target, tests) can inspect telemetry that
/// deliberately never reaches the report text.
pub fn run_with(spec: &ScenarioSpec) -> Result<(String, Controller), ScenarioError> {
    let mut ctl = genesis(spec);
    if spec.wal {
        ctl.enable_journal(griphon::WalConfig::default());
    }
    let out = drive(spec, &mut ctl, &mut |_| {})?;
    Ok((out, ctl))
}

/// Build the genesis controller for a spec: plant, configuration, and
/// NOC cadence — but none of the scenario's intents. Calling this twice
/// with the same spec yields byte-identical controllers, which is what
/// crash recovery and the warm standby replay against
/// (`griphon::durability`).
pub fn genesis(spec: &ScenarioSpec) -> Controller {
    let mut region_map = None;
    let net = match spec.topology {
        TopologySpec::Testbed { ots_per_node } => PhotonicNetwork::testbed(ots_per_node).0,
        TopologySpec::Nsfnet {
            ots_per_node,
            regens_per_node,
        } => PhotonicNetwork::nsfnet(ots_per_node, LineRate::Gbps10, regens_per_node),
        TopologySpec::Generated {
            target_roadms,
            plant_seed,
        } => {
            let plant = photonic::generate(&photonic::GeneratorConfig::with_target_roadms(
                target_roadms,
                plant_seed,
            ));
            region_map = Some(griphon::rwa::RegionMap::new(plant.region_of));
            plant.net
        }
    };
    let mut cfg = ControllerConfig {
        seed: spec.seed,
        ..ControllerConfig::default()
    };
    if spec.deterministic {
        cfg.ems = EmsProfile::calibrated_deterministic();
        cfg.equalization = EqualizationModel::calibrated_deterministic();
    }
    let mut ctl = Controller::new(net, cfg);
    if let Some(map) = region_map {
        ctl.install_region_map(map)
            .expect("generated plants satisfy the single-gateway invariant");
    }
    if let Some(secs) = spec.noc_scrape_secs {
        ctl.noc.enable(SimDuration::from_secs(secs));
    }
    ctl
}

/// Drive a spec's setup and timed events against `ctl`, invoking
/// `barrier` after setup and after every event — the hook HA harnesses
/// use as a log-shipping / snapshot point. Returns the accumulated
/// report text.
pub fn drive(
    spec: &ScenarioSpec,
    ctl: &mut Controller,
    barrier: &mut dyn FnMut(&mut Controller),
) -> Result<String, ScenarioError> {
    let node = |ctl: &Controller, name: &str| -> Result<RoadmId, ScenarioError> {
        ctl.net
            .roadm_by_name(name)
            .ok_or_else(|| ScenarioError::UnknownNode(name.to_string()))
    };
    let fiber = |ctl: &Controller, a: &str, b: &str| {
        let na = node(ctl, a)?;
        let nb = node(ctl, b)?;
        ctl.net
            .fiber_between(na, nb)
            .ok_or_else(|| ScenarioError::NotAdjacent(a.to_string(), b.to_string()))
    };

    // The whole setup phase — tenant onboarding, switch installs, trunk
    // provisioning — is one admission burst, group-committed to the WAL
    // as a single batch (one flush, one batch CRC; the segment bytes are
    // identical to per-call appends, so every golden digest holds).
    enum Setup {
        Tenants(Vec<CustomerId>),
        Abort(String),
    }
    let (setup, _commit) = ctl.journal_batch(|ctl| -> Result<Setup, ScenarioError> {
        let tenants: Vec<CustomerId> = spec
            .tenants
            .iter()
            // The journaled entry point, so tenant onboarding replays
            // from the intent log like every other northbound call.
            .map(|t| ctl.register_tenant(&t.name, DataRate::from_gbps(t.quota_gbps)))
            .collect();
        for name in &spec.otn_switches {
            let n = node(ctl, name)?;
            ctl.add_otn_switch(n, DataRate::from_gbps(320));
        }
        for (a, b) in &spec.trunks {
            let na = node(ctl, a)?;
            let nb = node(ctl, b)?;
            // Trunk planning failures surface in the report, not as
            // panics.
            if let Err(e) = ctl.provision_trunk(na, nb, LineRate::Gbps10) {
                return Ok(Setup::Abort(format!(
                    "scenario aborted: trunk {a}–{b}: {e}\n"
                )));
            }
        }
        Ok(Setup::Tenants(tenants))
    });
    let tenants = match setup? {
        Setup::Tenants(t) => t,
        Setup::Abort(text) => return Ok(text),
    };
    ctl.run_until_idle();
    barrier(ctl);

    let mut events: Vec<(usize, &EventSpec)> = spec.events.iter().enumerate().collect();
    events.sort_by_key(|(i, e)| (e.at_secs, *i));

    let mut out = String::new();
    let mut orders: Vec<ConnectionId> = Vec::new();
    let tenant_of = |i: usize| -> Result<CustomerId, ScenarioError> {
        tenants
            .get(i)
            .copied()
            .ok_or(ScenarioError::UnknownTenant(i))
    };

    for (_, ev) in events {
        ctl.run_until(SimTime::from_secs(ev.at_secs));
        match &ev.action {
            ActionSpec::Wavelength {
                tenant,
                from,
                to,
                gbps,
            } => {
                let t = tenant_of(*tenant)?;
                let (f, d) = (node(ctl, from)?, node(ctl, to)?);
                match ctl.request_wavelength(t, f, d, rate_of(*gbps)?) {
                    Ok(id) => {
                        orders.push(id);
                        let _ = writeln!(out, "[{}] ordered {id}: {gbps}G {from}→{to}", ctl.now());
                    }
                    Err(e) => {
                        let _ = writeln!(out, "[{}] order REFUSED ({from}→{to}): {e}", ctl.now());
                    }
                }
            }
            ActionSpec::ProtectedWavelength {
                tenant,
                from,
                to,
                gbps,
            } => {
                let t = tenant_of(*tenant)?;
                let (f, d) = (node(ctl, from)?, node(ctl, to)?);
                match ctl.request_protected_wavelength(t, f, d, rate_of(*gbps)?) {
                    Ok(id) => {
                        orders.push(id);
                        let _ =
                            writeln!(out, "[{}] ordered {id}: {gbps}G 1+1 {from}→{to}", ctl.now());
                    }
                    Err(e) => {
                        let _ =
                            writeln!(out, "[{}] 1+1 order REFUSED ({from}→{to}): {e}", ctl.now());
                    }
                }
            }
            ActionSpec::Bundle {
                tenant,
                from,
                to,
                gbps,
            } => {
                let t = tenant_of(*tenant)?;
                let (f, d) = (node(ctl, from)?, node(ctl, to)?);
                match ctl.request_bandwidth(t, f, d, DataRate::from_gbps(*gbps)) {
                    Ok(bundle) => {
                        let _ = writeln!(
                            out,
                            "[{}] ordered {}: {gbps}G as {} members",
                            ctl.now(),
                            bundle.id,
                            bundle.members.len()
                        );
                        orders.extend(bundle.members);
                    }
                    Err(e) => {
                        let _ = writeln!(out, "[{}] bundle REFUSED: {e}", ctl.now());
                    }
                }
            }
            ActionSpec::Teardown { order } => {
                let id = *orders
                    .get(*order)
                    .ok_or(ScenarioError::UnknownOrder(*order))?;
                match ctl.request_teardown(id) {
                    Ok(()) => {
                        let _ = writeln!(out, "[{}] teardown {id} requested", ctl.now());
                    }
                    Err(e) => {
                        let _ = writeln!(out, "[{}] teardown {id} refused: {e}", ctl.now());
                    }
                }
            }
            ActionSpec::CutFiber { a, b } => {
                let f = fiber(ctl, a, b)?;
                ctl.inject_fiber_cut(f, 0);
                let _ = writeln!(out, "[{}] CUT {a}–{b}", ctl.now());
            }
            ActionSpec::Repair { a, b, after_secs } => {
                let f = fiber(ctl, a, b)?;
                ctl.schedule_repair(f, SimDuration::from_secs(*after_secs));
                let _ = writeln!(out, "[{}] repair {a}–{b} in {after_secs}s", ctl.now());
            }
            ActionSpec::Maintenance { a, b } => {
                let f = fiber(ctl, a, b)?;
                match ctl.start_fiber_maintenance(f) {
                    Ok(moved) => {
                        let _ = writeln!(
                            out,
                            "[{}] maintenance {a}–{b}: {} circuits moving",
                            ctl.now(),
                            moved.len()
                        );
                    }
                    Err(e) => {
                        let _ = writeln!(out, "[{}] maintenance {a}–{b} failed: {e}", ctl.now());
                    }
                }
            }
            ActionSpec::EndMaintenance { a, b } => {
                let f = fiber(ctl, a, b)?;
                ctl.end_fiber_maintenance(f);
                let _ = writeln!(out, "[{}] maintenance done {a}–{b}", ctl.now());
            }
            ActionSpec::Reserve {
                tenant,
                from,
                to,
                gbps,
                start_secs,
                end_secs,
            } => {
                let t = tenant_of(*tenant)?;
                let (f, d) = (node(ctl, from)?, node(ctl, to)?);
                match ctl.reserve_bandwidth(
                    t,
                    f,
                    d,
                    DataRate::from_gbps(*gbps),
                    SimTime::from_secs(*start_secs),
                    SimTime::from_secs(*end_secs),
                ) {
                    Ok(id) => {
                        let _ = writeln!(
                            out,
                            "[{}] booked {id}: {gbps}G [{start_secs}s, {end_secs}s)",
                            ctl.now()
                        );
                    }
                    Err(e) => {
                        let _ = writeln!(out, "[{}] booking REFUSED: {e}", ctl.now());
                    }
                }
            }
            ActionSpec::Report => {
                let _ = writeln!(out, "\n===== report at {} =====", ctl.now());
                for (i, t) in tenants.iter().enumerate() {
                    out.push_str(&ctl.customer_view(*t));
                    let sla = ctl.sla_report(*t);
                    let _ = writeln!(
                        out,
                        "SLA: aggregate {:.5} ({}), worst circuit {:.5}",
                        sla.aggregate,
                        griphon::nines(sla.aggregate),
                        sla.worst
                    );
                    let _ = i;
                }
                let _ = writeln!(out, "--- carrier metrics ---");
                out.push_str(&ctl.metrics.report());
                out.push('\n');
            }
        }
        barrier(ctl);
    }
    ctl.run_until_idle();
    let _ = writeln!(out, "\n===== final state at {} =====", ctl.now());
    for t in &tenants {
        out.push_str(&ctl.customer_view(*t));
    }
    out.push_str(&ctl.metrics.report());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO: &str = r#"{
        "topology": { "testbed": { "ots_per_node": 6 } },
        "deterministic": true,
        "tenants": [
            { "name": "acme", "quota_gbps": 100 },
            { "name": "bravo", "quota_gbps": 50 }
        ],
        "otn_switches": ["I", "IV"],
        "trunks": [["I", "IV"]],
        "events": [
            { "at_secs": 0,     "do": { "wavelength": { "tenant": 0, "from": "I", "to": "IV", "gbps": 10 } } },
            { "at_secs": 0,     "do": { "protected_wavelength": { "tenant": 1, "from": "I", "to": "IV", "gbps": 10 } } },
            { "at_secs": 10,    "do": { "bundle": { "tenant": 0, "from": "I", "to": "IV", "gbps": 12 } } },
            { "at_secs": 600,   "do": { "cut_fiber": { "a": "I", "b": "IV" } } },
            { "at_secs": 600,   "do": { "repair": { "a": "I", "b": "IV", "after_secs": 28800 } } },
            { "at_secs": 3600,  "do": "report" },
            { "at_secs": 7200,  "do": { "teardown": { "order": 0 } } }
        ]
    }"#;

    #[test]
    fn scenario_runs_end_to_end() {
        let out = run_json(SCENARIO).unwrap();
        assert!(out.contains("ordered conn0"), "{out}");
        assert!(out.contains("1+1"), "{out}");
        assert!(out.contains("CUT I–IV"));
        assert!(out.contains("report at"));
        assert!(out.contains("SLA: aggregate"));
        assert!(out.contains("fault.restored"));
        assert!(out.contains("final state"));
    }

    #[test]
    fn scenario_is_deterministic() {
        assert_eq!(run_json(SCENARIO).unwrap(), run_json(SCENARIO).unwrap());
    }

    #[test]
    fn bad_json_reports_parse_error() {
        assert!(matches!(
            run_json("{ not json"),
            Err(ScenarioError::Parse(_))
        ));
    }

    #[test]
    fn unknown_node_rejected() {
        let bad = r#"{
            "topology": { "testbed": { "ots_per_node": 2 } },
            "tenants": [ { "name": "a", "quota_gbps": 10 } ],
            "events": [
                { "at_secs": 0, "do": { "wavelength": { "tenant": 0, "from": "X", "to": "IV", "gbps": 10 } } }
            ]
        }"#;
        assert!(matches!(
            run_json(bad),
            Err(ScenarioError::UnknownNode(n)) if n == "X"
        ));
    }

    #[test]
    fn bad_rate_rejected() {
        let bad = r#"{
            "topology": { "testbed": { "ots_per_node": 2 } },
            "tenants": [ { "name": "a", "quota_gbps": 100 } ],
            "events": [
                { "at_secs": 0, "do": { "wavelength": { "tenant": 0, "from": "I", "to": "IV", "gbps": 25 } } }
            ]
        }"#;
        assert!(matches!(run_json(bad), Err(ScenarioError::BadRate(25))));
    }

    #[test]
    fn refused_orders_are_reported_not_fatal() {
        // Quota of 5 G cannot buy a 10 G wavelength.
        let s = r#"{
            "topology": { "testbed": { "ots_per_node": 2 } },
            "deterministic": true,
            "tenants": [ { "name": "tiny", "quota_gbps": 5 } ],
            "events": [
                { "at_secs": 0, "do": { "wavelength": { "tenant": 0, "from": "I", "to": "IV", "gbps": 10 } } }
            ]
        }"#;
        let out = run_json(s).unwrap();
        assert!(out.contains("REFUSED"), "{out}");
    }

    #[test]
    fn reservations_run_from_json() {
        let s = r#"{
            "topology": { "testbed": { "ots_per_node": 6 } },
            "deterministic": true,
            "tenants": [ { "name": "acme", "quota_gbps": 100 } ],
            "otn_switches": ["I", "IV"],
            "trunks": [["I", "IV"]],
            "events": [
                { "at_secs": 100,   "do": { "reserve": { "tenant": 0, "from": "I", "to": "IV", "gbps": 12, "start_secs": 7200, "end_secs": 14400 } } },
                { "at_secs": 10000, "do": "report" }
            ]
        }"#;
        let out = run_json(s).unwrap();
        assert!(out.contains("booked resv0"), "{out}");
        assert!(out.contains("resv.completed = 1"), "{out}");
    }

    #[test]
    fn nsfnet_topology_resolves_city_names() {
        let s = r#"{
            "topology": { "nsfnet": { "ots_per_node": 4, "regens_per_node": 2 } },
            "deterministic": true,
            "tenants": [ { "name": "acme", "quota_gbps": 100 } ],
            "events": [
                { "at_secs": 0, "do": { "wavelength": { "tenant": 0, "from": "Seattle", "to": "Princeton", "gbps": 10 } } },
                { "at_secs": 3600, "do": "report" }
            ]
        }"#;
        let out = run_json(s).unwrap();
        assert!(out.contains("Seattle"), "{out}");
        assert!(out.contains("[up]"), "{out}");
    }
}
