//! `scenario` — replay a JSON operations scenario against the stack.
//!
//! ```sh
//! cargo run -p griphon-bench --bin scenario -- scenarios/backbone_week.json
//! ```
//!
//! See `griphon_bench::scenario` for the schema and `scenarios/` for
//! shipped examples.

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: scenario <spec.json>");
        std::process::exit(2);
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match griphon_bench::scenario::run_json(&json) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("scenario failed: {e}");
            std::process::exit(1);
        }
    }
}
