//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p griphon-bench --bin repro -- <target>
//!
//! targets: table1 table2 fig1 fig2 fig3 fig4 fig6 fig7
//!          e1-teardown e2-restoration e2b-parallelism e3-maintenance e4-composite
//!          e5-bulk e6-grooming e7-ablation e8-protection e9-planning e10-sla all
//!          bench-rwa (writes BENCH_rwa.json)
//!          bench-cloud (writes BENCH_cloud.json)
//!          trace (writes BENCH_trace.json + BENCH_trace_chrome.json)
//!          noc (writes BENCH_noc.json + noc_exposition.txt)
//! ```
//!
//! See `EXPERIMENTS.md` for each target's output recorded against the
//! paper's numbers.

use griphon_bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().map(String::as_str).unwrap_or("all");
    let out = match target {
        "table1" => exp::table1(),
        "table2" => exp::table2(),
        "fig1" => exp::fig_layers(false),
        "fig2" => exp::fig_layers(true),
        "fig3" => exp::fig3(),
        "fig4" => exp::fig4(),
        "fig6" => exp::fig6(),
        "fig7" => exp::fig7(),
        "e1-teardown" => exp::e1_teardown(),
        "e2-restoration" => exp::e2_restoration(),
        "e2b-parallelism" => exp::e2b_parallelism(),
        "e3-maintenance" => exp::e3_maintenance(),
        "e4-composite" => exp::e4_composite(),
        "e5-bulk" => exp::e5_bulk(),
        "e5b-full-mesh" => exp::e5b_full_mesh(),
        "e6-grooming" => exp::e6_grooming(),
        "e7-ablation" => exp::e7_ablation(),
        "e8-protection" => exp::e8_protection(),
        "e9-planning" => exp::e9_planning(),
        "e10-sla" => exp::e10_sla(),
        "perf" => exp::perf(),
        "all" => exp::all(),
        "bench-rwa" => griphon_bench::bench_json::emit("BENCH_rwa.json"),
        "bench-cloud" => griphon_bench::bench_cloud::emit("BENCH_cloud.json"),
        "trace" => griphon_bench::trace_target::emit("BENCH_trace.json", "BENCH_trace_chrome.json"),
        "noc" => griphon_bench::noc_target::emit("BENCH_noc.json", "noc_exposition.txt"),
        other => {
            eprintln!(
                "unknown target {other:?}; try: table1 table2 fig1 fig2 fig3 fig4 fig6 fig7 \
                 e1-teardown e2-restoration e2b-parallelism e3-maintenance e4-composite e5-bulk e5b-full-mesh \
                 e6-grooming e7-ablation e8-protection e9-planning e10-sla bench-rwa bench-cloud \
                 trace noc all"
            );
            std::process::exit(2);
        }
    };
    println!("{out}");
}
