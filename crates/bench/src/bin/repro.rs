//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p griphon-bench --bin repro -- <target>
//! cargo run -p griphon-bench --bin repro -- --list
//! ```
//!
//! The target set — names, descriptions, and runners — lives in one
//! place, `griphon_bench::registry`; usage, `--list`, and dispatch are
//! all derived from that table so they can never disagree. See
//! `EXPERIMENTS.md` for each target's output recorded against the
//! paper's numbers.

use griphon_bench::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().map(String::as_str).unwrap_or("all");
    if target == "--list" || target == "-l" {
        println!("{}", registry::list());
        return;
    }
    match registry::find(target) {
        Some(t) => println!("{}", (t.run)()),
        None => {
            eprintln!("unknown target {target:?}; targets:\n{}", registry::usage());
            eprintln!("(repro --list describes each)");
            std::process::exit(2);
        }
    }
}
