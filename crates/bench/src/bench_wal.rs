//! `repro bench-wal` — durability fast-path micro-benchmarks
//! (DESIGN.md §12).
//!
//! Measures every stage of the WAL pipeline this repo optimized —
//! checksum, encode+frame+append, state digest, segment replay — each
//! against the slow oracle it must stay byte-identical to:
//!
//! * **CRC-32C**: slice-by-32 table kernel vs the byte-at-a-time
//!   reference loop (`simcore::crc32c_reference`), GiB/s over a large
//!   buffer. The target asserts ≥ 5× in release builds.
//! * **WAL append**: the zero-copy scratch-encoder path and the
//!   group-commit batch path vs `Wal::append_reference` (fresh encoder,
//!   intermediate framed `Vec`, reference CRC — the pre-optimization
//!   code), records/s and MiB/s. All three produce **byte-identical
//!   segments** (asserted here and property-tested in
//!   `durability::wal`); the target asserts ≥ 2× in release builds.
//! * **State digest**: the streaming `state_digest_crc` (a `CrcWriter`
//!   sink, no string) vs materializing the full digest string and
//!   hashing it — equal CRCs asserted.
//! * **Segment replay**: `Wal::decode_parallel` vs sequential
//!   `Wal::decode` across segment counts — identical records asserted
//!   at every point — plus one end-to-end `recover()` of a scenario log.
//!
//! Unlike `BENCH_ha.json` (pure sim time, golden-filed), this report
//! contains host wall-clock throughputs and is **not** golden-filed;
//! the byte-identity assertions are the stable part. Thread count
//! honors `REPRO_THREADS` (see [`crate::experiments::repro_threads`]).

use std::time::Instant;

use serde::Serialize;
use simcore::SimTime;

use griphon::durability::{decode_threads, Intent, Wal, WalConfig};
use griphon::{recover, SnapshotStore};

use crate::noc_target::TESTBED_OUTAGE;
use crate::scenario;

/// CRC benchmark buffer size.
const CRC_BYTES: usize = 16 * 1024 * 1024;
/// CRC benchmark passes per implementation.
const CRC_PASSES: usize = 4;
/// Records per append-path benchmark run.
const APPEND_RECORDS: usize = 20_000;
/// Append benchmark passes per path (best pass wins).
const APPEND_PASSES: usize = 4;
/// Iterations of each digest implementation.
const DIGEST_ITERS: usize = 20;
/// Replay sweep: approximate segment counts (driven by record count at a
/// fixed 4 KiB segment size).
const REPLAY_RECORDS: &[usize] = &[500, 4_000, 16_000];

/// CRC-32C throughput block.
#[derive(Serialize)]
pub struct CrcBench {
    /// Bytes hashed per pass.
    pub bytes: usize,
    /// Byte-at-a-time reference loop, GiB/s.
    pub reference_gib_s: f64,
    /// Slice-by-32 kernel, GiB/s.
    pub slice32_gib_s: f64,
    /// `slice32 / reference`.
    pub speedup: f64,
    /// Both implementations agreed on the checksum.
    pub checksums_identical: bool,
}

/// WAL append-path throughput block.
#[derive(Serialize)]
pub struct AppendBench {
    /// Records appended per run.
    pub records: usize,
    /// Log bytes produced.
    pub bytes: usize,
    /// Segments produced.
    pub segments: usize,
    /// Pre-PR path (fresh encoder + intermediate `Vec` + reference CRC),
    /// records/s.
    pub reference_rec_s: f64,
    /// Zero-copy scratch-encoder path, records/s.
    pub zero_copy_rec_s: f64,
    /// Group-commit batch path, records/s.
    pub batch_rec_s: f64,
    /// Pre-PR path, MiB/s of log produced.
    pub reference_mib_s: f64,
    /// Zero-copy path, MiB/s.
    pub zero_copy_mib_s: f64,
    /// Batch path, MiB/s.
    pub batch_mib_s: f64,
    /// `zero_copy / reference` records/s.
    pub speedup_zero_copy: f64,
    /// `batch / reference` records/s.
    pub speedup_batch: f64,
    /// All three paths produced byte-identical segments.
    pub bytes_identical: bool,
}

/// State-digest latency block.
#[derive(Serialize)]
pub struct DigestBench {
    /// Digest string length for the benchmarked controller.
    pub digest_bytes: usize,
    /// Materialize-the-string-then-hash, microseconds per digest.
    pub string_us: f64,
    /// Streaming `state_digest_crc`, microseconds per digest.
    pub streaming_us: f64,
    /// `string / streaming`.
    pub speedup: f64,
    /// Streaming CRC equals the hash of the string rendering.
    pub crc_identical: bool,
}

/// One replay sweep point.
#[derive(Serialize)]
pub struct ReplayPoint {
    /// Segments in the log.
    pub segments: usize,
    /// Records in the log.
    pub records: usize,
    /// Log bytes.
    pub bytes: usize,
    /// Sequential `Wal::decode`, microseconds.
    pub sequential_us: f64,
    /// `Wal::decode_parallel`, microseconds.
    pub parallel_us: f64,
    /// `sequential / parallel`.
    pub speedup: f64,
    /// Parallel decode returned exactly the sequential records.
    pub identical: bool,
}

/// End-to-end recovery of a real scenario log.
#[derive(Serialize)]
pub struct RecoverBench {
    /// Records in the scenario's WAL.
    pub records: u64,
    /// Segments in the scenario's WAL.
    pub segments: usize,
    /// Full `recover()` (parallel decode + sequential replay), ms.
    pub recover_ms: f64,
    /// Recovered digest equals the lost primary's.
    pub digest_identical: bool,
}

/// The machine-readable report written to `BENCH_wal.json`.
#[derive(Serialize)]
pub struct WalReport {
    /// Common `BENCH_*.json` header.
    pub header: crate::bench_json::BenchHeader,
    /// Report name, fixed to `wal`.
    pub benchmark: String,
    /// Worker threads used for parallel decode (`REPRO_THREADS` aware).
    pub threads: usize,
    /// CRC-32C kernel comparison.
    pub crc: CrcBench,
    /// Append-path comparison.
    pub append: AppendBench,
    /// Digest-path comparison.
    pub digest: DigestBench,
    /// Replay sweep over segment counts.
    pub replay: Vec<ReplayPoint>,
    /// End-to-end scenario recovery.
    pub recover: RecoverBench,
}

/// A deterministic pseudo-random byte buffer (SplitMix64 stream).
fn noise(len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    while out.len() < len {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.extend_from_slice(&z.to_le_bytes());
    }
    out.truncate(len);
    out
}

fn crc_bench() -> CrcBench {
    let buf = noise(CRC_BYTES);
    // Warm both table sets and the page cache before timing.
    let want = simcore::crc32c(&buf);
    let got_ref = simcore::crc32c_reference(&buf);

    // Interleaved best-of-N: each pass times both kernels back to back,
    // and the fastest pass wins — minimum-of-passes is robust against
    // scheduler noise, which a single long aggregate run is not.
    let mut acc = 0u32;
    let mut ref_s = f64::INFINITY;
    let mut fast_s = f64::INFINITY;
    for _ in 0..CRC_PASSES {
        let t0 = Instant::now();
        acc ^= simcore::crc32c_reference(&buf);
        ref_s = ref_s.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        acc ^= simcore::crc32c(&buf);
        fast_s = fast_s.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(acc);

    let gib = CRC_BYTES as f64 / (1024.0 * 1024.0 * 1024.0);
    CrcBench {
        bytes: CRC_BYTES,
        reference_gib_s: gib / ref_s,
        slice32_gib_s: gib / fast_s,
        speedup: ref_s / fast_s,
        checksums_identical: want == got_ref,
    }
}

/// A deterministic mixed-intent workload for the append benchmarks.
fn workload(n: usize) -> Vec<(SimTime, Intent)> {
    (0..n)
        .map(|i| {
            let at = SimTime::from_nanos(i as u64 * 1_000_000);
            let intent = match i % 5 {
                0 => Intent::Wavelength {
                    customer: (i % 7) as u32,
                    from: (i % 4) as u32,
                    to: ((i + 1) % 4) as u32,
                    rate: 0,
                },
                1 => Intent::Bandwidth {
                    customer: (i % 7) as u32,
                    from: (i % 4) as u32,
                    to: ((i + 2) % 4) as u32,
                    target_bps: 12_000_000_000 + i as u64,
                },
                2 => Intent::Teardown { conn: i as u32 },
                3 => Intent::Reserve {
                    customer: (i % 7) as u32,
                    from: (i % 4) as u32,
                    to: ((i + 3) % 4) as u32,
                    rate_bps: 10_000_000_000,
                    start_ns: i as u64 * 1_000,
                    end_ns: i as u64 * 2_000,
                },
                _ => Intent::RegisterTenant {
                    name: format!("tenant-{i}"),
                    quota_bps: 100_000_000_000,
                    priority: (i % 250) as u8,
                },
            };
            (at, intent)
        })
        .collect()
}

fn append_bench() -> AppendBench {
    let work = workload(APPEND_RECORDS);
    let cfg = WalConfig::default();

    // Interleaved best-of-N, like `crc_bench`: each pass rebuilds each
    // log from scratch and the fastest pass wins, so one scheduler
    // hiccup can't sink a path's measured throughput.
    let mut ref_s = f64::INFINITY;
    let mut fast_s = f64::INFINITY;
    let mut batch_s = f64::INFINITY;
    let mut slow = Wal::new(cfg);
    let mut fast = Wal::new(cfg);
    let mut batched = Wal::new(cfg);
    let mut commit_records = 0u64;
    for _ in 0..APPEND_PASSES {
        let t0 = Instant::now();
        slow = Wal::new(cfg);
        for (at, intent) in &work {
            slow.append_reference(*at, intent);
        }
        ref_s = ref_s.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        fast = Wal::new(cfg);
        for (at, intent) in &work {
            fast.append(*at, intent);
        }
        fast_s = fast_s.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        batched = Wal::new(cfg);
        batched.begin_batch();
        for (at, intent) in &work {
            batched.append(*at, intent);
        }
        let commit = batched.commit_batch().expect("batch commits");
        batch_s = batch_s.min(t0.elapsed().as_secs_f64());
        commit_records = commit.records;
    }

    let bytes_identical =
        fast.segments() == slow.segments() && batched.segments() == slow.segments();
    assert!(
        bytes_identical,
        "fast paths diverged from the reference append bytes"
    );
    assert_eq!(commit_records, APPEND_RECORDS as u64);

    let bytes = slow.total_bytes();
    let mib = bytes as f64 / (1024.0 * 1024.0);
    let n = APPEND_RECORDS as f64;
    AppendBench {
        records: APPEND_RECORDS,
        bytes,
        segments: slow.segments().len(),
        reference_rec_s: n / ref_s,
        zero_copy_rec_s: n / fast_s,
        batch_rec_s: n / batch_s,
        reference_mib_s: mib / ref_s,
        zero_copy_mib_s: mib / fast_s,
        batch_mib_s: mib / batch_s,
        speedup_zero_copy: ref_s / fast_s,
        speedup_batch: ref_s / batch_s,
        bytes_identical,
    }
}

fn digest_bench() -> DigestBench {
    // A controller with real content: the testbed outage scenario.
    let spec: scenario::ScenarioSpec =
        serde_json::from_str(TESTBED_OUTAGE).expect("testbed scenario parses");
    let (_, ctl) = scenario::run_with(&spec).expect("scenario runs");

    let digest = ctl.state_digest();
    let want = simcore::crc32c(digest.as_bytes());
    let got = ctl.state_digest_crc();
    assert_eq!(got, want, "streaming digest CRC diverged from the string");

    let t0 = Instant::now();
    let mut acc = 0u32;
    for _ in 0..DIGEST_ITERS {
        acc ^= simcore::crc32c(ctl.state_digest().as_bytes());
    }
    let string_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..DIGEST_ITERS {
        acc ^= ctl.state_digest_crc();
    }
    let stream_s = t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);

    DigestBench {
        digest_bytes: digest.len(),
        string_us: string_s / DIGEST_ITERS as f64 * 1e6,
        streaming_us: stream_s / DIGEST_ITERS as f64 * 1e6,
        speedup: string_s / stream_s,
        crc_identical: got == want,
    }
}

fn replay_sweep(threads: usize) -> Vec<ReplayPoint> {
    REPLAY_RECORDS
        .iter()
        .map(|&n| {
            // 4 KiB segments so even the small point spans several.
            let mut wal = Wal::new(WalConfig {
                segment_bytes: 4 * 1024,
            });
            for (at, intent) in workload(n) {
                wal.append(at, &intent);
            }
            let segs = wal.segments();

            let t0 = Instant::now();
            let seq = Wal::decode(segs).expect("log decodes");
            let seq_s = t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let par = Wal::decode_parallel(segs, threads).expect("log decodes");
            let par_s = t0.elapsed().as_secs_f64();

            let identical = seq == par;
            assert!(identical, "parallel decode diverged at {n} records");
            ReplayPoint {
                segments: segs.len(),
                records: n,
                bytes: wal.total_bytes(),
                sequential_us: seq_s * 1e6,
                parallel_us: par_s * 1e6,
                speedup: seq_s / par_s,
                identical,
            }
        })
        .collect()
}

fn recover_bench() -> RecoverBench {
    let spec: scenario::ScenarioSpec =
        serde_json::from_str(TESTBED_OUTAGE).expect("testbed scenario parses");
    let mut primary = scenario::genesis(&spec);
    primary.enable_journal(WalConfig::default());
    scenario::drive(&spec, &mut primary, &mut |_| {}).expect("scenario runs");
    let want = primary.state_digest();
    let target = primary.now();
    let journal = primary.take_journal().expect("journal on");

    let t0 = Instant::now();
    let outcome = recover(
        || scenario::genesis(&spec),
        journal.segments(),
        &SnapshotStore::new(0),
        target,
        WalConfig::default(),
    )
    .expect("recovery succeeds");
    let recover_s = t0.elapsed().as_secs_f64();

    let digest_identical = outcome.controller.state_digest() == want;
    assert!(digest_identical, "recovery diverged from the lost primary");
    RecoverBench {
        records: journal.records(),
        segments: journal.segments().len(),
        recover_ms: recover_s * 1e3,
        digest_identical,
    }
}

/// Run every block and assemble the report. Byte-identity is asserted
/// unconditionally; the throughput floors (≥ 5× CRC, ≥ 2× append) are
/// asserted only in release builds, where the acceptance criteria are
/// defined — debug-build timings measure the compiler, not the code.
pub fn build() -> WalReport {
    let threads = decode_threads();
    let crc = crc_bench();
    let append = append_bench();
    let digest = digest_bench();
    let replay = replay_sweep(threads);
    let recover = recover_bench();

    assert!(crc.checksums_identical);
    assert!(append.bytes_identical);
    assert!(digest.crc_identical);
    assert!(replay.iter().all(|p| p.identical));
    assert!(recover.digest_identical);
    if !cfg!(debug_assertions) {
        assert!(
            crc.speedup >= 5.0,
            "CRC slice-by-32 only {:.1}x over reference (need 5x)",
            crc.speedup
        );
        assert!(
            append.speedup_zero_copy >= 2.0,
            "zero-copy append only {:.1}x over reference (need 2x)",
            append.speedup_zero_copy
        );
    }

    WalReport {
        header: crate::bench_json::BenchHeader::new("bench-wal", "default"),
        benchmark: "wal".to_string(),
        threads,
        crc,
        append,
        digest,
        replay,
        recover,
    }
}

/// Render the human-readable summary (the lines CI greps).
fn render(r: &WalReport) -> String {
    let mut out = String::from("WAL fast paths — CRC, append, digest, replay (DESIGN.md §12)\n");
    out.push_str(&format!(
        "\ncrc32c: slice-by-32 {:.2} GiB/s vs reference {:.2} GiB/s — {:.1}x, checksums identical\n",
        r.crc.slice32_gib_s, r.crc.reference_gib_s, r.crc.speedup
    ));
    out.push_str(&format!(
        "append: zero-copy {:.0} rec/s ({:.1} MiB/s) vs reference {:.0} rec/s — {:.1}x; \
         group commit {:.0} rec/s — {:.1}x; segments byte-identical\n",
        r.append.zero_copy_rec_s,
        r.append.zero_copy_mib_s,
        r.append.reference_rec_s,
        r.append.speedup_zero_copy,
        r.append.batch_rec_s,
        r.append.speedup_batch,
    ));
    out.push_str(&format!(
        "digest: streaming {:.0} µs vs string+hash {:.0} µs over {} digest bytes — {:.2}x, crc identical\n",
        r.digest.streaming_us, r.digest.string_us, r.digest.digest_bytes, r.digest.speedup
    ));
    out.push_str(&format!("replay ({} threads):\n", r.threads));
    for p in &r.replay {
        out.push_str(&format!(
            "  {:>5} segs / {:>6} recs: parallel {:>9.0} µs vs sequential {:>9.0} µs — {:.2}x, records identical\n",
            p.segments, p.records, p.parallel_us, p.sequential_us, p.speedup
        ));
    }
    out.push_str(&format!(
        "recover: {} records / {} segment(s) in {:.1} ms, digest reconstructed byte-identically\n",
        r.recover.records, r.recover.segments, r.recover.recover_ms
    ));
    out
}

/// Run the benchmarks, write `BENCH_wal.json`, and return the summary.
pub fn emit(bench_path: &str) -> String {
    let report = build();
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(bench_path, &json).expect("write BENCH_wal.json");
    let mut out = render(&report);
    out.push_str(&format!("\nwrote {bench_path}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_builds_and_identities_hold() {
        let r = build();
        assert!(r.crc.checksums_identical);
        assert!(r.append.bytes_identical);
        assert!(r.digest.crc_identical);
        assert!(r.replay.iter().all(|p| p.identical));
        assert!(r.recover.digest_identical);
        assert!(r.replay.iter().all(|p| p.segments > 1));
        // Shapes, not speeds: debug-build timings prove nothing.
        assert!(r.append.records == APPEND_RECORDS);
        assert!(r.threads >= 1);
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(json.contains("\"benchmark\": \"wal\""));
    }

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(workload(64), workload(64));
        let mut a = Wal::new(WalConfig::default());
        let mut b = Wal::new(WalConfig::default());
        for (at, intent) in workload(64) {
            a.append(at, &intent);
            b.append_reference(at, &intent);
        }
        assert_eq!(a.segments(), b.segments());
    }
}
