//! `repro measure` — the measurement plane
//! (`BENCH_measure.json` + `measure_exposition.txt`).
//!
//! Sweeps estimation error against policy regret across cross-traffic
//! regimes on a 40 G shared path (`DESIGN.md` §15):
//!
//! - **stationary** — jittered-but-stable competing load, the regime
//!   probe-gap estimation is exact in;
//! - **stationary-noisy** — the same load with 10× receive-timestamp
//!   noise, the estimator's robustness case;
//! - **bursty** — TCP-like on/off injections layered on the base load;
//! - **adversarial-square** — a square wave built to alias against the
//!   probing cadence, the worst case for a lagging EWMA;
//! - **diurnal** — a slow sinusoidal drift, the paper's inter-data-center
//!   day/night cycle.
//!
//! Each scenario runs [`MeasuredBodPolicy`] in all three sizing modes —
//! `Fixed` (the blind baseline), `Estimated` (the measurement feedback
//! loop), `Oracle` (perfect knowledge, the regret reference) — twice:
//! observability off, then on. Per `(scenario, mode)` the controller
//! `state_digest_crc()` must be byte-identical on/off (measurement is
//! pure observation), every estimate histogram's exemplars must resolve
//! into the tail sampler's retained probe traces (asserted inside
//! `Prober::finish`), the bounded span recorder must never drop, and no
//! probe may be lost at the bottleneck — the CI grep gates pin all
//! three. In the stationary scenario the estimation-aware plan must
//! beat the fixed-size plan on regret.
//!
//! `SCALE_SWEEP=reduced` runs the three-scenario CI subset; the
//! scenario definitions themselves never change with the sweep, so the
//! golden exposition (`tests/golden/measure_exposition.txt`) is a pure
//! function of the seeds.

use cloud::{BulkJob, DataCenterId, JobId, MeasuredBodPolicy, MeasuredMode, MeasuredRun};
use griphon::controller::{Controller, ControllerConfig};
use griphon::{CrossTraffic, ProbeConfig, ProbePath};
use photonic::{EmsProfile, EqualizationModel, PhotonicNetwork};
use serde::Serialize;
use simcore::{Crc32c, DataRate, DataSize, SimDuration, SimTime};

use crate::experiments::{parallel_cells_with, repro_threads};

/// Shared-path bottleneck capacity.
const CAPACITY_GBPS: u64 = 40;
/// Policy horizon. Fixed across sweeps so the golden bytes never move.
const HORIZON_HOURS: u64 = 8;
/// Decision-tick granularity.
const TICK_SECS: u64 = 60;
/// Receive-timestamp noise σ for the standard scenarios (ns).
const NOISE_NS: f64 = 200.0;

/// One cross-traffic regime the sweep drives.
struct Scenario {
    /// Row label, path label, and seed source.
    name: &'static str,
    /// Receive-timestamp noise σ (ns) for this row.
    noise_ns: f64,
    /// Cross-traffic builder, handed the horizon.
    build: fn(SimTime) -> CrossTraffic,
}

fn cross_stationary(h: SimTime) -> CrossTraffic {
    CrossTraffic::stationary(
        17,
        DataRate::from_gbps(20),
        0.1,
        SimDuration::from_secs(60),
        h,
    )
}

fn cross_bursty(h: SimTime) -> CrossTraffic {
    CrossTraffic::stationary(
        23,
        DataRate::from_gbps(16),
        0.1,
        SimDuration::from_secs(60),
        h,
    )
    .with_bursts(
        29,
        DataRate::from_gbps(8),
        SimDuration::from_secs(120),
        SimDuration::from_secs(300),
        h,
    )
}

fn cross_square(h: SimTime) -> CrossTraffic {
    CrossTraffic::square(
        DataRate::from_gbps(4),
        DataRate::from_gbps(36),
        SimDuration::from_mins(45),
        h,
    )
}

fn cross_diurnal(h: SimTime) -> CrossTraffic {
    CrossTraffic::diurnal(
        31,
        DataRate::from_gbps(18),
        DataRate::from_gbps(12),
        SimDuration::from_hours(6),
        SimDuration::from_secs(120),
        h,
    )
}

/// The default sweep: every regime.
const FULL_SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "stationary",
        noise_ns: NOISE_NS,
        build: cross_stationary,
    },
    Scenario {
        name: "stationary-noisy",
        noise_ns: 10.0 * NOISE_NS,
        build: cross_stationary,
    },
    Scenario {
        name: "bursty",
        noise_ns: NOISE_NS,
        build: cross_bursty,
    },
    Scenario {
        name: "adversarial-square",
        noise_ns: NOISE_NS,
        build: cross_square,
    },
    Scenario {
        name: "diurnal",
        noise_ns: NOISE_NS,
        build: cross_diurnal,
    },
];

/// The `SCALE_SWEEP=reduced` subset CI runs on every push: the exact
/// regime, the adversarial regime, and the drifting regime.
const REDUCED_NAMES: &[&str] = &["stationary", "adversarial-square", "diurnal"];

/// Deterministic per-scenario seed (FNV-1a over the name) — shared with
/// the test hooks, identical for the on and off runs of a cell.
pub fn point_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The pair's bulk jobs: a big transfer at t = 0 and a re-ramp mid-run,
/// so the sizing loop both grows and sheds capacity.
fn jobs() -> Vec<BulkJob> {
    let job = |id: u32, tb: u64, created_s: u64| BulkJob {
        id: JobId::new(id),
        from: DataCenterId::new(0),
        to: DataCenterId::new(1),
        size: DataSize::from_terabytes(tb),
        created: SimTime::from_secs(created_s),
        deadline: None,
    };
    vec![job(0, 30, 0), job(1, 8, 3 * 3600)]
}

/// Run one `(scenario, mode, observability)` cell. Pure function of its
/// arguments; the digest must not depend on `observability` — that is
/// the per-cell identity assert.
fn run_cell(s: &Scenario, mode: MeasuredMode, observability: bool) -> (u32, MeasuredRun) {
    let seed = point_seed(s.name);
    let horizon = SimDuration::from_hours(HORIZON_HOURS);
    let (net, ids) = PhotonicNetwork::testbed(8);
    let mut ctl = Controller::new(
        net,
        ControllerConfig {
            seed,
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        },
    );
    let csp = ctl
        .tenants
        .register("measure-csp", DataRate::from_gbps(400));
    let path = ProbePath {
        name: s.name,
        capacity: DataRate::from_gbps(CAPACITY_GBPS),
        cross: (s.build)(SimTime::ZERO + horizon),
    };
    let policy = MeasuredBodPolicy {
        mode,
        ..MeasuredBodPolicy::default()
    };
    let run = policy.run(
        &mut ctl,
        csp,
        ids.i,
        ids.iv,
        jobs(),
        horizon,
        SimDuration::from_secs(TICK_SECS),
        path,
        ProbeConfig {
            noise_ns: s.noise_ns,
            ..ProbeConfig::default()
        },
        seed,
        observability,
    );
    (ctl.state_digest_crc(), run)
}

/// One scenario row of the measure report: estimation error on the
/// left, policy regret on the right.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioRow {
    /// Scenario label.
    pub name: String,
    /// Receive-timestamp noise σ (ns).
    pub noise_ns: f64,
    /// Probe trains the estimated run completed.
    pub trains: u64,
    /// Probes injected across the estimated run.
    pub probes_sent: u64,
    /// Probes dropped at the bottleneck (gated to 0).
    pub probes_dropped: u64,
    /// Mean |raw − true| per train, percent of capacity.
    pub mean_raw_error_pct: f64,
    /// Mean |EWMA − true| per train, percent of capacity.
    pub mean_smooth_error_pct: f64,
    /// Worst |EWMA − true| over the run, percent of capacity.
    pub max_smooth_error_pct: f64,
    /// Score of the fixed-size plan (paid Gbps·h + lateness penalty).
    pub score_fixed: f64,
    /// Score of the estimation-aware plan.
    pub score_estimated: f64,
    /// Score of the perfect-knowledge plan.
    pub score_oracle: f64,
    /// `score_fixed − score_oracle`.
    pub regret_fixed: f64,
    /// `score_estimated − score_oracle`.
    pub regret_estimated: f64,
    /// Wavelengths the under-delivery trigger ordered (estimated run).
    pub upgrades: u64,
    /// Members the surplus trigger shed early (estimated run).
    pub downgrades: u64,
    /// Ticks the path under-delivered vs the estimate (estimated run).
    pub under_delivery_ticks: u64,
    /// Exemplars retained on the estimate histogram (estimated run).
    pub exemplars: usize,
    /// CRC-32C over the scenario's per-cell digests (identical
    /// on/off — asserted).
    pub digest_crc: u32,
}

/// The `BENCH_measure.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct MeasureReport {
    /// Common `BENCH_*.json` header.
    pub header: crate::bench_json::BenchHeader,
    /// Report identifier.
    pub benchmark: String,
    /// Sweep profile (`full` or `reduced`).
    pub sweep: String,
    /// Worker threads used for the cell fan-out.
    pub threads: usize,
    /// Shared-path capacity (Gbps).
    pub capacity_gbps: f64,
    /// Policy horizon (hours).
    pub horizon_hours: u64,
    /// Decision-tick granularity (seconds).
    pub tick_secs: u64,
    /// One row per cross-traffic regime.
    pub scenarios: Vec<ScenarioRow>,
}

/// All six cells of one scenario, run in the given order:
/// `(mode, observability)` for every mode, off first.
const MODES: &[MeasuredMode] = &[
    MeasuredMode::Fixed,
    MeasuredMode::Estimated,
    MeasuredMode::Oracle,
];

fn mode_name(m: MeasuredMode) -> &'static str {
    match m {
        MeasuredMode::Fixed => "fixed",
        MeasuredMode::Estimated => "estimated",
        MeasuredMode::Oracle => "oracle",
    }
}

/// Run a scenario's full mode × observability grid and fold it into a
/// report row, asserting the per-cell on/off digest identity, the zero
/// probe-drop gate, and the recorder's no-drop invariant.
fn run_scenario(s: &Scenario, threads: usize, out: &mut String) -> (ScenarioRow, String) {
    let grid: Vec<(MeasuredMode, bool)> = MODES
        .iter()
        .flat_map(|&m| [(m, false), (m, true)])
        .collect();
    let runs = parallel_cells_with(threads, grid, |(mode, obs)| run_cell(s, mode, obs));

    let mut crc = Crc32c::new();
    let mut by_mode: Vec<(&'static str, &MeasuredRun)> = Vec::new();
    for (pair, chunk) in MODES.iter().zip(runs.chunks(2)) {
        let (digest_off, off) = &chunk[0];
        let (digest_on, on) = &chunk[1];
        assert_eq!(
            digest_off,
            digest_on,
            "{}/{}: measurement observability changed controller state",
            s.name,
            mode_name(*pair)
        );
        assert_eq!(
            on.score.to_bits(),
            off.score.to_bits(),
            "{}/{}: observability changed the policy score",
            s.name,
            mode_name(*pair)
        );
        assert_eq!(on.outcome, off.outcome);
        assert_eq!(
            on.measure.span_dropped, 0,
            "{}: span recorder dropped",
            s.name
        );
        assert_eq!(
            on.measure.probes_dropped + off.measure.probes_dropped,
            0,
            "{}/{}: probes were dropped at the bottleneck",
            s.name,
            mode_name(*pair)
        );
        assert!(
            on.measure.trains == 0 || on.measure.exemplars >= 1,
            "{}/{}: no exemplar survived on the estimate histogram",
            s.name,
            mode_name(*pair)
        );
        crc.update(&digest_off.to_le_bytes());
        by_mode.push((mode_name(*pair), on));
    }
    let digest_crc = crc.finish();

    let est = by_mode
        .iter()
        .find(|(n, _)| *n == "estimated")
        .expect("grid contains the estimated mode")
        .1;
    let score_of = |name: &str| {
        by_mode
            .iter()
            .find(|(n, _)| *n == name)
            .expect("grid covers every mode")
            .1
            .score
    };
    let cap = CAPACITY_GBPS as f64;
    let n = est.measure.samples.len().max(1) as f64;
    let mean_raw = est
        .measure
        .samples
        .iter()
        .map(|p| (p.raw_gbps - p.true_gbps).abs())
        .sum::<f64>()
        / n
        / cap
        * 100.0;
    let mean_smooth = est
        .measure
        .samples
        .iter()
        .map(|p| (p.smooth_gbps - p.true_gbps).abs())
        .sum::<f64>()
        / n
        / cap
        * 100.0;
    let max_smooth = est
        .measure
        .samples
        .iter()
        .map(|p| (p.smooth_gbps - p.true_gbps).abs() / cap * 100.0)
        .fold(0.0f64, f64::max);

    let row = ScenarioRow {
        name: s.name.to_string(),
        noise_ns: s.noise_ns,
        trains: est.measure.trains,
        probes_sent: est.measure.probes_sent,
        probes_dropped: est.measure.probes_dropped,
        mean_raw_error_pct: mean_raw,
        mean_smooth_error_pct: mean_smooth,
        max_smooth_error_pct: max_smooth,
        score_fixed: score_of("fixed"),
        score_estimated: score_of("estimated"),
        score_oracle: score_of("oracle"),
        regret_fixed: score_of("fixed") - score_of("oracle"),
        regret_estimated: score_of("estimated") - score_of("oracle"),
        upgrades: est.upgrades,
        downgrades: est.downgrades,
        under_delivery_ticks: est.under_delivery_ticks,
        exemplars: est.measure.exemplars,
        digest_crc,
    };
    out.push_str(&format!(
        "[{:<18}] err raw {:.2}% smooth {:.2}% of {CAPACITY_GBPS} G | \
         regret fixed {:+.1} est {:+.1} | up {} down {} | \
         {} trains / {} probes | \
         measurement on/off digests: identical (crc 0x{:08x})\n",
        row.name,
        row.mean_raw_error_pct,
        row.mean_smooth_error_pct,
        row.regret_fixed,
        row.regret_estimated,
        row.upgrades,
        row.downgrades,
        row.trains,
        row.probes_sent,
        row.digest_crc,
    ));
    (row, est.measure.families.expose())
}

/// Per-cell digests for the stationary mode grid, observability on or
/// off — the on/off byte-identity hook for `tests/determinism.rs`.
pub fn measure_digests(threads: usize, observability: bool) -> Vec<u32> {
    let s = &FULL_SCENARIOS[0];
    let grid: Vec<MeasuredMode> = MODES.to_vec();
    parallel_cells_with(threads, grid, |mode| run_cell(s, mode, observability).0)
}

/// Per-cell digests plus the estimated run's exposition for the
/// stationary scenario — the thread-determinism hook: the pair must be
/// identical for any worker count.
pub fn measure_fingerprint(threads: usize) -> (Vec<u32>, String) {
    let s = &FULL_SCENARIOS[0];
    let grid: Vec<MeasuredMode> = MODES.to_vec();
    let runs = parallel_cells_with(threads, grid, |mode| run_cell(s, mode, true));
    let digests = runs.iter().map(|(d, _)| *d).collect();
    let exposition = runs
        .iter()
        .zip(MODES)
        .find(|(_, m)| matches!(m, MeasuredMode::Estimated))
        .expect("grid contains the estimated mode")
        .0
         .1
        .measure
        .families
        .expose();
    (digests, exposition)
}

/// The deterministic exposition the golden file pins: the stationary
/// scenario's estimated-mode metric families (estimate and error
/// histograms with exemplars, probe counters, sampler gauges). No wall
/// clock anywhere, so the bytes are a pure function of the seeds.
fn compose_exposition(stationary: &str) -> String {
    format!("# measurement plane: stationary shared path, estimated mode\n{stationary}")
}

/// Recompute the golden exposition from scratch — the hook
/// `tests/measure_golden.rs` compares against
/// `tests/golden/measure_exposition.txt`.
pub fn golden_exposition() -> String {
    let (_, run) = run_cell(&FULL_SCENARIOS[0], MeasuredMode::Estimated, true);
    compose_exposition(&run.measure.families.expose())
}

/// Run the sweep, write `BENCH_measure.json` and the exposition, and
/// return the summary text.
pub fn emit(bench_path: &str, exposition_path: &str) -> String {
    let reduced = std::env::var("SCALE_SWEEP").as_deref() == Ok("reduced");
    let sweep: Vec<&Scenario> = FULL_SCENARIOS
        .iter()
        .filter(|s| !reduced || REDUCED_NAMES.contains(&s.name))
        .collect();
    let threads = repro_threads();
    let mut out = String::new();
    let mut expositions = Vec::new();
    let rows: Vec<ScenarioRow> = sweep
        .iter()
        .map(|s| {
            let (row, exp) = run_scenario(s, threads, &mut out);
            expositions.push(exp);
            row
        })
        .collect();

    // The paper's pitch in one line: sizing from the estimate must beat
    // sizing blind where estimation is exact.
    let stationary = rows
        .iter()
        .find(|r| r.name == "stationary")
        .expect("every sweep contains the stationary scenario");
    assert!(
        stationary.regret_estimated < stationary.regret_fixed,
        "estimation-aware BoD lost to fixed sizing on regret: {:+.2} vs {:+.2}",
        stationary.regret_estimated,
        stationary.regret_fixed,
    );
    let dropped: u64 = rows.iter().map(|r| r.probes_dropped).sum();
    assert_eq!(dropped, 0, "the sweep dropped probes at the bottleneck");
    out.push_str(&format!(
        "probe drops: {dropped} across {} scenarios\n",
        rows.len()
    ));

    // The estimation pipeline must not care how cells are packed onto
    // workers: identical digests and exposition bytes for 1/2/8
    // threads on the stationary grid.
    let base = measure_fingerprint(1);
    for th in [2usize, 8] {
        assert_eq!(
            measure_fingerprint(th),
            base,
            "measurement plane diverged at {th} threads"
        );
    }
    out.push_str("measurement plane deterministic across 1/2/8 threads: identical\n");

    let exposition = compose_exposition(&expositions[0]);
    std::fs::write(exposition_path, &exposition).expect("write measure exposition");

    let report = MeasureReport {
        header: crate::bench_json::BenchHeader::new(
            "measure",
            if reduced { "reduced" } else { "full" },
        ),
        benchmark: "measure".into(),
        sweep: if reduced { "reduced" } else { "full" }.into(),
        threads,
        capacity_gbps: CAPACITY_GBPS as f64,
        horizon_hours: HORIZON_HOURS,
        tick_secs: TICK_SECS,
        scenarios: rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(bench_path, &json).expect("write BENCH_measure.json");
    format!("wrote {bench_path} + {exposition_path}\n{out}")
}
