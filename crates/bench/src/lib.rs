//! Benchmark and reproduction harness for the GRIPhoN workspace.
//!
//! The `repro` binary regenerates every table and figure of the paper
//! (see `DESIGN.md` §3 for the experiment index); the Criterion benches
//! measure the *algorithmic* cost of the control plane itself (RWA,
//! grooming, restoration fan-out) as opposed to the simulated elapsed
//! times the tables report.

#![deny(missing_docs)]

pub mod bench_cloud;
pub mod bench_json;
pub mod bench_wal;
pub mod experiments;
pub mod ha_target;
pub mod measure_target;
pub mod noc_target;
pub mod registry;
pub mod scale_target;
pub mod scenario;
pub mod serve_target;
pub mod slo_target;
pub mod table;
pub mod trace_target;
