//! `repro ha` — durable control plane under a crash schedule
//! (DESIGN.md §11).
//!
//! Replays the same two scenarios as `repro noc` — the Fig. 4 testbed
//! outage and the NSFNET backbone week — with every northbound intent
//! journaled to the write-ahead log, a cadence-driven snapshot store,
//! and a warm standby consuming shipped records at every third scenario
//! barrier. It then crashes the primary at a fuzzed schedule of byte
//! offsets in its log (including deliberately mid-record tears) and
//! **asserts** — not logs — the durability contract:
//!
//! * WAL on and WAL off produce byte-identical scenario transcripts and
//!   state digests (journaling is observation, not behavior);
//! * at every crash point, snapshot-based recovery and full-log replay
//!   reconstruct byte-identical controllers, and a clean (un-torn)
//!   crash reconstructs the primary's exact digest;
//! * the warm standby's takeover state equals cold recovery over the
//!   same surviving log.
//!
//! Failover latency is reported per crash point through the analytic
//! detect → replay → serving model ([`griphon::FailoverConfig`]) in
//! **sim time** — no host wall clock touches the report, so
//! `BENCH_ha.json` is golden-filed and byte-identical across runs.
//! A snapshot-cadence sweep closes the report: replay-tail length is
//! bounded by the cadence, demonstrating recovery time is O(cadence),
//! not O(history).

use serde::Serialize;
use simcore::SimTime;

use griphon::durability::recovery::replay;
use griphon::{
    recover, FailoverConfig, SnapshotStore, StandbyController, Wal, WalConfig, WalRecord,
};

use crate::noc_target::{BACKBONE_WEEK_FAULTS, TESTBED_OUTAGE};
use crate::scenario::{self, ScenarioSpec};

/// Ship log records to the standby every this many scenario barriers,
/// so the standby realistically lags the primary at most crash points.
const SYNC_EVERY: u64 = 3;

/// Snapshot cadence (WAL records) for the main crash-schedule runs.
const SNAPSHOT_CADENCE: u64 = 4;

/// Evenly spaced crash offsets per scenario; each also contributes a
/// `-3`-byte neighbour to land mid-record.
const CRASH_POINTS: usize = 8;

/// One fuzzed crash of the primary.
#[derive(Serialize)]
pub struct CrashSample {
    /// Bytes of the log durable at the crash.
    pub cut_bytes: usize,
    /// Complete records that survived the cut.
    pub records_survived: u64,
    /// Trailing bytes discarded as a torn (never-acknowledged) record.
    pub torn_bytes: usize,
    /// Whether a torn tail was rolled back.
    pub rolled_back_tail: bool,
    /// Log position of the snapshot recovery started from.
    pub snapshot_seq: Option<u64>,
    /// Records replayed on top of the snapshot (or genesis).
    pub replayed: u64,
    /// EMS workflows in flight at the crash, re-issued by replay.
    pub resumed_workflows: u32,
    /// Crash detection latency (one heartbeat), sim milliseconds.
    pub detect_ms: f64,
    /// Log-tail replay + promotion latency, sim milliseconds.
    pub replay_ms: f64,
    /// Total outage: detect + replay, sim milliseconds.
    pub serving_ms: f64,
}

/// One cumulative histogram bucket of time-to-serving.
#[derive(Serialize)]
pub struct HistBucket {
    /// Upper bound, sim milliseconds (last bucket covers everything).
    pub le_ms: f64,
    /// Crash points whose serving time is ≤ `le_ms`.
    pub count: u64,
}

/// Per-scenario block of `BENCH_ha.json`.
#[derive(Serialize)]
pub struct ScenarioHa {
    /// Scenario name.
    pub name: String,
    /// Records in the primary's full log.
    pub log_records: u64,
    /// Bytes in the primary's full log.
    pub log_bytes: usize,
    /// Log segments (8 KiB default roll).
    pub log_segments: usize,
    /// Snapshots the cadence-driven store captured.
    pub snapshots: usize,
    /// Records the standby had consumed at the final shipping barrier.
    pub standby_applied: u64,
    /// Crash points fuzzed.
    pub crash_points: u64,
    /// Crash points where snapshot recovery == full replay (must equal
    /// `crash_points`).
    pub recovered_identical: u64,
    /// Crash points that tore a record mid-write and rolled it back.
    pub torn_tails: u64,
    /// Whether the warm standby's takeover digest matched cold recovery.
    pub warm_takeover_identical: bool,
    /// The fuzzed crashes, in byte-offset order.
    pub crashes: Vec<CrashSample>,
    /// Cumulative detect→replay→serving histogram over the schedule.
    pub serving_ms_hist: Vec<HistBucket>,
}

/// One point of the snapshot-cadence sweep.
#[derive(Serialize)]
pub struct CadencePoint {
    /// Snapshot every this many WAL records.
    pub cadence: u64,
    /// Snapshots captured over the full log.
    pub snapshots: usize,
    /// Records replayed after restoring the newest snapshot — always
    /// `< cadence`: recovery time is bounded by cadence, not history.
    pub replayed_tail: u64,
    /// Records in the full log.
    pub log_records: u64,
}

/// The machine-readable report written to `BENCH_ha.json`.
#[derive(Serialize)]
pub struct HaReport {
    /// Common `BENCH_*.json` header.
    pub header: crate::bench_json::BenchHeader,
    /// Report name, fixed to `ha`.
    pub benchmark: String,
    /// Shipping cadence (scenario barriers between standby syncs).
    pub sync_every_barriers: u64,
    /// Snapshot cadence (WAL records) for the crash-schedule runs.
    pub snapshot_cadence: u64,
    /// One block per replayed scenario.
    pub scenarios: Vec<ScenarioHa>,
    /// Snapshot-cadence sweep over the testbed scenario's log.
    pub cadence_sweep: Vec<CadencePoint>,
}

/// One scenario's HA run: the journaling primary's full state, its log,
/// the snapshot store, and the (lagging) standby.
struct HaRun {
    name: &'static str,
    spec: ScenarioSpec,
    reference_digest: String,
    target: SimTime,
    segments: Vec<Vec<u8>>,
    records: Vec<WalRecord>,
    store: SnapshotStore,
    standby: StandbyController,
    log_bytes: usize,
}

fn parse(name: &'static str, json: &str) -> ScenarioSpec {
    serde_json::from_str(json).unwrap_or_else(|e| panic!("{name}: bad scenario JSON: {e}"))
}

/// Drive one scenario twice — WAL off, then WAL on with snapshotting and
/// standby shipping — and assert the transcripts and digests are
/// byte-identical (journaling must not perturb behavior).
fn run_one(name: &'static str, json: &str) -> HaRun {
    let spec = parse(name, json);

    // Reference: WAL off.
    let (text_off, ctl_off) =
        scenario::run_with(&spec).unwrap_or_else(|e| panic!("{name}: scenario failed: {e}"));
    let digest_off = ctl_off.state_digest();

    // WAL on, with a snapshot store and a warm standby fed at every
    // SYNC_EVERY-th barrier.
    let mut primary = scenario::genesis(&spec);
    primary.enable_journal(WalConfig::default());
    let mut store = SnapshotStore::new(SNAPSHOT_CADENCE);
    let mut standby = StandbyController::new(scenario::genesis(&spec));
    let mut barriers = 0u64;
    let text_on = {
        let standby = &mut standby;
        let store = &mut store;
        scenario::drive(&spec, &mut primary, &mut |ctl| {
            barriers += 1;
            if !barriers.is_multiple_of(SYNC_EVERY) {
                return;
            }
            store.maybe_snapshot(ctl);
            // Decode straight off the live journal's segments — the
            // shipping barrier copies no log bytes.
            let records = match ctl.journal() {
                Some(w) => Wal::decode(w.segments()).expect("live log decodes").0,
                None => Vec::new(),
            };
            standby.catch_up(&records).expect("standby catches up");
        })
        .unwrap_or_else(|e| panic!("{name}: scenario failed under WAL: {e}"))
    };

    assert_eq!(
        text_on, text_off,
        "{name}: journaling changed the scenario transcript"
    );
    let reference_digest = primary.state_digest();
    assert_eq!(
        reference_digest, digest_off,
        "{name}: journaling changed the controller state"
    );

    // Take the journal whole — the run owns its segments, no copy.
    let journal = primary.take_journal().expect("journal enabled");
    let log_bytes = journal.total_bytes();
    let (records, report) = Wal::decode(journal.segments()).expect("full log decodes");
    assert_eq!(report.torn_bytes, 0, "{name}: flushed log cannot be torn");
    let segments = journal.into_segments();

    HaRun {
        name,
        spec,
        reference_digest,
        target: primary.now(),
        segments,
        records,
        store,
        standby,
        log_bytes,
    }
}

/// Deterministic crash schedule: `n` evenly spaced byte offsets over the
/// log (the last one clean), each paired with a 3-byte-earlier neighbour
/// that lands mid-record.
fn crash_offsets(total: usize, n: usize) -> Vec<usize> {
    let mut cuts = Vec::new();
    for i in 1..=n {
        let c = total * i / n;
        if c >= 3 {
            cuts.push(c - 3);
        }
        cuts.push(c);
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

fn ms(d: simcore::SimDuration) -> f64 {
    d.as_secs_f64() * 1000.0
}

/// Fuzz the crash schedule against one scenario run and build its
/// report block. Consumes the run (the warm standby is promoted once,
/// at the clean crash).
fn crash_schedule(run: HaRun) -> ScenarioHa {
    let HaRun {
        name,
        spec,
        reference_digest,
        target,
        segments,
        records,
        store,
        standby,
        log_bytes,
    } = run;
    let cfg = FailoverConfig::default();
    let empty = SnapshotStore::new(0);
    let standby_applied = standby.applied();

    // Every crash point is an independent cell — its own truncated view
    // of the (shared, read-only) log, its own pair of recoveries — so
    // the schedule fans out across threads via `parallel_cells`. Output
    // order is the input cut order, and every per-cut assertion still
    // fires (a worker panic fails the run), so the report bytes are
    // identical to the sequential loop's.
    let cuts = crash_offsets(log_bytes, CRASH_POINTS);
    let crashes: Vec<CrashSample> = crate::experiments::parallel_cells(cuts, |cut| {
        let surviving = Wal::truncate_segments(&segments, cut);
        let snap_path = recover(
            || scenario::genesis(&spec),
            &surviving,
            &store,
            target,
            WalConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{name}: recovery at cut {cut} failed: {e}"));
        let full_replay = recover(
            || scenario::genesis(&spec),
            &surviving,
            &empty,
            target,
            WalConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{name}: full replay at cut {cut} failed: {e}"));

        // The durability contract: both paths reconstruct the same bytes.
        let digest = snap_path.controller.state_digest();
        assert_eq!(
            digest,
            full_replay.controller.state_digest(),
            "{name}: snapshot recovery diverged from full replay at cut {cut}"
        );
        if cut == log_bytes {
            assert_eq!(
                digest, reference_digest,
                "{name}: clean recovery diverged from the lost primary"
            );
            assert!(!snap_path.rolled_back_tail);
        }

        let survived = snap_path.snapshot_seq.unwrap_or(0) + snap_path.replayed;
        // Analytic failover latency had the standby taken over here.
        let rebuilt = standby_applied > survived;
        let tail = if rebuilt {
            survived
        } else {
            survived - standby_applied
        };
        let detect = cfg.heartbeat;
        let replay_t = cfg.base_switchover + cfg.per_record_replay * tail;
        CrashSample {
            cut_bytes: cut,
            records_survived: survived,
            torn_bytes: snap_path.torn_bytes,
            rolled_back_tail: snap_path.rolled_back_tail,
            snapshot_seq: snap_path.snapshot_seq,
            replayed: snap_path.replayed,
            resumed_workflows: snap_path.resumed_workflows,
            detect_ms: ms(detect),
            replay_ms: ms(replay_t),
            serving_ms: ms(detect + replay_t),
        }
    });
    let recovered_identical = crashes.len() as u64;
    let torn_tails = crashes.iter().filter(|c| c.rolled_back_tail).count() as u64;

    // The warm standby takes over at the clean crash: its promoted state
    // must equal cold recovery's (and therefore the primary's).
    let warm = standby
        .promote(&records, target, WalConfig::default())
        .unwrap_or_else(|e| panic!("{name}: warm takeover failed: {e}"));
    let warm_takeover_identical = warm.state_digest() == reference_digest;
    assert!(
        warm_takeover_identical,
        "{name}: warm standby takeover diverged from the primary"
    );

    let edges = [1510.0, 1530.0, 1550.0, 1600.0, 1700.0, 10_000.0];
    let serving_ms_hist = edges
        .iter()
        .map(|&le_ms| HistBucket {
            le_ms,
            count: crashes.iter().filter(|c| c.serving_ms <= le_ms).count() as u64,
        })
        .collect();

    ScenarioHa {
        name: name.to_string(),
        log_records: records.len() as u64,
        log_bytes,
        log_segments: segments.len(),
        snapshots: store.snapshots().len(),
        standby_applied,
        crash_points: crashes.len() as u64,
        recovered_identical,
        torn_tails,
        warm_takeover_identical,
        crashes,
        serving_ms_hist,
    }
}

/// Snapshot-cadence sweep over the testbed scenario's log: rebuild a
/// store offline at each cadence, recover cleanly, and confirm the
/// replay tail is bounded by the cadence (and the digest unchanged).
fn cadence_sweep(run: &HaRun) -> Vec<CadencePoint> {
    let mut points = Vec::new();
    for cadence in [1u64, 2, 4, 8] {
        let mut replica = scenario::genesis(&run.spec);
        let _ = replica.take_journal();
        let mut store = SnapshotStore::new(0);
        for (i, rec) in run.records.iter().enumerate() {
            replay(&mut replica, std::slice::from_ref(rec))
                .unwrap_or_else(|e| panic!("{}: offline replay: {e}", run.name));
            let seq = (i + 1) as u64;
            if seq.is_multiple_of(cadence) {
                store.capture_at(&replica, seq);
            }
        }
        let outcome = recover(
            || scenario::genesis(&run.spec),
            &run.segments,
            &store,
            run.target,
            WalConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{}: cadence {cadence} recovery: {e}", run.name));
        assert_eq!(
            outcome.controller.state_digest(),
            run.reference_digest,
            "{}: cadence {cadence} recovery diverged",
            run.name
        );
        assert!(
            outcome.replayed < cadence.max(1),
            "{}: cadence {cadence} replayed {} records — tail not bounded",
            run.name,
            outcome.replayed
        );
        points.push(CadencePoint {
            cadence,
            snapshots: store.snapshots().len(),
            replayed_tail: outcome.replayed,
            log_records: run.records.len() as u64,
        });
    }
    points
}

/// Run both scenarios under the crash schedule and build the report.
pub fn build() -> HaReport {
    let testbed = run_one("testbed_outage", TESTBED_OUTAGE);
    let cadence = cadence_sweep(&testbed);
    let backbone = run_one("backbone_week_faults", BACKBONE_WEEK_FAULTS);
    let scenarios = vec![crash_schedule(testbed), crash_schedule(backbone)];
    for s in &scenarios {
        assert_eq!(
            s.recovered_identical, s.crash_points,
            "{}: a crash point failed to reconstruct",
            s.name
        );
        assert!(s.torn_tails > 0, "{}: schedule never tore a record", s.name);
        assert!(s.warm_takeover_identical, "{}: takeover diverged", s.name);
    }
    HaReport {
        header: crate::bench_json::BenchHeader::new("ha", "default"),
        benchmark: "ha".to_string(),
        sync_every_barriers: SYNC_EVERY,
        snapshot_cadence: SNAPSHOT_CADENCE,
        scenarios,
        cadence_sweep: cadence,
    }
}

/// Render the human-readable summary.
fn render(report: &HaReport) -> String {
    let mut out = String::from(
        "HA — write-ahead log, snapshots, primary/standby failover\n\
         (every row is asserted: WAL on/off byte-identity, snapshot recovery ==\n\
          full replay at every fuzzed crash point, warm takeover == cold recovery)\n",
    );
    for s in &report.scenarios {
        out.push_str(&format!(
            "\n── {} ──\n\
             log: {} records / {} bytes / {} segment(s); {} snapshot(s); standby applied {}\n\
             crashes: {} fuzzed, {} reconstructed byte-identically, {} torn tail(s) rolled back\n",
            s.name,
            s.log_records,
            s.log_bytes,
            s.log_segments,
            s.snapshots,
            s.standby_applied,
            s.crash_points,
            s.recovered_identical,
            s.torn_tails,
        ));
        let (min, max) = s.crashes.iter().fold((f64::MAX, 0.0f64), |(lo, hi), c| {
            (lo.min(c.serving_ms), hi.max(c.serving_ms))
        });
        out.push_str(&format!(
            "failover (sim): detect {} ms + replay → serving {:.0}–{:.0} ms across the schedule\n",
            s.crashes.first().map_or(0.0, |c| c.detect_ms),
            min,
            max
        ));
    }
    out.push_str("\nsnapshot-cadence sweep (testbed log):\n");
    for p in &report.cadence_sweep {
        out.push_str(&format!(
            "  every {:>2} records → {} snapshot(s), replay tail {} of {} records\n",
            p.cadence, p.snapshots, p.replayed_tail, p.log_records
        ));
    }
    out
}

/// Run the crash schedule, write `BENCH_ha.json`, and return the
/// human-readable summary.
pub fn emit(bench_path: &str) -> String {
    let report = build();
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(bench_path, &json).expect("write BENCH_ha.json");
    let mut out = render(&report);
    out.push_str(&format!("\nwrote {bench_path}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_offsets_cover_clean_and_torn_cuts() {
        let cuts = crash_offsets(800, 8);
        assert!(cuts.contains(&800), "clean cut missing");
        assert!(cuts.contains(&797), "mid-record tear missing");
        assert!(cuts.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
    }

    #[test]
    fn report_is_deterministic_and_contract_holds() {
        let a = build();
        let b = build();
        let ja = serde_json::to_string_pretty(&a).unwrap();
        let jb = serde_json::to_string_pretty(&b).unwrap();
        assert_eq!(ja, jb, "BENCH_ha.json must be deterministic");
        assert_eq!(a.scenarios.len(), 2);
        for s in &a.scenarios {
            assert_eq!(s.recovered_identical, s.crash_points);
            assert!(s.warm_takeover_identical);
            assert!(s.log_records > 0 && s.snapshots > 0);
        }
        for p in &a.cadence_sweep {
            assert!(p.replayed_tail < p.cadence.max(1));
        }
    }
}
