//! `bench-rwa` repro target: a machine-readable baseline comparing the
//! indexed path engine against the seed implementation, emitted as
//! `BENCH_rwa.json`.
//!
//! Two head-to-head comparisons carry the result:
//!
//! 1. **First-fit wavelength** — the per-degree occupancy-mask AND-reduce
//!    (`first_free_lambda`) against the seed's nested scan over
//!    wavelengths × fibers × endpoints, which is retained verbatim as
//!    [`PhotonicNetwork::first_free_lambda_reference`].
//! 2. **Wavelength planning** — a long-lived [`PathEngine`] (epoch-keyed
//!    route cache, reusable Dijkstra scratch) against the seed's
//!    behaviour of rebuilding all routing state on every call.
//!
//! Absolute timings for Yen's k-shortest paths are recorded alongside
//! for the record. Run with `--release`; debug timings are meaningless.

use std::time::Instant;

use griphon::rwa::{PathEngine, RwaConfig};
use photonic::{DegreeId, LineRate, PhotonicNetwork, Wavelength};
use serde::Serialize;

/// Version of the common `BENCH_*.json` header. Bump when the header
/// shape changes; consumers comparing reports across PRs key on it.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// The common header stamped onto every `BENCH_*.json` this workspace
/// emits, so the cross-PR perf trajectory is machine-comparable: a
/// harvester can group files by `target`, check `schema_version`, and
/// refuse to compare runs of different `sweep` profiles.
#[derive(Debug, Clone, Serialize)]
pub struct BenchHeader {
    /// Header schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The `repro` target that wrote the file.
    pub target: String,
    /// Sweep/config profile of the run (`full`, `reduced`, `default`).
    pub sweep: String,
}

impl BenchHeader {
    /// Header for `target` under sweep profile `sweep`.
    pub fn new(target: &str, sweep: &str) -> BenchHeader {
        BenchHeader {
            schema_version: BENCH_SCHEMA_VERSION,
            target: target.to_string(),
            sweep: sweep.to_string(),
        }
    }
}

/// One timed case: mean wall time per call over `iters` calls.
#[derive(Serialize)]
pub struct BenchCase {
    /// Human-readable case name.
    pub name: String,
    /// Number of timed iterations (after warm-up).
    pub iters: u64,
    /// Total wall time for all iterations, nanoseconds.
    pub total_ns: u64,
    /// Mean per-call time, nanoseconds.
    pub per_call_ns: f64,
}

/// A baseline/optimised pair with the resulting speedup factor.
#[derive(Serialize)]
pub struct Comparison {
    /// What is being compared.
    pub name: String,
    /// The seed implementation's timing.
    pub baseline: BenchCase,
    /// The indexed engine's timing.
    pub optimized: BenchCase,
    /// `baseline.per_call_ns / optimized.per_call_ns`.
    pub speedup: f64,
}

/// The full report serialised to `BENCH_rwa.json`.
#[derive(Serialize)]
pub struct BenchReport {
    /// Common `BENCH_*.json` header.
    pub header: BenchHeader,
    /// Report name, fixed to `bench_rwa`.
    pub benchmark: String,
    /// Topology the cases run on.
    pub network: String,
    /// Seed-vs-engine comparisons; each must clear `min_speedup`.
    pub comparisons: Vec<Comparison>,
    /// Absolute timings with no seed counterpart.
    pub absolute: Vec<BenchCase>,
    /// Route-cache hits over the planning comparison.
    pub route_cache_hits: u64,
    /// Route-cache misses over the planning comparison.
    pub route_cache_misses: u64,
    /// The acceptance floor this report is checked against.
    pub min_speedup: f64,
}

fn time_case(name: &str, iters: u64, mut f: impl FnMut()) -> BenchCase {
    for _ in 0..iters.div_ceil(10).min(1_000) {
        f(); // warm-up
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total_ns = t0.elapsed().as_nanos() as u64;
    BenchCase {
        name: name.to_string(),
        iters,
        total_ns,
        per_call_ns: total_ns as f64 / iters as f64,
    }
}

fn compare(name: &str, baseline: BenchCase, optimized: BenchCase) -> Comparison {
    let speedup = baseline.per_call_ns / optimized.per_call_ns;
    Comparison {
        name: name.to_string(),
        baseline,
        optimized,
        speedup,
    }
}

/// Light `w` on every fiber of `path` at both endpoints (facing degree
/// plus the next degree round-robin), skipping anything already lit, so
/// the first-fit scan has real occupancy to chew through.
fn load_path(net: &mut PhotonicNetwork, path: &[photonic::FiberId], w: Wavelength) {
    for &f in path {
        let link = net.fiber(f);
        let ends = [link.a, link.b];
        for node in ends {
            let r = net.roadm(node);
            let d = r.degree_to(f).unwrap();
            let d2 = DegreeId::from_index((d.index() + 1) % r.degree_count());
            if r.lambda_free(d, w) && r.lambda_free(d2, w) {
                net.roadm_mut(node).connect_express(w, d, d2).unwrap();
            }
        }
    }
}

/// Run every case and build the report.
pub fn run() -> BenchReport {
    let mut net = PhotonicNetwork::nsfnet(8, LineRate::Gbps10, 2);
    let seattle = net.roadm_by_name("Seattle").unwrap();
    let princeton = net.roadm_by_name("Princeton").unwrap();
    let cfg = RwaConfig::default();

    let mut engine = PathEngine::new();
    let route = engine.k_shortest_paths(&net, seattle, princeton, 1, false)[0].clone();
    // Occupy the low 48 of 80 channels along the route so first fit has
    // to skip a realistic amount of lit spectrum.
    for i in 0..48u16 {
        load_path(&mut net, &route, Wavelength(i));
    }
    let expect = net.first_free_lambda_reference(&route);
    assert_eq!(net.first_free_lambda(&route), expect);
    assert!(expect.is_some(), "route unexpectedly full");

    // -- Comparison 1: first-fit wavelength, mask vs seed scan. --------
    let ff_base = time_case("first_free_lambda_seed_scan", 200_000, || {
        assert_eq!(net.first_free_lambda_reference(&route), expect);
    });
    let ff_opt = time_case("first_free_lambda_mask", 200_000, || {
        assert_eq!(net.first_free_lambda(&route), expect);
    });

    // -- Comparison 2: planning, fresh state per call vs live engine. --
    let pairs: Vec<_> = {
        let ids: Vec<_> = net.roadm_ids().collect();
        (0..ids.len())
            .flat_map(|i| (i + 1..ids.len()).map(move |j| (i, j)))
            .map(|(i, j)| (ids[i], ids[j]))
            .collect()
    };
    let plan_base = time_case("plan_wavelength_fresh_state", 200, || {
        for &(a, b) in &pairs {
            // The seed rebuilt every routing structure per request.
            let mut fresh = PathEngine::new();
            fresh
                .plan_wavelength(&net, &cfg, a, b, LineRate::Gbps10, &[])
                .unwrap();
        }
    });
    let mut engine = PathEngine::new();
    let plan_opt = time_case("plan_wavelength_indexed_engine", 200, || {
        for &(a, b) in &pairs {
            engine
                .plan_wavelength(&net, &cfg, a, b, LineRate::Gbps10, &[])
                .unwrap();
        }
    });
    let (hits, misses) = engine.cache_stats();

    // -- Absolute: Yen coast to coast. ---------------------------------
    let mut yen_engine = PathEngine::new();
    let yen_k8 = time_case("yen_k8_coast_to_coast_uncached", 2_000, || {
        let paths = yen_engine.k_shortest_paths(&net, seattle, princeton, 8, false);
        assert_eq!(paths.len(), 8);
    });

    BenchReport {
        header: BenchHeader::new("bench-rwa", "default"),
        benchmark: "bench_rwa".to_string(),
        network: "nsfnet_80ch".to_string(),
        comparisons: vec![
            compare("first_fit_wavelength", ff_base, ff_opt),
            compare("plan_wavelength_91_pairs", plan_base, plan_opt),
        ],
        absolute: vec![yen_k8],
        route_cache_hits: hits,
        route_cache_misses: misses,
        min_speedup: 5.0,
    }
}

/// Run the benchmark, write `BENCH_rwa.json` next to the working
/// directory, and return a human-readable summary.
pub fn emit(path: &str) -> String {
    let report = run();
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(path, &json).expect("write BENCH_rwa.json");
    let mut out = format!("wrote {path}\n");
    for c in &report.comparisons {
        out.push_str(&format!(
            "  {:<28} {:>10.0} ns -> {:>9.0} ns  ({:.1}x)\n",
            c.name, c.baseline.per_call_ns, c.optimized.per_call_ns, c.speedup
        ));
    }
    for a in &report.absolute {
        out.push_str(&format!(
            "  {:<28} {:>10.0} ns per call\n",
            a.name, a.per_call_ns
        ));
    }
    out.push_str(&format!(
        "  route cache: {} hits / {} misses",
        report.route_cache_hits, report.route_cache_misses
    ));
    out
}
