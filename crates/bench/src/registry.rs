//! The single source of truth for `repro` targets.
//!
//! Every target — its name, one-line description, and runner — lives in
//! one table. The `repro` binary derives its usage text, its `--list`
//! output, and its dispatch from this table, so a target added here can
//! never drift out of the help text (the bug that hid `perf` and
//! `e5b-full-mesh` from the usage strings).

use crate::experiments as exp;

/// Category a target belongs to — `--list` groups by these, in the
/// order they are declared here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Direct reproductions of the paper's tables, figures, and
    /// experiment narratives.
    Paper,
    /// Engine performance: RWA micro-benchmarks, route-cache counters.
    Perf,
    /// Economics / workload studies (bandwidth-on-demand value).
    Economics,
    /// Observability: tracing, telemetry, alarm correlation.
    Observability,
    /// Measurement: active probing, available-bandwidth estimation,
    /// estimation-aware BoD.
    Measurement,
    /// Durability: WAL, snapshots, failover.
    Durability,
    /// Continental-scale sweeps over generated plants.
    Scale,
    /// Service plane: the northbound intent API under tenant load.
    Service,
}

impl Category {
    /// `--list` section header.
    pub fn header(self) -> &'static str {
        match self {
            Category::Paper => "paper",
            Category::Perf => "perf",
            Category::Economics => "economics",
            Category::Observability => "observability",
            Category::Measurement => "measurement",
            Category::Durability => "durability",
            Category::Scale => "scale",
            Category::Service => "service",
        }
    }
}

/// Every category, in the order `--list` prints its sections.
pub const CATEGORIES: &[Category] = &[
    Category::Paper,
    Category::Perf,
    Category::Economics,
    Category::Observability,
    Category::Measurement,
    Category::Durability,
    Category::Scale,
    Category::Service,
];

/// One runnable `repro` target.
pub struct Target {
    /// Name passed on the command line (`repro <name>`).
    pub name: &'static str,
    /// One-line description for `repro --list`.
    pub about: &'static str,
    /// Section this target is listed under.
    pub category: Category,
    /// Runner; returns the text to print.
    pub run: fn() -> String,
}

/// Every target, in the order usage and `--list` present them.
pub const TARGETS: &[Target] = &[
    Target {
        name: "table1",
        about: "Table 1 — provisioning latency per service class",
        category: Category::Paper,
        run: exp::table1,
    },
    Target {
        name: "table2",
        about: "Table 2 — control-plane phase breakdown",
        category: Category::Paper,
        run: exp::table2,
    },
    Target {
        name: "fig1",
        about: "Fig. 1 — layered testbed view (static)",
        category: Category::Paper,
        run: fig1,
    },
    Target {
        name: "fig2",
        about: "Fig. 2 — layered testbed view (with services)",
        category: Category::Paper,
        run: fig2,
    },
    Target {
        name: "fig3",
        about: "Fig. 3 — GUI connection view",
        category: Category::Paper,
        run: exp::fig3,
    },
    Target {
        name: "fig4",
        about: "Fig. 4 — testbed topology walk-through",
        category: Category::Paper,
        run: exp::fig4,
    },
    Target {
        name: "fig6",
        about: "Fig. 6 — bandwidth-on-demand timeline",
        category: Category::Economics,
        run: exp::fig6,
    },
    Target {
        name: "fig7",
        about: "Fig. 7 — restoration sequence",
        category: Category::Paper,
        run: exp::fig7,
    },
    Target {
        name: "e1-teardown",
        about: "E1 — teardown latency",
        category: Category::Paper,
        run: exp::e1_teardown,
    },
    Target {
        name: "e2-restoration",
        about: "E2 — restoration after a fiber cut",
        category: Category::Paper,
        run: exp::e2_restoration,
    },
    Target {
        name: "e2b-parallelism",
        about: "E2b — EMS parallelism ablation",
        category: Category::Paper,
        run: exp::e2b_parallelism,
    },
    Target {
        name: "e3-maintenance",
        about: "E3 — hitless maintenance roll",
        category: Category::Paper,
        run: exp::e3_maintenance,
    },
    Target {
        name: "e4-composite",
        about: "E4 — composite service lifecycle",
        category: Category::Paper,
        run: exp::e4_composite,
    },
    Target {
        name: "e5-bulk",
        about: "E5 — bulk provisioning sweep",
        category: Category::Paper,
        run: exp::e5_bulk,
    },
    Target {
        name: "e5b-full-mesh",
        about: "E5b — full-mesh NSFNET provisioning",
        category: Category::Paper,
        run: exp::e5b_full_mesh,
    },
    Target {
        name: "e6-grooming",
        about: "E6 — sub-wavelength grooming",
        category: Category::Paper,
        run: exp::e6_grooming,
    },
    Target {
        name: "e7-ablation",
        about: "E7 — feature ablation grid",
        category: Category::Paper,
        run: exp::e7_ablation,
    },
    Target {
        name: "e8-protection",
        about: "E8 — 1+1 protection switchover",
        category: Category::Paper,
        run: exp::e8_protection,
    },
    Target {
        name: "e9-planning",
        about: "E9 — calendar booking and planning",
        category: Category::Paper,
        run: exp::e9_planning,
    },
    Target {
        name: "e10-sla",
        about: "E10 — SLA availability accounting",
        category: Category::Paper,
        run: exp::e10_sla,
    },
    Target {
        name: "perf",
        about: "engine performance counters (route cache, CSR sweeps)",
        category: Category::Perf,
        run: exp::perf,
    },
    Target {
        name: "all",
        about: "every table, figure, and experiment above",
        category: Category::Paper,
        run: exp::all,
    },
    Target {
        name: "bench-rwa",
        about: "writes BENCH_rwa.json (RWA micro-benchmarks)",
        category: Category::Perf,
        run: bench_rwa,
    },
    Target {
        name: "bench-cloud",
        about: "writes BENCH_cloud.json (cloud workload replay)",
        category: Category::Economics,
        run: bench_cloud,
    },
    Target {
        name: "trace",
        about: "writes BENCH_trace.json + BENCH_trace_chrome.json",
        category: Category::Observability,
        run: trace,
    },
    Target {
        name: "noc",
        about: "writes BENCH_noc.json + noc_exposition.txt",
        category: Category::Observability,
        run: noc,
    },
    Target {
        name: "slo",
        about: "writes BENCH_slo.json + slo_exposition.txt (error budgets, burn alerts, exemplars)",
        category: Category::Observability,
        run: slo,
    },
    Target {
        name: "measure",
        about: "writes BENCH_measure.json + measure_exposition.txt (probing, estimation, regret)",
        category: Category::Measurement,
        run: measure,
    },
    Target {
        name: "ha",
        about: "writes BENCH_ha.json (WAL, snapshots, crash-point failover)",
        category: Category::Durability,
        run: ha,
    },
    Target {
        name: "bench-wal",
        about: "writes BENCH_wal.json (CRC, WAL append, digest, replay speed)",
        category: Category::Durability,
        run: bench_wal,
    },
    Target {
        name: "scale",
        about: "writes BENCH_scale.json (plant-size sweep, sharded RWA, digests)",
        category: Category::Scale,
        run: scale,
    },
    Target {
        name: "serve",
        about: "writes BENCH_serve.json (intent API server: fleet × load sweep, fairness)",
        category: Category::Service,
        run: serve,
    },
];

fn fig1() -> String {
    exp::fig_layers(false)
}

fn fig2() -> String {
    exp::fig_layers(true)
}

fn bench_rwa() -> String {
    crate::bench_json::emit("BENCH_rwa.json")
}

fn bench_cloud() -> String {
    crate::bench_cloud::emit("BENCH_cloud.json")
}

fn trace() -> String {
    crate::trace_target::emit("BENCH_trace.json", "BENCH_trace_chrome.json")
}

fn noc() -> String {
    crate::noc_target::emit("BENCH_noc.json", "noc_exposition.txt")
}

fn slo() -> String {
    crate::slo_target::emit("BENCH_slo.json", "slo_exposition.txt")
}

fn measure() -> String {
    crate::measure_target::emit("BENCH_measure.json", "measure_exposition.txt")
}

fn ha() -> String {
    crate::ha_target::emit("BENCH_ha.json")
}

fn bench_wal() -> String {
    crate::bench_wal::emit("BENCH_wal.json")
}

fn scale() -> String {
    crate::scale_target::emit("BENCH_scale.json")
}

fn serve() -> String {
    crate::serve_target::emit("BENCH_serve.json")
}

/// Look up a target by name.
pub fn find(name: &str) -> Option<&'static Target> {
    TARGETS.iter().find(|t| t.name == name)
}

/// The bare target-name list, wrapped for terminal width — used both in
/// the usage error and the binary's doc comment.
pub fn usage() -> String {
    let mut out = String::new();
    let mut line = String::new();
    for t in TARGETS {
        if !line.is_empty() && line.len() + t.name.len() + 1 > 72 {
            out.push_str(line.trim_end());
            out.push('\n');
            line.clear();
        }
        line.push_str(t.name);
        line.push(' ');
    }
    out.push_str(line.trim_end());
    out
}

/// The `--list` output: one aligned `name — about` row per target,
/// grouped under category headers ([`CATEGORIES`] order; declaration
/// order within a group).
pub fn list() -> String {
    let width = TARGETS.iter().map(|t| t.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (i, cat) in CATEGORIES.iter().enumerate() {
        let rows: Vec<&Target> = TARGETS.iter().filter(|t| t.category == *cat).collect();
        if rows.is_empty() {
            continue;
        }
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&format!("{}:\n", cat.header()));
        for t in rows {
            out.push_str(&format!("  {:width$}  {}\n", t.name, t.about));
        }
    }
    out.pop(); // drop the trailing newline
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_findable() {
        for (i, t) in TARGETS.iter().enumerate() {
            assert!(
                TARGETS[..i].iter().all(|u| u.name != t.name),
                "duplicate target {}",
                t.name
            );
            assert_eq!(find(t.name).unwrap().name, t.name);
        }
        assert!(find("no-such-target").is_none());
    }

    #[test]
    fn usage_and_list_cover_every_target() {
        let usage = usage();
        let list = list();
        for t in TARGETS {
            assert!(usage.contains(t.name), "usage omits {}", t.name);
            assert!(list.contains(t.name), "--list omits {}", t.name);
        }
    }

    #[test]
    fn list_groups_by_category() {
        let list = list();
        for cat in CATEGORIES {
            let header = format!("{}:", cat.header());
            assert!(list.contains(&header), "--list omits section {header}");
        }
        // Sections appear in CATEGORIES order.
        let mut last = 0;
        for cat in CATEGORIES {
            let pos = list
                .find(&format!("{}:", cat.header()))
                .expect("section present");
            assert!(pos >= last, "section {} out of order", cat.header());
            last = pos;
        }
        // Every target row sits under its own section header: the scale
        // target must come after the `scale:` header.
        let scale_pos = list.find("\n  scale ").or_else(|| list.find("  scale "));
        let header_pos = list.find("scale:").unwrap();
        assert!(scale_pos.unwrap() > header_pos);
    }
}
