//! `bench-cloud` repro target: the event-driven workload engine against
//! the fixed-tick oracle on a scaled inter-DC replication workload,
//! emitted as `BENCH_cloud.json`.
//!
//! The workload is deliberately bigger than anything `repro fig6`/`fig7`
//! runs — ≥50 site pairs, ≥100k bulk jobs, a 30-day horizon at the
//! 60-second tick — because that is where the tick loop's
//! O(horizon/tick) cost dominates (the ROADMAP's "millions of users"
//! scale). Three head-to-head comparisons carry the result:
//!
//! 1. **Static line, 50 pairs** — [`StaticLinePolicy::run`] (event) vs
//!    [`StaticLinePolicy::run_tick_reference`] (the seed loop).
//! 2. **Store-and-forward, 50 pairs** — likewise for
//!    [`StoreForwardPolicy`].
//! 3. **BoD, independent controllers** — [`BodPolicy::run`] vs its tick
//!    oracle, one live controller per pair.
//!
//! Both sides of every comparison are sharded across OS threads with
//! [`crate::experiments::parallel_cells`] (each pair is an independent
//! cell), and every pair's event-engine `PolicyOutcome` is asserted
//! byte-identical to its tick-oracle outcome before any timing is
//! reported. The emit step fails (non-zero exit) if the event engine is
//! not faster than the tick engine on any comparison. Run with
//! `--release`; debug timings are meaningless.

use std::time::Instant;

use cloud::scheduler::{BodPolicy, StaticLinePolicy, StoreForwardPolicy};
use cloud::workload::{WorkloadConfig, WorkloadGenerator};
use cloud::{BulkJob, DataCenterId, PolicyOutcome, RateProfile};
use serde::Serialize;
use simcore::{DataRate, DataSize, SimDuration, SimTime};

use crate::experiments::{parallel_cells, quiet_testbed};

/// One engine's timed side of a comparison.
#[derive(Serialize)]
pub struct EngineCase {
    /// `tick` or `event`.
    pub engine: String,
    /// Wall time for the whole sharded sweep, nanoseconds; the best of
    /// [`TIMING_PASSES`] identical passes (the sweeps are pure, so the
    /// minimum is the run least disturbed by scheduler noise).
    pub wall_ns: u64,
    /// Work units processed: simulated ticks for the tick engine,
    /// workload events (one arrival + one completion per job) for the
    /// event engine.
    pub units: u64,
    /// `units` per wall-clock second.
    pub units_per_sec: f64,
}

/// A tick/event pair with the resulting speedup factor.
#[derive(Serialize)]
pub struct Comparison {
    /// What is being compared.
    pub name: String,
    /// Site pairs simulated (each pair is one shard cell).
    pub pairs: usize,
    /// Total bulk jobs across all pairs.
    pub jobs: u64,
    /// The seed tick loop's timing.
    pub tick: EngineCase,
    /// The event engine's timing.
    pub event: EngineCase,
    /// `tick.wall_ns / event.wall_ns`.
    pub speedup: f64,
}

/// The full report serialised to `BENCH_cloud.json`.
#[derive(Serialize)]
pub struct CloudReport {
    /// Common `BENCH_*.json` header.
    pub header: crate::bench_json::BenchHeader,
    /// Report name, fixed to `bench_cloud`.
    pub benchmark: String,
    /// Simulated horizon, days.
    pub horizon_days: u64,
    /// Decision-tick granularity, seconds.
    pub tick_secs: u64,
    /// Distinct site pairs in the workload.
    pub total_pairs: usize,
    /// Distinct bulk jobs in the workload (each pair's job set counted
    /// once; every comparison replays the same sets).
    pub total_jobs: u64,
    /// Engine-vs-engine comparisons; each must clear `min_speedup`.
    pub comparisons: Vec<Comparison>,
    /// Hard floor: the event engine may never be slower than the tick
    /// engine (CI fails below this).
    pub min_speedup: f64,
    /// The acceptance target the scaled workload is expected to clear.
    pub target_speedup: f64,
}

/// Workload scale. 30 days at a ~20.8-minute mean interarrival gives
/// ~2,073 jobs per pair, so 50 pairs clear the 100k-job floor.
const PAIRS: usize = 50;
const HORIZON_DAYS: u64 = 30;
const TICK_SECS: u64 = 60;
/// Live-controller pairs for the BoD comparison (each cell owns two
/// controllers across the two engine passes).
const BOD_PAIRS: usize = 6;
/// Timing passes per engine side; the reported wall time is the
/// minimum. The event sweeps finish in tens of milliseconds, where a
/// single sample is dominated by thread-spawn and scheduler jitter.
const TIMING_PASSES: u32 = 3;

/// Run `f` [`TIMING_PASSES`] times; return its (deterministic) result
/// and the best wall time in nanoseconds.
fn timed_best<T>(mut f: impl FnMut() -> T) -> (T, u64) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..TIMING_PASSES {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_nanos() as u64);
        out = Some(v);
    }
    (out.expect("TIMING_PASSES >= 1"), best)
}

fn engine_case(engine: &str, wall_ns: u64, units: u64) -> EngineCase {
    EngineCase {
        engine: engine.to_string(),
        wall_ns,
        units,
        units_per_sec: units as f64 / (wall_ns as f64 / 1e9),
    }
}

fn compare(name: &str, pairs: usize, jobs: u64, tick: EngineCase, event: EngineCase) -> Comparison {
    let speedup = tick.wall_ns as f64 / event.wall_ns as f64;
    Comparison {
        name: name.to_string(),
        pairs,
        jobs,
        tick,
        event,
        speedup,
    }
}

/// Run every comparison and build the report.
pub fn run() -> CloudReport {
    let horizon = SimDuration::from_hours(24 * HORIZON_DAYS);
    let tick = SimDuration::from_secs(TICK_SECS);
    let ticks_per_pair = horizon.as_nanos() / tick.as_nanos();

    // One deterministic job set per pair.
    let pair_jobs: Vec<Vec<BulkJob>> = (0..PAIRS as u64)
        .map(|i| {
            let cfg = WorkloadConfig {
                bulk_interarrival: SimDuration::from_secs(1250),
                bulk_max: DataSize::from_terabytes(8),
                ..WorkloadConfig::default()
            };
            let mut gen = WorkloadGenerator::new(cfg, 9000 + i);
            gen.bulk_jobs(DataCenterId::new(0), DataCenterId::new(1), horizon)
        })
        .collect();
    let total_jobs: u64 = pair_jobs.iter().map(|j| j.len() as u64).sum();
    assert!(
        total_jobs >= 100_000,
        "workload under the 100k-job floor: {total_jobs}"
    );

    // A realistic coarse diurnal: the generator's curve held constant
    // over each hour (hour boundaries are tick-aligned at the 60 s
    // tick). Far past the horizon so the relay phase shifts stay in
    // range.
    let gen_ref = WorkloadGenerator::new(WorkloadConfig::default(), 0);
    let diurnal_hourly = |t: SimTime| {
        let hour = SimDuration::from_hours(1);
        let whole_hours = t.since(SimTime::ZERO).as_nanos() / hour.as_nanos();
        gen_ref.interactive_rate(SimTime::ZERO + hour * whole_hours)
    };
    let interactive = RateProfile::sampled(
        diurnal_hourly,
        SimTime::ZERO + horizon + SimDuration::from_hours(17),
        SimDuration::from_hours(1),
    );

    // -- Comparison 1: static 40G line, 50 pairs sharded. --------------
    let static_line = StaticLinePolicy {
        line: DataRate::from_gbps(40),
    };
    let (tick_static, tick_static_ns): (Vec<PolicyOutcome>, u64) = timed_best(|| {
        parallel_cells(pair_jobs.clone(), |jobs| {
            static_line.run_tick_reference(jobs, horizon, tick, &diurnal_hourly)
        })
    });
    let (event_static, event_static_ns): (Vec<PolicyOutcome>, u64) = timed_best(|| {
        parallel_cells(pair_jobs.clone(), |jobs| {
            static_line.run(jobs, horizon, tick, &interactive)
        })
    });
    assert_eq!(
        event_static, tick_static,
        "static-line event engine diverged from the tick oracle"
    );

    // -- Comparison 2: store-and-forward, 50 pairs sharded. ------------
    let snf = StoreForwardPolicy {
        line: DataRate::from_gbps(10),
        relays: 2,
        relay_phase_hours: 8.0,
    };
    let (tick_snf, tick_snf_ns): (Vec<PolicyOutcome>, u64) = timed_best(|| {
        parallel_cells(pair_jobs.clone(), |jobs| {
            snf.run_tick_reference(jobs, horizon, tick, &diurnal_hourly)
        })
    });
    let (event_snf, event_snf_ns): (Vec<PolicyOutcome>, u64) = timed_best(|| {
        parallel_cells(pair_jobs.clone(), |jobs| {
            snf.run(jobs, horizon, tick, &interactive)
        })
    });
    assert_eq!(
        event_snf, tick_snf,
        "store-and-forward event engine diverged from the tick oracle"
    );

    // -- Comparison 3: BoD with one live controller per pair. ----------
    let bod = BodPolicy {
        max_rate: DataRate::from_gbps(40),
        drain_target: SimDuration::from_hours(1),
        idle_release: SimDuration::from_mins(10),
    };
    let bod_jobs: Vec<Vec<BulkJob>> = pair_jobs[..BOD_PAIRS].to_vec();
    let bod_job_count: u64 = bod_jobs.iter().map(|j| j.len() as u64).sum();
    let bod_cell = |jobs: Vec<BulkJob>, event: bool| {
        let (mut ctl, ids) = quiet_testbed(10);
        let csp = ctl.tenants.register("bench", DataRate::from_gbps(400));
        if event {
            bod.run(&mut ctl, csp, ids.i, ids.iv, jobs, horizon, tick)
        } else {
            bod.run_tick_reference(&mut ctl, csp, ids.i, ids.iv, jobs, horizon, tick)
        }
    };
    let (tick_bod, tick_bod_ns): (Vec<PolicyOutcome>, u64) =
        timed_best(|| parallel_cells(bod_jobs.clone(), |jobs| bod_cell(jobs, false)));
    let (event_bod, event_bod_ns): (Vec<PolicyOutcome>, u64) =
        timed_best(|| parallel_cells(bod_jobs.clone(), |jobs| bod_cell(jobs, true)));
    assert_eq!(
        event_bod, tick_bod,
        "BoD event engine diverged from the tick oracle"
    );

    CloudReport {
        header: crate::bench_json::BenchHeader::new("bench-cloud", "default"),
        benchmark: "bench_cloud".to_string(),
        horizon_days: HORIZON_DAYS,
        tick_secs: TICK_SECS,
        total_pairs: PAIRS,
        total_jobs,
        comparisons: vec![
            compare(
                "static_40g_line",
                PAIRS,
                total_jobs,
                engine_case("tick", tick_static_ns, ticks_per_pair * PAIRS as u64),
                engine_case("event", event_static_ns, 2 * total_jobs),
            ),
            compare(
                "store_and_forward",
                PAIRS,
                total_jobs,
                engine_case("tick", tick_snf_ns, ticks_per_pair * PAIRS as u64),
                engine_case("event", event_snf_ns, 2 * total_jobs),
            ),
            compare(
                "bod_live_controller",
                BOD_PAIRS,
                bod_job_count,
                engine_case("tick", tick_bod_ns, ticks_per_pair * BOD_PAIRS as u64),
                engine_case("event", event_bod_ns, 2 * bod_job_count),
            ),
        ],
        min_speedup: 1.0,
        target_speedup: 10.0,
    }
}

/// Run the benchmark, write `BENCH_cloud.json`, and return a
/// human-readable summary. Panics (non-zero exit) if any comparison
/// falls below the `min_speedup` floor.
pub fn emit(path: &str) -> String {
    let report = run();
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(path, &json).expect("write BENCH_cloud.json");
    let mut out = format!(
        "wrote {path}\n  workload: {} pairs, {} jobs, {} days at {} s ticks\n",
        report.total_pairs, report.total_jobs, report.horizon_days, report.tick_secs
    );
    for c in &report.comparisons {
        out.push_str(&format!(
            "  {:<22} {:>8.2} ms tick -> {:>8.2} ms event  ({:.1}x, {:.0} events/s)\n",
            c.name,
            c.tick.wall_ns as f64 / 1e6,
            c.event.wall_ns as f64 / 1e6,
            c.speedup,
            c.event.units_per_sec,
        ));
        assert!(
            c.speedup >= report.min_speedup,
            "event engine slower than tick engine on {}: {:.2}x",
            c.name,
            c.speedup
        );
    }
    let worst = report
        .comparisons
        .iter()
        .map(|c| c.speedup)
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "  worst speedup {worst:.1}x (floor {:.0}x, target {:.0}x)",
        report.min_speedup, report.target_speedup
    ));
    out
}
