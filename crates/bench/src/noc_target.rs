//! `repro noc` — multi-layer telemetry pipeline and cross-layer
//! alarm-correlation NOC (DESIGN.md §10).
//!
//! Replays two fault scenarios with the NOC enabled:
//!
//! 1. `scenarios/testbed_outage.json` — the Fig. 4 testbed with an OTN
//!    trunk and a groomed bundle, hit by the paper's I–IV fiber cut, so
//!    the full four-level cascade fires (per-span LOS → ODU AIS → OT LOS
//!    → client-port down);
//! 2. a multi-fault NSFNET *backbone week*: two staggered fiber cuts
//!    (one severing an OTN trunk and its groomed tributaries, one
//!    hitting a transcontinental wavelength), a maintenance window and a
//!    calendar booking.
//!
//! For each it prints the NOC dashboard and **asserts** — not logs —
//! that every secondary alarm was suppressed against a root-cause
//! domain (100 % attribution, zero unattributed), that the detection →
//! localization → restoration-start latency chain matches the detection
//! model, and that no trace or scrape ring dropped anything. It then
//! writes the Prometheus-style exposition of every scraped family to
//! `noc_exposition.txt` and a machine-readable summary to
//! `BENCH_noc.json`; both are golden-filed and byte-identical across
//! runs.

use serde::Serialize;
use simcore::SimTime;

use crate::scenario::{self, ScenarioSpec};

/// The paper's testbed outage scenario, embedded so the bench runs from
/// any working directory. Shared with `repro ha`.
pub const TESTBED_OUTAGE: &str = include_str!("../../../scenarios/testbed_outage.json");

/// A week on the NSFNET backbone with two staggered fiber cuts: the
/// Lincoln–Champaign cut severs the OTN trunk (and the groomed 1 G
/// tributaries riding it), the SanDiego–Houston cut hits the
/// PaloAlto–Atlanta wavelength mid-route. Shared with `repro ha`, which
/// replays the same week under a crash schedule.
pub const BACKBONE_WEEK_FAULTS: &str = r#"{
  "topology": { "nsfnet": { "ots_per_node": 8, "regens_per_node": 3 } },
  "deterministic": true,
  "tenants": [
    { "name": "continental-cloud", "quota_gbps": 200 }
  ],
  "otn_switches": ["Lincoln", "Champaign"],
  "trunks": [["Lincoln", "Champaign"]],
  "events": [
    { "at_secs": 0,      "do": { "wavelength": { "tenant": 0, "from": "Seattle", "to": "Princeton", "gbps": 10 } } },
    { "at_secs": 0,      "do": { "wavelength": { "tenant": 0, "from": "PaloAlto", "to": "Atlanta", "gbps": 10 } } },
    { "at_secs": 0,      "do": { "protected_wavelength": { "tenant": 0, "from": "Houston", "to": "AnnArbor", "gbps": 10 } } },
    { "at_secs": 120,    "do": { "bundle": { "tenant": 0, "from": "Lincoln", "to": "Champaign", "gbps": 12 } } },
    { "at_secs": 86400,  "do": { "cut_fiber": { "a": "Lincoln", "b": "Champaign" } } },
    { "at_secs": 86400,  "do": { "repair": { "a": "Lincoln", "b": "Champaign", "after_secs": 36000 } } },
    { "at_secs": 90000,  "do": "report" },
    { "at_secs": 259200, "do": { "cut_fiber": { "a": "SanDiego", "b": "Houston" } } },
    { "at_secs": 259200, "do": { "repair": { "a": "SanDiego", "b": "Houston", "after_secs": 14400 } } },
    { "at_secs": 345600, "do": { "maintenance": { "a": "Pittsburgh", "b": "Ithaca" } } },
    { "at_secs": 349200, "do": { "end_maintenance": { "a": "Pittsburgh", "b": "Ithaca" } } },
    { "at_secs": 432000, "do": { "reserve": { "tenant": 0, "from": "Seattle", "to": "Princeton", "gbps": 10, "start_secs": 450000, "end_secs": 500000 } } },
    { "at_secs": 604800, "do": "report" }
  ]
}"#;

/// Scrape cadence for both scenarios (seconds of sim time).
pub const SCRAPE_SECS: u64 = 60;

/// One replayed scenario with its NOC state extracted.
pub struct Outcome {
    /// Scenario name (section header in the exposition file).
    pub name: &'static str,
    /// NOC text dashboard (root-cause domains + latency chains).
    pub dashboard: String,
    /// Prometheus-style exposition of every scraped family.
    pub exposition: String,
    /// Per-domain summaries, in deterministic order.
    pub domains: Vec<DomainSummary>,
    /// Completed scrapes.
    pub scrapes: u64,
    /// Secondary alarms suppressed across all domains.
    pub suppressed: u64,
    /// Secondary alarms that resolved to no root (must be 0).
    pub unattributed: u64,
    /// Trace / span ring drop warnings (must be empty).
    pub warnings: Vec<String>,
}

/// One root-cause domain in `BENCH_noc.json`.
#[derive(Serialize)]
pub struct DomainSummary {
    /// Human-readable root cause ("fiber3 cut", "ot9 fault").
    pub cause: String,
    /// Fault injection time (sim seconds).
    pub injected_secs: f64,
    /// Injection → first attributed alarm (detection).
    pub detect_secs: Option<f64>,
    /// Injection → root-cause alarm (localization / notification).
    pub localize_secs: Option<f64>,
    /// Injection → first restoration workflow start.
    pub restore_start_secs: Option<f64>,
    /// Secondary alarms suppressed against this root.
    pub suppressed: u64,
}

/// Per-scenario block of the machine-readable report.
#[derive(Serialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Completed telemetry scrapes.
    pub scrapes: u64,
    /// Root-cause domains opened.
    pub root_causes: u64,
    /// Secondary alarms suppressed (attributed to a root).
    pub suppressed: u64,
    /// Secondary alarms left unattributed (0 in a healthy run).
    pub unattributed: u64,
    /// suppressed / (suppressed + unattributed) × 100.
    pub attribution_pct: f64,
    /// The root-cause domains.
    pub domains: Vec<DomainSummary>,
}

/// The machine-readable report written to `BENCH_noc.json`.
#[derive(Serialize)]
pub struct NocReport {
    /// Common `BENCH_*.json` header.
    pub header: crate::bench_json::BenchHeader,
    /// Report name, fixed to `noc`.
    pub benchmark: String,
    /// Scrape cadence driving both scenarios (seconds).
    pub scrape_secs: u64,
    /// One block per replayed scenario.
    pub scenarios: Vec<ScenarioReport>,
    /// The exposition file written alongside.
    pub exposition_file: String,
}

fn secs_since(t: Option<SimTime>, t0: SimTime) -> Option<f64> {
    t.map(|t| t.saturating_since(t0).as_secs_f64())
}

/// Replay one scenario JSON with the NOC on and extract its state.
fn run_one(name: &'static str, json: &str) -> Outcome {
    let mut spec: ScenarioSpec =
        serde_json::from_str(json).unwrap_or_else(|e| panic!("{name}: bad scenario JSON: {e}"));
    spec.noc_scrape_secs = Some(SCRAPE_SECS);
    let (_, ctl) =
        scenario::run_with(&spec).unwrap_or_else(|e| panic!("{name}: scenario failed: {e}"));
    let mut warnings = Vec::new();
    if let Some(w) = ctl.trace.drop_warning() {
        warnings.push(format!("{name}: {w}"));
    }
    if let Some(w) = ctl.spans.drop_warning() {
        warnings.push(format!("{name}: {w}"));
    }
    let domains = ctl
        .noc
        .domains()
        .map(|(cause, d)| DomainSummary {
            cause: cause.to_string(),
            injected_secs: d.injected_at.saturating_since(SimTime::ZERO).as_secs_f64(),
            detect_secs: secs_since(d.first_alarm_at, d.injected_at),
            localize_secs: secs_since(d.localized_at, d.injected_at),
            restore_start_secs: secs_since(d.restoration_started_at, d.injected_at),
            suppressed: d.suppressed,
        })
        .collect();
    Outcome {
        name,
        dashboard: ctl.noc.dashboard(),
        exposition: ctl.noc.families.expose(),
        domains,
        scrapes: ctl.noc.scrapes(),
        suppressed: ctl.noc.suppressed_total(),
        unattributed: ctl.noc.unattributed(),
        warnings,
    }
}

/// Both scenarios, in a fixed deterministic order.
pub fn outcomes() -> Vec<Outcome> {
    vec![
        run_one("testbed_outage", TESTBED_OUTAGE),
        run_one("backbone_week_faults", BACKBONE_WEEK_FAULTS),
    ]
}

/// Check one scenario's correlation outcome. Every claim the dashboard
/// makes is asserted here; `repro noc` aborts rather than print a
/// dashboard the numbers don't back.
fn check_outcome(o: &Outcome, expected_roots: usize) {
    assert!(
        o.warnings.is_empty(),
        "{}: trace/scrape rings dropped data: {:?}",
        o.name,
        o.warnings
    );
    assert!(o.scrapes > 0, "{}: the scrape engine never ran", o.name);
    assert_eq!(
        o.domains.len(),
        expected_roots,
        "{}: expected {expected_roots} root-cause domain(s)",
        o.name
    );
    // 100 % secondary-alarm attribution: every symptom suppressed
    // against a root, none left dangling.
    assert_eq!(
        o.unattributed, 0,
        "{}: {} secondary alarm(s) escaped correlation",
        o.name, o.unattributed
    );
    assert!(
        o.suppressed > 0,
        "{}: the cascade produced no secondary alarms to suppress",
        o.name
    );
    for d in &o.domains {
        // Detection leads localization: the 50 ms per-span LOS beats the
        // 500 ms span telemetry that names the fiber.
        let detect = d
            .detect_secs
            .unwrap_or_else(|| panic!("{}: {} never detected", o.name, d.cause));
        let localize = d
            .localize_secs
            .unwrap_or_else(|| panic!("{}: {} never localized", o.name, d.cause));
        assert!(
            detect <= localize,
            "{}: {} localized before first alarm",
            o.name,
            d.cause
        );
        assert!(
            (detect - 0.05).abs() < 1e-9 && (localize - 0.5).abs() < 1e-9,
            "{}: {} latency chain {detect}/{localize} disagrees with the detection model",
            o.name,
            d.cause
        );
        assert!(
            d.suppressed > 0,
            "{}: {} suppressed nothing",
            o.name,
            d.cause
        );
    }
    // At least one domain must reach restoration (unprotected circuits
    // crossed every injected cut in both scenarios).
    assert!(
        o.domains.iter().any(|d| d.restore_start_secs.is_some()),
        "{}: no restoration was attributed to any root cause",
        o.name
    );
}

/// Run both scenarios, verify correlation, and build the report plus the
/// concatenated exposition text.
pub fn build(outcomes: &[Outcome]) -> (NocReport, String) {
    let expected_roots = [1usize, 2];
    let mut exposition = String::new();
    let mut scenarios = Vec::new();
    for (o, roots) in outcomes.iter().zip(expected_roots) {
        check_outcome(o, roots);
        exposition.push_str(&format!("# scenario: {}\n", o.name));
        exposition.push_str(&o.exposition);
        let denom = o.suppressed + o.unattributed;
        scenarios.push(ScenarioReport {
            name: o.name.to_string(),
            scrapes: o.scrapes,
            root_causes: o.domains.len() as u64,
            suppressed: o.suppressed,
            unattributed: o.unattributed,
            attribution_pct: if denom == 0 {
                100.0
            } else {
                100.0 * o.suppressed as f64 / denom as f64
            },
            domains: o
                .domains
                .iter()
                .map(|d| DomainSummary {
                    cause: d.cause.clone(),
                    injected_secs: d.injected_secs,
                    detect_secs: d.detect_secs,
                    localize_secs: d.localize_secs,
                    restore_start_secs: d.restore_start_secs,
                    suppressed: d.suppressed,
                })
                .collect(),
        });
    }
    for s in &scenarios {
        assert!(
            (s.attribution_pct - 100.0).abs() < f64::EPSILON,
            "{}: attribution below 100 %",
            s.name
        );
    }
    let report = NocReport {
        header: crate::bench_json::BenchHeader::new("noc", "default"),
        benchmark: "noc".to_string(),
        scrape_secs: SCRAPE_SECS,
        scenarios,
        exposition_file: String::new(),
    };
    (report, exposition)
}

/// Render the human-readable summary: one dashboard per scenario.
fn render(report: &NocReport, outcomes: &[Outcome]) -> String {
    let mut out = String::from(
        "NOC — multi-layer telemetry + cross-layer alarm correlation\n\
         (every dashboard row is asserted: 100 % secondary-alarm attribution,\n\
          latency chain per the detection model, zero ring drops)\n",
    );
    for o in outcomes {
        out.push_str(&format!("\n── {} ──\n", o.name));
        out.push_str(&o.dashboard);
    }
    let series: usize = outcomes
        .iter()
        .map(|o| o.exposition.lines().filter(|l| !l.starts_with('#')).count())
        .sum();
    out.push_str(&format!(
        "\n{} scenario(s), {} scrapes @ {} s cadence, {} exposed series",
        report.scenarios.len(),
        report.scenarios.iter().map(|s| s.scrapes).sum::<u64>(),
        report.scrape_secs,
        series,
    ));
    out
}

/// Run both scenarios, write `BENCH_noc.json` and `noc_exposition.txt`,
/// and return the human-readable summary.
pub fn emit(bench_path: &str, exposition_path: &str) -> String {
    let outcomes = outcomes();
    let (mut report, exposition) = build(&outcomes);
    report.exposition_file = exposition_path.to_string();
    std::fs::write(exposition_path, &exposition).expect("write exposition");
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(bench_path, &json).expect("write BENCH_noc.json");
    let mut out = render(&report, &outcomes);
    out.push_str(&format!("\nwrote {bench_path} and {exposition_path}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_scenarios_attribute_every_secondary_alarm() {
        let outcomes = outcomes();
        let (report, exposition) = build(&outcomes);
        assert_eq!(report.scenarios.len(), 2);
        for s in &report.scenarios {
            assert_eq!(s.unattributed, 0, "{}", s.name);
            assert!((s.attribution_pct - 100.0).abs() < f64::EPSILON);
        }
        // The exposition covers every layer of the stack.
        for family in [
            "noc_degree_lit_lambdas",
            "noc_degree_fragmentation",
            "noc_power_margin_db",
            "noc_ems_queue_depth",
            "noc_otn_fabric_gbps",
            "noc_trunk_fill",
            "noc_connections",
            "noc_reservations",
            "noc_detect_secs",
            "noc_alarms_suppressed_total",
        ] {
            assert!(exposition.contains(family), "exposition lacks {family}");
        }
    }

    #[test]
    fn two_runs_are_byte_identical() {
        let a = build(&outcomes());
        let b = build(&outcomes());
        assert_eq!(a.1, b.1, "exposition must be deterministic");
        let ja = serde_json::to_string_pretty(&a.0).unwrap();
        let jb = serde_json::to_string_pretty(&b.0).unwrap();
        assert_eq!(ja, jb, "BENCH_noc.json must be deterministic");
    }
}
