//! `repro slo` — the fleet observability plane
//! (`BENCH_slo.json` + `slo_exposition.txt`).
//!
//! Drives the same generated-plant sweep as `repro scale`
//! (14 → 100 → 300 → 600 ROADMs; `SCALE_SWEEP=reduced` runs
//! 14 → 100 → 200), but with the full telemetry stack engaged per cell:
//!
//! - spans on, every `conn.setup` root scored against the setup SLO and
//!   run through a [`TailSampler`] (slowest-N + every SLO violator per
//!   window) so the bounded recorder never silently saturates;
//! - a per-cell `FamilyRegistry` with an exemplar-carrying setup-latency
//!   histogram (exemplar `span_id`s must resolve into the sampler's
//!   retained trace set — asserted per cell);
//! - route-cache counters exported into the cell registry, so the fleet
//!   exposition carries them per region;
//! - every cell absorbed into one [`TelemetryRollup`] keyed by region,
//!   and a fleet [`SloEngine`] evaluated into per-region error budgets.
//!
//! Every point runs telemetry-off first and asserts per-cell
//! `state_digest_crc()` equality with the telemetry-on run — observing
//! the fleet must not change it. The wall-clock delta between the two
//! runs is the measured telemetry overhead (reported, never golden).
//!
//! The NSFNET fault week (`repro noc`'s scenario) then feeds the
//! availability and restoration SLOs: per-connection outage intervals
//! are reconstructed exactly at scenario barriers (outages open and
//! close only inside scenario events, so `outage_total` deltas between
//! barriers recover the precise intervals), sampled into per-tenant
//! per-minute availability events, and scanned for multi-window
//! burn-rate alerts. Each alert is handed to the NOC for fault
//! attribution — the page fired during the Lincoln–Champaign cut must
//! attribute to the fiber, closing the alert → root-cause loop.

use std::collections::{BTreeMap, BTreeSet};

use griphon::rwa::RegionMap;
use griphon::{Controller, ControllerConfig, RootCause, SloEngine, SloSpec, TelemetryRollup};
use photonic::{generate, GeneratedPlant, GeneratorConfig, LineRate, RoadmId};
use serde::Serialize;
use simcore::metrics::FamilyRegistry;
use simcore::{
    DataRate, SimDuration, SimRng, SimTime, TailSampleConfig, TailSampleStats, TailSampler,
};

use crate::experiments::{parallel_cells_with, repro_threads};
use crate::noc_target::BACKBONE_WEEK_FAULTS;
use crate::scenario::{self, ScenarioSpec};

/// The default sweep: paper scale to continental scale.
const FULL_SWEEP: &[usize] = &[14, 100, 300, 600];
/// The `SCALE_SWEEP=reduced` sweep CI runs on every push.
const REDUCED_SWEEP: &[usize] = &[14, 100, 200];

/// Hot endpoint pairs / waves / intents per wave. Lighter than the
/// scale sweep (the point here is the telemetry plane, not raw
/// throughput), but the same shape: skewed hot pairs, one quarter
/// crossing regions, admitted in group-committed waves.
const HOT_PAIRS: usize = 4;
const WAVES: usize = 6;
const WAVE_INTENTS: usize = 16;

/// Exemplars retained per setup-latency histogram, and non-violator
/// traces retained per sampler window.
const EXEMPLAR_CAPACITY: usize = 4;
const KEEP_SLOWEST: usize = 4;

/// Setup-latency SLO threshold. Table 2 puts the worst measured 3-hop
/// GMPLS setup at 70.94 s; continental cross-region paths add gateway
/// hops on top, so the fleet objective is "99% of setups under 100 s"
/// and the tail above it is exactly what the sampler must retain.
const SETUP_THRESHOLD_SECS: f64 = 100.0;

/// The sweep's fleet SLO catalogue (per-region scopes).
fn fleet_specs() -> Vec<SloSpec> {
    vec![SloSpec {
        name: "setup_latency",
        objective: 0.99,
        threshold_secs: SETUP_THRESHOLD_SECS,
    }]
}

/// The fault week's SLO catalogue: connection availability per tenant
/// (sla.rs's four-nines objective, minute-sampled) and restoration
/// onset within the NOC's 120 s detect→restore budget.
fn week_specs() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "availability",
            objective: 0.9999,
            threshold_secs: 0.0,
        },
        SloSpec {
            name: "restoration_start",
            objective: 0.99,
            threshold_secs: 120.0,
        },
    ]
}

/// Deterministic per-point seed, shared with the test hooks.
pub fn point_seed(target: usize) -> u64 {
    0x510C_0DE0u64 + target as u64
}

/// One workload cell: a region's intent list.
struct Cell {
    region: usize,
    intents: Vec<(RoadmId, RoadmId)>,
}

/// What a telemetry-on cell run carries back to the rollup.
struct CellTelemetry {
    families: FamilyRegistry,
    /// `(end, duration)` of every completed `conn.setup` root, in
    /// drain order.
    setups: Vec<(SimTime, SimDuration)>,
    sampler: TailSampleStats,
    exemplars: usize,
    span_dropped: u64,
}

/// One cell run: the digest always, the telemetry only when enabled.
struct CellRun {
    digest: u32,
    telemetry: Option<CellTelemetry>,
}

/// Same skewed hot-pair construction as the scale sweep, fewer intents.
fn build_cells(plant: &GeneratedPlant, seed: u64) -> Vec<Cell> {
    let regions = plant.interior.len();
    (0..regions)
        .map(|r| {
            let mut rng = SimRng::new(seed).fork(r as u64 + 1);
            let mine = &plant.interior[r];
            let peer = &plant.interior[(r + 1) % regions];
            let mut pairs: Vec<(RoadmId, RoadmId)> = Vec::with_capacity(HOT_PAIRS);
            for p in 0..HOT_PAIRS {
                let a = *rng.choose(mine);
                let b = if p % 4 == 3 {
                    *rng.choose(peer)
                } else {
                    *rng.choose(mine)
                };
                if a == b {
                    pairs.push((a, plant.gateways[r]));
                } else {
                    pairs.push((a, b));
                }
            }
            let intents = (0..WAVES * WAVE_INTENTS)
                .map(|i| pairs[i % HOT_PAIRS])
                .collect();
            Cell { region: r, intents }
        })
        .collect()
}

/// Run one cell with or without telemetry. Pure function of
/// `(plant, cell, seed, telemetry)`; the digest must not depend on the
/// `telemetry` flag — that is the point's on/off identity assert.
fn run_cell(plant: &GeneratedPlant, cell: &Cell, seed: u64, telemetry: bool) -> CellRun {
    let cell_seed = seed ^ (cell.region as u64) << 32;
    let cfg = ControllerConfig {
        seed: cell_seed,
        ems: photonic::EmsProfile::calibrated_deterministic(),
        equalization: photonic::EqualizationModel::calibrated_deterministic(),
        ..ControllerConfig::default()
    };
    let mut ctl = Controller::new(plant.net.clone(), cfg);
    ctl.install_region_map(RegionMap::new(plant.region_of.clone()))
        .expect("generated plants satisfy the single-gateway invariant");
    let customer = ctl.register_tenant("slo", DataRate::from_gbps(1_000_000));
    if telemetry {
        ctl.spans.set_enabled(true);
    }
    let mut sampler = TailSampler::new(TailSampleConfig {
        window: SimDuration::from_mins(5),
        keep_slowest: KEEP_SLOWEST,
        slow_threshold: Some(SimDuration::from_secs_f64(SETUP_THRESHOLD_SECS)),
    });
    let mut setups: Vec<(SimTime, SimDuration)> = Vec::new();
    for wave in cell.intents.chunks(WAVE_INTENTS) {
        let (ids, _) = ctl.journal_batch(|c| {
            let mut ids = Vec::with_capacity(wave.len());
            for &(a, b) in wave {
                if let Ok(id) = c.request_wavelength(customer, a, b, LineRate::Gbps10) {
                    ids.push(id);
                }
            }
            ids
        });
        ctl.run_until_idle();
        let (_, _) = ctl.journal_batch(|c| {
            for id in &ids {
                let _ = c.request_teardown(*id);
            }
        });
        ctl.run_until_idle();
        if telemetry {
            // Periodic drain, exactly the fleet-agent cadence: score
            // roots against the SLO, then let the tail sampler decide
            // which whole traces survive.
            let batch = ctl.spans.take_spans();
            for s in &batch {
                if s.parent.is_none() && s.name == "conn.setup" {
                    if let (Some(end), Some(d)) = (s.end, s.duration()) {
                        setups.push((end, d));
                    }
                }
            }
            sampler.ingest(&batch);
        }
    }
    let digest = ctl.state_digest_crc();
    let telemetry = telemetry.then(|| {
        let span_dropped = ctl.spans.dropped();
        let mut families = FamilyRegistry::new();
        {
            let h = families.histogram("slo_setup_seconds", &[]);
            h.enable_exemplars(cell_seed, EXEMPLAR_CAPACITY);
            for &(_, d) in &setups {
                h.record(d.as_secs_f64());
            }
        }
        let stats = sampler.stats();
        let kept: BTreeSet<u64> = sampler.kept_root_ids().into_iter().collect();
        let spans = sampler.into_spans();
        {
            // Link exemplars only from traces the sampler retained, so
            // every exemplar's span_id resolves to a kept trace.
            let h = families.histogram("slo_setup_seconds", &[]);
            for s in spans
                .iter()
                .filter(|s| s.parent.is_none() && s.name == "conn.setup")
            {
                if let Some(d) = s.duration() {
                    h.link_exemplar(d.as_secs_f64(), s.id.index() as u64, &[]);
                }
            }
        }
        let exemplar_ids: Vec<u64> = families
            .get_histogram("slo_setup_seconds", &[])
            .expect("histogram was just created")
            .exemplars()
            .iter()
            .map(|e| e.span_id)
            .collect();
        for id in &exemplar_ids {
            assert!(
                kept.contains(id),
                "exemplar span_id {id} does not resolve to a sampled trace"
            );
        }
        families
            .counter("slo_setups_total", &[])
            .add(setups.len() as u64);
        families
            .gauge("slo_sampler_roots_seen", &[])
            .set(stats.roots_seen as f64);
        families
            .gauge("slo_sampler_roots_kept", &[])
            .set(stats.roots_kept as f64);
        ctl.export_route_cache_metrics(&mut families);
        CellTelemetry {
            families,
            setups,
            sampler: stats,
            exemplars: exemplar_ids.len(),
            span_dropped,
        }
    });
    CellRun { digest, telemetry }
}

/// Fold one telemetry-on outcome set into the fleet view: the rollup
/// (cells relabelled by region, route cache and sampler gauges
/// included) plus an SLO engine fed every region's setup stream, with
/// the engine's budget/burn gauges absorbed back into the rollup.
fn fleet_of(cells: &[Cell], on: &[CellRun]) -> (TelemetryRollup, SloEngine, SimTime) {
    let mut rollup = TelemetryRollup::new();
    let mut engine = SloEngine::new(fleet_specs());
    let mut sim_end = SimTime::ZERO;
    for (cell, run) in cells.iter().zip(on) {
        let tel = run
            .telemetry
            .as_ref()
            .expect("fleet_of consumes telemetry-on outcomes");
        let region = format!("region{}", cell.region);
        rollup.absorb(&region, &tel.families);
        let mut stream = tel.setups.clone();
        stream.sort();
        for (end, d) in stream {
            engine.observe_latency("setup_latency", &region, end, d);
            sim_end = sim_end.max(end);
        }
    }
    let mut slo_reg = FamilyRegistry::new();
    engine.export(sim_end, &mut slo_reg);
    rollup.absorb_global(&slo_reg);
    (rollup, engine, sim_end)
}

/// One sweep point of the SLO report.
#[derive(Debug, Clone, Serialize)]
pub struct SloPoint {
    /// Plant size in ROADMs.
    pub roadms: usize,
    /// Regions (== workload cells).
    pub regions: usize,
    /// Completed setups scored against the SLO.
    pub setups: u64,
    /// Setups over the threshold.
    pub bad_setups: u64,
    /// Smallest per-region error-budget fraction remaining.
    pub worst_budget_remaining: f64,
    /// Exemplars retained across all region histograms.
    pub exemplars: usize,
    /// Root spans seen by the tail samplers.
    pub sampler_roots_seen: u64,
    /// Root traces retained.
    pub sampler_roots_kept: u64,
    /// SLO-violating traces retained (always kept).
    pub sampler_violators_kept: u64,
    /// Spans seen across samplers.
    pub sampler_spans_seen: u64,
    /// Spans retained across samplers.
    pub sampler_spans_kept: u64,
    /// Wall-clock seconds of the telemetry-off run.
    pub off_secs: f64,
    /// Wall-clock seconds of the telemetry-on run.
    pub on_secs: f64,
    /// Measured telemetry overhead, percent of the off run.
    pub overhead_pct: f64,
    /// CRC-32C over the per-cell digests (identical on/off — asserted).
    pub digest_crc: u32,
}

/// The fault-week block of the SLO report.
#[derive(Debug, Clone, Serialize)]
pub struct WeekSummary {
    /// Minutes sampled per tenant availability stream.
    pub minutes: u64,
    /// Page-severity burn alerts raised.
    pub page_alerts: usize,
    /// Ticket-severity burn alerts raised.
    pub ticket_alerts: usize,
    /// Alerts the NOC attributed to an open fault domain.
    pub attributed_alerts: usize,
    /// Aggregate availability across tenants' connections.
    pub availability: f64,
    /// The same, as nines.
    pub availability_nines: String,
    /// Restoration-onset events scored.
    pub restoration_events: u64,
    /// Error budgets per `(slo, scope)` stream at week end.
    pub budgets: Vec<BudgetRow>,
}

/// One `(slo, scope)` budget row.
#[derive(Debug, Clone, Serialize)]
pub struct BudgetRow {
    /// The objective's name.
    pub slo: String,
    /// The stream's scope label.
    pub scope: String,
    /// Observations ingested.
    pub events: u64,
    /// Observations that were bad.
    pub bad: u64,
    /// Fraction of the error budget unspent (negative = overspent).
    pub budget_remaining: f64,
}

/// The `BENCH_slo.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct SloReport {
    /// Common `BENCH_*.json` header.
    pub header: crate::bench_json::BenchHeader,
    /// Report identifier.
    pub benchmark: String,
    /// Sweep profile (`full` or `reduced`).
    pub sweep: String,
    /// Worker threads used for the cell fan-out.
    pub threads: usize,
    /// The SLO catalogue (name, objective, threshold seconds).
    pub specs: Vec<(String, f64, f64)>,
    /// One entry per plant size.
    pub points: Vec<SloPoint>,
    /// The NSFNET fault-week evaluation.
    pub week: WeekSummary,
}

/// Run one sweep point; panics if telemetry changes any cell digest.
fn run_point(target: usize, threads: usize, out: &mut String) -> (SloPoint, String) {
    let seed = point_seed(target);
    let cfg = GeneratorConfig {
        ots_per_node: 8,
        ..GeneratorConfig::with_target_roadms(target, seed)
    };
    let plant = generate(&cfg);
    let cells = build_cells(&plant, seed);

    let t0 = std::time::Instant::now();
    let off = parallel_cells_with(threads, cells.iter().collect(), |c| {
        run_cell(&plant, c, seed, false)
    });
    let off_secs = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let on = parallel_cells_with(threads, cells.iter().collect(), |c| {
        run_cell(&plant, c, seed, true)
    });
    let on_secs = t1.elapsed().as_secs_f64();

    let d_off: Vec<u32> = off.iter().map(|r| r.digest).collect();
    let d_on: Vec<u32> = on.iter().map(|r| r.digest).collect();
    assert_eq!(
        d_off, d_on,
        "telemetry changed controller outcomes at {target} ROADMs"
    );
    let mut crc = simcore::Crc32c::new();
    for d in &d_off {
        crc.update(&d.to_le_bytes());
    }
    let digest_crc = crc.finish();
    for run in &on {
        let tel = run.telemetry.as_ref().expect("telemetry-on run");
        assert_eq!(
            tel.span_dropped, 0,
            "span recorder silently saturated at {target} ROADMs"
        );
    }

    let (rollup, engine, sim_end) = fleet_of(&cells, &on);
    let statuses = engine.evaluate(sim_end);
    let setups: u64 = statuses.iter().map(|s| s.events).sum();
    let bad_setups: u64 = statuses.iter().map(|s| s.bad).sum();
    let worst_budget = statuses
        .iter()
        .map(|s| s.budget_remaining)
        .fold(1.0f64, f64::min);
    fn tel(r: &CellRun) -> &CellTelemetry {
        r.telemetry.as_ref().expect("on run")
    }
    let exemplars: usize = on.iter().map(|r| tel(r).exemplars).sum();
    let sum =
        |f: fn(&TailSampleStats) -> u64| -> u64 { on.iter().map(|r| f(&tel(r).sampler)).sum() };
    let overhead_pct = if off_secs > 0.0 {
        100.0 * (on_secs - off_secs) / off_secs
    } else {
        0.0
    };
    let point = SloPoint {
        roadms: plant.net.roadm_count(),
        regions: cells.len(),
        setups,
        bad_setups,
        worst_budget_remaining: worst_budget,
        exemplars,
        sampler_roots_seen: sum(|s| s.roots_seen),
        sampler_roots_kept: sum(|s| s.roots_kept),
        sampler_violators_kept: sum(|s| s.violators_kept),
        sampler_spans_seen: sum(|s| s.spans_seen),
        sampler_spans_kept: sum(|s| s.spans_kept),
        off_secs,
        on_secs,
        overhead_pct,
        digest_crc,
    };
    out.push_str(&format!(
        "[{:>3} roadms] {} regions | {} setups, {} over {:.0}s | worst budget {:+.2} | \
         {} exemplars | sampler kept {}/{} roots | overhead {:+.1}% | \
         telemetry on/off digests: identical (crc 0x{:08x})\n",
        point.roadms,
        point.regions,
        point.setups,
        point.bad_setups,
        SETUP_THRESHOLD_SECS,
        point.worst_budget_remaining,
        point.exemplars,
        point.sampler_roots_kept,
        point.sampler_roots_seen,
        point.overhead_pct,
        point.digest_crc,
    ));
    (point, rollup.expose())
}

/// Per-cell digests plus the fleet exposition for one point — the hook
/// `tests/determinism.rs` and the thread-determinism gate use: the pair
/// must be identical for any worker count.
pub fn fleet_fingerprint(target: usize, seed: u64, threads: usize) -> (Vec<u32>, String) {
    let cfg = GeneratorConfig {
        ots_per_node: 8,
        ..GeneratorConfig::with_target_roadms(target, seed)
    };
    let plant = generate(&cfg);
    let cells = build_cells(&plant, seed);
    let on = parallel_cells_with(threads, cells.iter().collect(), |c| {
        run_cell(&plant, c, seed, true)
    });
    let digests = on.iter().map(|r| r.digest).collect();
    let (rollup, _, _) = fleet_of(&cells, &on);
    (digests, rollup.expose())
}

/// Per-cell digests with telemetry on or off — the on/off byte-identity
/// hook for `tests/determinism.rs`.
pub fn telemetry_digests(target: usize, seed: u64, threads: usize, telemetry: bool) -> Vec<u32> {
    let cfg = GeneratorConfig {
        ots_per_node: 8,
        ..GeneratorConfig::with_target_roadms(target, seed)
    };
    let plant = generate(&cfg);
    let cells = build_cells(&plant, seed);
    parallel_cells_with(threads, cells.iter().collect(), |c| {
        run_cell(&plant, c, seed, telemetry).digest
    })
}

/// Exact per-connection outage intervals, reconstructed at scenario
/// barriers. Outages open and close only inside scenario events (fault
/// injection, repair, maintenance, protection switches), and `drive`
/// invokes the barrier after every event — so between consecutive
/// barriers at most one interval closes per connection, and the
/// `outage_total` delta dates it exactly.
#[derive(Default)]
struct OutageTrack {
    last_total: SimDuration,
    open: Option<SimTime>,
    intervals: Vec<(SimTime, SimTime)>,
}

/// Drive the NSFNET fault week and evaluate the week SLO catalogue.
/// Returns the week's global registry (SLA gauges + SLO gauges + alert
/// counters), the summary block, and the human-readable alert lines.
fn run_week() -> (FamilyRegistry, WeekSummary, String) {
    let mut spec: ScenarioSpec =
        serde_json::from_str(BACKBONE_WEEK_FAULTS).expect("week scenario parses");
    spec.noc_scrape_secs = Some(crate::noc_target::SCRAPE_SECS);
    let mut ctl = scenario::genesis(&spec);
    let mut tracks: BTreeMap<griphon::ConnectionId, OutageTrack> = BTreeMap::new();
    {
        let mut barrier = |ctl: &mut Controller| {
            for c in ctl.connections() {
                let tr = tracks.entry(c.id).or_default();
                if c.outage_total > tr.last_total {
                    let delta = c.outage_total - tr.last_total;
                    let start = tr
                        .open
                        .take()
                        .expect("an outage closed that no barrier saw open");
                    tr.intervals.push((start, start + delta));
                    tr.last_total = c.outage_total;
                }
                if let Some(s) = c.outage_since {
                    tr.open = Some(s);
                }
            }
        };
        scenario::drive(&spec, &mut ctl, &mut barrier).expect("week scenario runs");
    }
    let week_end = ctl.now();
    for tr in tracks.values_mut() {
        if let Some(s) = tr.open.take() {
            tr.intervals.push((s, week_end));
        }
    }

    // Per-tenant minute-sampled availability: a minute is bad when any
    // of the tenant's connections was dark at any instant inside it.
    let tenants: Vec<(griphon::CustomerId, String)> =
        ctl.tenants.iter().map(|t| (t.id, t.name.clone())).collect();
    let owner: BTreeMap<griphon::ConnectionId, griphon::CustomerId> =
        ctl.connections().map(|c| (c.id, c.customer)).collect();
    let minutes = week_end.as_nanos() / SimDuration::from_mins(1).as_nanos();
    let mut engine = SloEngine::new(week_specs());
    for (cid, name) in &tenants {
        let outages: Vec<&(SimTime, SimTime)> = tracks
            .iter()
            .filter(|(conn, _)| owner.get(conn) == Some(cid))
            .flat_map(|(_, tr)| tr.intervals.iter())
            .collect();
        for m in 1..=minutes {
            let lo = SimTime::from_secs((m - 1) * 60);
            let hi = SimTime::from_secs(m * 60);
            let bad = outages.iter().any(|&&(a, b)| a < hi && b > lo);
            engine.observe("availability", name, hi, !bad);
        }
    }

    // Restoration onset against the NOC's 120 s detect→restore budget.
    let mut restorations: Vec<(SimTime, SimDuration)> = ctl
        .noc
        .domains()
        .filter_map(|(_, d)| {
            d.restoration_started_at
                .map(|rs| (rs, rs.saturating_since(d.injected_at)))
        })
        .collect();
    restorations.sort();
    let restoration_events = restorations.len() as u64;
    for (at, lat) in restorations {
        engine.observe_latency("restoration_start", "noc", at, lat);
    }

    // Scan for burn alerts at scrape cadence and close the loop: every
    // alert goes to the NOC for fault attribution.
    let alerts = engine.scan_alerts(SimDuration::from_secs(60), week_end);
    let mut global = FamilyRegistry::new();
    let mut text = String::new();
    let mut attributed = 0usize;
    for a in &alerts {
        let cause = ctl.noc.on_slo_alert(a.slo, a.severity, a.at);
        let label = match cause {
            Some(RootCause::FiberCut(_)) => "fiber_cut",
            Some(RootCause::OtFault(_)) => "ot_fault",
            None => "unknown",
        };
        if cause.is_some() {
            attributed += 1;
        }
        global
            .counter(
                "slo_alerts_total",
                &[("cause", label), ("severity", a.severity), ("slo", a.slo)],
            )
            .incr();
        text.push_str(&format!(
            "[{}] {} alert: {}/{} burning {:.0}x/{:.0}x -> {}\n",
            a.at,
            a.severity,
            a.slo,
            a.scope,
            a.short_burn,
            a.long_burn,
            cause.map_or_else(|| "unattributed".to_string(), |c| c.to_string()),
        ));
    }
    let pages = alerts.iter().filter(|a| a.severity == "page").count();
    let tickets = alerts.len() - pages;
    assert!(pages >= 1, "the week's fiber cuts must page: {alerts:?}");
    assert_eq!(
        attributed,
        alerts.len(),
        "every week alert must attribute to an open fault domain"
    );

    // SLA gauges per tenant, SLO gauges per stream — the week half of
    // the fleet exposition.
    let mut availability = 1.0f64;
    for (cid, name) in &tenants {
        let report = ctl.sla_report(*cid);
        availability = availability.min(report.aggregate);
        report.export(name, &mut global);
    }
    assert!(
        availability > 0.999 && availability < 1.0,
        "two ~66 s restorations over a week should land just under \
         four nines, got {availability}"
    );
    engine.export(week_end, &mut global);

    let budgets = engine
        .evaluate(week_end)
        .into_iter()
        .map(|s| BudgetRow {
            slo: s.slo.to_string(),
            scope: s.scope,
            events: s.events,
            bad: s.bad,
            budget_remaining: s.budget_remaining,
        })
        .collect();
    let week = WeekSummary {
        minutes,
        page_alerts: pages,
        ticket_alerts: tickets,
        attributed_alerts: attributed,
        availability,
        availability_nines: griphon::nines(availability),
        restoration_events,
        budgets,
    };
    text.push_str(&format!(
        "week: {} page / {} ticket alerts, {}/{} attributed | availability {:.6} ({})\n",
        pages,
        tickets,
        attributed,
        alerts.len(),
        availability,
        week.availability_nines,
    ));
    (global, week, text)
}

/// The deterministic exposition text the golden file pins: the smallest
/// sweep point's fleet rollup plus the fault week's registry. No wall
/// clock anywhere, so the bytes are a pure function of the seeds.
fn compose_exposition(point14: &str, week: &str) -> String {
    format!(
        "# fleet rollup: 14-roadm sweep point\n{point14}\
         # fleet rollup: nsfnet fault week\n{week}"
    )
}

/// Recompute the golden exposition from scratch — the hook
/// `tests/slo_golden.rs` compares against `tests/golden/slo_exposition.txt`.
pub fn golden_exposition() -> String {
    let (_, point14) = fleet_fingerprint(14, point_seed(14), repro_threads());
    let (week_reg, _, _) = run_week();
    compose_exposition(&point14, &week_reg.expose())
}

/// Run the sweep + week, write `BENCH_slo.json` and the exposition, and
/// return the summary text.
pub fn emit(bench_path: &str, exposition_path: &str) -> String {
    let reduced = std::env::var("SCALE_SWEEP").as_deref() == Ok("reduced");
    let sweep = if reduced { REDUCED_SWEEP } else { FULL_SWEEP };
    let threads = repro_threads();
    let mut out = String::new();
    let mut expositions = Vec::new();
    let points: Vec<SloPoint> = sweep
        .iter()
        .map(|&t| {
            let (p, exp) = run_point(t, threads, &mut out);
            expositions.push(exp);
            p
        })
        .collect();

    // The sampler/rollup pipeline must not care how cells are packed
    // onto workers: same digests, byte-identical exposition for 1/2/8
    // threads at the probe point.
    let probe = sweep[1];
    let base = fleet_fingerprint(probe, point_seed(probe), 1);
    for th in [2usize, 8] {
        assert_eq!(
            fleet_fingerprint(probe, point_seed(probe), th),
            base,
            "fleet telemetry diverged at {th} threads"
        );
    }
    out.push_str(&format!(
        "sampler + rollup at {probe} roadms deterministic across 1/2/8 threads: identical\n"
    ));

    let (week_reg, week, week_text) = run_week();
    out.push_str(&week_text);

    let exposition = compose_exposition(&expositions[0], &week_reg.expose());
    std::fs::write(exposition_path, &exposition).expect("write slo exposition");

    let report = SloReport {
        header: crate::bench_json::BenchHeader::new(
            "slo",
            if reduced { "reduced" } else { "full" },
        ),
        benchmark: "slo".into(),
        sweep: if reduced { "reduced" } else { "full" }.into(),
        threads,
        specs: fleet_specs()
            .iter()
            .chain(week_specs().iter())
            .map(|s| (s.name.to_string(), s.objective, s.threshold_secs))
            .collect(),
        points,
        week,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(bench_path, &json).expect("write BENCH_slo.json");
    format!("wrote {bench_path} and {exposition_path}\n{out}")
}
