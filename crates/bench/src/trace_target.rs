//! `repro trace` — span-based control-plane tracing.
//!
//! Drives representative control-plane scenarios with span recording
//! enabled, then:
//!
//! 1. exports every recorded span as a Chrome trace-event JSON file
//!    (loadable in Perfetto / `chrome://tracing`), one process per
//!    scenario, one track per workflow;
//! 2. rolls the spans up into a **mechanistic Table 2**: per-phase setup
//!    latency by hop count, reproduced from the instrumented phases —
//!    not from hard-coded constants — and cross-checked against the
//!    end-to-end latencies the controller itself reports;
//! 3. writes the aggregate as machine-readable `BENCH_trace.json`.
//!
//! The invariant this target enforces is *exact tiling*: a workflow's
//! phase spans partition its root span, so per-phase sums equal the
//! controller's reported end-to-end latency to the nanosecond, and the
//! per-hop-count rows reproduce Table 2's shape (EMS + optical settling
//! dominate; latency grows superlinearly with hop count; setup ≫
//! teardown) from the same draws that drove the simulation.

use std::collections::BTreeMap;

use griphon::controller::{Controller, ControllerConfig};
use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork, TestbedIds};
use serde::Serialize;
use simcore::span::{self, RootRollup};
use simcore::{DataRate, SimDuration, Span};

use crate::table;

/// Paper Table 2 means (seconds) at 1/2/3 hops, for the side-by-side
/// column. The breakdown itself is measured, never read from here.
const PAPER_SETUP_SECS: [f64; 3] = [62.48, 65.67, 70.94];

/// One traced scenario: its recorded span stream plus the end-to-end
/// latencies the controller reported through its ordinary bookkeeping,
/// against which the span tree is cross-checked.
pub struct Scenario {
    /// Scenario name (becomes the Chrome-trace process name).
    pub name: &'static str,
    /// Every span the scenario recorded, in creation order.
    pub spans: Vec<Span>,
    /// `(root span name, controller-reported duration)` checks: for each
    /// entry a root span of that name must exist whose phase sum equals
    /// the reported duration exactly.
    pub reported: Vec<(&'static str, SimDuration)>,
    /// Ring-drop warnings surfaced by the scenario's controller.
    pub warnings: Vec<String>,
    /// Spans the bounded recorder refused (0 in a healthy run).
    pub dropped: u64,
}

fn traced_testbed(ots: usize) -> (Controller, TestbedIds) {
    let (net, ids) = PhotonicNetwork::testbed(ots);
    let cfg = ControllerConfig {
        ems: EmsProfile::calibrated_deterministic(),
        equalization: EqualizationModel::calibrated_deterministic(),
        ..ControllerConfig::default()
    };
    let mut ctl = Controller::new(net, cfg);
    ctl.spans.set_enabled(true);
    (ctl, ids)
}

fn drain(ctl: &mut Controller, name: &'static str) -> (Vec<Span>, Vec<String>, u64) {
    let mut warnings = Vec::new();
    if let Some(w) = ctl.spans.drop_warning() {
        warnings.push(format!("{name}: {w}"));
    }
    if let Some(w) = ctl.trace.drop_warning() {
        warnings.push(format!("{name}: {w}"));
    }
    (ctl.spans.take_spans(), warnings, ctl.spans.dropped())
}

/// One wavelength setup + teardown along a pinned `hops`-hop route on
/// the Fig. 4 testbed (routes pinned exactly as the paper pinned paths
/// I–IV, I–III–IV, I–II–III–IV: by removing the shorter alternatives).
pub fn setup_scenario(hops: usize) -> Scenario {
    let name: &'static str = match hops {
        1 => "setup-1hop",
        2 => "setup-2hop",
        3 => "setup-3hop",
        _ => panic!("testbed offers 1-3 hop routes"),
    };
    let (mut ctl, ids) = traced_testbed(4);
    match hops {
        1 => {}
        2 => {
            ctl.net.fiber_mut(ids.f_i_iv).cut_at(0);
        }
        3 => {
            ctl.net.fiber_mut(ids.f_i_iv).cut_at(0);
            ctl.net.fiber_mut(ids.f_i_iii).cut_at(0);
        }
        _ => unreachable!(),
    }
    let csp = ctl.tenants.register("lab", DataRate::from_gbps(100));
    let id = ctl
        .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
        .expect("plannable");
    ctl.run_until_idle();
    let conn = ctl.connection(id).unwrap();
    assert_eq!(conn.wavelength_plan().unwrap().hops(), hops);
    let setup = conn.activated_at.unwrap().since(conn.requested_at);
    let t0 = ctl.now();
    ctl.request_teardown(id).unwrap();
    ctl.run_until_idle();
    let teardown = ctl.now().since(t0);
    let (spans, warnings, dropped) = drain(&mut ctl, name);
    Scenario {
        name,
        spans,
        reported: vec![("conn.setup", setup), ("conn.teardown", teardown)],
        warnings,
        dropped,
    }
}

/// A fiber cut hitting two circuits: serialized restorations whose
/// second root carries genuine EMS queue wait.
pub fn restoration_scenario() -> Scenario {
    let (mut ctl, ids) = traced_testbed(8);
    let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
    for _ in 0..2 {
        ctl.request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
    }
    ctl.run_until_idle();
    ctl.inject_fiber_cut(ids.f_i_iv, 0);
    ctl.run_until_idle();
    let (spans, warnings, dropped) = drain(&mut ctl, "restoration");
    Scenario {
        name: "restoration",
        spans,
        reported: Vec::new(),
        warnings,
        dropped,
    }
}

/// OTN layer: trunk turn-up, a groomed sub-wavelength circuit, and its
/// electronic teardown — the "seconds, not a minute" contrast.
pub fn otn_scenario() -> Scenario {
    let (mut ctl, ids) = traced_testbed(8);
    ctl.add_otn_switch(ids.i, DataRate::from_gbps(320));
    ctl.add_otn_switch(ids.iv, DataRate::from_gbps(320));
    ctl.provision_trunk(ids.i, ids.iv, LineRate::Gbps10)
        .unwrap();
    ctl.run_until_idle();
    let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
    let sub = ctl
        .request_subwavelength(csp, ids.i, ids.iv, otn::ClientSignal::GbE)
        .unwrap();
    let t0 = ctl.now();
    ctl.run_until_idle();
    let sub_setup = ctl.now().since(t0);
    ctl.request_teardown(sub).unwrap();
    ctl.run_until_idle();
    let (spans, warnings, dropped) = drain(&mut ctl, "otn");
    Scenario {
        name: "otn",
        spans,
        reported: vec![("conn.subwl_setup", sub_setup)],
        warnings,
        dropped,
    }
}

/// The cloud scheduler ordering and releasing wavelengths against a
/// bulk-replication backlog: policy decisions as instant spans alongside
/// the setup workflows they trigger.
pub fn policy_scenario() -> Scenario {
    use cloud::scheduler::BodPolicy;
    use cloud::workload::{WorkloadConfig, WorkloadGenerator};

    let horizon = SimDuration::from_hours(24);
    let tick = SimDuration::from_secs(60);
    let cfg = WorkloadConfig {
        bulk_interarrival: SimDuration::from_hours(6),
        bulk_max: simcore::DataSize::from_terabytes(30),
        ..WorkloadConfig::default()
    };
    let mut gen = WorkloadGenerator::new(cfg, 2026);
    let jobs = gen.bulk_jobs(
        cloud::DataCenterId::new(0),
        cloud::DataCenterId::new(1),
        horizon,
    );
    let (mut ctl, ids) = traced_testbed(10);
    let csp = ctl.tenants.register("acme", DataRate::from_gbps(400));
    let _ = BodPolicy {
        max_rate: DataRate::from_gbps(40),
        drain_target: SimDuration::from_hours(1),
        idle_release: SimDuration::from_mins(10),
    }
    .run(&mut ctl, csp, ids.i, ids.iv, jobs, horizon, tick);
    // Close any workflow still in flight at the horizon so every span
    // stream the exporter sees is well-formed.
    ctl.run_until_idle();
    let (spans, warnings, dropped) = drain(&mut ctl, "policy");
    Scenario {
        name: "policy",
        spans,
        reported: Vec::new(),
        warnings,
        dropped,
    }
}

/// All scenarios, in a fixed deterministic order.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        setup_scenario(1),
        setup_scenario(2),
        setup_scenario(3),
        restoration_scenario(),
        otn_scenario(),
        policy_scenario(),
    ]
}

/// Per-hop-count row of the mechanistic Table 2 regeneration.
#[derive(Serialize)]
pub struct HopRow {
    /// Path length in hops.
    pub hops: u64,
    /// Setup workflows aggregated into this row.
    pub count: u64,
    /// Mean per-phase seconds, keyed by phase span name.
    pub phases_secs: BTreeMap<String, f64>,
    /// Sum of the phase means — equals `total_secs` exactly.
    pub phase_sum_secs: f64,
    /// Mean end-to-end setup seconds from the root spans.
    pub total_secs: f64,
    /// The paper's measured mean for this hop count.
    pub paper_secs: f64,
}

/// The machine-readable report written to `BENCH_trace.json`.
#[derive(Serialize)]
pub struct TraceReport {
    /// Common `BENCH_*.json` header.
    pub header: crate::bench_json::BenchHeader,
    /// Report name, fixed to `trace`.
    pub benchmark: String,
    /// Mechanistic Table 2: per-phase setup breakdown by hop count.
    pub table2: Vec<HopRow>,
    /// Mean wavelength teardown seconds (paper: ≈10 s).
    pub teardown_secs: f64,
    /// Mean sub-wavelength (OTN) setup seconds (paper: "seconds").
    pub subwl_setup_secs: f64,
    /// Longest restoration queue wait observed (EMS serialization).
    pub restore_queue_wait_secs: f64,
    /// Policy decision spans recorded (orders + releases).
    pub policy_decisions: u64,
    /// Total spans across all scenarios.
    pub spans_recorded: u64,
    /// Spans dropped by the bounded recorder (0 in a healthy run).
    pub spans_dropped: u64,
    /// The Chrome trace-event file written alongside.
    pub chrome_trace_file: String,
}

fn secs(d: SimDuration) -> f64 {
    d.as_secs_f64()
}

fn mean_secs(total: SimDuration, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        secs(total) / count as f64
    }
}

fn single_rollup(spans: &[Span], root: &str) -> Option<RootRollup> {
    span::rollup(spans, root, None).into_iter().next()
}

/// Cross-check one scenario: the span stream is well-formed, and for
/// every controller-reported latency a root span exists whose phases
/// tile it exactly.
fn check_scenario(s: &Scenario) {
    span::validate(&s.spans).unwrap_or_else(|e| panic!("{}: invalid span stream: {e}", s.name));
    for (root_name, reported) in &s.reported {
        let r = single_rollup(&s.spans, root_name)
            .unwrap_or_else(|| panic!("{}: no {root_name} root span", s.name));
        let per_root_total = SimDuration::from_nanos(r.total.as_nanos() / r.count);
        assert_eq!(
            per_root_total, *reported,
            "{}: {root_name} root span disagrees with the controller's reported latency",
            s.name
        );
        assert_eq!(
            r.phase_sum(),
            r.total,
            "{}: {root_name} phases do not tile the workflow",
            s.name
        );
    }
}

/// Build the report and the Chrome trace from a set of scenarios.
pub fn build(scenarios: &[Scenario]) -> (TraceReport, String) {
    for s in scenarios {
        check_scenario(s);
    }

    // ── mechanistic Table 2: conn.setup rollups grouped by hop count ──
    let mut by_hops: BTreeMap<u64, RootRollup> = BTreeMap::new();
    for s in scenarios {
        for r in span::rollup(&s.spans, "conn.setup", Some("hops")) {
            let row = by_hops.entry(r.group).or_default();
            row.group = r.group;
            row.count += r.count;
            row.total += r.total;
            for (k, p) in r.phases {
                let q = row.phases.entry(k).or_default();
                q.count += p.count;
                q.total += p.total;
            }
        }
    }
    let table2: Vec<HopRow> = by_hops
        .values()
        .map(|r| {
            let phases_secs: BTreeMap<String, f64> = r
                .phases
                .iter()
                .map(|(k, p)| (k.to_string(), mean_secs(p.total, r.count)))
                .collect();
            HopRow {
                hops: r.group,
                count: r.count,
                phase_sum_secs: mean_secs(r.phase_sum(), r.count),
                total_secs: mean_secs(r.total, r.count),
                paper_secs: PAPER_SETUP_SECS
                    .get(r.group as usize - 1)
                    .copied()
                    .unwrap_or(f64::NAN),
                phases_secs,
            }
        })
        .collect();
    // Table 2's qualitative shape, reproduced from instrumented phases:
    // (a) total grows with hop count,
    // (b) growth is superlinear and carried by the equalization phase,
    // (c) EMS bookkeeping + optical settling dominate the total.
    for w in table2.windows(2) {
        assert!(
            w[1].total_secs > w[0].total_secs,
            "setup latency must grow with hop count"
        );
    }
    if table2.len() >= 3 {
        let eq = |r: &HopRow| r.phases_secs.get("phase.equalize").copied().unwrap_or(0.0);
        assert!(
            eq(&table2[2]) - eq(&table2[1]) > eq(&table2[1]) - eq(&table2[0]),
            "equalization increments must grow (superlinear in hops)"
        );
    }
    for r in &table2 {
        let slow = [
            "phase.session",
            "phase.tune",
            "phase.validate",
            "phase.equalize",
        ]
        .iter()
        .filter_map(|k| r.phases_secs.get(*k))
        .sum::<f64>();
        assert!(
            slow > 0.7 * r.total_secs,
            "EMS + optical settling must dominate ({}h: {slow:.2}/{:.2})",
            r.hops,
            r.total_secs
        );
    }

    // ── teardown, sub-λ, restoration, policy aggregates ───────────────
    let mut td_total = SimDuration::ZERO;
    let mut td_count = 0;
    let mut subwl_total = SimDuration::ZERO;
    let mut subwl_count = 0;
    let mut queue_wait = SimDuration::ZERO;
    let mut policy_decisions = 0u64;
    for s in scenarios {
        // Teardown mean is the *wavelength* teardown (paper: ~10 s); the
        // OTN and policy scenarios also tear circuits down, but those are
        // electronic or mixed and would skew the comparison.
        if s.name.starts_with("setup") {
            if let Some(r) = single_rollup(&s.spans, "conn.teardown") {
                td_total += r.total;
                td_count += r.count;
            }
        }
        if let Some(r) = single_rollup(&s.spans, "conn.subwl_setup") {
            subwl_total += r.total;
            subwl_count += r.count;
        }
        for sp in &s.spans {
            if sp.name == "restore.queue_wait" {
                queue_wait = queue_wait.max(sp.duration().unwrap_or(SimDuration::ZERO));
            }
            if sp.name == "policy.order" || sp.name == "policy.release" {
                policy_decisions += 1;
            }
        }
    }
    let teardown_secs = mean_secs(td_total, td_count);
    let subwl_setup_secs = mean_secs(subwl_total, subwl_count);
    assert!(
        td_count > 0 && subwl_count > 0,
        "scenarios must cover teardown and OTN"
    );
    // Setup ≫ teardown ≫ electronic sub-λ setup (paper §3 and §1).
    assert!(
        table2[0].total_secs > 5.0 * teardown_secs,
        "setup must dwarf teardown"
    );
    assert!(
        subwl_setup_secs < teardown_secs,
        "electronic OTN setup must be faster than optical teardown"
    );
    assert!(
        policy_decisions > 0,
        "policy scenario must record scheduler decisions"
    );
    assert!(
        queue_wait >= SimDuration::from_secs(60),
        "serialized restoration must expose ≥ one setup of queue wait"
    );

    // ── Chrome trace export ───────────────────────────────────────────
    let groups: Vec<(&str, &[Span])> = scenarios
        .iter()
        .map(|s| (s.name, s.spans.as_slice()))
        .collect();
    let chrome = span::chrome_trace(&groups);

    let spans_recorded = scenarios.iter().map(|s| s.spans.len() as u64).sum();
    let report = TraceReport {
        header: crate::bench_json::BenchHeader::new("trace", "default"),
        benchmark: "trace".to_string(),
        table2,
        teardown_secs,
        subwl_setup_secs,
        restore_queue_wait_secs: secs(queue_wait),
        policy_decisions,
        spans_recorded,
        spans_dropped: scenarios.iter().map(|s| s.dropped).sum(),
        chrome_trace_file: String::new(),
    };
    (report, chrome)
}

/// Render the human-readable summary table.
fn render(report: &TraceReport, scenarios: &[Scenario]) -> String {
    let phase_cols = [
        ("phase.session", "session"),
        ("phase.fxc", "fxc"),
        ("phase.roadm", "roadm"),
        ("phase.tune", "tune"),
        ("phase.validate", "validate"),
        ("phase.equalize", "equalize"),
    ];
    let mut headers: Vec<&str> = vec!["hops"];
    headers.extend(phase_cols.iter().map(|(_, h)| *h));
    headers.extend_from_slice(&["phase sum", "total", "paper"]);
    let rows: Vec<Vec<String>> = report
        .table2
        .iter()
        .map(|r| {
            let mut row = vec![r.hops.to_string()];
            for (k, _) in phase_cols {
                row.push(format!(
                    "{:.2}",
                    r.phases_secs.get(k).copied().unwrap_or(0.0)
                ));
            }
            row.push(format!("{:.2}", r.phase_sum_secs));
            row.push(format!("{:.2}", r.total_secs));
            row.push(format!("{:.2}", r.paper_secs));
            row
        })
        .collect();
    let mut out = format!(
        "TRACE — mechanistic Table 2: per-phase setup seconds by hop count\n\
         (every row aggregated from spans; phase sums tile the measured totals exactly)\n{}",
        table::render(&headers, &rows)
    );
    out.push_str(&format!(
        "\nteardown {:.2} s mean | sub-λ (OTN) setup {:.2} s mean | \
         longest restoration queue wait {:.1} s | {} policy decision spans\n\
         {} spans across {} scenarios",
        report.teardown_secs,
        report.subwl_setup_secs,
        report.restore_queue_wait_secs,
        report.policy_decisions,
        report.spans_recorded,
        scenarios.len(),
    ));
    for s in scenarios {
        for w in &s.warnings {
            out.push('\n');
            out.push_str(w);
        }
    }
    out
}

/// Minimal typed view of a Chrome trace, used to re-parse the exporter's
/// hand-written JSON as a structural validity gate (the span exporter
/// writes its JSON by hand, so the export path never sees a serializer).
#[derive(serde::Deserialize)]
struct ChromeTrace {
    /// The trace's event list.
    #[serde(rename = "traceEvents")]
    trace_events: Vec<ChromeEvent>,
}

/// One trace event: phase letter plus the timing fields "X" events carry.
#[derive(serde::Deserialize)]
struct ChromeEvent {
    ph: String,
    #[serde(default)]
    ts: Option<f64>,
    #[serde(default)]
    dur: Option<f64>,
}

/// Parse a Chrome trace and check the invariants the viewer relies on:
/// valid JSON, one complete ("X") event per recorded span, and a
/// numeric `ts`/`dur` pair on every one of them.
pub fn check_chrome_trace(chrome: &str, expected_spans: u64) {
    let parsed: ChromeTrace =
        serde_json::from_str(chrome).expect("chrome trace must be valid JSON");
    let complete = parsed.trace_events.iter().filter(|e| e.ph == "X").count() as u64;
    assert_eq!(
        complete, expected_spans,
        "every span must appear exactly once as a complete event"
    );
    for e in &parsed.trace_events {
        if e.ph == "X" {
            assert!(
                e.ts.is_some() && e.dur.is_some(),
                "complete events must carry matching ts/dur"
            );
        }
    }
}

/// Run every scenario, write `BENCH_trace.json` and the Chrome trace
/// file, and return the human-readable summary.
pub fn emit(bench_path: &str, chrome_path: &str) -> String {
    let scenarios = scenarios();
    let (mut report, chrome) = build(&scenarios);
    report.chrome_trace_file = chrome_path.to_string();
    check_chrome_trace(&chrome, report.spans_recorded);
    std::fs::write(chrome_path, &chrome).expect("write chrome trace");
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(bench_path, &json).expect("write BENCH_trace.json");
    let mut out = render(&report, &scenarios);
    out.push_str(&format!("\nwrote {bench_path} and {chrome_path}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_scenario_phase_sums_match_controller_reports() {
        // check_scenario (inside build) asserts the tiling invariant;
        // here just make sure the 1-hop scenario hits Table 2 row 1.
        let s = setup_scenario(1);
        check_scenario(&s);
        let (_, setup) = (&s.reported[0].0, s.reported[0].1);
        assert!((setup.as_secs_f64() - PAPER_SETUP_SECS[0]).abs() < 0.01);
        assert!(s.warnings.is_empty());
    }

    #[test]
    fn report_reproduces_table2_shape() {
        let scenarios = scenarios();
        let (report, chrome) = build(&scenarios);
        assert_eq!(report.table2.len(), 3);
        for (r, paper) in report.table2.iter().zip(PAPER_SETUP_SECS) {
            assert!(
                (r.total_secs - paper).abs() < 0.01,
                "{}h: {} vs paper {paper}",
                r.hops,
                r.total_secs
            );
            assert!((r.phase_sum_secs - r.total_secs).abs() < 1e-9);
        }
        check_chrome_trace(&chrome, report.spans_recorded);
        assert!(report.spans_recorded > 100);
    }

    #[test]
    fn two_runs_are_byte_identical() {
        let a = build(&scenarios()).1;
        let b = build(&scenarios()).1;
        assert_eq!(a, b, "chrome trace must be deterministic");
    }
}
