//! Minimal fixed-width table renderer for harness output.

/// Render rows as a fixed-width text table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_aligned() {
        let s = super::render(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        assert!(s.contains("name"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }
}
