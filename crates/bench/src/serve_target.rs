//! `repro serve` — the northbound service plane under million-tenant
//! load (`BENCH_serve.json`).
//!
//! Sweeps fleet size × offered-load multiplier (10k → 100k → 1M tenants
//! by default, `SCALE_SWEEP=reduced` drops the 1M row for CI; 0.5× →
//! 1× → 4× the service capacity at every size), driving each grid cell
//! through the full [`northbound::ApiServer`] edge pipeline: token
//! authentication, per-tenant token buckets, bounded per-tier admission
//! queues with typed 429/503 rejections, hierarchical quota charging,
//! and priority drains batched into `Controller::journal_batch` with a
//! WAL attached — the durability boundary at the API edge.
//!
//! Three properties are asserted unconditionally at every cell, and
//! printed as the lines CI greps:
//!
//! - **server-on/off digest identity** — replaying the admitted-intent
//!   stream against a bare controller yields a byte-identical
//!   `state_digest_crc`: the service plane leaves zero residue in
//!   controller state.
//! - **zero telemetry drops** — span recorder and controller trace ring
//!   never silently saturate, even at 1M × 4×.
//! - **bounded queues** — per-tier high-water marks never exceed the
//!   configured capacities; overload sheds with 503s instead of
//!   growing memory.
//!
//! A separate fairness pair (100k × 1×, abuser on vs off) asserts the
//! limiter isolates an abusive flooder without collateral damage: the
//! well-behaved fleet keeps ≥ 97% of its admissions and the abuser is
//! almost entirely rate-limited.
//!
//! All latencies in the report are **sim time** (arrival → hand-off),
//! so `build()` is a pure function of the embedded config and is
//! golden-filed by `tests/serve_golden.rs`; only the intents/sec column
//! in the summary text is host wall clock.

use griphon::WalConfig;
use northbound::{
    build_testbed, generate_fleet, replay_admitted, AbuserConfig, ApiServer, FleetConfig,
    ServeOutcome, ServerConfig, TenantDirectory,
};
use serde::Serialize;
use simcore::metrics::LatencyRecorder;

use crate::experiments::{parallel_cells_with, repro_threads};

/// Fleet sizes of the default sweep.
const FULL_FLEETS: &[u64] = &[10_000, 100_000, 1_000_000];
/// The `SCALE_SWEEP=reduced` fleet sizes CI runs on every push (also
/// the golden grid — `build()` always uses this one).
const REDUCED_FLEETS: &[u64] = &[10_000, 100_000];
/// Offered-load multipliers over the drain capacity.
const LOADS: &[f64] = &[0.5, 1.0, 4.0];
/// Aggregate arrival rate at 1× load, requests/sec. The default server
/// drains 10 intents per 100 ms tick, so 1× saturates the hand-off
/// path exactly and 4× forces sustained shedding.
const BASE_RATE_PER_SEC: f64 = 100.0;
/// Plant size the server fronts (the paper testbed scale — the service
/// plane's scaling axis is tenants, not ROADMs; `repro scale` owns the
/// plant axis).
const ROADMS: usize = 14;
/// The fairness scenario: 100k tenants at 1×, with a free-tier tenant
/// flooding at half the aggregate base rate.
const FAIRNESS_FLEET: u64 = 100_000;
const ABUSER_TENANT: u64 = 4_242;
const ABUSER_RATE_PER_SEC: f64 = 50.0;
/// Well-behaved admissions retained with the abuser active, as a
/// fraction of the abuser-off run.
const MIN_FAIRNESS_RETENTION: f64 = 0.97;

fn cell_seed(tenants: u64, load: f64) -> u64 {
    0x5E12_7E00u64 ^ tenants.rotate_left(17) ^ (load * 16.0) as u64
}

fn fleet_config(tenants: u64, load: f64) -> FleetConfig {
    FleetConfig {
        tenants,
        seed: cell_seed(tenants, load),
        base_rate_per_sec: BASE_RATE_PER_SEC * load,
        ..FleetConfig::default()
    }
}

/// Sim-time latency percentiles for one tier, nanoseconds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TierLatency {
    /// Median admission latency.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
}

/// Per-tier counters of one grid cell, drain-priority order
/// (premium, standard, free).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TierRow {
    /// Tier label.
    pub tier: &'static str,
    /// Authenticated requests offered to this tier.
    pub offered: u64,
    /// Intents handed off to the controller.
    pub admitted: u64,
    /// 429s (token bucket).
    pub rate_limited: u64,
    /// 403s (quota).
    pub quota_exhausted: u64,
    /// 503s (queue full).
    pub shed: u64,
    /// Still queued at the horizon.
    pub queued_at_horizon: u64,
    /// Shed fraction of offered.
    pub shed_rate: f64,
    /// Deepest the tier queue ever got.
    pub queue_high_water: usize,
    /// Admission latency percentiles (zeros when nothing was admitted).
    pub latency: TierLatency,
}

/// One cell of the fleet × load grid.
#[derive(Debug, Clone, Serialize)]
pub struct ServePoint {
    /// Fleet size.
    pub tenants: u64,
    /// Offered-load multiplier.
    pub load: f64,
    /// Requests offered to the server.
    pub offered: u64,
    /// 401s (forged tokens).
    pub unauthorized: u64,
    /// Intents handed off across tiers.
    pub admitted: u64,
    /// Sustained admission rate in sim time, intents/sec.
    pub sim_intents_per_sec: f64,
    /// Per-tier breakdown.
    pub tiers: [TierRow; 3],
    /// Queue-depth samples: `(sim ns, [premium, standard, free])`.
    pub queue_depth_series: Vec<(u64, [usize; 3])>,
    /// Tenants that actually touched the quota ledger.
    pub active_tenants: usize,
    /// `api.admit` roots seen by the tail sampler.
    pub sampler_roots_seen: u64,
    /// Roots retained by the sampler.
    pub sampler_roots_kept: u64,
    /// Exemplars linked across the latency histograms (every one
    /// asserted to resolve to a retained trace).
    pub exemplars: usize,
    /// Controller `state_digest_crc` of the server-on run.
    pub server_on_digest_crc: u32,
    /// Digest of the replayed admitted-intent stream (always equal —
    /// divergence aborts the run).
    pub replay_digest_crc: u32,
    /// Telemetry drops across both runs (must be 0).
    pub telemetry_dropped: u64,
}

/// The fairness pair: same cell with and without the abuser overlay.
#[derive(Debug, Clone, Serialize)]
pub struct FairnessReport {
    /// Fleet size of the scenario.
    pub tenants: u64,
    /// The flooding tenant.
    pub abuser_tenant: u64,
    /// Flood rate, requests/sec.
    pub abuser_rate_per_sec: f64,
    /// Requests the abuser offered.
    pub abuser_offered: u64,
    /// Of those, how many were admitted (the limiter's leakage).
    pub abuser_admitted: u64,
    /// How many were rate-limited at the bucket.
    pub abuser_rate_limited: u64,
    /// Well-behaved admissions with the abuser active.
    pub well_admitted_with_abuser: u64,
    /// Well-behaved admissions in the abuser-off run.
    pub well_admitted_without_abuser: u64,
    /// `with / without` (gated ≥ [`MIN_FAIRNESS_RETENTION`]).
    pub retention: f64,
}

/// The golden-filed document: the reduced grid plus the fairness pair,
/// all sim time — a pure function of the embedded config.
#[derive(Debug, Clone, Serialize)]
pub struct ServeGolden {
    /// One cell per reduced-grid point.
    pub points: Vec<ServePoint>,
    /// The abuser-isolation scenario.
    pub fairness: FairnessReport,
}

/// The `BENCH_serve.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Common `BENCH_*.json` header.
    pub header: crate::bench_json::BenchHeader,
    /// Report identifier.
    pub benchmark: String,
    /// Sweep profile (`full` or `reduced`).
    pub sweep: String,
    /// Worker threads the grid was fanned across.
    pub threads: usize,
    /// One cell per grid point.
    pub points: Vec<ServePoint>,
    /// Host-wall-clock submit throughput per point, intents offered/sec
    /// (the only non-deterministic column, kept out of the golden).
    pub host_intents_per_sec: Vec<f64>,
    /// The abuser-isolation scenario.
    pub fairness: FairnessReport,
}

/// Run one grid cell end to end: generate the fleet, run the server
/// (WAL attached), replay the admitted stream, and assert the
/// invariants. Pure function of `(tenants, load, abuser)`.
fn run_cell(tenants: u64, load: f64, abuser: Option<AbuserConfig>) -> ServeOutcome {
    let mut cfg = fleet_config(tenants, load);
    cfg.abuser = abuser;
    let dir = TenantDirectory::new(cfg.tenants, cfg.seed);
    let requests = generate_fleet(&cfg, &dir);
    let mut bed = build_testbed(ROADMS, cfg.pairs, cfg.seed);
    // The WAL is attached on the server-on run so every drain batch is
    // one real group commit; the journal is not part of the digest, so
    // identity with the bare replay still must hold.
    bed.ctl.enable_journal(WalConfig::default());
    let mut server = ApiServer::new(bed, dir, ServerConfig::default());
    server.run(&requests, cfg.horizon);
    let outcome = server.finish();
    assert_eq!(
        outcome.offered,
        requests.len() as u64,
        "request accounting leak at {tenants}×{load}"
    );
    assert_eq!(
        outcome.controller_refusals, 0,
        "the edge admitted an intent the controller refused at {tenants}×{load}"
    );
    outcome
}

/// Replay `outcome`'s admitted stream on a bare testbed and return the
/// server-off digest.
fn replay_digest(tenants: u64, load: f64, outcome: &ServeOutcome) -> u32 {
    let cfg = fleet_config(tenants, load);
    let bed = build_testbed(ROADMS, cfg.pairs, cfg.seed);
    replay_admitted(bed, &outcome.admitted, cfg.horizon)
}

fn tier_latency(samples: &[u64]) -> TierLatency {
    let mut rec = LatencyRecorder::new();
    for &ns in samples {
        rec.record_ns(ns);
    }
    TierLatency {
        p50_ns: rec.p50_ns(),
        p95_ns: rec.p95_ns(),
        p99_ns: rec.p99_ns(),
    }
}

fn build_point(tenants: u64, load: f64, outcome: &ServeOutcome, off_digest: u32) -> ServePoint {
    assert_eq!(
        outcome.digest_crc, off_digest,
        "server-on vs replay digests diverged at {tenants} tenants × {load}x"
    );
    let dropped = outcome.span_dropped + outcome.trace_dropped;
    assert_eq!(
        dropped, 0,
        "telemetry silently saturated at {tenants} tenants × {load}x"
    );
    let caps = ServerConfig::default().queue_capacity;
    for (hw, cap) in outcome.queue_high_water.iter().zip(caps) {
        assert!(
            *hw <= cap,
            "queue high water {hw} exceeded capacity {cap} at {tenants}×{load}"
        );
    }
    let labels = ["premium", "standard", "free"];
    let tiers: [TierRow; 3] = std::array::from_fn(|i| {
        let offered = outcome.admitted_per_tier[i]
            + outcome.rate_limited_per_tier[i]
            + outcome.quota_per_tier[i]
            + outcome.shed_per_tier[i]
            + outcome.final_depth[i] as u64;
        TierRow {
            tier: labels[i],
            offered,
            admitted: outcome.admitted_per_tier[i],
            rate_limited: outcome.rate_limited_per_tier[i],
            quota_exhausted: outcome.quota_per_tier[i],
            shed: outcome.shed_per_tier[i],
            queued_at_horizon: outcome.final_depth[i] as u64,
            shed_rate: if offered == 0 {
                0.0
            } else {
                outcome.shed_per_tier[i] as f64 / offered as f64
            },
            queue_high_water: outcome.queue_high_water[i],
            latency: tier_latency(&outcome.latencies_ns[i]),
        }
    });
    let admitted: u64 = outcome.admitted_per_tier.iter().sum();
    let horizon_secs = FleetConfig::default().horizon.as_secs_f64();
    ServePoint {
        tenants,
        load,
        offered: outcome.offered,
        unauthorized: outcome.unauthorized,
        admitted,
        sim_intents_per_sec: admitted as f64 / horizon_secs,
        tiers,
        queue_depth_series: outcome
            .depth_series
            .iter()
            .map(|(t, d)| (t.as_nanos(), *d))
            .collect(),
        active_tenants: outcome.active_tenants,
        sampler_roots_seen: outcome.sampler.roots_seen,
        sampler_roots_kept: outcome.sampler.roots_kept,
        exemplars: outcome.exemplars,
        server_on_digest_crc: outcome.digest_crc,
        replay_digest_crc: off_digest,
        telemetry_dropped: dropped,
    }
}

fn run_point(tenants: u64, load: f64) -> ServePoint {
    let outcome = run_cell(tenants, load, None);
    let off = replay_digest(tenants, load, &outcome);
    build_point(tenants, load, &outcome, off)
}

fn point_summary(p: &ServePoint) -> String {
    format!
        ("[{:>9} tenants x {:>3}x] offered {:>5} admitted {:>4} | p99 prem/std/free {} / {} / {} ms | \
         shed {:>4} | queues bounded (hw {}/{}/{}) | telemetry drops: 0 | \
         server-on vs replay digests: identical (crc 0x{:08x})\n",
        p.tenants,
        p.load,
        p.offered,
        p.admitted,
        p.tiers[0].latency.p99_ns / 1_000_000,
        p.tiers[1].latency.p99_ns / 1_000_000,
        p.tiers[2].latency.p99_ns / 1_000_000,
        p.tiers.iter().map(|t| t.shed).sum::<u64>(),
        p.tiers[0].queue_high_water,
        p.tiers[1].queue_high_water,
        p.tiers[2].queue_high_water,
        p.server_on_digest_crc,
    )
}

/// Run the fairness pair and gate abuser isolation.
fn run_fairness() -> FairnessReport {
    let abuser = AbuserConfig {
        tenant: ABUSER_TENANT,
        rate_per_sec: ABUSER_RATE_PER_SEC,
    };
    let load = 1.0;
    let without = run_cell(FAIRNESS_FLEET, load, None);
    let with = run_cell(FAIRNESS_FLEET, load, Some(abuser));

    let well = |o: &ServeOutcome| o.admitted.iter().filter(|a| !a.abusive).count() as u64;
    let well_with = well(&with);
    let well_without = well(&without);
    let abuser_admitted = with.admitted.len() as u64 - well_with;
    // The abuser is free-tier: everything it gets past its own token
    // bucket is a leak bounded by burst + refill over the horizon.
    let retention = well_with as f64 / well_without.max(1) as f64;
    assert!(
        retention >= MIN_FAIRNESS_RETENTION,
        "abuser caused collateral damage: well-behaved admissions fell to \
         {retention:.3} of the abuser-off run (floor {MIN_FAIRNESS_RETENTION})"
    );
    let abuser_offered =
        (ABUSER_RATE_PER_SEC * FleetConfig::default().horizon.as_secs_f64()) as u64;
    assert!(
        abuser_admitted <= 16,
        "the limiter leaked {abuser_admitted} abusive admissions"
    );
    FairnessReport {
        tenants: FAIRNESS_FLEET,
        abuser_tenant: ABUSER_TENANT,
        abuser_rate_per_sec: ABUSER_RATE_PER_SEC,
        abuser_offered,
        abuser_admitted,
        abuser_rate_limited: with.rate_limited_per_tier[2]
            .saturating_sub(without.rate_limited_per_tier[2]),
        well_admitted_with_abuser: well_with,
        well_admitted_without_abuser: well_without,
        retention,
    }
}

/// Server-on digests for a small grid driven with `threads` workers —
/// the hook `tests/determinism.rs` uses to assert digest identity
/// across `REPRO_THREADS` ∈ {1, 2, 8}.
pub fn serve_fingerprint(threads: usize) -> Vec<u32> {
    let grid: Vec<(u64, f64)> = vec![(10_000, 0.5), (10_000, 4.0)];
    parallel_cells_with(threads, grid, |(tenants, load)| {
        run_cell(tenants, load, None).digest_crc
    })
}

/// Recompute the golden document from scratch — always the reduced
/// grid, independent of `SCALE_SWEEP`; `tests/serve_golden.rs` compares
/// it against `tests/golden/serve_bench.json`.
pub fn build() -> ServeGolden {
    let grid: Vec<(u64, f64)> = REDUCED_FLEETS
        .iter()
        .flat_map(|&t| LOADS.iter().map(move |&l| (t, l)))
        .collect();
    let points = parallel_cells_with(repro_threads(), grid, |(t, l)| run_point(t, l));
    ServeGolden {
        points,
        fairness: run_fairness(),
    }
}

/// Run the sweep, write `BENCH_serve.json`, and return the summary text.
pub fn emit(path: &str) -> String {
    let reduced = std::env::var("SCALE_SWEEP").as_deref() == Ok("reduced");
    let fleets = if reduced { REDUCED_FLEETS } else { FULL_FLEETS };
    let threads = repro_threads();
    let grid: Vec<(u64, f64)> = fleets
        .iter()
        .flat_map(|&t| LOADS.iter().map(move |&l| (t, l)))
        .collect();
    let timed = parallel_cells_with(threads, grid, |(t, l)| {
        let t0 = std::time::Instant::now();
        let point = run_point(t, l);
        (point, t0.elapsed().as_secs_f64())
    });
    let mut out = String::new();
    let mut points = Vec::with_capacity(timed.len());
    let mut host = Vec::with_capacity(timed.len());
    for (point, secs) in timed {
        out.push_str(&point_summary(&point));
        host.push(point.offered as f64 / secs.max(1e-9));
        points.push(point);
    }
    let fairness = run_fairness();
    out.push_str(&format!(
        "fairness [{} tenants, abuser {}@{}r/s]: well-behaved retained {:.1}% \
         (floor {:.0}%), abuser admitted {} of {} offered\n",
        fairness.tenants,
        fairness.abuser_tenant,
        fairness.abuser_rate_per_sec,
        fairness.retention * 100.0,
        MIN_FAIRNESS_RETENTION * 100.0,
        fairness.abuser_admitted,
        fairness.abuser_offered,
    ));

    let report = ServeReport {
        header: crate::bench_json::BenchHeader::new(
            "serve",
            if reduced { "reduced" } else { "full" },
        ),
        benchmark: "serve_sweep".into(),
        sweep: if reduced { "reduced" } else { "full" }.into(),
        threads,
        points,
        host_intents_per_sec: host,
        fairness,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    format!("wrote {path}\n{out}")
}
