//! `repro scale` — the continental-scale sweep (`BENCH_scale.json`).
//!
//! Sweeps generated plants from paper scale to continental scale
//! (14 → 100 → 300 → 600 ROADMs by default; `SCALE_SWEEP=reduced` runs
//! 14 → 100 → 200 for CI), driving every point twice through the same
//! per-region workload cells:
//!
//! - **unsharded** — all cells executed on one thread;
//! - **sharded** — the same cells fanned across
//!   [`repro_threads`](crate::experiments::repro_threads) workers.
//!
//! Each cell owns a full controller over the shared plant (region map
//! installed, admission group-committed in waves through
//! `journal_batch`) and returns its `state_digest_crc()`, so the merge
//! is deterministic and the two runs must produce **byte-identical
//! digests for every cell** — asserted unconditionally at every sweep
//! point, and printed as the `digests: identical` lines CI greps.
//!
//! Per point the report records per-intent setup-latency p50/p95/p99
//! (host wall clock around `request_wavelength`, measured on the
//! unsharded run so core contention cannot skew percentiles),
//! intents/sec for both runs, route-cache hit/miss/eviction counters,
//! and the estimated memory footprint. The final gate asserts p99 at the
//! largest point stays within 10× the smallest point — the evidence that
//! region-restricted search, the u128 masks, the per-node equipment
//! indices and the bounded route cache keep the hot path sub-linear in
//! plant size.

use griphon::rwa::RegionMap;
use griphon::{Controller, ControllerConfig};
use photonic::{generate, GeneratedPlant, GeneratorConfig, LineRate, RoadmId};
use serde::Serialize;
use simcore::metrics::LatencyRecorder;
use simcore::{DataRate, SimRng};

use crate::experiments::{parallel_cells_with, repro_threads};

/// The default sweep: paper scale to continental scale.
const FULL_SWEEP: &[usize] = &[14, 100, 300, 600];
/// The `SCALE_SWEEP=reduced` sweep CI runs on every push.
const REDUCED_SWEEP: &[usize] = &[14, 100, 200];

/// Hot endpoint pairs per workload cell. Carrier traffic is skewed —
/// most demand connects a few popular PoPs — and the repeat rate is what
/// exercises the route cache at every scale.
const HOT_PAIRS: usize = 8;
/// Admission waves per cell and intents per wave: 30 × 32 = 960 intents
/// per cell, so the ≤ `HOT_PAIRS` cold misses stay under the p99 index.
const WAVES: usize = 30;
const WAVE_INTENTS: usize = 32;

/// One sweep point of the scale report.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// Plant size in ROADMs.
    pub roadms: usize,
    /// Fiber links in the plant.
    pub fibers: usize,
    /// Amplified spans in the plant.
    pub spans: usize,
    /// Channels per degree.
    pub channels: u16,
    /// Regions (== workload cells == backbone hubs).
    pub regions: usize,
    /// Intents admitted per run (all cells).
    pub intents: usize,
    /// Intents that were admitted and provisioned.
    pub accepted: usize,
    /// Per-intent setup latency, host ns (unsharded run).
    pub setup_p50_ns: u64,
    /// 95th percentile, host ns.
    pub setup_p95_ns: u64,
    /// 99th percentile, host ns.
    pub setup_p99_ns: u64,
    /// Intent throughput of the unsharded (1-thread) run.
    pub unsharded_intents_per_sec: f64,
    /// Intent throughput of the sharded run.
    pub sharded_intents_per_sec: f64,
    /// Worker threads used by the sharded run.
    pub shard_threads: usize,
    /// Route-cache hits summed over cells (unsharded run).
    pub cache_hits: u64,
    /// Route-cache misses summed over cells.
    pub cache_misses: u64,
    /// Route-cache evictions summed over cells.
    pub cache_evictions: u64,
    /// Cache hit rate in [0, 1].
    pub cache_hit_rate: f64,
    /// Live route-cache entries summed over cells at run end.
    pub cache_entries: usize,
    /// Route-cache capacity summed over cells.
    pub cache_capacity: usize,
    /// Trace-ring events dropped across cells (must be 0 — silent
    /// saturation fails the run).
    pub trace_dropped: u64,
    /// Spans dropped by the recorders across cells (must be 0).
    pub span_dropped: u64,
    /// Estimated controller heap footprint in bytes (one cell).
    pub memory_bytes: u64,
    /// CRC-32C over the concatenated per-cell digests.
    pub combined_digest_crc: u32,
    /// Sharded and unsharded per-cell digests were byte-identical
    /// (always true — divergence aborts the run).
    pub sharded_identical: bool,
}

/// The `BENCH_scale.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleReport {
    /// Common `BENCH_*.json` header.
    pub header: crate::bench_json::BenchHeader,
    /// Report identifier.
    pub benchmark: String,
    /// Sweep profile (`full` or `reduced`).
    pub sweep: String,
    /// Worker threads used for sharded runs.
    pub threads: usize,
    /// One entry per plant size.
    pub points: Vec<ScalePoint>,
    /// p99(largest) / p99(smallest).
    pub p99_ratio_vs_smallest: f64,
    /// The gate the ratio must stay under.
    pub max_allowed_p99_ratio: f64,
}

/// One workload cell: a region's intent list, driven against the cell's
/// own controller over the (shared, cloned) plant.
struct Cell {
    region: usize,
    intents: Vec<(RoadmId, RoadmId)>,
}

/// What a cell run returns: the digest, its latency samples, and the
/// cache/footprint counters the report aggregates.
struct CellOutcome {
    digest: u32,
    latencies_ns: Vec<u64>,
    accepted: usize,
    cache: griphon::RouteCacheStats,
    memory_bytes: u64,
    trace_dropped: u64,
    span_dropped: u64,
}

/// Deterministic per-region intent lists: `HOT_PAIRS` endpoint pairs
/// (three quarters intra-region, the rest crossing to a deterministic
/// peer region), repeated across `WAVES` admission waves.
fn build_cells(plant: &GeneratedPlant, seed: u64) -> Vec<Cell> {
    let regions = plant.interior.len();
    (0..regions)
        .map(|r| {
            let mut rng = SimRng::new(seed).fork(r as u64 + 1);
            let mine = &plant.interior[r];
            let peer = &plant.interior[(r + 1) % regions];
            let mut pairs: Vec<(RoadmId, RoadmId)> = Vec::with_capacity(HOT_PAIRS);
            for p in 0..HOT_PAIRS {
                let a = *rng.choose(mine);
                let b = if p % 4 == 3 {
                    *rng.choose(peer)
                } else {
                    *rng.choose(mine)
                };
                if a == b {
                    // Degenerate draw on tiny regions: pair with the
                    // region gateway instead.
                    pairs.push((a, plant.gateways[r]));
                } else {
                    pairs.push((a, b));
                }
            }
            let intents = (0..WAVES * WAVE_INTENTS)
                .map(|i| pairs[i % HOT_PAIRS])
                .collect();
            Cell { region: r, intents }
        })
        .collect()
}

/// Run one cell to completion and return its outcome. Pure function of
/// `(plant, cell, seed)` — thread placement cannot change it, which is
/// exactly what the sharded-vs-unsharded digest assert verifies.
fn run_cell(plant: &GeneratedPlant, cell: &Cell, seed: u64) -> CellOutcome {
    let cfg = ControllerConfig {
        seed: seed ^ (cell.region as u64) << 32,
        ems: photonic::EmsProfile::calibrated_deterministic(),
        equalization: photonic::EqualizationModel::calibrated_deterministic(),
        ..ControllerConfig::default()
    };
    let mut ctl = Controller::new(plant.net.clone(), cfg);
    ctl.install_region_map(RegionMap::new(plant.region_of.clone()))
        .expect("generated plants satisfy the single-gateway invariant");
    let customer = ctl.register_tenant("scale", DataRate::from_gbps(1_000_000));
    let mut recorder = LatencyRecorder::new();
    let mut accepted = 0usize;
    for wave in cell.intents.chunks(WAVE_INTENTS) {
        // Admission is one group-committed burst (PR 6 path): with a WAL
        // attached this is one flush per wave; without one it still
        // exercises the same batching surface.
        let (ids, _) = ctl.journal_batch(|c| {
            let mut ids = Vec::with_capacity(wave.len());
            for &(a, b) in wave {
                let t0 = std::time::Instant::now();
                let r = c.request_wavelength(customer, a, b, LineRate::Gbps10);
                recorder.record_ns(t0.elapsed().as_nanos() as u64);
                if let Ok(id) = r {
                    ids.push(id);
                }
            }
            ids
        });
        accepted += ids.len();
        ctl.run_until_idle();
        let (_, _) = ctl.journal_batch(|c| {
            for id in &ids {
                let _ = c.request_teardown(*id);
            }
        });
        ctl.run_until_idle();
    }
    let mut memory = ctl.memory_footprint();
    let cache = ctl.route_cache_stats();
    memory.add(
        "route cache",
        (cache.entries * 512) as u64, // rough per-entry estimate
    );
    CellOutcome {
        digest: ctl.state_digest_crc(),
        latencies_ns: recorder.samples_ns().to_vec(),
        accepted,
        cache,
        memory_bytes: memory.total(),
        trace_dropped: ctl.trace.dropped(),
        span_dropped: ctl.spans.dropped(),
    }
}

/// Digest identity between two per-cell outcome sets, and the combined
/// CRC the report publishes.
fn digests_identical(unsharded: &[u32], sharded: &[u32]) -> (bool, u32) {
    let mut crc = simcore::Crc32c::new();
    for d in unsharded {
        crc.update(&d.to_le_bytes());
    }
    (unsharded == sharded, crc.finish())
}

/// Run one sweep point; panics if sharded and unsharded digests differ.
fn run_point(target: usize, threads: usize, out: &mut String) -> ScalePoint {
    let seed = 0xC0FF_EE00u64 + target as u64;
    let cfg = GeneratorConfig {
        ots_per_node: 8,
        ..GeneratorConfig::with_target_roadms(target, seed)
    };
    let plant = generate(&cfg);
    let cells = build_cells(&plant, seed);
    let intents = cells.iter().map(|c| c.intents.len()).sum::<usize>();

    let t0 = std::time::Instant::now();
    let unsharded = parallel_cells_with(1, cells.iter().collect(), |c| run_cell(&plant, c, seed));
    let unsharded_secs = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let sharded = parallel_cells_with(threads, cells.iter().collect(), |c| {
        run_cell(&plant, c, seed)
    });
    let sharded_secs = t1.elapsed().as_secs_f64();

    let du: Vec<u32> = unsharded.iter().map(|o| o.digest).collect();
    let ds: Vec<u32> = sharded.iter().map(|o| o.digest).collect();
    let (identical, combined) = digests_identical(&du, &ds);
    assert!(
        identical,
        "sharded vs unsharded digests diverged at {target} ROADMs: {du:x?} vs {ds:x?}"
    );

    let mut all = LatencyRecorder::new();
    for o in &unsharded {
        for &ns in &o.latencies_ns {
            all.record_ns(ns);
        }
    }
    let cache_hits: u64 = unsharded.iter().map(|o| o.cache.hits).sum();
    let cache_misses: u64 = unsharded.iter().map(|o| o.cache.misses).sum();
    let cache_evictions: u64 = unsharded.iter().map(|o| o.cache.evictions).sum();
    let cache_entries: usize = unsharded.iter().map(|o| o.cache.entries).sum();
    let cache_capacity: usize = unsharded.iter().map(|o| o.cache.capacity).sum();
    let accepted: usize = unsharded.iter().map(|o| o.accepted).sum();
    let trace_dropped: u64 = unsharded.iter().map(|o| o.trace_dropped).sum::<u64>()
        + sharded.iter().map(|o| o.trace_dropped).sum::<u64>();
    let span_dropped: u64 = unsharded.iter().map(|o| o.span_dropped).sum::<u64>()
        + sharded.iter().map(|o| o.span_dropped).sum::<u64>();
    assert_eq!(
        (trace_dropped, span_dropped),
        (0, 0),
        "telemetry silently saturated at {target} ROADMs: \
         {trace_dropped} trace events / {span_dropped} spans dropped"
    );
    let point = ScalePoint {
        roadms: plant.net.roadm_count(),
        fibers: plant.net.fiber_count(),
        spans: plant.net.span_count(),
        channels: plant.net.grid.channels,
        regions: plant.interior.len(),
        intents,
        accepted,
        setup_p50_ns: all.p50_ns(),
        setup_p95_ns: all.p95_ns(),
        setup_p99_ns: all.p99_ns(),
        unsharded_intents_per_sec: intents as f64 / unsharded_secs.max(1e-9),
        sharded_intents_per_sec: intents as f64 / sharded_secs.max(1e-9),
        shard_threads: threads,
        cache_hits,
        cache_misses,
        cache_evictions,
        cache_hit_rate: if cache_hits + cache_misses == 0 {
            0.0
        } else {
            cache_hits as f64 / (cache_hits + cache_misses) as f64
        },
        cache_entries,
        cache_capacity,
        trace_dropped,
        span_dropped,
        memory_bytes: unsharded.iter().map(|o| o.memory_bytes).max().unwrap_or(0),
        combined_digest_crc: combined,
        sharded_identical: identical,
    };
    out.push_str(&format!(
        "[{:>3} roadms] {} fibers / {} spans / {} regions | p50 {} µs p99 {} µs | \
         {:.0}→{:.0} intents/s ({} threads) | cache {:.0}% hit | {:.1} MiB | \
         telemetry drops: 0 | sharded vs unsharded digests: identical (crc 0x{:08x})\n",
        point.roadms,
        point.fibers,
        point.spans,
        point.regions,
        point.setup_p50_ns / 1_000,
        point.setup_p99_ns / 1_000,
        point.unsharded_intents_per_sec,
        point.sharded_intents_per_sec,
        threads,
        point.cache_hit_rate * 100.0,
        point.memory_bytes as f64 / (1024.0 * 1024.0),
        combined,
    ));
    point
}

/// The per-cell digests for a generated plant at `target` ROADMs driven
/// with `threads` workers — the hook `tests/determinism.rs` uses to
/// assert digest identity across `REPRO_THREADS` ∈ {1, 2, 8} without
/// touching environment variables.
pub fn shard_digests(target: usize, seed: u64, threads: usize) -> Vec<u32> {
    let plant = generate(&GeneratorConfig::with_target_roadms(target, seed));
    let cells = build_cells(&plant, seed);
    parallel_cells_with(threads, cells.iter().collect(), |c| {
        run_cell(&plant, c, seed).digest
    })
}

/// Run the sweep, write `BENCH_scale.json`, and return the summary text.
pub fn emit(path: &str) -> String {
    let reduced = std::env::var("SCALE_SWEEP").as_deref() == Ok("reduced");
    let sweep = if reduced { REDUCED_SWEEP } else { FULL_SWEEP };
    let threads = repro_threads();
    let mut out = String::new();
    let points: Vec<ScalePoint> = sweep
        .iter()
        .map(|&t| run_point(t, threads, &mut out))
        .collect();

    let first = points.first().expect("sweep is non-empty");
    let last = points.last().expect("sweep is non-empty");
    let ratio = last.setup_p99_ns as f64 / first.setup_p99_ns.max(1) as f64;
    const MAX_RATIO: f64 = 10.0;
    out.push_str(&format!(
        "p99 scaling {} vs {} roadms: {ratio:.2}x (limit {MAX_RATIO:.0}x)\n",
        last.roadms, first.roadms
    ));
    assert!(
        ratio <= MAX_RATIO,
        "p99 setup latency grew {ratio:.2}x from {} to {} ROADMs (limit {MAX_RATIO}x) — \
         the hot paths are no longer sub-linear in plant size",
        first.roadms,
        last.roadms
    );

    let report = ScaleReport {
        header: crate::bench_json::BenchHeader::new(
            "scale",
            if reduced { "reduced" } else { "full" },
        ),
        benchmark: "scale_sweep".into(),
        sweep: if reduced { "reduced" } else { "full" }.into(),
        threads,
        points,
        p99_ratio_vs_smallest: ratio,
        max_allowed_p99_ratio: MAX_RATIO,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(path, &json).expect("write BENCH_scale.json");
    format!("wrote {path}\n{out}")
}
