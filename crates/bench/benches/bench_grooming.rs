//! Criterion bench for E6's packers: OTN per-link grooming vs
//! muxponder end-to-end packing over NSFNET, at increasing demand counts.

use criterion::{criterion_group, criterion_main, Criterion};

use otn::grooming::{Demand, MuxponderPacker, OtnGroomer};
use otn::OduRate;
use photonic::{LineRate, PhotonicNetwork, RoadmId};
use simcore::SimRng;

fn demands(net: &PhotonicNetwork, n: usize, seed: u64) -> Vec<Demand> {
    let mut rng = SimRng::new(seed);
    let nodes: Vec<RoadmId> = net.roadm_ids().collect();
    (0..n)
        .map(|i| {
            let a = *rng.choose(&nodes);
            let mut b = *rng.choose(&nodes);
            while b == a {
                b = *rng.choose(&nodes);
            }
            Demand {
                id: i as u32,
                from: a,
                to: b,
                odu: match rng.below(3) {
                    0 => OduRate::Odu0,
                    1 => OduRate::Odu1,
                    _ => OduRate::Odu2,
                },
            }
        })
        .collect()
}

fn bench_grooming(c: &mut Criterion) {
    let net = PhotonicNetwork::nsfnet(0, LineRate::Gbps10, 0);
    let mut g = c.benchmark_group("e6_grooming");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [50usize, 200, 1000] {
        let d = demands(&net, n, 7);
        g.bench_function(format!("otn_pack_{n}"), |b| {
            let groomer = OtnGroomer {
                line_rate: LineRate::Gbps40,
            };
            b.iter(|| groomer.pack(&net, &d))
        });
        g.bench_function(format!("mxp_pack_{n}"), |b| {
            let packer = MuxponderPacker {
                line_rate: LineRate::Gbps40,
            };
            b.iter(|| packer.pack(&net, &d))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_grooming);
criterion_main!(benches);
