//! Criterion bench for the RWA engine: Yen's k-shortest paths, full
//! wavelength planning (continuity + OT + reach checks) and disjoint-pair
//! computation on the NSFNET backbone.

use criterion::{criterion_group, criterion_main, Criterion};

use griphon::rwa::{disjoint_pair, k_shortest_paths, plan_wavelength, RwaConfig};
use photonic::{LineRate, PhotonicNetwork};

fn bench_rwa(c: &mut Criterion) {
    let net = PhotonicNetwork::nsfnet(8, LineRate::Gbps10, 2);
    let seattle = net.roadm_by_name("Seattle").unwrap();
    let princeton = net.roadm_by_name("Princeton").unwrap();
    let cfg = RwaConfig::default();

    let mut g = c.benchmark_group("rwa");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for k in [1usize, 4, 8] {
        g.bench_function(format!("yen_k{k}_coast_to_coast"), |b| {
            b.iter(|| {
                let paths = k_shortest_paths(&net, seattle, princeton, k);
                assert!(!paths.is_empty());
                paths
            })
        });
    }
    g.bench_function("plan_wavelength_10g", |b| {
        b.iter(|| plan_wavelength(&net, &cfg, seattle, princeton, LineRate::Gbps10, &[]).unwrap())
    });
    g.bench_function("plan_wavelength_40g_with_regens", |b| {
        let net40 = PhotonicNetwork::nsfnet(8, LineRate::Gbps40, 4);
        let s = net40.roadm_by_name("Seattle").unwrap();
        let p = net40.roadm_by_name("Princeton").unwrap();
        b.iter(|| plan_wavelength(&net40, &cfg, s, p, LineRate::Gbps40, &[]).unwrap())
    });
    g.bench_function("disjoint_pair", |b| {
        b.iter(|| disjoint_pair(&net, seattle, princeton).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_rwa);
criterion_main!(benches);
