//! Criterion bench for E5's policy simulations: a week of bulk
//! replication under each transfer policy (wall-clock cost of the
//! tick-driven co-simulation, including the live controller for BoD).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cloud::scheduler::{BodPolicy, StaticLinePolicy, StoreForwardPolicy};
use cloud::workload::{WorkloadConfig, WorkloadGenerator};
use cloud::{BulkJob, DataCenterId, RateProfile};
use griphon::controller::{Controller, ControllerConfig};
use photonic::{EmsProfile, EqualizationModel, PhotonicNetwork};
use simcore::{DataRate, DataSize, SimDuration};

fn week_of_jobs() -> Vec<BulkJob> {
    let cfg = WorkloadConfig {
        bulk_interarrival: SimDuration::from_hours(6),
        bulk_max: DataSize::from_terabytes(60),
        ..WorkloadConfig::default()
    };
    let mut gen = WorkloadGenerator::new(cfg, 2026);
    gen.bulk_jobs(
        DataCenterId::new(0),
        DataCenterId::new(1),
        SimDuration::from_hours(24 * 7),
    )
}

fn bench_policies(c: &mut Criterion) {
    let horizon = SimDuration::from_hours(24 * 7);
    let tick = SimDuration::from_secs(60);
    let jobs = week_of_jobs();
    let flat = RateProfile::flat(DataRate::from_gbps(1));

    let mut g = c.benchmark_group("e5_policies");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("static_line_week", |b| {
        let p = StaticLinePolicy {
            line: DataRate::from_gbps(10),
        };
        b.iter(|| p.run(jobs.clone(), horizon, tick, &flat))
    });
    g.bench_function("store_forward_week", |b| {
        let p = StoreForwardPolicy {
            line: DataRate::from_gbps(10),
            relays: 2,
            relay_phase_hours: 8.0,
        };
        b.iter(|| p.run(jobs.clone(), horizon, tick, &flat))
    });
    g.bench_function("bod_week_with_live_controller", |b| {
        b.iter_batched(
            || {
                let (net, ids) = PhotonicNetwork::testbed(10);
                let mut ctl = Controller::new(
                    net,
                    ControllerConfig {
                        ems: EmsProfile::calibrated_deterministic(),
                        equalization: EqualizationModel::calibrated_deterministic(),
                        ..ControllerConfig::default()
                    },
                );
                let csp = ctl.tenants.register("b", DataRate::from_gbps(400));
                (ctl, ids, csp)
            },
            |(mut ctl, ids, csp)| {
                BodPolicy::default().run(&mut ctl, csp, ids.i, ids.iv, jobs.clone(), horizon, tick)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
