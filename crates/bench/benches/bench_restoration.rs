//! Criterion bench for E2: the cost of processing a failure — alarm
//! storm handling, fault localization and the restoration pipeline — in
//! the controller implementation, plus the OTN shared-mesh activation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use griphon::controller::{Controller, ControllerConfig};
use otn::restoration::{CircuitId, MeshRestoration, ProtectedCircuit};
use otn::OduRate;
use photonic::{EmsProfile, EqualizationModel, FiberId, LineRate, PhotonicNetwork};
use simcore::DataRate;

fn loaded_controller(conns: usize) -> (Controller, FiberId) {
    let net = PhotonicNetwork::nsfnet(32, LineRate::Gbps10, 4);
    let seattle = net.roadm_by_name("Seattle").unwrap();
    let palo = net.roadm_by_name("PaloAlto").unwrap();
    let fiber = net.fiber_between(seattle, palo).unwrap();
    let mut ctl = Controller::new(
        net,
        ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        },
    );
    let csp = ctl.tenants.register("b", DataRate::from_gbps(4000));
    for _ in 0..conns {
        ctl.request_wavelength(csp, seattle, palo, LineRate::Gbps10)
            .unwrap();
    }
    ctl.run_until_idle();
    (ctl, fiber)
}

fn bench_restoration(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_restoration");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [1usize, 8, 24] {
        g.bench_function(format!("cut_and_restore_{n}_conns"), |b| {
            b.iter_batched(
                || loaded_controller(n),
                |(mut ctl, fiber)| {
                    ctl.inject_fiber_cut(fiber, 0);
                    ctl.run_until_idle();
                    ctl.metrics.counter("fault.restored").get()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("otn_mesh_activation_100_circuits", |b| {
        b.iter_batched(
            || {
                let mut m = MeshRestoration::new();
                for i in 0..100u32 {
                    m.protect(ProtectedCircuit {
                        id: CircuitId::new(i),
                        odu: OduRate::Odu0,
                        working: vec![FiberId::new(0), FiberId::new(1 + i % 3)],
                        backup: vec![FiberId::new(10), FiberId::new(11 + i % 3)],
                    });
                }
                m.dimension_for_single_failures();
                m
            },
            |mut m| m.activate_for_failure(FiberId::new(0)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_restoration);
criterion_main!(benches);
