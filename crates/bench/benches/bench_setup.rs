//! Criterion bench for Table 2 / E1: how fast the *control plane
//! implementation* executes a full wavelength setup + teardown cycle
//! (simulated seconds are free; this measures our event loop, RWA and
//! inventory code).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use griphon::controller::{Controller, ControllerConfig};
use griphon_bench::experiments::quiet_testbed;
use photonic::{LineRate, PhotonicNetwork};
use simcore::DataRate;

fn bench_setup_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    {
        let hops_label = "testbed_1hop";
        g.bench_function(format!("setup_teardown/{hops_label}"), |b| {
            b.iter_batched(
                || {
                    let (mut ctl, ids) = quiet_testbed(4);
                    let csp = ctl.tenants.register("b", DataRate::from_gbps(100));
                    (ctl, ids, csp)
                },
                |(mut ctl, ids, csp)| {
                    let id = ctl
                        .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                        .unwrap();
                    ctl.run_until_idle();
                    ctl.request_teardown(id).unwrap();
                    ctl.run_until_idle();
                    ctl.events_processed()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_many_connections(c: &mut Criterion) {
    c.bench_function("table2/fifty_setups_nsfnet", |b| {
        b.iter_batched(
            || {
                let net = PhotonicNetwork::nsfnet(8, LineRate::Gbps10, 2);
                let mut ctl = Controller::new(net, ControllerConfig::default());
                let csp = ctl.tenants.register("b", DataRate::from_gbps(4000));
                (ctl, csp)
            },
            |(mut ctl, csp)| {
                let nodes: Vec<_> = ctl.net.roadm_ids().collect();
                for i in 0..50usize {
                    let from = nodes[i % nodes.len()];
                    let to = nodes[(i + 5) % nodes.len()];
                    let _ = ctl.request_wavelength(csp, from, to, LineRate::Gbps10);
                }
                ctl.run_until_idle();
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_setup_cycle, bench_many_connections);
criterion_main!(benches);
