//! Criterion bench for the simulation kernel itself: scheduler
//! throughput, RNG and histogram costs — the floor under every other
//! number in this workspace.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use simcore::{Histogram, Scheduler, SimDuration, SimRng, SimTime};

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [1_000usize, 100_000] {
        g.bench_function(format!("schedule_pop_{n}"), |b| {
            b.iter_batched(
                Scheduler::<u32>::new,
                |mut s| {
                    for i in 0..n {
                        s.schedule_at(SimTime::from_nanos((i as u64 * 7919) % 1_000_000), i as u32);
                    }
                    let mut sum = 0u64;
                    while let Some((_, e)) = s.pop() {
                        sum += e as u64;
                    }
                    sum
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("timer_cancel_churn_10k", |b| {
        b.iter_batched(
            Scheduler::<u32>::new,
            |mut s| {
                let ids: Vec<_> = (0..10_000u32)
                    .map(|i| s.schedule_after(SimDuration::from_secs(1 + i as u64), i))
                    .collect();
                for id in ids.iter().step_by(2) {
                    s.cancel(*id);
                }
                let mut n = 0;
                while s.pop().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_rng_and_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("rng_pareto_1m", |b| {
        b.iter(|| {
            let mut r = SimRng::new(1);
            let mut acc = 0.0;
            for _ in 0..1_000_000 {
                acc += r.pareto(1.0, 1.3);
            }
            acc
        })
    });
    g.bench_function("histogram_record_1m", |b| {
        b.iter(|| {
            let mut h = Histogram::new();
            let mut r = SimRng::new(2);
            for _ in 0..1_000_000 {
                h.record(r.exp(100.0));
            }
            h.quantile(0.99)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scheduler, bench_rng_and_metrics);
criterion_main!(benches);
