//! The OTN cross-connect switch.
//!
//! An [`OtnSwitch`] sits at a core PoP. Its *client ports* face customer
//! access pipes (via the FXC); its *line ports* each ride one wavelength
//! of the DWDM layer and expose that wavelength's high-order ODU as a
//! pool of 1.25 G tributary slots. The fabric cross-connects low-order
//! ODUs between any two ports: client→line (add/drop) or line→line
//! (transit grooming — the capability muxponders lack and the reason the
//! OTN layer "can achieve more efficient packing of wavelengths in the
//! transport network", §2.1).
//!
//! Tributary-slot allocation is first-fit over arbitrary slot sets
//! (G.709 does not require contiguity). The fabric itself has a total
//! switching capacity; admission beyond it is refused, modelling the
//! "higher switching capacity and better scalability" axis the paper
//! contrasts with Broadband DCS.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use simcore::{define_id, DataRate};

use photonic::{LineRate, RoadmId};

use crate::odu::{ClientSignal, OduRate};

define_id!(
    /// Identifier of an OTN switch.
    OtnSwitchId,
    "otnsw"
);

define_id!(
    /// A line port of a specific OTN switch (local numbering).
    LinePortId,
    "lp"
);

define_id!(
    /// A client port of a specific OTN switch (local numbering).
    ClientPortId,
    "cp"
);

define_id!(
    /// One low-order ODU cross-connect within a switch.
    XcId,
    "xc"
);

/// Newtype tying a line port to the photonic line rate backing it
/// (used by [`OduRate::for_line_rate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WavelengthLineRate(pub LineRate);

/// One endpoint of a cross-connect.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum XcEndpoint {
    /// A client port (the whole port).
    Client(ClientPortId),
    /// A set of tributary slots on a line port.
    Line {
        /// The line port.
        port: LinePortId,
        /// The allocated slot indices.
        ts: Vec<usize>,
    },
}

/// A low-order ODU cross-connect through the fabric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossConnect {
    /// This cross-connect's id.
    pub id: XcId,
    /// The low-order container being switched.
    pub rate: OduRate,
    /// One side.
    pub a: XcEndpoint,
    /// The other side.
    pub b: XcEndpoint,
}

/// Why the switch refused an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// No such client port.
    NoSuchClientPort(ClientPortId),
    /// No such line port.
    NoSuchLinePort(LinePortId),
    /// The client port is already cross-connected.
    ClientPortBusy(ClientPortId),
    /// Not enough free tributary slots on the line port.
    InsufficientTs {
        /// The port that ran out.
        port: LinePortId,
        /// Slots requested.
        needed: usize,
        /// Slots free.
        free: usize,
    },
    /// The low-order rate does not fit the client's mapped ODU.
    RateMismatch {
        /// What the client maps to.
        expected: OduRate,
        /// What was requested.
        got: OduRate,
    },
    /// Admitting this would exceed the fabric's switching capacity.
    FabricFull,
    /// No such cross-connect.
    NoSuchXc(XcId),
    /// Line-to-line cross-connects need two distinct ports.
    SamePort(LinePortId),
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::NoSuchClientPort(p) => write!(f, "no such client port {p}"),
            SwitchError::NoSuchLinePort(p) => write!(f, "no such line port {p}"),
            SwitchError::ClientPortBusy(p) => write!(f, "client port {p} busy"),
            SwitchError::InsufficientTs { port, needed, free } => {
                write!(f, "{port}: need {needed} TS, {free} free")
            }
            SwitchError::RateMismatch { expected, got } => {
                write!(f, "rate mismatch: expected {expected}, got {got}")
            }
            SwitchError::FabricFull => write!(f, "fabric capacity exhausted"),
            SwitchError::NoSuchXc(x) => write!(f, "no such cross-connect {x}"),
            SwitchError::SamePort(p) => write!(f, "cannot cross-connect {p} to itself"),
        }
    }
}

impl std::error::Error for SwitchError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClientPort {
    signal: ClientSignal,
    xc: Option<XcId>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct LinePort {
    /// High-order container (from the backing wavelength's rate).
    ho: OduRate,
    /// Slot occupancy: `Some(xc)` = held by that cross-connect.
    ts: Vec<Option<XcId>>,
}

/// An OTN cross-connect switch at one node.
///
/// ```
/// use otn::{ClientSignal, OtnSwitch};
/// use otn::switch::OtnSwitchId;
/// use photonic::{LineRate, RoadmId};
/// use simcore::DataRate;
///
/// let mut sw = OtnSwitch::new(OtnSwitchId::new(0), RoadmId::new(0), DataRate::from_gbps(320));
/// let client = sw.add_client_port(ClientSignal::GbE);
/// let line = sw.add_line_port(LineRate::Gbps10); // an ODU2: 8 tributary slots
/// let xc = sw.connect_client_to_line(client, line).unwrap();
/// assert_eq!(sw.free_ts(line), 7);
/// sw.disconnect(xc).unwrap();
/// assert_eq!(sw.free_ts(line), 8);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OtnSwitch {
    /// This switch's id.
    pub id: OtnSwitchId,
    /// The core PoP (ROADM node) it is collocated with.
    pub location: RoadmId,
    clients: Vec<ClientPort>,
    lines: Vec<LinePort>,
    xcs: BTreeMap<XcId, CrossConnect>,
    next_xc: u32,
    /// Total fabric switching capacity.
    pub fabric_capacity: DataRate,
}

impl OtnSwitch {
    /// A switch with the given fabric capacity and no ports.
    pub fn new(id: OtnSwitchId, location: RoadmId, fabric_capacity: DataRate) -> OtnSwitch {
        OtnSwitch {
            id,
            location,
            clients: Vec::new(),
            lines: Vec::new(),
            xcs: BTreeMap::new(),
            next_xc: 0,
            fabric_capacity,
        }
    }

    /// Add a client port accepting `signal`.
    pub fn add_client_port(&mut self, signal: ClientSignal) -> ClientPortId {
        self.clients.push(ClientPort { signal, xc: None });
        ClientPortId::from_index(self.clients.len() - 1)
    }

    /// Add a line port backed by a wavelength of `rate`.
    pub fn add_line_port(&mut self, rate: LineRate) -> LinePortId {
        let ho = OduRate::for_line_rate(WavelengthLineRate(rate));
        self.lines.push(LinePort {
            ho,
            ts: vec![None; ho.ts_capacity()],
        });
        LinePortId::from_index(self.lines.len() - 1)
    }

    /// Number of client ports.
    pub fn client_port_count(&self) -> usize {
        self.clients.len()
    }
    /// Number of line ports.
    pub fn line_port_count(&self) -> usize {
        self.lines.len()
    }
    /// Active cross-connect count.
    pub fn xc_count(&self) -> usize {
        self.xcs.len()
    }

    /// Free tributary slots on a line port.
    pub fn free_ts(&self, port: LinePortId) -> usize {
        self.lines
            .get(port.index())
            .map(|l| l.ts.iter().filter(|s| s.is_none()).count())
            .unwrap_or(0)
    }

    /// Total slots a line port offers.
    pub fn total_ts(&self, port: LinePortId) -> usize {
        self.lines
            .get(port.index())
            .map(|l| l.ts.len())
            .unwrap_or(0)
    }

    /// Is the client port free?
    pub fn client_free(&self, port: ClientPortId) -> bool {
        self.clients
            .get(port.index())
            .map(|c| c.xc.is_none())
            .unwrap_or(false)
    }

    /// The signal type a client port accepts.
    pub fn client_signal(&self, port: ClientPortId) -> Option<ClientSignal> {
        self.clients.get(port.index()).map(|c| c.signal)
    }

    /// Bandwidth currently switched through the fabric.
    pub fn fabric_used(&self) -> DataRate {
        self.xcs.values().map(|x| x.rate.payload()).sum()
    }

    /// Add/drop: cross-connect a client port onto tributary slots of a
    /// line port. The low-order rate is the client's standard mapping.
    pub fn connect_client_to_line(
        &mut self,
        client: ClientPortId,
        line: LinePortId,
    ) -> Result<XcId, SwitchError> {
        let signal = self
            .clients
            .get(client.index())
            .ok_or(SwitchError::NoSuchClientPort(client))?
            .signal;
        if !self.client_free(client) {
            return Err(SwitchError::ClientPortBusy(client));
        }
        let rate = signal.odu_mapping();
        self.check_fabric(rate)?;
        let id = self.fresh_xc();
        let ts = self.alloc_ts(line, rate.ts_needed(), id)?;
        self.clients[client.index()].xc = Some(id);
        self.xcs.insert(
            id,
            CrossConnect {
                id,
                rate,
                a: XcEndpoint::Client(client),
                b: XcEndpoint::Line { port: line, ts },
            },
        );
        Ok(id)
    }

    /// Transit grooming: cross-connect a low-order ODU between slots of
    /// two distinct line ports.
    pub fn connect_line_to_line(
        &mut self,
        a: LinePortId,
        b: LinePortId,
        rate: OduRate,
    ) -> Result<XcId, SwitchError> {
        if a == b {
            return Err(SwitchError::SamePort(a));
        }
        self.check_fabric(rate)?;
        let id = self.fresh_xc();
        let ts_a = self.alloc_ts(a, rate.ts_needed(), id)?;
        let ts_b = match self.alloc_ts(b, rate.ts_needed(), id) {
            Ok(ts) => ts,
            Err(e) => {
                // roll back the first allocation
                self.release_ts(a, id);
                return Err(e);
            }
        };
        self.xcs.insert(
            id,
            CrossConnect {
                id,
                rate,
                a: XcEndpoint::Line { port: a, ts: ts_a },
                b: XcEndpoint::Line { port: b, ts: ts_b },
            },
        );
        Ok(id)
    }

    /// Remove a cross-connect, freeing its slots and client port.
    pub fn disconnect(&mut self, xc: XcId) -> Result<(), SwitchError> {
        let x = self.xcs.remove(&xc).ok_or(SwitchError::NoSuchXc(xc))?;
        for ep in [&x.a, &x.b] {
            match ep {
                XcEndpoint::Client(c) => {
                    self.clients[c.index()].xc = None;
                }
                XcEndpoint::Line { port, .. } => {
                    self.release_ts(*port, xc);
                }
            }
        }
        Ok(())
    }

    /// Look a cross-connect up.
    pub fn xc(&self, id: XcId) -> Option<&CrossConnect> {
        self.xcs.get(&id)
    }

    /// All active cross-connects.
    pub fn xcs(&self) -> impl Iterator<Item = &CrossConnect> {
        self.xcs.values()
    }

    /// Cross-connects touching a line port (what a wavelength failure on
    /// that port impacts).
    pub fn xcs_on_line(&self, port: LinePortId) -> Vec<XcId> {
        self.xcs
            .values()
            .filter(|x| {
                [&x.a, &x.b]
                    .iter()
                    .any(|e| matches!(e, XcEndpoint::Line { port: p, .. } if *p == port))
            })
            .map(|x| x.id)
            .collect()
    }

    fn fresh_xc(&mut self) -> XcId {
        let id = XcId::new(self.next_xc);
        self.next_xc += 1;
        id
    }

    fn check_fabric(&self, rate: OduRate) -> Result<(), SwitchError> {
        if self.fabric_used() + rate.payload() > self.fabric_capacity {
            Err(SwitchError::FabricFull)
        } else {
            Ok(())
        }
    }

    fn alloc_ts(
        &mut self,
        port: LinePortId,
        n: usize,
        owner: XcId,
    ) -> Result<Vec<usize>, SwitchError> {
        let line = self
            .lines
            .get_mut(port.index())
            .ok_or(SwitchError::NoSuchLinePort(port))?;
        let free: Vec<usize> = line
            .ts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect();
        if free.len() < n {
            return Err(SwitchError::InsufficientTs {
                port,
                needed: n,
                free: free.len(),
            });
        }
        let picked: Vec<usize> = free.into_iter().take(n).collect();
        for i in &picked {
            line.ts[*i] = Some(owner);
        }
        Ok(picked)
    }

    fn release_ts(&mut self, port: LinePortId, owner: XcId) {
        for slot in &mut self.lines[port.index()].ts {
            if *slot == Some(owner) {
                *slot = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switch() -> OtnSwitch {
        OtnSwitch::new(
            OtnSwitchId::new(0),
            RoadmId::new(0),
            DataRate::from_gbps(320),
        )
    }

    #[test]
    fn client_add_drop_allocates_slots() {
        let mut s = switch();
        let c = s.add_client_port(ClientSignal::GbE);
        let l = s.add_line_port(LineRate::Gbps10);
        assert_eq!(s.total_ts(l), 8);
        let xc = s.connect_client_to_line(c, l).unwrap();
        assert_eq!(s.free_ts(l), 7);
        assert!(!s.client_free(c));
        assert_eq!(s.xc(xc).unwrap().rate, OduRate::Odu0);
        s.disconnect(xc).unwrap();
        assert_eq!(s.free_ts(l), 8);
        assert!(s.client_free(c));
    }

    #[test]
    fn ten_gig_client_fills_odu2_line() {
        let mut s = switch();
        let c = s.add_client_port(ClientSignal::TenGbE);
        let l = s.add_line_port(LineRate::Gbps10);
        s.connect_client_to_line(c, l).unwrap();
        assert_eq!(s.free_ts(l), 0);
        // A second client cannot fit.
        let c2 = s.add_client_port(ClientSignal::GbE);
        assert!(matches!(
            s.connect_client_to_line(c2, l),
            Err(SwitchError::InsufficientTs {
                needed: 1,
                free: 0,
                ..
            })
        ));
    }

    #[test]
    fn odu3_line_takes_thirty_two_gbe() {
        let mut s = switch();
        let l = s.add_line_port(LineRate::Gbps40);
        assert_eq!(s.total_ts(l), 32);
        for _ in 0..32 {
            let c = s.add_client_port(ClientSignal::GbE);
            s.connect_client_to_line(c, l).unwrap();
        }
        assert_eq!(s.free_ts(l), 0);
        assert_eq!(s.xc_count(), 32);
    }

    #[test]
    fn busy_client_rejected() {
        let mut s = switch();
        let c = s.add_client_port(ClientSignal::GbE);
        let l = s.add_line_port(LineRate::Gbps10);
        s.connect_client_to_line(c, l).unwrap();
        assert_eq!(
            s.connect_client_to_line(c, l),
            Err(SwitchError::ClientPortBusy(c))
        );
    }

    #[test]
    fn line_to_line_grooming_and_rollback() {
        let mut s = switch();
        let l1 = s.add_line_port(LineRate::Gbps10);
        let l2 = s.add_line_port(LineRate::Gbps10);
        let xc = s.connect_line_to_line(l1, l2, OduRate::Odu1).unwrap();
        assert_eq!(s.free_ts(l1), 6);
        assert_eq!(s.free_ts(l2), 6);
        // Fill l2 completely, then a transit attempt must roll back l1.
        let big = s.add_client_port(ClientSignal::GbE);
        for _ in 0..6 {
            let c = s.add_client_port(ClientSignal::GbE);
            s.connect_client_to_line(c, l2).unwrap();
        }
        let _ = big;
        let before = s.free_ts(l1);
        assert!(s.connect_line_to_line(l1, l2, OduRate::Odu1).is_err());
        assert_eq!(s.free_ts(l1), before, "failed attempt must not leak TS");
        s.disconnect(xc).unwrap();
        assert_eq!(s.free_ts(l1), 8);
    }

    #[test]
    fn same_port_rejected() {
        let mut s = switch();
        let l = s.add_line_port(LineRate::Gbps10);
        assert_eq!(
            s.connect_line_to_line(l, l, OduRate::Odu0),
            Err(SwitchError::SamePort(l))
        );
    }

    #[test]
    fn fabric_capacity_enforced() {
        let mut s = OtnSwitch::new(OtnSwitchId::new(0), RoadmId::new(0), DataRate::from_gbps(2));
        let l = s.add_line_port(LineRate::Gbps10);
        let c1 = s.add_client_port(ClientSignal::GbE);
        let c2 = s.add_client_port(ClientSignal::GbE);
        s.connect_client_to_line(c1, l).unwrap();
        // 1.244 + 1.244 > 2 G fabric.
        assert_eq!(
            s.connect_client_to_line(c2, l),
            Err(SwitchError::FabricFull)
        );
        assert_eq!(s.fabric_used(), OduRate::Odu0.payload());
    }

    #[test]
    fn xcs_on_line_finds_impacted() {
        let mut s = switch();
        let l1 = s.add_line_port(LineRate::Gbps10);
        let l2 = s.add_line_port(LineRate::Gbps10);
        let c = s.add_client_port(ClientSignal::GbE);
        let x1 = s.connect_client_to_line(c, l1).unwrap();
        let x2 = s.connect_line_to_line(l1, l2, OduRate::Odu0).unwrap();
        let on_l1 = s.xcs_on_line(l1);
        assert!(on_l1.contains(&x1) && on_l1.contains(&x2));
        assert_eq!(s.xcs_on_line(l2), vec![x2]);
    }

    #[test]
    fn errors_on_unknown_ids() {
        let mut s = switch();
        let c = s.add_client_port(ClientSignal::GbE);
        assert_eq!(
            s.connect_client_to_line(c, LinePortId::new(7)),
            Err(SwitchError::NoSuchLinePort(LinePortId::new(7)))
        );
        assert_eq!(
            s.connect_client_to_line(ClientPortId::new(9), LinePortId::new(0)),
            Err(SwitchError::NoSuchClientPort(ClientPortId::new(9)))
        );
        assert_eq!(
            s.disconnect(XcId::new(5)),
            Err(SwitchError::NoSuchXc(XcId::new(5)))
        );
    }

    #[test]
    fn client_signal_lookup() {
        let mut s = switch();
        let c = s.add_client_port(ClientSignal::Oc48);
        assert_eq!(s.client_signal(c), Some(ClientSignal::Oc48));
        assert_eq!(s.client_signal(ClientPortId::new(5)), None);
    }
}
