//! Shared-mesh restoration in the OTN layer.
//!
//! §2.1: the OTN layer *"can provide automatic sub-second shared-mesh
//! restoration similar to today's SONET layer."* Unlike 1+1 protection
//! (dedicated standby bandwidth per circuit), shared-mesh restoration
//! reserves a *pool* of backup tributary slots on each link that many
//! circuits share — cheap, because simultaneous failures are rare, at the
//! cost of activation signalling when a failure does occur.
//!
//! Model: each protected circuit has a pre-computed backup path that is
//! link-disjoint from its working path. On a fiber failure, impacted
//! circuits activate their backups by claiming slots from each backup
//! link's shared pool, in circuit-id order (deterministic). Activation
//! time is detection + per-hop signalling + per-node cross-connect
//! configuration — hundreds of milliseconds, matching the paper's
//! sub-second claim and experiment E2's middle row.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use simcore::{define_id, SimDuration};

use photonic::FiberId;

use crate::odu::OduRate;

define_id!(
    /// Identifier of a protected OTN circuit.
    CircuitId,
    "ckt"
);

/// A circuit protected by shared-mesh restoration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectedCircuit {
    /// This circuit's id.
    pub id: CircuitId,
    /// Its low-order container.
    pub odu: OduRate,
    /// The working path (fiber sequence).
    pub working: Vec<FiberId>,
    /// The pre-computed backup path; must be link-disjoint from working.
    pub backup: Vec<FiberId>,
}

/// What happened to one circuit during an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestorationOutcome {
    /// Switched to backup after the given outage duration.
    Restored {
        /// Outage seen by the circuit (failure → traffic on backup).
        outage: SimDuration,
    },
    /// The shared pool ran out on some backup link.
    OutOfCapacity {
        /// The first link that could not supply slots.
        at: FiberId,
    },
    /// The backup path itself crosses the failed fiber.
    BackupAlsoFailed,
}

/// Timing parameters of the restoration signalling machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RestorationTiming {
    /// Failure detection (LOS + alarm correlation inside the switch).
    pub detect: SimDuration,
    /// Signalling latency per backup-path hop.
    pub per_hop: SimDuration,
    /// Cross-connect configuration per node on the backup path.
    pub per_node_xc: SimDuration,
}

impl Default for RestorationTiming {
    fn default() -> Self {
        RestorationTiming {
            detect: SimDuration::from_millis(50),
            per_hop: SimDuration::from_millis(15),
            per_node_xc: SimDuration::from_millis(25),
        }
    }
}

/// The shared-mesh restoration machinery for a set of circuits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshRestoration {
    circuits: Vec<ProtectedCircuit>,
    /// Reserved backup slots per link (the shared pool).
    pool: BTreeMap<FiberId, usize>,
    /// Timing model.
    pub timing: RestorationTiming,
}

impl MeshRestoration {
    /// Empty machinery with default timing.
    pub fn new() -> MeshRestoration {
        MeshRestoration {
            circuits: Vec::new(),
            pool: BTreeMap::new(),
            timing: RestorationTiming::default(),
        }
    }

    /// Register a protected circuit.
    ///
    /// # Panics
    /// If working and backup paths share a fiber (not link-disjoint) or
    /// the backup is empty.
    pub fn protect(&mut self, c: ProtectedCircuit) {
        assert!(!c.backup.is_empty(), "{}: empty backup path", c.id);
        assert!(
            c.working.iter().all(|f| !c.backup.contains(f)),
            "{}: backup not link-disjoint from working",
            c.id
        );
        self.circuits.push(c);
    }

    /// Reserve `ts` shared backup slots on `link`.
    pub fn reserve(&mut self, link: FiberId, ts: usize) {
        *self.pool.entry(link).or_insert(0) += ts;
    }

    /// The reserved pool on a link.
    pub fn reserved(&self, link: FiberId) -> usize {
        self.pool.get(&link).copied().unwrap_or(0)
    }

    /// Registered circuits.
    pub fn circuits(&self) -> &[ProtectedCircuit] {
        &self.circuits
    }

    /// Size every link's pool exactly for the worst single-fiber failure:
    /// for each possible failed fiber, sum the backup slots its impacted
    /// circuits would claim per backup link; reserve the per-link maximum.
    /// Returns total slots reserved (the "cost" of protection, compared
    /// against 1+1's dedicated copy in experiment E2).
    pub fn dimension_for_single_failures(&mut self) -> usize {
        let mut per_link_max: BTreeMap<FiberId, usize> = BTreeMap::new();
        let failures: Vec<FiberId> = self
            .circuits
            .iter()
            .flat_map(|c| c.working.iter().copied())
            .collect();
        for failed in failures {
            let mut needed: BTreeMap<FiberId, usize> = BTreeMap::new();
            for c in &self.circuits {
                if c.working.contains(&failed) {
                    for b in &c.backup {
                        *needed.entry(*b).or_insert(0) += c.odu.ts_needed();
                    }
                }
            }
            for (l, n) in needed {
                let m = per_link_max.entry(l).or_insert(0);
                *m = (*m).max(n);
            }
        }
        self.pool = per_link_max;
        self.pool.values().sum()
    }

    /// Slots 1+1 dedicated protection would need for the same circuits
    /// (every circuit's full backup reserved on every backup link).
    pub fn dedicated_equivalent(&self) -> usize {
        self.circuits
            .iter()
            .map(|c| c.odu.ts_needed() * c.backup.len())
            .sum()
    }

    /// A fiber failed: activate backups for all impacted circuits, in
    /// circuit-id order. Consumes pool slots; the pool stays consumed
    /// until [`Self::revert`].
    pub fn activate_for_failure(
        &mut self,
        failed: FiberId,
    ) -> Vec<(CircuitId, RestorationOutcome)> {
        let mut out = Vec::new();
        let mut order: Vec<usize> = (0..self.circuits.len())
            .filter(|i| self.circuits[*i].working.contains(&failed))
            .collect();
        order.sort_by_key(|i| self.circuits[*i].id);
        for i in order {
            let c = &self.circuits[i];
            if c.backup.contains(&failed) {
                out.push((c.id, RestorationOutcome::BackupAlsoFailed));
                continue;
            }
            let need = c.odu.ts_needed();
            // All-or-nothing claim across the backup path.
            if let Some(short) = c
                .backup
                .iter()
                .find(|l| self.pool.get(l).copied().unwrap_or(0) < need)
            {
                out.push((c.id, RestorationOutcome::OutOfCapacity { at: *short }));
                continue;
            }
            for l in &c.backup {
                *self.pool.get_mut(l).expect("checked above") -= need;
            }
            let hops = c.backup.len() as u64;
            let nodes = hops + 1;
            let outage =
                self.timing.detect + self.timing.per_hop * hops + self.timing.per_node_xc * nodes;
            out.push((c.id, RestorationOutcome::Restored { outage }));
        }
        out
    }

    /// The failure is repaired and circuits reverted to their working
    /// paths: return the claimed slots to the pool.
    pub fn revert(&mut self, restored: &[(CircuitId, RestorationOutcome)]) {
        for (id, outcome) in restored {
            if !matches!(outcome, RestorationOutcome::Restored { .. }) {
                continue;
            }
            let c = self
                .circuits
                .iter()
                .find(|c| c.id == *id)
                .expect("unknown circuit in revert");
            for l in &c.backup {
                *self.pool.entry(*l).or_insert(0) += c.odu.ts_needed();
            }
        }
    }
}

impl Default for MeshRestoration {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(i: u32) -> FiberId {
        FiberId::new(i)
    }

    /// Two circuits whose working paths share fiber 0, backups share 2.
    fn two_circuits() -> MeshRestoration {
        let mut m = MeshRestoration::new();
        m.protect(ProtectedCircuit {
            id: CircuitId::new(0),
            odu: OduRate::Odu0,
            working: vec![fid(0)],
            backup: vec![fid(2), fid(3)],
        });
        m.protect(ProtectedCircuit {
            id: CircuitId::new(1),
            odu: OduRate::Odu0,
            working: vec![fid(0), fid(1)],
            backup: vec![fid(2), fid(4)],
        });
        m
    }

    #[test]
    fn dimensioning_covers_worst_single_failure() {
        let mut m = two_circuits();
        let total = m.dimension_for_single_failures();
        // Failure of fiber 0 impacts both circuits: link 2 needs 2 TS,
        // links 3 and 4 need 1 each → total 4.
        assert_eq!(m.reserved(fid(2)), 2);
        assert_eq!(m.reserved(fid(3)), 1);
        assert_eq!(m.reserved(fid(4)), 1);
        assert_eq!(total, 4);
        // Dedicated 1+1 would reserve 2+2 = 4 per-circuit slots… same here
        // because backups overlap on one link only; sharing wins more as
        // disjoint failures multiply (see next test).
        assert_eq!(m.dedicated_equivalent(), 4);
    }

    #[test]
    fn sharing_beats_dedicated_for_disjoint_failures() {
        let mut m = MeshRestoration::new();
        // Two circuits with disjoint working paths but the same backup
        // path: shared pool needs one circuit's worth, dedicated two.
        for (i, w) in [fid(0), fid(1)].iter().enumerate() {
            m.protect(ProtectedCircuit {
                id: CircuitId::new(i as u32),
                odu: OduRate::Odu1,
                working: vec![*w],
                backup: vec![fid(5)],
            });
        }
        let shared = m.dimension_for_single_failures();
        assert_eq!(shared, 2); // one ODU1 (2 TS)
        assert_eq!(m.dedicated_equivalent(), 4);
    }

    #[test]
    fn activation_is_subsecond_and_claims_pool() {
        let mut m = two_circuits();
        m.dimension_for_single_failures();
        let outcomes = m.activate_for_failure(fid(0));
        assert_eq!(outcomes.len(), 2);
        for (_, o) in &outcomes {
            match o {
                RestorationOutcome::Restored { outage } => {
                    assert!(*outage < SimDuration::from_secs(1), "outage={outage}");
                    assert!(*outage > SimDuration::from_millis(50));
                }
                other => panic!("expected restore, got {other:?}"),
            }
        }
        assert_eq!(m.reserved(fid(2)), 0);
        // Revert returns the slots.
        m.revert(&outcomes);
        assert_eq!(m.reserved(fid(2)), 2);
    }

    #[test]
    fn pool_exhaustion_reported() {
        let mut m = two_circuits();
        // Under-provision link 2 deliberately.
        m.reserve(fid(2), 1);
        m.reserve(fid(3), 1);
        m.reserve(fid(4), 1);
        let outcomes = m.activate_for_failure(fid(0));
        assert!(matches!(outcomes[0].1, RestorationOutcome::Restored { .. }));
        assert_eq!(
            outcomes[1].1,
            RestorationOutcome::OutOfCapacity { at: fid(2) }
        );
    }

    #[test]
    fn backup_through_failure_detected() {
        let mut m = MeshRestoration::new();
        m.protect(ProtectedCircuit {
            id: CircuitId::new(0),
            odu: OduRate::Odu0,
            working: vec![fid(0), fid(1)],
            backup: vec![fid(2)],
        });
        m.reserve(fid(2), 8);
        // Fail a fiber on the *backup* of a circuit whose working also
        // uses it? Here: fail fiber used by working only → restored; then
        // check the shared-fiber case via a circuit whose backup contains
        // the failed fiber.
        let mut m2 = MeshRestoration::new();
        m2.protect(ProtectedCircuit {
            id: CircuitId::new(0),
            odu: OduRate::Odu0,
            working: vec![fid(0)],
            backup: vec![fid(1)],
        });
        m2.protect(ProtectedCircuit {
            id: CircuitId::new(1),
            odu: OduRate::Odu0,
            working: vec![fid(1)],
            backup: vec![fid(0)],
        });
        m2.reserve(fid(0), 8);
        m2.reserve(fid(1), 8);
        // Fiber 1 fails: circuit 1's working dies; its backup (fiber 0)
        // is fine → restored. Circuit 0 is unaffected (working = fiber 0).
        let o = m2.activate_for_failure(fid(1));
        assert_eq!(o.len(), 1);
        assert!(matches!(o[0].1, RestorationOutcome::Restored { .. }));
    }

    #[test]
    fn outage_grows_with_backup_length() {
        let mut m = MeshRestoration::new();
        m.protect(ProtectedCircuit {
            id: CircuitId::new(0),
            odu: OduRate::Odu0,
            working: vec![fid(0)],
            backup: vec![fid(1)],
        });
        m.protect(ProtectedCircuit {
            id: CircuitId::new(1),
            odu: OduRate::Odu0,
            working: vec![fid(0)],
            backup: vec![fid(2), fid(3), fid(4)],
        });
        for l in 1..5 {
            m.reserve(fid(l), 8);
        }
        let o = m.activate_for_failure(fid(0));
        let outage = |x: &RestorationOutcome| match x {
            RestorationOutcome::Restored { outage } => *outage,
            _ => panic!(),
        };
        assert!(outage(&o[1].1) > outage(&o[0].1));
    }

    #[test]
    #[should_panic(expected = "link-disjoint")]
    fn non_disjoint_backup_rejected() {
        let mut m = MeshRestoration::new();
        m.protect(ProtectedCircuit {
            id: CircuitId::new(0),
            odu: OduRate::Odu0,
            working: vec![fid(0), fid(1)],
            backup: vec![fid(1), fid(2)],
        });
    }
}
