//! The Wideband Digital Cross-connect System (W-DCS) layer.
//!
//! Fig. 1's top TDM layer: *"The Wide-band Digital Cross-connect System
//! (W-DCS) is above the SONET layer and consists of DCS-3/1s and other
//! DCS that cross-connect at greater than DS0 but below DS3 rates. It
//! provides n×DS1 (1.5 Mbps) TDM connections."*
//!
//! Included for completeness of the "today's reality" stack: the lowest
//! rung of guaranteed-bandwidth service, three orders of magnitude below
//! the wavelengths GRIPhoN makes dynamic. A DS3 carries 28 DS1s; the
//! W-DCS grooms n×DS1 circuits into DS3s that ride SONET STS-1s.

use serde::{Deserialize, Serialize};
use simcore::{define_id, DataRate};
use std::fmt;

define_id!(
    /// Identifier of an n×DS1 circuit.
    Ds1CircuitId,
    "ds1c"
);

/// A count of DS1 channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ds1(pub u32);

impl Ds1 {
    /// The DS1 line rate (1.544 Mbps).
    pub const RATE: DataRate = DataRate::from_bps(1_544_000);
    /// DS1s per DS3 (the M13 multiplex: 28).
    pub const PER_DS3: u32 = 28;

    /// Aggregate rate of `n` DS1s.
    pub fn rate(self) -> DataRate {
        DataRate::from_bps(Self::RATE.bps() * self.0 as u64)
    }

    /// The DS3 line rate (44.736 Mbps) — the W-DCS service ceiling.
    pub const DS3_RATE: DataRate = DataRate::from_bps(44_736_000);

    /// Smallest n×DS1 group carrying `demand`, if the demand stays below
    /// the DS3 *rate* (the W-DCS ceiling — faster demands move up a
    /// layer). The group may span DS3 uplinks: a 44 Mbps demand needs 29
    /// DS1s, one more than a single DS3 carries, and is still a W-DCS
    /// service; whether the node has uplink capacity for it is the
    /// provisioning check, not the categorization.
    pub fn group_for(demand: DataRate) -> Option<Ds1> {
        if demand.bps() >= Self::DS3_RATE.bps() {
            return None;
        }
        let n = demand.bps().div_ceil(Self::RATE.bps()) as u32;
        Some(Ds1(n.max(1)))
    }
}

impl fmt::Display for Ds1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×DS1", self.0)
    }
}

/// One provisioned n×DS1 circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ds1Circuit {
    /// This circuit's id.
    pub id: Ds1CircuitId,
    /// Group size.
    pub group: Ds1,
}

/// A W-DCS grooming DS1 circuits into DS3 uplinks toward SONET.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WdcsNode {
    /// DS3 uplinks available toward the SONET layer.
    pub ds3_uplinks: u32,
    circuits: Vec<Ds1Circuit>,
    next: u32,
}

/// Why a W-DCS order failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WdcsError {
    /// The demand exceeds what n×DS1 service carries (≥ DS3) — buy a
    /// SONET private line instead.
    AboveDs3,
    /// No DS1 capacity left on the uplinks.
    Exhausted,
}

impl fmt::Display for WdcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WdcsError::AboveDs3 => write!(f, "demand at/above DS3 — wrong layer"),
            WdcsError::Exhausted => write!(f, "DS1 capacity exhausted"),
        }
    }
}

impl std::error::Error for WdcsError {}

impl WdcsNode {
    /// A node with `ds3_uplinks` DS3s of capacity.
    pub fn new(ds3_uplinks: u32) -> WdcsNode {
        WdcsNode {
            ds3_uplinks,
            circuits: Vec::new(),
            next: 0,
        }
    }

    /// Total DS1 capacity.
    pub fn capacity(&self) -> u32 {
        self.ds3_uplinks * Ds1::PER_DS3
    }

    /// DS1s currently committed.
    pub fn in_use(&self) -> u32 {
        self.circuits.iter().map(|c| c.group.0).sum()
    }

    /// Provision an n×DS1 circuit carrying at least `demand`.
    pub fn provision(&mut self, demand: DataRate) -> Result<Ds1Circuit, WdcsError> {
        let group = Ds1::group_for(demand).ok_or(WdcsError::AboveDs3)?;
        if self.in_use() + group.0 > self.capacity() {
            return Err(WdcsError::Exhausted);
        }
        let c = Ds1Circuit {
            id: Ds1CircuitId::new(self.next),
            group,
        };
        self.next += 1;
        self.circuits.push(c.clone());
        Ok(c)
    }

    /// Release a circuit.
    ///
    /// # Panics
    /// If the id is unknown.
    pub fn release(&mut self, id: Ds1CircuitId) {
        let i = self
            .circuits
            .iter()
            .position(|c| c.id == id)
            .unwrap_or_else(|| panic!("unknown circuit {id}"));
        self.circuits.remove(i);
    }

    /// Fill fraction of the uplinks.
    pub fn fill(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.in_use() as f64 / self.capacity() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_grouping() {
        assert_eq!(Ds1(1).rate(), DataRate::from_bps(1_544_000));
        // 10 Mbps needs 7 DS1s.
        assert_eq!(Ds1::group_for(DataRate::from_mbps(10)), Some(Ds1(7)));
        // Zero demand still takes one channel.
        assert_eq!(Ds1::group_for(DataRate::ZERO), Some(Ds1(1)));
        // 45 Mbps ≈ DS3 — above the W-DCS ceiling.
        assert_eq!(Ds1::group_for(DataRate::from_mbps(45)), None);
        assert_eq!(Ds1(3).to_string(), "3×DS1");
    }

    #[test]
    fn provisioning_against_uplinks() {
        let mut n = WdcsNode::new(1); // 28 DS1s
        assert_eq!(n.capacity(), 28);
        let a = n.provision(DataRate::from_mbps(10)).unwrap(); // 7
        let _b = n.provision(DataRate::from_mbps(30)).unwrap(); // 20
        assert_eq!(n.in_use(), 27);
        assert!((n.fill() - 27.0 / 28.0).abs() < 1e-12);
        // 2 more DS1s won't fit.
        assert_eq!(
            n.provision(DataRate::from_mbps(3)),
            Err(WdcsError::Exhausted)
        );
        // But 1 will.
        n.provision(DataRate::from_mbps(1)).unwrap();
        assert_eq!(n.in_use(), 28);
        n.release(a.id);
        assert_eq!(n.in_use(), 21);
    }

    #[test]
    fn above_ds3_redirected_up_the_stack() {
        let mut n = WdcsNode::new(4);
        assert_eq!(
            n.provision(DataRate::from_mbps(100)),
            Err(WdcsError::AboveDs3)
        );
    }

    #[test]
    #[should_panic(expected = "unknown circuit")]
    fn release_unknown_panics() {
        WdcsNode::new(1).release(Ds1CircuitId::new(9));
    }
}
