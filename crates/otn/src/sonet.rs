//! The legacy SONET layer — "today's reality" for sub-wavelength service.
//!
//! §2.1 describes the incumbent stack: Broadband DCSs cross-connecting at
//! STS-1 (51.84 Mbps), ADM rings with sub-second automatic protection,
//! Ethernet private lines carried as virtually concatenated STS-1 pipes,
//! and circuit-based BoD fed from a dedicated access pipe. §1 notes
//! today's BoD tops out "usually at rates ≤ 622 Mbps" (OC-12).
//!
//! This module implements that baseline: [`SonetNetwork`] provisions
//! [`SonetService`]s (VCAT groups of STS-1s) quickly — electronic circuit
//! switches reconfigure in seconds — but refuses anything above the
//! OC-12 BoD ceiling, which is exactly the gap Table 1's first row
//! records and GRIPhoN closes. Ring protection (UPSR) restores in 50 ms
//! for protected services, the "low-data-rate services" restoration
//! figure of §1 item 3.

use serde::{Deserialize, Serialize};
use simcore::{define_id, DataRate, SimDuration};
use std::fmt;

define_id!(
    /// Identifier of a SONET service (a VCAT group).
    SonetServiceId,
    "sts-svc"
);

/// A count of concatenated STS-1 channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Sts(pub u32);

impl Sts {
    /// Payload rate of one STS-1 (SPE ≈ 49.5 Mbps usable; we use the
    /// 51.84 Mbps line figure consistently with carrier rate sheets).
    pub const STS1_RATE: DataRate = DataRate::from_bps(51_840_000);

    /// Aggregate rate of the group.
    pub fn rate(self) -> DataRate {
        DataRate::from_bps(Self::STS1_RATE.bps() * self.0 as u64)
    }

    /// Smallest group carrying `demand`, if it fits under `max` STS-1s.
    pub fn group_for(demand: DataRate, max: Sts) -> Option<Sts> {
        let n = demand.bps().div_ceil(Self::STS1_RATE.bps()) as u32;
        if n == 0 {
            Some(Sts(1)).filter(|s| s.0 <= max.0)
        } else if n <= max.0 {
            Some(Sts(n))
        } else {
            None
        }
    }
}

impl fmt::Display for Sts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×STS-1", self.0)
    }
}

/// Why the SONET layer refused a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SonetError {
    /// The requested rate exceeds the BoD ceiling (OC-12 / 622 Mbps).
    AboveBodCeiling {
        /// What was asked for.
        requested: DataRate,
        /// The ceiling.
        ceiling: DataRate,
    },
    /// The access pipe has no spare STS-1 capacity left.
    AccessPipeFull,
}

impl fmt::Display for SonetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SonetError::AboveBodCeiling { requested, ceiling } => {
                write!(f, "{requested} above SONET BoD ceiling {ceiling}")
            }
            SonetError::AccessPipeFull => write!(f, "access pipe exhausted"),
        }
    }
}

impl std::error::Error for SonetError {}

/// An active SONET private-line / EVC service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SonetService {
    /// This service's id.
    pub id: SonetServiceId,
    /// The VCAT group size.
    pub group: Sts,
    /// Ring-protected (UPSR) or unprotected.
    pub protected: bool,
}

/// The legacy SONET BoD machinery between one pair of sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SonetNetwork {
    /// BoD rate ceiling (OC-12 per the paper).
    pub bod_ceiling: DataRate,
    /// STS-1 capacity of the customer's dedicated access/metro pipe.
    pub access_sts: Sts,
    services: Vec<SonetService>,
    next_id: u32,
}

impl SonetNetwork {
    /// The paper-era defaults: 622 Mbps ceiling, an OC-48 access pipe
    /// (48 STS-1s).
    pub fn today() -> SonetNetwork {
        SonetNetwork {
            bod_ceiling: DataRate::from_mbps(622),
            access_sts: Sts(48),
            services: Vec::new(),
            next_id: 0,
        }
    }

    /// How long provisioning takes: electronic DCS reconfiguration, per
    /// §1 item 2 "achievable today … by re-configuring electronic circuit
    /// switches" — seconds, not weeks.
    pub fn provisioning_time(&self) -> SimDuration {
        SimDuration::from_secs(5)
    }

    /// Protection switch time for UPSR-protected services.
    pub fn protection_switch_time(&self) -> SimDuration {
        SimDuration::from_millis(50)
    }

    /// STS-1s currently committed.
    pub fn sts_in_use(&self) -> Sts {
        Sts(self.services.iter().map(|s| s.group.0).sum())
    }

    /// Provision a BoD service of at least `demand`.
    pub fn provision(
        &mut self,
        demand: DataRate,
        protected: bool,
    ) -> Result<SonetService, SonetError> {
        if demand > self.bod_ceiling {
            return Err(SonetError::AboveBodCeiling {
                requested: demand,
                ceiling: self.bod_ceiling,
            });
        }
        let max_free = Sts(self.access_sts.0 - self.sts_in_use().0);
        let group = Sts::group_for(demand, max_free).ok_or(SonetError::AccessPipeFull)?;
        let svc = SonetService {
            id: SonetServiceId::new(self.next_id),
            group,
            protected,
        };
        self.next_id += 1;
        self.services.push(svc.clone());
        Ok(svc)
    }

    /// Release a service.
    ///
    /// # Panics
    /// If the id is unknown.
    pub fn release(&mut self, id: SonetServiceId) {
        let i = self
            .services
            .iter()
            .position(|s| s.id == id)
            .unwrap_or_else(|| panic!("unknown service {id}"));
        self.services.remove(i);
    }

    /// Active services.
    pub fn services(&self) -> &[SonetService] {
        &self.services
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sts_rates() {
        assert_eq!(Sts(1).rate(), DataRate::from_bps(51_840_000));
        // OC-12 ≈ 622 Mbps = 12 STS-1.
        assert_eq!(Sts(12).rate(), DataRate::from_bps(622_080_000));
    }

    #[test]
    fn group_sizing_rounds_up() {
        assert_eq!(
            Sts::group_for(DataRate::from_mbps(100), Sts(48)),
            Some(Sts(2))
        );
        assert_eq!(
            Sts::group_for(DataRate::from_mbps(52), Sts(48)),
            Some(Sts(2)), // 52 M > 51.84 M → 2 channels
        );
        assert_eq!(
            Sts::group_for(DataRate::from_mbps(51), Sts(48)),
            Some(Sts(1))
        );
        assert_eq!(Sts::group_for(DataRate::from_gbps(10), Sts(48)), None);
        assert_eq!(Sts::group_for(DataRate::ZERO, Sts(48)), Some(Sts(1)));
    }

    #[test]
    fn ceiling_enforced() {
        let mut net = SonetNetwork::today();
        let err = net.provision(DataRate::from_gbps(1), false).unwrap_err();
        assert!(matches!(err, SonetError::AboveBodCeiling { .. }));
        // 622 M exactly is allowed.
        let svc = net.provision(DataRate::from_mbps(622), false).unwrap();
        assert_eq!(svc.group, Sts(12));
    }

    #[test]
    fn access_pipe_exhausts() {
        let mut net = SonetNetwork::today();
        // 4 × 12 STS-1 = 48 fills the OC-48 pipe.
        for _ in 0..4 {
            net.provision(DataRate::from_mbps(622), false).unwrap();
        }
        assert_eq!(net.sts_in_use(), Sts(48));
        assert_eq!(
            net.provision(DataRate::from_mbps(52), false),
            Err(SonetError::AccessPipeFull)
        );
    }

    #[test]
    fn release_returns_capacity() {
        let mut net = SonetNetwork::today();
        let svc = net.provision(DataRate::from_mbps(622), true).unwrap();
        assert_eq!(net.sts_in_use(), Sts(12));
        net.release(svc.id);
        assert_eq!(net.sts_in_use(), Sts(0));
        assert!(net.services().is_empty());
    }

    #[test]
    fn timings_match_paper() {
        let net = SonetNetwork::today();
        assert!(net.provisioning_time() < SimDuration::from_mins(1));
        assert_eq!(net.protection_switch_time(), SimDuration::from_millis(50));
    }
}
