//! Sub-wavelength grooming: packing many small demands into few
//! wavelengths.
//!
//! §2.1: *"Compared to using muxponders in the DWDM layer to provide
//! sub-wavelength connections, the OTN layer with its switching
//! capability can achieve more efficient packing of wavelengths in the
//! transport network."*
//!
//! Two packers implement the two sides of that comparison (experiment E6):
//!
//! - [`OtnGroomer`] — per-link grooming: demands are routed hop by hop
//!   and *re-multiplexed at every intermediate OTN switch*, so a
//!   wavelength on a given fiber carries tributaries of many different
//!   end-to-end flows. Wavelengths needed on a fiber =
//!   `ceil(slots crossing that fiber / slots per wavelength)`.
//! - [`MuxponderPacker`] — end-to-end packing only: a muxponder at the
//!   path head fixes the wavelength's contents for its whole journey, so
//!   only demands with the *same* endpoints can share a wavelength.
//!
//! Both report wavelength·link usage (the paper-era network-cost proxy:
//! each lit wavelength on each fiber consumes a transponder pair and grid
//! space) and fill ratio.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use photonic::{FiberId, LineRate, PhotonicNetwork, RoadmId};

use crate::odu::OduRate;
use crate::switch::WavelengthLineRate;

/// One sub-wavelength demand between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Demand {
    /// Caller-chosen id.
    pub id: u32,
    /// Source node.
    pub from: RoadmId,
    /// Destination node.
    pub to: RoadmId,
    /// The low-order container the demand needs.
    pub odu: OduRate,
}

/// Outcome of a packing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroomingResult {
    /// Wavelengths lit per fiber.
    pub wavelengths_per_fiber: BTreeMap<FiberId, usize>,
    /// Σ over fibers of lit wavelengths (wavelength·link cost proxy).
    pub wavelength_links: usize,
    /// Total tributary slots consumed across all fibers.
    pub ts_used: usize,
    /// Demands that could not be routed (disconnected endpoints).
    pub unrouted: Vec<u32>,
}

impl GroomingResult {
    /// Used slots over offered slots across all lit wavelengths
    /// (1.0 = perfect packing).
    pub fn fill_ratio(&self, per_wavelength_ts: usize) -> f64 {
        let offered: usize = self.wavelength_links * per_wavelength_ts;
        if offered == 0 {
            0.0
        } else {
            self.ts_used as f64 / offered as f64
        }
    }
}

fn route_demands<'a>(
    net: &PhotonicNetwork,
    demands: &'a [Demand],
) -> (Vec<(&'a Demand, Vec<FiberId>)>, Vec<u32>) {
    let mut routed = Vec::new();
    let mut unrouted = Vec::new();
    for d in demands {
        match net.shortest_path_hops(d.from, d.to) {
            Some(path) if !path.is_empty() => routed.push((d, path)),
            _ => unrouted.push(d.id),
        }
    }
    (routed, unrouted)
}

/// Per-link grooming through intermediate OTN switches.
#[derive(Debug, Clone, Copy)]
pub struct OtnGroomer {
    /// The wavelength line rate grooming packs into.
    pub line_rate: LineRate,
}

impl OtnGroomer {
    /// Slots one wavelength of the configured rate offers.
    pub fn ts_per_wavelength(&self) -> usize {
        OduRate::for_line_rate(WavelengthLineRate(self.line_rate)).ts_capacity()
    }

    /// Pack `demands` over shortest paths with per-link re-grooming.
    pub fn pack(&self, net: &PhotonicNetwork, demands: &[Demand]) -> GroomingResult {
        let cap = self.ts_per_wavelength();
        let (routed, unrouted) = route_demands(net, demands);
        let mut ts_per_fiber: BTreeMap<FiberId, usize> = BTreeMap::new();
        let mut ts_used = 0;
        for (d, path) in routed {
            for f in path {
                *ts_per_fiber.entry(f).or_insert(0) += d.odu.ts_needed();
                ts_used += d.odu.ts_needed();
            }
        }
        let wavelengths_per_fiber: BTreeMap<FiberId, usize> = ts_per_fiber
            .iter()
            .map(|(f, ts)| (*f, ts.div_ceil(cap)))
            .collect();
        GroomingResult {
            wavelength_links: wavelengths_per_fiber.values().sum(),
            wavelengths_per_fiber,
            ts_used,
            unrouted,
        }
    }
}

/// End-to-end muxponder packing (no intermediate grooming).
#[derive(Debug, Clone, Copy)]
pub struct MuxponderPacker {
    /// The muxponder's line-side rate.
    pub line_rate: LineRate,
}

impl MuxponderPacker {
    /// Slots one muxponder wavelength offers.
    pub fn ts_per_wavelength(&self) -> usize {
        OduRate::for_line_rate(WavelengthLineRate(self.line_rate)).ts_capacity()
    }

    /// Pack `demands`: only same-endpoint demands share a wavelength, and
    /// each wavelength occupies every fiber of its path.
    pub fn pack(&self, net: &PhotonicNetwork, demands: &[Demand]) -> GroomingResult {
        let cap = self.ts_per_wavelength();
        let (routed, unrouted) = route_demands(net, demands);
        // Group by unordered endpoint pair.
        let mut groups: BTreeMap<(RoadmId, RoadmId), (usize, Vec<FiberId>)> = BTreeMap::new();
        let mut ts_used = 0;
        for (d, path) in routed {
            let key = if d.from <= d.to {
                (d.from, d.to)
            } else {
                (d.to, d.from)
            };
            let entry = groups.entry(key).or_insert_with(|| (0, path.clone()));
            entry.0 += d.odu.ts_needed();
            ts_used += d.odu.ts_needed() * entry.1.len();
        }
        let mut wavelengths_per_fiber: BTreeMap<FiberId, usize> = BTreeMap::new();
        for (ts, path) in groups.values() {
            let wl = ts.div_ceil(cap);
            for f in path {
                *wavelengths_per_fiber.entry(*f).or_insert(0) += wl;
            }
        }
        GroomingResult {
            wavelength_links: wavelengths_per_fiber.values().sum(),
            wavelengths_per_fiber,
            ts_used,
            unrouted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photonic::PhotonicNetwork;

    /// A 3-node chain a—b—c so transit grooming has something to win.
    fn chain() -> (PhotonicNetwork, RoadmId, RoadmId, RoadmId) {
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b");
        let c = net.add_roadm("c");
        net.link(a, b, 100.0).unwrap();
        net.link(b, c, 100.0).unwrap();
        (net, a, b, c)
    }

    fn gbe(id: u32, from: RoadmId, to: RoadmId) -> Demand {
        Demand {
            id,
            from,
            to,
            odu: OduRate::Odu0,
        }
    }

    #[test]
    fn otn_grooms_transit_demands_together() {
        let (net, a, b, c) = chain();
        // 4 × GbE a→b and 4 × GbE a→c: on fiber a–b there are 8 slots
        // total → exactly one 10G wavelength with OTN grooming.
        let demands: Vec<Demand> = (0..4)
            .map(|i| gbe(i, a, b))
            .chain((4..8).map(|i| gbe(i, a, c)))
            .collect();
        let otn = OtnGroomer {
            line_rate: LineRate::Gbps10,
        }
        .pack(&net, &demands);
        let fab = net.fiber_between(a, b).unwrap();
        let fbc = net.fiber_between(b, c).unwrap();
        assert_eq!(otn.wavelengths_per_fiber[&fab], 1);
        assert_eq!(otn.wavelengths_per_fiber[&fbc], 1);
        assert_eq!(otn.wavelength_links, 2);
        assert!(otn.unrouted.is_empty());
    }

    #[test]
    fn muxponder_cannot_mix_endpoint_groups() {
        let (net, a, b, c) = chain();
        let demands: Vec<Demand> = (0..4)
            .map(|i| gbe(i, a, b))
            .chain((4..8).map(|i| gbe(i, a, c)))
            .collect();
        let mxp = MuxponderPacker {
            line_rate: LineRate::Gbps10,
        }
        .pack(&net, &demands);
        // a→b group: 1 λ on a–b. a→c group: 1 λ on a–b AND b–c.
        assert_eq!(mxp.wavelength_links, 3);
        let fab = net.fiber_between(a, b).unwrap();
        assert_eq!(mxp.wavelengths_per_fiber[&fab], 2);
    }

    #[test]
    fn otn_never_worse_than_muxponder() {
        let (net, a, b, c) = chain();
        for n in [1usize, 3, 7, 12, 20] {
            let demands: Vec<Demand> = (0..n as u32)
                .map(|i| {
                    let (from, to) = match i % 3 {
                        0 => (a, b),
                        1 => (b, c),
                        _ => (a, c),
                    };
                    gbe(i, from, to)
                })
                .collect();
            let otn = OtnGroomer {
                line_rate: LineRate::Gbps10,
            }
            .pack(&net, &demands);
            let mxp = MuxponderPacker {
                line_rate: LineRate::Gbps10,
            }
            .pack(&net, &demands);
            assert!(
                otn.wavelength_links <= mxp.wavelength_links,
                "n={n}: otn {} > mxp {}",
                otn.wavelength_links,
                mxp.wavelength_links
            );
        }
    }

    #[test]
    fn fill_ratio_bounds() {
        let (net, a, b, _) = chain();
        let demands = vec![gbe(0, a, b)];
        let g = OtnGroomer {
            line_rate: LineRate::Gbps10,
        };
        let r = g.pack(&net, &demands);
        // 1 slot used of 8 offered.
        assert!((r.fill_ratio(g.ts_per_wavelength()) - 0.125).abs() < 1e-12);
        let empty = g.pack(&net, &[]);
        assert_eq!(empty.fill_ratio(8), 0.0);
        assert_eq!(empty.wavelength_links, 0);
    }

    #[test]
    fn mixed_odu_rates_pack_by_slots() {
        let (net, a, b, _) = chain();
        // ODU2 (8 TS) + ODU0 (1 TS) on a 40G line (32 TS) → one λ.
        let demands = vec![
            Demand {
                id: 0,
                from: a,
                to: b,
                odu: OduRate::Odu2,
            },
            gbe(1, a, b),
        ];
        let r = OtnGroomer {
            line_rate: LineRate::Gbps40,
        }
        .pack(&net, &demands);
        assert_eq!(r.wavelength_links, 1);
        assert_eq!(r.ts_used, 9);
    }

    #[test]
    fn unrouted_demands_reported() {
        let mut net = PhotonicNetwork::new(photonic::ChannelGrid::C_BAND_80);
        let a = net.add_roadm("a");
        let b = net.add_roadm("b"); // no link
        let r = OtnGroomer {
            line_rate: LineRate::Gbps10,
        }
        .pack(&net, &[gbe(42, a, b)]);
        assert_eq!(r.unrouted, vec![42]);
        assert_eq!(r.wavelength_links, 0);
    }
}
