//! The G.709 ODU multiplexing hierarchy.
//!
//! An ODUk ("Optical Data Unit") is the digitally framed container OTN
//! switches operate on. Low-order ODUs are multiplexed into a high-order
//! ODU via 1.25 Gbps *tributary slots* (TS): an ODU2 offers 8 TS, an
//! ODU3 32, an ODU4 80. The paper's OTN switches "cross-connect at an
//! ODU0 rate (1.25 Gbps) and can support both TDM and Ethernet
//! packet-based client signals" (§2.1).
//!
//! The numbers below follow ITU-T G.709: the ODU payload rates are not
//! round decimal gigabits (ODU0 is 1.244 Gbps on the wire), but the slot
//! *counts* are exact, and slot counts are what grooming and switching
//! arithmetic use. We expose both: [`OduRate::payload`] for bandwidth
//! accounting against client demand, [`OduRate::ts_needed`] /
//! [`OduRate::ts_capacity`] for slot arithmetic.

use serde::{Deserialize, Serialize};
use simcore::DataRate;
use std::fmt;

/// The ODUk rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OduRate {
    /// 1.244 Gbps — carries one GbE. 1 tributary slot.
    Odu0,
    /// 2.498 Gbps — carries OC-48/STM-16. 2 tributary slots.
    Odu1,
    /// 10.037 Gbps — carries 10GbE WAN / OC-192. 8 tributary slots.
    Odu2,
    /// 40.319 Gbps — carries OC-768 / 40GbE. 32 tributary slots.
    Odu3,
    /// 104.794 Gbps — carries 100GbE. 80 tributary slots.
    Odu4,
    /// ODUflex (G.709 §12.2.5): a right-sized container of `n` 1.25 G
    /// tributary slots, for packet clients that fit none of the fixed
    /// rates — the finishing touch on "rate configurable over wide
    /// range" (1–80 slots).
    Flex {
        /// Tributary slots (1..=80).
        ts: u8,
    },
}

impl OduRate {
    /// All rates, ascending.
    pub const ALL: [OduRate; 5] = [
        OduRate::Odu0,
        OduRate::Odu1,
        OduRate::Odu2,
        OduRate::Odu3,
        OduRate::Odu4,
    ];

    /// Approximate payload bandwidth of this container.
    pub fn payload(self) -> DataRate {
        match self {
            OduRate::Odu0 => DataRate::from_mbps(1_244),
            OduRate::Odu1 => DataRate::from_mbps(2_498),
            OduRate::Odu2 => DataRate::from_mbps(10_037),
            OduRate::Odu3 => DataRate::from_mbps(40_319),
            OduRate::Odu4 => DataRate::from_mbps(104_794),
            // ODUflex payload is n × 1.24917 Gbps (ODTU slot rate).
            OduRate::Flex { ts } => DataRate::from_kbps(1_249_177 * ts as u64),
        }
    }

    /// The smallest ODUflex carrying `demand`, if it fits 80 slots.
    pub fn flex_for(demand: DataRate) -> Option<OduRate> {
        let slot = DataRate::from_kbps(1_249_177);
        let ts = demand.bps().div_ceil(slot.bps());
        if ts == 0 {
            Some(OduRate::Flex { ts: 1 })
        } else if ts <= 80 {
            Some(OduRate::Flex { ts: ts as u8 })
        } else {
            None
        }
    }

    /// 1.25 G tributary slots this container *occupies* when multiplexed
    /// as a low-order ODU into a high-order one.
    pub fn ts_needed(self) -> usize {
        match self {
            OduRate::Odu0 => 1,
            OduRate::Odu1 => 2,
            OduRate::Odu2 => 8,
            OduRate::Odu3 => 32,
            OduRate::Odu4 => 80,
            OduRate::Flex { ts } => ts as usize,
        }
    }

    /// 1.25 G tributary slots this container *offers* when used as the
    /// high-order server layer of a wavelength.
    pub fn ts_capacity(self) -> usize {
        self.ts_needed()
    }

    /// The smallest ODU whose payload fits `demand`, if any.
    pub fn smallest_fitting(demand: DataRate) -> Option<OduRate> {
        Self::ALL.into_iter().find(|o| o.payload() >= demand)
    }

    /// The high-order ODU corresponding to a wavelength line rate.
    pub fn for_line_rate(rate: crate::switch::WavelengthLineRate) -> OduRate {
        use photonic::LineRate::*;
        match rate.0 {
            Gbps10 => OduRate::Odu2,
            Gbps40 => OduRate::Odu3,
            Gbps100 => OduRate::Odu4,
        }
    }
}

impl fmt::Display for OduRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self {
            OduRate::Odu0 => 0,
            OduRate::Odu1 => 1,
            OduRate::Odu2 => 2,
            OduRate::Odu3 => 3,
            OduRate::Odu4 => 4,
            OduRate::Flex { ts } => return write!(f, "ODUflex({ts}TS)"),
        };
        write!(f, "ODU{k}")
    }
}

/// Client signals the OTN layer accepts (TDM and packet, per §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClientSignal {
    /// Gigabit Ethernet.
    GbE,
    /// 10 Gigabit Ethernet.
    TenGbE,
    /// 40 Gigabit Ethernet.
    FortyGbE,
    /// SONET OC-48 (2.5 G TDM).
    Oc48,
    /// SONET OC-192 (10 G TDM).
    Oc192,
}

impl ClientSignal {
    /// The client's native rate.
    pub fn rate(self) -> DataRate {
        match self {
            ClientSignal::GbE => DataRate::from_gbps(1),
            ClientSignal::TenGbE => DataRate::from_gbps(10),
            ClientSignal::FortyGbE => DataRate::from_gbps(40),
            ClientSignal::Oc48 => DataRate::from_mbps(2_488),
            ClientSignal::Oc192 => DataRate::from_mbps(9_953),
        }
    }

    /// The standard G.709 mapping of this client into an ODU.
    pub fn odu_mapping(self) -> OduRate {
        match self {
            ClientSignal::GbE => OduRate::Odu0,
            ClientSignal::TenGbE => OduRate::Odu2,
            ClientSignal::FortyGbE => OduRate::Odu3,
            ClientSignal::Oc48 => OduRate::Odu1,
            ClientSignal::Oc192 => OduRate::Odu2,
        }
    }
}

impl fmt::Display for ClientSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClientSignal::GbE => "GbE",
            ClientSignal::TenGbE => "10GbE",
            ClientSignal::FortyGbE => "40GbE",
            ClientSignal::Oc48 => "OC-48",
            ClientSignal::Oc192 => "OC-192",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counts_match_g709() {
        assert_eq!(OduRate::Odu0.ts_needed(), 1);
        assert_eq!(OduRate::Odu1.ts_needed(), 2);
        assert_eq!(OduRate::Odu2.ts_capacity(), 8);
        assert_eq!(OduRate::Odu3.ts_capacity(), 32);
        assert_eq!(OduRate::Odu4.ts_capacity(), 80);
    }

    #[test]
    fn payloads_ascend() {
        for pair in OduRate::ALL.windows(2) {
            assert!(pair[0].payload() < pair[1].payload());
        }
    }

    #[test]
    fn smallest_fitting_respects_actual_payloads() {
        // 1 GbE fits ODU0.
        assert_eq!(
            OduRate::smallest_fitting(DataRate::from_gbps(1)),
            Some(OduRate::Odu0)
        );
        // 2.5 G does NOT fit ODU1 (payload 2.498 G) — needs ODU2.
        assert_eq!(
            OduRate::smallest_fitting(DataRate::from_mbps(2_500)),
            Some(OduRate::Odu2)
        );
        // 10 G fits ODU2 (10.037 G payload).
        assert_eq!(
            OduRate::smallest_fitting(DataRate::from_gbps(10)),
            Some(OduRate::Odu2)
        );
        assert_eq!(
            OduRate::smallest_fitting(DataRate::from_gbps(40)),
            Some(OduRate::Odu3)
        );
        assert_eq!(OduRate::smallest_fitting(DataRate::from_gbps(200)), None);
    }

    #[test]
    fn client_mappings() {
        assert_eq!(ClientSignal::GbE.odu_mapping(), OduRate::Odu0);
        assert_eq!(ClientSignal::TenGbE.odu_mapping(), OduRate::Odu2);
        assert_eq!(ClientSignal::Oc48.odu_mapping(), OduRate::Odu1);
        assert_eq!(ClientSignal::Oc192.odu_mapping(), OduRate::Odu2);
        assert_eq!(ClientSignal::FortyGbE.odu_mapping(), OduRate::Odu3);
        // Every client fits in its mapped container.
        for c in [
            ClientSignal::GbE,
            ClientSignal::TenGbE,
            ClientSignal::FortyGbE,
            ClientSignal::Oc48,
            ClientSignal::Oc192,
        ] {
            assert!(c.odu_mapping().payload() >= c.rate(), "{c}");
        }
    }

    #[test]
    fn flex_sizing() {
        // 3 Gbps needs 3 slots (2 × 1.249 G < 3 G).
        let flex = OduRate::flex_for(DataRate::from_gbps(3)).unwrap();
        assert_eq!(flex, OduRate::Flex { ts: 3 });
        assert!(flex.payload() >= DataRate::from_gbps(3));
        assert_eq!(flex.ts_needed(), 3);
        // Exactly one slot rate fits one slot.
        assert_eq!(
            OduRate::flex_for(DataRate::from_kbps(1_249_177)),
            Some(OduRate::Flex { ts: 1 })
        );
        // Beyond 80 slots there is no ODUflex.
        assert_eq!(OduRate::flex_for(DataRate::from_gbps(101)), None);
        // Degenerate zero demand still gets a slot.
        assert_eq!(
            OduRate::flex_for(DataRate::ZERO),
            Some(OduRate::Flex { ts: 1 })
        );
    }

    #[test]
    fn flex_never_wastes_more_than_one_slot() {
        for gbps in 1..=99u64 {
            let d = DataRate::from_gbps(gbps);
            if let Some(OduRate::Flex { ts }) = OduRate::flex_for(d) {
                let fitted = OduRate::Flex { ts };
                assert!(fitted.payload() >= d);
                if ts > 1 {
                    let smaller = OduRate::Flex { ts: ts - 1 };
                    assert!(smaller.payload() < d, "{gbps}G should need {ts} slots");
                }
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(OduRate::Odu0.to_string(), "ODU0");
        assert_eq!(OduRate::Odu4.to_string(), "ODU4");
        assert_eq!(OduRate::Flex { ts: 7 }.to_string(), "ODUflex(7TS)");
        assert_eq!(ClientSignal::TenGbE.to_string(), "10GbE");
    }
}
