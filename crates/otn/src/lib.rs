//! # otn — the sub-wavelength electronic switching layer
//!
//! GRIPhoN's OTN layer (§2.1–2.2 of the paper): ITU G.709 Optical
//! Transport Network switches that cross-connect at ODU0 (1.25 Gbps)
//! granularity, riding on the DWDM layer. The OTN layer is what lets the
//! carrier sell a 1 G circuit without burning a 10–40 G wavelength on it,
//! and is one half of the composite-rate trick the paper highlights
//! (2×1G OTN + 1×10G λ = 12 G instead of a second 10 G wavelength).
//!
//! ## Modules
//!
//! - [`odu`] — the ODU multiplexing hierarchy: rates, tributary-slot
//!   capacities, client-signal mappings.
//! - [`switch`] — the OTN cross-connect fabric: client ports, line ports
//!   (each backed by a wavelength), tributary-slot allocation.
//! - [`grooming`] — packing sub-wavelength demands into wavelengths;
//!   implements both per-link OTN grooming and the muxponder-only
//!   baseline it is compared against (experiment E6).
//! - [`restoration`] — sub-second shared-mesh restoration with shared
//!   backup tributary pools ("similar to today's SONET layer", §2.1).
//! - [`sonet`] — the legacy SONET/VCAT layer: STS-1 granularity, ring
//!   protection, and the ≤622 Mbps BoD ceiling of "today's reality"
//!   (Table 1's middle column).
//! - [`wdcs`] — the n×DS1 wideband layer at the top of Fig. 1's stack,
//!   the lowest-rate guaranteed-bandwidth service.

#![deny(missing_docs)]

pub mod grooming;
pub mod odu;
pub mod restoration;
pub mod sonet;
pub mod switch;
pub mod wdcs;

pub use grooming::{Demand, GroomingResult, MuxponderPacker, OtnGroomer};
pub use odu::{ClientSignal, OduRate};
pub use restoration::{MeshRestoration, RestorationOutcome};
pub use sonet::{SonetNetwork, SonetService, Sts};
pub use switch::{LinePortId, OtnSwitch, SwitchError, XcId};
pub use wdcs::{Ds1, Ds1Circuit, WdcsNode};
