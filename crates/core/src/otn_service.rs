//! OTN trunks and sub-wavelength circuit service.
//!
//! The OTN layer "rides on top of the DWDM layer" (§2.2): the carrier
//! provisions *trunks* — wavelengths between OTN switches — and then
//! sells sub-wavelength circuits groomed onto them at ODU granularity.
//! Setting up a sub-wavelength circuit is electronic: a light EMS session
//! plus cross-connects configured in parallel, i.e. seconds — the "this
//! is achievable today at low data rates" half of Table 1's second row,
//! in contrast to the 60–70 s optical turn-up.
//!
//! Routing over trunks is BFS by trunk count over trunks with enough free
//! tributary slots at both ends; each traversed switch gets one
//! cross-connect (client→line at the ends, line→line transit grooming in
//! the middle — the thing muxponders cannot do).

use std::collections::{BTreeMap, VecDeque};

use simcore::DataRate;

use otn::{ClientSignal, OtnSwitch, SwitchError};
use photonic::{LineRate, RoadmId};

use crate::connection::{
    Connection, ConnectionId, ConnectionKind, Resources, SubWavelengthRoute, TrunkId,
};
use crate::controller::{Controller, Event, RequestError, Trunk, WorkflowKind};
use crate::tenant::CustomerId;

impl Controller {
    /// Install an OTN switch at `node`. Returns its internal index.
    ///
    /// # Panics
    /// If the node already has a switch.
    pub fn add_otn_switch(&mut self, node: RoadmId, fabric_capacity: DataRate) -> usize {
        self.journal_record(|| crate::durability::Intent::AddOtnSwitch {
            node: node.raw(),
            fabric_bps: fabric_capacity.bps(),
        });
        assert!(
            !self.switch_at.contains_key(&node),
            "{node} already has an OTN switch"
        );
        let idx = self.switches.len();
        self.switches.push(OtnSwitch::new(
            otn::switch::OtnSwitchId::from_index(idx),
            node,
            fabric_capacity,
        ));
        self.switch_at.insert(node, idx);
        idx
    }

    /// Provision a trunk: a carrier-internal wavelength of `rate` between
    /// the OTN switches at `a` and `b`. In service after a normal
    /// wavelength setup workflow.
    pub fn provision_trunk(
        &mut self,
        a: RoadmId,
        b: RoadmId,
        rate: LineRate,
    ) -> Result<TrunkId, RequestError> {
        self.journal_record(|| crate::durability::Intent::ProvisionTrunk {
            a: a.raw(),
            b: b.raw(),
            rate: crate::durability::wal::encode_rate(rate),
        });
        let sa = self.otn_switch_at(a).ok_or(RequestError::NoOtnSwitch(a))?;
        let sb = self.otn_switch_at(b).ok_or(RequestError::NoOtnSwitch(b))?;
        let plan = self.plan_wavelength(a, b, rate, &[])?;
        self.claim_plan(&plan);
        let la = self.switches[sa].add_line_port(rate);
        let lb = self.switches[sb].add_line_port(rate);
        let id = TrunkId::new(self.next_trunk);
        self.next_trunk += 1;
        let hops = plan.hops();
        self.trunks.push(Trunk {
            id,
            a,
            b,
            plan,
            rate,
            line_a: (sa, la),
            line_b: (sb, lb),
            ready: false,
        });
        let sample = self.wavelength_setup_sample(hops);
        let dur = sample.total();
        self.trace.emit(
            self.now(),
            "otn",
            format!(
                "{id} trunk {}↔{} provisioning eta={dur}",
                self.net.name(a),
                self.net.name(b)
            ),
        );
        if self.spans.is_enabled() {
            let t0 = self.now();
            let root = self.spans.open(t0, "otn", "otn.trunk_setup", None);
            self.spans.attr_u64(root, "trunk", u64::from(id.raw()));
            self.spans.attr_u64(root, "hops", hops as u64);
            self.emit_setup_spans(root, t0, &sample);
            if root.is_valid() {
                self.trunk_spans.insert(id, root);
            }
        }
        self.schedule_trunk_workflow(dur, id, Event::TrunkReady { trunk: id });
        Ok(id)
    }

    pub(crate) fn on_trunk_ready(&mut self, id: TrunkId) {
        let now = self.now();
        self.workflows.complete(id.raw(), "trunk_provision");
        if let Some(root) = self.trunk_spans.remove(&id) {
            self.spans.close(root, now);
        }
        let t = &mut self.trunks[id.index()];
        if t.ready {
            return;
        }
        t.ready = true;
        let (s, d) = (t.plan.ot_src, t.plan.ot_dst);
        self.net.transponder_mut(s).tuning_complete();
        self.net.transponder_mut(d).tuning_complete();
        self.trace
            .emit(now, "otn", format!("{id} trunk in service"));
    }

    /// Free tributary slots usable on a trunk (min of both end line
    /// ports).
    pub fn trunk_free_ts(&self, id: TrunkId) -> usize {
        let t = &self.trunks[id.index()];
        let fa = self.switches[t.line_a.0].free_ts(t.line_a.1);
        let fb = self.switches[t.line_b.0].free_ts(t.line_b.1);
        fa.min(fb)
    }

    /// Order a sub-wavelength circuit carrying `signal` between two nodes
    /// with OTN switches. Electronic setup: seconds, not a minute.
    pub fn request_subwavelength(
        &mut self,
        customer: CustomerId,
        from: RoadmId,
        to: RoadmId,
        signal: ClientSignal,
    ) -> Result<ConnectionId, RequestError> {
        self.journal_record(|| crate::durability::Intent::Subwavelength {
            customer: customer.raw(),
            from: from.raw(),
            to: to.raw(),
            signal: crate::durability::wal::encode_signal(signal),
        });
        let s_from = self
            .otn_switch_at(from)
            .ok_or(RequestError::NoOtnSwitch(from))?;
        let s_to = self
            .otn_switch_at(to)
            .ok_or(RequestError::NoOtnSwitch(to))?;
        self.tenants.admit(customer, signal.rate())?;
        let needed = signal.odu_mapping().ts_needed();
        let Some(trunk_path) = self.route_over_trunks(from, to, needed) else {
            self.tenants.release(customer, signal.rate());
            return Err(RequestError::NoTrunkCapacity);
        };
        // Create the cross-connects hop by hop. Client ports are created
        // on demand at the end switches (the premises NTE plugs in there).
        let mut xcs: Vec<(usize, otn::XcId)> = Vec::new();
        let result = self.build_subwavelength_xcs(s_from, s_to, signal, &trunk_path, &mut xcs);
        if let Err(e) = result {
            for (sw, xc) in xcs {
                self.switch_disconnect(sw, xc);
            }
            self.tenants.release(customer, signal.rate());
            self.trace
                .emit(self.now(), "otn", format!("sub-λ setup failed: {e}"));
            return Err(RequestError::NoTrunkCapacity);
        }
        let id = self.fresh_conn_id();
        let mut conn = Connection::new(
            id,
            customer,
            from,
            to,
            ConnectionKind::SubWavelength { signal },
            self.now(),
        );
        conn.resources = Some(Resources::SubWavelength(SubWavelengthRoute {
            trunks: trunk_path.clone(),
            xcs,
        }));
        self.conns.insert(id, conn);
        let switches = trunk_path.len() + 1;
        let sample = self.subwavelength_setup_sample(switches);
        let dur = sample.total();
        let t0 = self.now();
        let root = self.open_workflow_span(id, WorkflowKind::Setup, t0, "conn.subwl_setup");
        if root.is_valid() {
            self.spans.attr_u64(root, "trunks", trunk_path.len() as u64);
            self.emit_subwl_setup_spans(root, t0, &sample);
        }
        self.trace.emit(
            self.now(),
            "otn",
            format!(
                "{id} sub-λ {signal} {}→{} over {} trunk(s) eta={dur}",
                self.net.name(from),
                self.net.name(to),
                trunk_path.len()
            ),
        );
        self.schedule_workflow(dur, id, WorkflowKind::Setup);
        Ok(id)
    }

    fn build_subwavelength_xcs(
        &mut self,
        s_from: usize,
        s_to: usize,
        signal: ClientSignal,
        trunk_path: &[TrunkId],
        xcs: &mut Vec<(usize, otn::XcId)>,
    ) -> Result<(), SwitchError> {
        // For each traversed switch, find the line ports it touches.
        // End switches: client → line. Transit: line → line.
        let odu = signal.odu_mapping();
        let mut per_switch: BTreeMap<usize, Vec<otn::LinePortId>> = BTreeMap::new();
        for tid in trunk_path {
            let t = &self.trunks[tid.index()];
            per_switch.entry(t.line_a.0).or_default().push(t.line_a.1);
            per_switch.entry(t.line_b.0).or_default().push(t.line_b.1);
        }
        for (sw, lines) in per_switch {
            if sw == s_from || sw == s_to {
                debug_assert_eq!(lines.len(), 1, "end switch touches one trunk");
                let client = self.switches[sw].add_client_port(signal);
                let xc = self.switches[sw].connect_client_to_line(client, lines[0])?;
                xcs.push((sw, xc));
            } else {
                debug_assert_eq!(lines.len(), 2, "transit switch joins two trunks");
                let xc = self.switches[sw].connect_line_to_line(lines[0], lines[1], odu)?;
                xcs.push((sw, xc));
            }
        }
        Ok(())
    }

    /// BFS over ready trunks with ≥ `needed_ts` free slots; returns the
    /// trunk sequence.
    fn route_over_trunks(
        &self,
        from: RoadmId,
        to: RoadmId,
        needed_ts: usize,
    ) -> Option<Vec<TrunkId>> {
        if from == to {
            return None;
        }
        let mut prev: BTreeMap<RoadmId, (RoadmId, TrunkId)> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for t in &self.trunks {
                if !t.ready || self.trunk_free_ts(t.id) < needed_ts {
                    continue;
                }
                let m = if t.a == n {
                    t.b
                } else if t.b == n {
                    t.a
                } else {
                    continue;
                };
                if m == from || prev.contains_key(&m) {
                    continue;
                }
                prev.insert(m, (n, t.id));
                if m == to {
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (p, tid) = prev[&cur];
                        path.push(tid);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(m);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::ConnState;
    use crate::controller::ControllerConfig;
    use photonic::{EmsProfile, EqualizationModel, PhotonicNetwork};
    use simcore::SimDuration;

    fn quiet() -> ControllerConfig {
        ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        }
    }

    /// Testbed with OTN switches at I, III and IV and trunks I–III, III–IV.
    fn otn_testbed() -> (Controller, photonic::TestbedIds, CustomerId) {
        let (net, ids) = PhotonicNetwork::testbed(6);
        let mut ctl = Controller::new(net, quiet());
        ctl.add_otn_switch(ids.i, DataRate::from_gbps(320));
        ctl.add_otn_switch(ids.iii, DataRate::from_gbps(320));
        ctl.add_otn_switch(ids.iv, DataRate::from_gbps(320));
        ctl.provision_trunk(ids.i, ids.iii, LineRate::Gbps10)
            .unwrap();
        ctl.provision_trunk(ids.iii, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        (ctl, ids, csp)
    }

    #[test]
    fn trunk_provisioning_uses_wavelength_workflow() {
        let (ctl, _, _) = otn_testbed();
        assert_eq!(ctl.trunks().len(), 2);
        assert!(ctl.trunks().iter().all(|t| t.ready));
        // Trunks took 60+ s to come up.
        assert!(ctl.now() > simcore::SimTime::from_secs(60));
        assert_eq!(ctl.trunk_free_ts(TrunkId::new(0)), 8);
    }

    #[test]
    fn subwavelength_setup_is_seconds() {
        let (mut ctl, ids, csp) = otn_testbed();
        let t0 = ctl.now();
        let id = ctl
            .request_subwavelength(csp, ids.i, ids.iii, ClientSignal::GbE)
            .unwrap();
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Active);
        let setup = ctl.now().since(t0);
        assert!(
            setup < SimDuration::from_secs(5),
            "electronic setup took {setup}"
        );
        // One TS consumed on the trunk.
        assert_eq!(ctl.trunk_free_ts(TrunkId::new(0)), 7);
    }

    #[test]
    fn multi_trunk_circuit_grooms_at_transit() {
        let (mut ctl, ids, csp) = otn_testbed();
        let id = ctl
            .request_subwavelength(csp, ids.i, ids.iv, ClientSignal::GbE)
            .unwrap();
        ctl.run_until_idle();
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Active);
        match &conn.resources {
            Some(Resources::SubWavelength(r)) => {
                assert_eq!(r.trunks.len(), 2);
                assert_eq!(r.xcs.len(), 3); // client+line at I, transit at III, line+client at IV
            }
            other => panic!("unexpected resources {other:?}"),
        }
        // The transit switch at III carries a line-to-line xc.
        let sw3 = ctl.otn_switch(ctl.otn_switch_at(ids.iii).unwrap());
        assert_eq!(sw3.xc_count(), 1);
    }

    #[test]
    fn trunk_capacity_exhausts_then_frees() {
        let (mut ctl, ids, csp) = otn_testbed();
        // ODU2 fills all 8 TS of the 10G trunk.
        let big = ctl
            .request_subwavelength(csp, ids.i, ids.iii, ClientSignal::TenGbE)
            .unwrap();
        ctl.run_until_idle();
        assert_eq!(ctl.trunk_free_ts(TrunkId::new(0)), 0);
        let err = ctl
            .request_subwavelength(csp, ids.i, ids.iii, ClientSignal::GbE)
            .unwrap_err();
        assert_eq!(err, RequestError::NoTrunkCapacity);
        // Quota was refunded on failure.
        assert_eq!(
            ctl.tenants.get(csp).unwrap().in_use,
            DataRate::from_gbps(10)
        );
        ctl.request_teardown(big).unwrap();
        ctl.run_until_idle();
        assert_eq!(ctl.trunk_free_ts(TrunkId::new(0)), 8);
        ctl.request_subwavelength(csp, ids.i, ids.iii, ClientSignal::GbE)
            .unwrap();
    }

    #[test]
    fn no_switch_no_service() {
        let (mut ctl, ids, csp) = otn_testbed();
        let err = ctl
            .request_subwavelength(csp, ids.ii, ids.iii, ClientSignal::GbE)
            .unwrap_err();
        assert_eq!(err, RequestError::NoOtnSwitch(ids.ii));
    }

    #[test]
    fn trunk_failure_fails_and_recovers_riders() {
        let (mut ctl, ids, csp) = otn_testbed();
        let id = ctl
            .request_subwavelength(csp, ids.i, ids.iii, ClientSignal::GbE)
            .unwrap();
        ctl.run_until_idle();
        // The I–III trunk rides the direct I–III fiber; cut it.
        let trunk_path = ctl.trunk(TrunkId::new(0)).unwrap().plan.path.clone();
        ctl.inject_fiber_cut(trunk_path[0], 0);
        assert_eq!(ctl.connection(id).unwrap().state, ConnState::Failed);
        ctl.run_until_idle();
        // Trunk restored over a detour; the rider recovered with it.
        let conn = ctl.connection(id).unwrap();
        assert_eq!(conn.state, ConnState::Active);
        assert!(conn.outage_total > SimDuration::ZERO);
        assert!(ctl.trunk(TrunkId::new(0)).unwrap().ready);
        assert!(!ctl
            .trunk(TrunkId::new(0))
            .unwrap()
            .plan
            .path
            .contains(&trunk_path[0]));
    }
}
