//! Availability accounting and SLA reporting.
//!
//! The BoD service's selling point over "today's reality" is measured
//! here: per-connection availability (uptime over in-service lifetime)
//! and the per-tenant aggregate a service-level agreement would be
//! scored against. Five nines needs automated restoration — a single
//! 8-hour manual repair in a month caps availability at ~98.9 %, while
//! GRIPhoN's minute-scale restoration keeps the same month above
//! 99.99 % (experiment-visible via these reports).

use simcore::SimDuration;

use crate::connection::{ConnState, ConnectionId};
use crate::controller::Controller;
use crate::tenant::CustomerId;

/// One connection's availability record.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionAvailability {
    /// The connection.
    pub id: ConnectionId,
    /// Time since it first became active (until now or release).
    pub in_service: SimDuration,
    /// Accumulated downtime (including a still-open outage).
    pub downtime: SimDuration,
    /// `1 − downtime / in_service`, or 1.0 for zero lifetime.
    pub availability: f64,
}

/// A tenant's aggregate SLA view.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaReport {
    /// Per-connection rows (non-terminal and released connections that
    /// ever activated).
    pub connections: Vec<ConnectionAvailability>,
    /// Service-time-weighted aggregate availability.
    pub aggregate: f64,
    /// The worst row's availability (SLAs bind on the worst circuit).
    pub worst: f64,
}

impl Controller {
    /// Availability of one connection as of now (None if it never
    /// activated).
    pub fn connection_availability(&self, id: ConnectionId) -> Option<ConnectionAvailability> {
        let c = self.connection(id)?;
        let start = c.activated_at?;
        let now = self.now();
        let in_service = now.saturating_since(start);
        let open_outage = match (c.state, c.outage_since) {
            (ConnState::Released, _) => SimDuration::ZERO,
            (_, Some(since)) => now.saturating_since(since),
            _ => SimDuration::ZERO,
        };
        let downtime = c.outage_total + open_outage;
        let availability = if in_service.is_zero() {
            1.0
        } else {
            1.0 - downtime.as_secs_f64() / in_service.as_secs_f64()
        };
        Some(ConnectionAvailability {
            id,
            in_service,
            downtime,
            availability: availability.clamp(0.0, 1.0),
        })
    }

    /// The tenant's SLA report.
    pub fn sla_report(&self, customer: CustomerId) -> SlaReport {
        let rows: Vec<ConnectionAvailability> = self
            .connections()
            .filter(|c| c.customer == customer)
            .filter_map(|c| self.connection_availability(c.id))
            .collect();
        let total_service: f64 = rows.iter().map(|r| r.in_service.as_secs_f64()).sum();
        let total_down: f64 = rows.iter().map(|r| r.downtime.as_secs_f64()).sum();
        let aggregate = if total_service == 0.0 {
            1.0
        } else {
            (1.0 - total_down / total_service).clamp(0.0, 1.0)
        };
        let worst = rows.iter().map(|r| r.availability).fold(1.0f64, f64::min);
        SlaReport {
            connections: rows,
            aggregate,
            worst,
        }
    }
}

/// Format an availability as "N nines" shorthand (e.g. 0.9995 → "3.3
/// nines").
pub fn nines(availability: f64) -> String {
    if availability >= 1.0 {
        return "∞ nines".to_string();
    }
    if availability <= 0.0 {
        return "0 nines".to_string();
    }
    format!("{:.1} nines", -(1.0 - availability).log10())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork};
    use simcore::DataRate;

    fn quiet() -> ControllerConfig {
        ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn availability_reflects_restoration_speed() {
        // Same cut, automated vs manual — the SLA difference over a week.
        let week = simcore::SimTime::from_secs(7 * 86_400);
        let run = |auto: bool| -> f64 {
            let (net, ids) = PhotonicNetwork::testbed(4);
            let mut ctl = Controller::new(
                net,
                ControllerConfig {
                    auto_restore: auto,
                    ..quiet()
                },
            );
            let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
            let _id = ctl
                .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                .unwrap();
            ctl.run_until_idle();
            ctl.inject_fiber_cut(ids.f_i_iv, 0);
            ctl.schedule_repair(ids.f_i_iv, SimDuration::from_hours(8));
            ctl.run_until(week);
            ctl.sla_report(csp).aggregate
        };
        let griphon = run(true);
        let manual = run(false);
        assert!(griphon > 0.9998, "griphon={griphon}");
        assert!(manual < 0.96, "manual={manual}");
        assert!(griphon > manual);
    }

    #[test]
    fn open_outage_counts_against_availability() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                auto_restore: false,
                ..quiet()
            },
        );
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let t_up = ctl.now();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        // One hour into an unrepaired outage…
        ctl.run_until(t_up + SimDuration::from_hours(2));
        let a = ctl.connection_availability(id).unwrap();
        assert!(a.downtime >= SimDuration::from_hours(1));
        assert!(a.availability < 1.0);
        // Aggregate and worst agree for a single circuit.
        let report = ctl.sla_report(csp);
        assert!((report.aggregate - a.availability).abs() < 1e-9);
        assert_eq!(report.worst, a.availability);
    }

    #[test]
    fn never_activated_connections_are_excluded() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet());
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let _id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        // Still provisioning: no availability row yet.
        let report = ctl.sla_report(csp);
        assert!(report.connections.is_empty());
        assert_eq!(report.aggregate, 1.0);
    }

    #[test]
    fn nines_formatting() {
        assert_eq!(nines(0.999), "3.0 nines");
        assert_eq!(nines(0.99999), "5.0 nines");
        assert_eq!(nines(1.0), "∞ nines");
        assert_eq!(nines(0.0), "0 nines");
        assert!(nines(0.9995).starts_with("3.3"));
    }

    #[test]
    fn nines_edge_cases() {
        // Exact runs of nines land exactly on the integer nine count.
        assert_eq!(nines(0.9999), "4.0 nines");
        assert_eq!(nines(0.999999), "6.0 nines");
        // Values outside [0, 1] saturate rather than produce NaN/−∞ text.
        assert_eq!(nines(1.5), "∞ nines");
        assert_eq!(nines(-0.25), "0 nines");
        // Just below 1.0 stays finite (no log-of-zero blowup).
        let just_below = nines(1.0 - f64::EPSILON);
        assert!(just_below.ends_with("nines") && !just_below.starts_with('∞'));
        // Just above 0.0 is a tiny but non-negative nine count.
        assert_eq!(nines(0.1), "0.0 nines");
    }

    /// An outage whose restoration completes *between* two NOC scrape
    /// instants must be accounted exactly: the availability ledger uses
    /// event times, never scrape-quantized ones, so the report is
    /// identical with the NOC scraping right across the repair.
    #[test]
    fn repair_straddling_a_scrape_boundary_is_accounted_exactly() {
        let run = |noc: bool| {
            let (net, ids) = PhotonicNetwork::testbed(4);
            let mut ctl = Controller::new(net, quiet());
            if noc {
                // 60 s cadence: the ~66 s restoration spans a scrape tick.
                ctl.noc.enable(SimDuration::from_secs(60));
            }
            let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
            let id = ctl
                .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                .unwrap();
            ctl.run_until_idle();
            let t_cut = ctl.now();
            ctl.inject_fiber_cut(ids.f_i_iv, 0);
            ctl.run_until(t_cut + SimDuration::from_hours(2));
            (
                ctl.connection_availability(id).unwrap(),
                ctl.sla_report(csp),
                ctl.noc.scrapes(),
            )
        };
        let (a_on, r_on, scrapes_on) = run(true);
        let (a_off, r_off, scrapes_off) = run(false);
        assert!(scrapes_on > 0 && scrapes_off == 0);
        assert_eq!(a_on, a_off, "availability must not depend on the NOC");
        assert_eq!(r_on, r_off, "SLA report must not depend on the NOC");
        // Downtime is the restoration interval, not a scrape multiple.
        assert!(a_on.downtime > SimDuration::from_secs(60));
        assert!(a_on.downtime < SimDuration::from_secs(120));
        assert_ne!(a_on.downtime.as_nanos() % 60_000_000_000, 0);
        let expect = 1.0 - a_on.downtime.as_secs_f64() / a_on.in_service.as_secs_f64();
        assert!((a_on.availability - expect).abs() < 1e-12);
    }

    #[test]
    fn healthy_connection_is_fully_available() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet());
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.run_until(ctl.now() + SimDuration::from_hours(100));
        let a = ctl.connection_availability(id).unwrap();
        assert_eq!(a.availability, 1.0);
        assert_eq!(a.downtime, SimDuration::ZERO);
    }
}
