//! Availability accounting and SLA reporting.
//!
//! The BoD service's selling point over "today's reality" is measured
//! here: per-connection availability (uptime over in-service lifetime)
//! and the per-tenant aggregate a service-level agreement would be
//! scored against. Five nines needs automated restoration — a single
//! 8-hour manual repair in a month caps availability at ~98.9 %, while
//! GRIPhoN's minute-scale restoration keeps the same month above
//! 99.99 % (experiment-visible via these reports).

use simcore::{FamilyRegistry, SimDuration};

use crate::connection::{ConnState, ConnectionId};
use crate::controller::Controller;
use crate::tenant::CustomerId;

/// One connection's availability record.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionAvailability {
    /// The connection.
    pub id: ConnectionId,
    /// Time since it first became active (until now or release).
    pub in_service: SimDuration,
    /// Accumulated downtime (including a still-open outage).
    pub downtime: SimDuration,
    /// `1 − downtime / in_service`, or 1.0 for zero lifetime.
    pub availability: f64,
}

/// A tenant's aggregate SLA view.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaReport {
    /// Per-connection rows (non-terminal and released connections that
    /// ever activated).
    pub connections: Vec<ConnectionAvailability>,
    /// Rows with a non-zero observation window — only these can carry
    /// availability evidence.
    pub observed: usize,
    /// Service-time-weighted aggregate availability.
    pub aggregate: f64,
    /// The worst *observed* row's availability (SLAs bind on the worst
    /// circuit, but a zero-length window is no evidence of perfection
    /// or failure and is excluded).
    pub worst: f64,
}

impl SlaReport {
    /// Publish the report into `reg` as labeled gauges, so the SLO
    /// engine and the fleet rollup consume SLA evidence through the
    /// same metrics pipeline as everything else. Gauge semantics: each
    /// export overwrites the previous scrape's values.
    pub fn export(&self, customer: &str, reg: &mut FamilyRegistry) {
        for (scope, avail) in [("aggregate", self.aggregate), ("worst", self.worst)] {
            reg.gauge(
                "sla_availability",
                &[("customer", customer), ("scope", scope)],
            )
            .set(avail);
            reg.gauge("sla_nines", &[("customer", customer), ("scope", scope)])
                .set(nines_value(avail));
        }
        reg.gauge("sla_connections", &[("customer", customer)])
            .set(self.connections.len() as f64);
        reg.gauge("sla_observed_connections", &[("customer", customer)])
            .set(self.observed as f64);
        let downtime: f64 = self
            .connections
            .iter()
            .map(|r| r.downtime.as_secs_f64())
            .sum();
        reg.gauge("sla_downtime_seconds", &[("customer", customer)])
            .set(downtime);
        for row in &self.connections {
            let conn = row.id.to_string();
            reg.gauge(
                "sla_connection_availability",
                &[("conn", &conn), ("customer", customer)],
            )
            .set(row.availability);
        }
    }
}

impl Controller {
    /// Availability of one connection as of now (None if it never
    /// activated).
    pub fn connection_availability(&self, id: ConnectionId) -> Option<ConnectionAvailability> {
        let c = self.connection(id)?;
        let start = c.activated_at?;
        let now = self.now();
        let in_service = now.saturating_since(start);
        let open_outage = match (c.state, c.outage_since) {
            (ConnState::Released, _) => SimDuration::ZERO,
            (_, Some(since)) => now.saturating_since(since),
            _ => SimDuration::ZERO,
        };
        let downtime = c.outage_total + open_outage;
        let availability = if in_service.is_zero() {
            1.0
        } else {
            1.0 - downtime.as_secs_f64() / in_service.as_secs_f64()
        };
        Some(ConnectionAvailability {
            id,
            in_service,
            downtime,
            availability: availability.clamp(0.0, 1.0),
        })
    }

    /// The tenant's SLA report.
    pub fn sla_report(&self, customer: CustomerId) -> SlaReport {
        let rows: Vec<ConnectionAvailability> = self
            .connections()
            .filter(|c| c.customer == customer)
            .filter_map(|c| self.connection_availability(c.id))
            .collect();
        let total_service: f64 = rows.iter().map(|r| r.in_service.as_secs_f64()).sum();
        let total_down: f64 = rows.iter().map(|r| r.downtime.as_secs_f64()).sum();
        let aggregate = if total_service == 0.0 {
            1.0
        } else {
            (1.0 - total_down / total_service).clamp(0.0, 1.0)
        };
        let worst = rows
            .iter()
            .filter(|r| !r.in_service.is_zero())
            .map(|r| r.availability)
            .fold(1.0f64, f64::min);
        let observed = rows.iter().filter(|r| !r.in_service.is_zero()).count();
        SlaReport {
            connections: rows,
            observed,
            aggregate,
            worst,
        }
    }
}

/// Cap on the nine count: beyond nine nines the float arithmetic of
/// `1 − downtime/lifetime` has no resolution left, so higher values are
/// reported as "at least nine" rather than as a meaningless magnitude
/// (or the old `∞`, which JSON consumers could not parse).
pub const MAX_NINES: f64 = 9.0;

/// The availability's nine count as a finite float in `[0, MAX_NINES]`
/// (0.9995 → 3.3; exactly 1.0 → `MAX_NINES`). This is the numeric form
/// exported as the `sla_nines` gauge.
pub fn nines_value(availability: f64) -> f64 {
    if availability >= 1.0 {
        return MAX_NINES;
    }
    if availability <= 0.0 {
        return 0.0;
    }
    (-(1.0 - availability).log10()).clamp(0.0, MAX_NINES)
}

/// Format an availability as "N nines" shorthand (e.g. 0.9995 → "3.3
/// nines"). Values at or above the [`MAX_NINES`] measurement cap render
/// as "9.0+ nines".
pub fn nines(availability: f64) -> String {
    let n = nines_value(availability);
    if n >= MAX_NINES {
        "9.0+ nines".to_string()
    } else {
        format!("{n:.1} nines")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use photonic::{EmsProfile, EqualizationModel, LineRate, PhotonicNetwork};
    use simcore::DataRate;

    fn quiet() -> ControllerConfig {
        ControllerConfig {
            ems: EmsProfile::calibrated_deterministic(),
            equalization: EqualizationModel::calibrated_deterministic(),
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn availability_reflects_restoration_speed() {
        // Same cut, automated vs manual — the SLA difference over a week.
        let week = simcore::SimTime::from_secs(7 * 86_400);
        let run = |auto: bool| -> f64 {
            let (net, ids) = PhotonicNetwork::testbed(4);
            let mut ctl = Controller::new(
                net,
                ControllerConfig {
                    auto_restore: auto,
                    ..quiet()
                },
            );
            let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
            let _id = ctl
                .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                .unwrap();
            ctl.run_until_idle();
            ctl.inject_fiber_cut(ids.f_i_iv, 0);
            ctl.schedule_repair(ids.f_i_iv, SimDuration::from_hours(8));
            ctl.run_until(week);
            ctl.sla_report(csp).aggregate
        };
        let griphon = run(true);
        let manual = run(false);
        assert!(griphon > 0.9998, "griphon={griphon}");
        assert!(manual < 0.96, "manual={manual}");
        assert!(griphon > manual);
    }

    #[test]
    fn open_outage_counts_against_availability() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                auto_restore: false,
                ..quiet()
            },
        );
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let t_up = ctl.now();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        // One hour into an unrepaired outage…
        ctl.run_until(t_up + SimDuration::from_hours(2));
        let a = ctl.connection_availability(id).unwrap();
        assert!(a.downtime >= SimDuration::from_hours(1));
        assert!(a.availability < 1.0);
        // Aggregate and worst agree for a single circuit.
        let report = ctl.sla_report(csp);
        assert!((report.aggregate - a.availability).abs() < 1e-9);
        assert_eq!(report.worst, a.availability);
    }

    #[test]
    fn never_activated_connections_are_excluded() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet());
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let _id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        // Still provisioning: no availability row yet.
        let report = ctl.sla_report(csp);
        assert!(report.connections.is_empty());
        assert_eq!(report.aggregate, 1.0);
    }

    #[test]
    fn worst_excludes_zero_window_rows() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                auto_restore: false,
                ..quiet()
            },
        );
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let _a = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let t0 = ctl.now();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        ctl.run_until(t0 + SimDuration::from_hours(2));
        // A second circuit on an unaffected path whose activation instant
        // *is* the report instant: zero observation window.
        let b = ctl
            .request_wavelength(csp, ids.i, ids.ii, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let row_b = ctl.connection_availability(b).unwrap();
        assert!(row_b.in_service.is_zero(), "b must be freshly activated");
        let report = ctl.sla_report(csp);
        assert_eq!(report.connections.len(), 2);
        assert_eq!(report.observed, 1, "zero-window row carries no evidence");
        assert!(
            report.worst < 1.0,
            "worst must come from the observed circuit, not the fresh one"
        );
    }

    #[test]
    fn report_exports_as_labeled_gauges() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(
            net,
            ControllerConfig {
                auto_restore: false,
                ..quiet()
            },
        );
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let _id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        let t0 = ctl.now();
        ctl.inject_fiber_cut(ids.f_i_iv, 0);
        ctl.run_until(t0 + SimDuration::from_hours(2));
        let report = ctl.sla_report(csp);
        let mut reg = simcore::FamilyRegistry::new();
        report.export("acme", &mut reg);
        let agg = reg
            .get_gauge(
                "sla_availability",
                &[("customer", "acme"), ("scope", "aggregate")],
            )
            .unwrap()
            .get();
        assert!((agg - report.aggregate).abs() < 1e-15);
        let nines_worst = reg
            .get_gauge("sla_nines", &[("customer", "acme"), ("scope", "worst")])
            .unwrap()
            .get();
        assert!((nines_worst - nines_value(report.worst)).abs() < 1e-15);
        assert_eq!(
            reg.get_gauge("sla_connections", &[("customer", "acme")])
                .unwrap()
                .get(),
            1.0
        );
        let exp = reg.expose();
        assert!(
            exp.contains("sla_connection_availability{conn=\"conn0\",customer=\"acme\"}"),
            "{exp}"
        );
        // Re-export overwrites (gauge semantics), it does not accumulate.
        report.export("acme", &mut reg);
        assert_eq!(reg.expose(), exp);
    }

    #[test]
    fn nines_formatting() {
        assert_eq!(nines(0.999), "3.0 nines");
        assert_eq!(nines(0.99999), "5.0 nines");
        assert_eq!(nines(1.0), "9.0+ nines");
        assert_eq!(nines(0.0), "0.0 nines");
        assert!(nines(0.9995).starts_with("3.3"));
    }

    #[test]
    fn nines_edge_cases() {
        // Exact runs of nines land exactly on the integer nine count.
        assert_eq!(nines(0.9999), "4.0 nines");
        assert_eq!(nines(0.999999), "6.0 nines");
        // Values outside [0, 1] saturate rather than produce NaN/−∞ text.
        assert_eq!(nines(1.5), "9.0+ nines");
        assert_eq!(nines(-0.25), "0.0 nines");
        // Just below 1.0 stays finite and hits the measurement cap (no
        // log-of-zero blowup, no unparseable ∞).
        assert_eq!(nines(1.0 - f64::EPSILON), "9.0+ nines");
        // Just above 0.0 is a tiny but non-negative nine count.
        assert_eq!(nines(0.1), "0.0 nines");
    }

    #[test]
    fn nines_value_is_finite_and_monotone() {
        for a in [-1.0, 0.0, 0.5, 0.999, 0.999999999, 1.0, 2.0] {
            let n = nines_value(a);
            assert!(
                n.is_finite() && (0.0..=MAX_NINES).contains(&n),
                "{a} -> {n}"
            );
        }
        assert_eq!(nines_value(1.0), MAX_NINES);
        assert_eq!(nines_value(0.0), 0.0);
        assert!(nines_value(0.9999) > nines_value(0.999));
        assert!((nines_value(0.999) - 3.0).abs() < 1e-9);
    }

    /// An outage whose restoration completes *between* two NOC scrape
    /// instants must be accounted exactly: the availability ledger uses
    /// event times, never scrape-quantized ones, so the report is
    /// identical with the NOC scraping right across the repair.
    #[test]
    fn repair_straddling_a_scrape_boundary_is_accounted_exactly() {
        let run = |noc: bool| {
            let (net, ids) = PhotonicNetwork::testbed(4);
            let mut ctl = Controller::new(net, quiet());
            if noc {
                // 60 s cadence: the ~66 s restoration spans a scrape tick.
                ctl.noc.enable(SimDuration::from_secs(60));
            }
            let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
            let id = ctl
                .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
                .unwrap();
            ctl.run_until_idle();
            let t_cut = ctl.now();
            ctl.inject_fiber_cut(ids.f_i_iv, 0);
            ctl.run_until(t_cut + SimDuration::from_hours(2));
            (
                ctl.connection_availability(id).unwrap(),
                ctl.sla_report(csp),
                ctl.noc.scrapes(),
            )
        };
        let (a_on, r_on, scrapes_on) = run(true);
        let (a_off, r_off, scrapes_off) = run(false);
        assert!(scrapes_on > 0 && scrapes_off == 0);
        assert_eq!(a_on, a_off, "availability must not depend on the NOC");
        assert_eq!(r_on, r_off, "SLA report must not depend on the NOC");
        // Downtime is the restoration interval, not a scrape multiple.
        assert!(a_on.downtime > SimDuration::from_secs(60));
        assert!(a_on.downtime < SimDuration::from_secs(120));
        assert_ne!(a_on.downtime.as_nanos() % 60_000_000_000, 0);
        let expect = 1.0 - a_on.downtime.as_secs_f64() / a_on.in_service.as_secs_f64();
        assert!((a_on.availability - expect).abs() < 1e-12);
    }

    #[test]
    fn healthy_connection_is_fully_available() {
        let (net, ids) = PhotonicNetwork::testbed(4);
        let mut ctl = Controller::new(net, quiet());
        let csp = ctl.tenants.register("acme", DataRate::from_gbps(100));
        let id = ctl
            .request_wavelength(csp, ids.i, ids.iv, LineRate::Gbps10)
            .unwrap();
        ctl.run_until_idle();
        ctl.run_until(ctl.now() + SimDuration::from_hours(100));
        let a = ctl.connection_availability(id).unwrap();
        assert_eq!(a.availability, 1.0);
        assert_eq!(a.downtime, SimDuration::ZERO);
    }
}
