//! The carrier's service/layer models — Figures 1 and 2 of the paper.
//!
//! Fig. 1 shows today's stack (W-DCS over SONET over DWDM over fiber)
//! and which service category each layer carries; Fig. 2 the future
//! stack where an OTN layer replaces SONET/W-DCS as the sub-wavelength
//! server and private-line BoD moves down to OTN and DWDM. This module
//! encodes both as data — a machine-checkable version of the figures —
//! and the `fig1`/`fig2` harness targets render and validate them.
//!
//! The key assumption of the service-evolution model (§2.1) is encoded in
//! [`LayerStack::layer_for_service`]: guaranteed-bandwidth transport is
//! categorized by rate — below 1 G rides the IP layer as EVCs, 1 G up to
//! the wavelength rate rides the sub-wavelength layer, and
//! wavelength-rate private lines ride DWDM directly.

use serde::{Deserialize, Serialize};
use simcore::DataRate;
use std::fmt;

/// A technology layer of the transport network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Fiber-optic cables — "huge capital investment … very static".
    Fiber,
    /// Dense wavelength-division multiplexing (ROADMs, OTs).
    Dwdm,
    /// SONET Broadband DCS / ADM rings (today only).
    Sonet,
    /// Wideband DCS (DS1-level grooming, today only).
    Wdcs,
    /// OTN switches at ODU0 granularity (future).
    Otn,
    /// IP/MPLS routers carrying Ethernet virtual circuits.
    Ip,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Layer::Fiber => "Fiber",
            Layer::Dwdm => "DWDM",
            Layer::Sonet => "SONET",
            Layer::Wdcs => "W-DCS",
            Layer::Otn => "OTN",
            Layer::Ip => "IP/MPLS",
        };
        f.write_str(s)
    }
}

/// A customer-visible service category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceCategory {
    /// nxDS1 TDM private lines (1.5 Mbps granularity).
    NxDs1PrivateLine,
    /// STS-n SONET private lines.
    StsPrivateLine,
    /// Ethernet virtual circuits with guaranteed bandwidth.
    EthernetVirtualCircuit,
    /// Ethernet private lines (1 G to sub-wavelength).
    EthernetPrivateLine,
    /// Wavelength-rate private lines (10–100 G).
    WavelengthPrivateLine,
}

impl fmt::Display for ServiceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServiceCategory::NxDs1PrivateLine => "n×DS1 private line",
            ServiceCategory::StsPrivateLine => "STS-n private line",
            ServiceCategory::EthernetVirtualCircuit => "Ethernet virtual circuit",
            ServiceCategory::EthernetPrivateLine => "Ethernet private line",
            ServiceCategory::WavelengthPrivateLine => "wavelength private line",
        };
        f.write_str(s)
    }
}

/// One layer stack (Fig. 1 or Fig. 2): layers bottom-up plus the
/// service→layer mapping and BoD availability per layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerStack {
    /// Display name.
    pub name: &'static str,
    /// Layers from the fiber base upward.
    pub layers: Vec<Layer>,
    /// `(service, serving layer)` pairs.
    pub services: Vec<(ServiceCategory, Layer)>,
    /// Layers at which BoD is offered.
    pub bod_layers: Vec<Layer>,
}

impl LayerStack {
    /// Fig. 1 — today's services and network layers.
    pub fn current() -> LayerStack {
        LayerStack {
            name: "current (Fig. 1)",
            layers: vec![
                Layer::Fiber,
                Layer::Dwdm,
                Layer::Sonet,
                Layer::Wdcs,
                Layer::Ip,
            ],
            services: vec![
                (ServiceCategory::NxDs1PrivateLine, Layer::Wdcs),
                (ServiceCategory::StsPrivateLine, Layer::Sonet),
                (ServiceCategory::EthernetPrivateLine, Layer::Sonet),
                (ServiceCategory::EthernetVirtualCircuit, Layer::Ip),
                (ServiceCategory::WavelengthPrivateLine, Layer::Dwdm),
            ],
            // "the carrier offers BoD only at the SONET layer, not at the
            // DWDM layer."
            bod_layers: vec![Layer::Sonet],
        }
    }

    /// Fig. 2 — the future (GRIPhoN) services and network layers.
    pub fn future() -> LayerStack {
        LayerStack {
            name: "future (Fig. 2)",
            layers: vec![Layer::Fiber, Layer::Dwdm, Layer::Otn, Layer::Ip],
            services: vec![
                (ServiceCategory::EthernetVirtualCircuit, Layer::Ip),
                (ServiceCategory::EthernetPrivateLine, Layer::Otn),
                (ServiceCategory::WavelengthPrivateLine, Layer::Dwdm),
            ],
            // "BoD at high data rates would be offered at the OTN layer
            // as well as the DWDM layer."
            bod_layers: vec![Layer::Otn, Layer::Dwdm],
        }
    }

    /// §2.1's rate-based categorization: which layer transports a
    /// guaranteed-bandwidth demand of `rate` in this stack.
    pub fn layer_for_service(&self, rate: DataRate) -> Layer {
        let one_g = DataRate::from_gbps(1);
        let wavelength = DataRate::from_gbps(10);
        if rate < one_g {
            Layer::Ip
        } else if rate < wavelength {
            // The sub-wavelength layer of this stack.
            if self.layers.contains(&Layer::Otn) {
                Layer::Otn
            } else {
                Layer::Sonet
            }
        } else {
            Layer::Dwdm
        }
    }

    /// Does every mapped service point at a layer that exists in the
    /// stack, and is every BoD layer present? (The figures' internal
    /// consistency, machine-checked.)
    pub fn validate(&self) -> Result<(), String> {
        for (svc, layer) in &self.services {
            if !self.layers.contains(layer) {
                return Err(format!("{svc} maps to missing layer {layer}"));
            }
        }
        for l in &self.bod_layers {
            if !self.layers.contains(l) {
                return Err(format!("BoD offered at missing layer {l}"));
            }
        }
        if self.layers.first() != Some(&Layer::Fiber) {
            return Err("stack must rest on fiber".into());
        }
        Ok(())
    }

    /// Render the stack as an ASCII figure.
    pub fn render(&self) -> String {
        let mut out = format!("── {} ──\n", self.name);
        for layer in self.layers.iter().rev() {
            let served: Vec<String> = self
                .services
                .iter()
                .filter(|(_, l)| l == layer)
                .map(|(s, _)| s.to_string())
                .collect();
            let bod = if self.bod_layers.contains(layer) {
                "  [BoD]"
            } else {
                ""
            };
            out.push_str(&format!(
                "  {:<8}{}{}\n",
                layer.to_string(),
                if served.is_empty() {
                    String::new()
                } else {
                    format!("← {}", served.join(", "))
                },
                bod
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_figures_validate() {
        LayerStack::current().validate().unwrap();
        LayerStack::future().validate().unwrap();
    }

    #[test]
    fn future_drops_sonet_for_otn() {
        let now = LayerStack::current();
        let fut = LayerStack::future();
        assert!(now.layers.contains(&Layer::Sonet));
        assert!(!fut.layers.contains(&Layer::Sonet));
        assert!(fut.layers.contains(&Layer::Otn));
    }

    #[test]
    fn bod_moves_down_the_stack() {
        let now = LayerStack::current();
        let fut = LayerStack::future();
        assert!(!now.bod_layers.contains(&Layer::Dwdm), "today: no DWDM BoD");
        assert!(fut.bod_layers.contains(&Layer::Dwdm), "GRIPhoN: DWDM BoD");
        assert!(fut.bod_layers.contains(&Layer::Otn));
    }

    #[test]
    fn rate_categorization_matches_section_21() {
        let fut = LayerStack::future();
        assert_eq!(fut.layer_for_service(DataRate::from_mbps(500)), Layer::Ip);
        assert_eq!(fut.layer_for_service(DataRate::from_gbps(1)), Layer::Otn);
        assert_eq!(fut.layer_for_service(DataRate::from_gbps(9)), Layer::Otn);
        assert_eq!(fut.layer_for_service(DataRate::from_gbps(10)), Layer::Dwdm);
        assert_eq!(fut.layer_for_service(DataRate::from_gbps(40)), Layer::Dwdm);
        // Today the sub-wavelength layer is SONET.
        let now = LayerStack::current();
        assert_eq!(now.layer_for_service(DataRate::from_gbps(2)), Layer::Sonet);
    }

    #[test]
    fn render_mentions_all_layers_and_bod() {
        let s = LayerStack::future().render();
        for l in ["DWDM", "OTN", "IP/MPLS", "Fiber"] {
            assert!(s.contains(l), "{s}");
        }
        assert!(s.contains("[BoD]"));
    }

    #[test]
    fn broken_stack_fails_validation() {
        let mut s = LayerStack::future();
        s.layers.retain(|l| *l != Layer::Otn);
        assert!(s.validate().is_err());
        let mut s2 = LayerStack::future();
        s2.layers.remove(0);
        assert!(s2.validate().is_err());
    }
}
