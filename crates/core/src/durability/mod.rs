//! # durability — the durable control plane
//!
//! GRIPhoN's controller is a deterministic function of its genesis state
//! and the stream of northbound intents it accepts. This module turns
//! that property into crash tolerance:
//!
//! - [`wal`] — a segmented, CRC-framed **write-ahead intent log**. Every
//!   mutating northbound call is appended before it executes. A torn
//!   tail (crash mid-append) rolls back the never-committed record; a
//!   bad checksum on committed data is a hard, typed error.
//! - [`snapshot`] — versioned, checksummed **snapshots**: a deterministic
//!   fork of the controller plus metadata binding it to a log position.
//! - [`recovery`] — **snapshot + log-tail replay**. Replay drives the
//!   replica through the same public entry points the live controller
//!   used, so the reconstruction is byte-identical (proved by the
//!   canonical state digest). In-flight EMS workflows re-materialise
//!   from the replayed intents; the torn tail's workflow, if any, is
//!   rolled back and accounted.
//! - [`standby`] — a **warm standby** that consumes the log continuously
//!   and takes over on primary failure, with detect → replay → serving
//!   latency accounting.
//!
//! The one rule that makes all of this sound: *nothing* reaches the
//! controller's state except through journaled intents and the
//! deterministic event loop they schedule.

pub mod recovery;
pub mod snapshot;
pub mod standby;
pub mod wal;

pub use recovery::{recover, RecoveryError, RecoveryOutcome};
pub use snapshot::{Snapshot, SnapshotMeta, SnapshotStore, SNAPSHOT_VERSION};
pub use standby::{FailoverConfig, FailoverReport, HaPair, StandbyController};
pub use wal::{
    decode_threads, BatchCommit, Intent, OpenReport, Wal, WalConfig, WalError, WalRecord,
};
