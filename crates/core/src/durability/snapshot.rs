//! Versioned, checksummed controller snapshots.
//!
//! A snapshot is a deterministic [`Controller::fork`] of the primary plus
//! a codec-encoded [`SnapshotMeta`] binding it to a log position: the
//! sequence number of the next WAL record at capture time. Recovery
//! restores the newest snapshot at or before the surviving log prefix
//! and replays only the tail — bounding recovery time by the snapshot
//! cadence instead of the full history.
//!
//! The metadata carries a CRC-32C of the canonical state digest; a
//! snapshot whose restored fork no longer matches its recorded digest is
//! refused (the store was corrupted), and recovery falls back to an
//! older snapshot or genesis.

use simcore::codec::{frame, read_frame, CodecError, Decoder, Encoder, Frame};
use simcore::SimTime;

use crate::controller::Controller;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Metadata binding a snapshot to a log position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Sequence number of the *next* WAL record at capture time — the
    /// snapshot reflects every record in `[0, seq)`.
    pub seq: u64,
    /// Sim time of capture.
    pub at: SimTime,
    /// CRC-32C of the captured state digest.
    pub state_crc: u32,
}

impl SnapshotMeta {
    /// Canonical CRC-framed encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u32(self.version)
            .u64(self.seq)
            .u64(self.at.as_nanos())
            .u32(self.state_crc);
        frame(&e.finish())
    }

    /// Decode one framed [`SnapshotMeta`] from `buf`, verifying its
    /// checksum.
    pub fn decode(buf: &[u8]) -> Result<SnapshotMeta, CodecError> {
        let mut pos = 0;
        let payload = match read_frame(buf, &mut pos) {
            Some(Frame::Ok(p)) => p,
            Some(Frame::Torn { bytes }) => {
                return Err(CodecError::Truncated {
                    needed: 24,
                    remaining: bytes,
                })
            }
            Some(Frame::Corrupt { stored, .. }) => {
                return Err(CodecError::BadLength(stored as u64))
            }
            None => {
                return Err(CodecError::Truncated {
                    needed: 8,
                    remaining: 0,
                })
            }
        };
        let mut d = Decoder::new(payload);
        Ok(SnapshotMeta {
            version: d.u32()?,
            seq: d.u64()?,
            at: SimTime::from_nanos(d.u64()?),
            state_crc: d.u32()?,
        })
    }
}

/// A captured controller state plus its metadata.
#[derive(Debug)]
pub struct Snapshot {
    /// Position and checksum.
    pub meta: SnapshotMeta,
    /// The forked controller state.
    pub state: Controller,
}

impl Snapshot {
    /// Capture `ctl` as of WAL position `seq`. The state checksum is
    /// streamed ([`Controller::state_digest_crc`]) — the digest string is
    /// never materialized on the capture path.
    pub fn capture(ctl: &Controller, seq: u64) -> Snapshot {
        let state = ctl.fork();
        let meta = SnapshotMeta {
            version: SNAPSHOT_VERSION,
            seq,
            at: ctl.now(),
            state_crc: state.state_digest_crc(),
        };
        Snapshot { meta, state }
    }

    /// Does the stored state still hash to the recorded checksum?
    pub fn verify(&self) -> bool {
        self.state.state_digest_crc() == self.meta.state_crc
    }
}

/// A cadence-driven collection of snapshots, owned by the harness (the
/// controller itself stays snapshot-agnostic).
#[derive(Debug)]
pub struct SnapshotStore {
    /// Take a snapshot every this many WAL records (0 disables).
    pub cadence: u64,
    snaps: Vec<Snapshot>,
}

impl SnapshotStore {
    /// A store snapshotting every `cadence` records (0 = never).
    pub fn new(cadence: u64) -> SnapshotStore {
        SnapshotStore {
            cadence,
            snaps: Vec::new(),
        }
    }

    /// Snapshots captured so far, oldest first.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snaps
    }

    /// Capture a snapshot now, unconditionally.
    pub fn capture(&mut self, ctl: &Controller) {
        let seq = ctl.journal().map_or(0, |w| w.records());
        self.snaps.push(Snapshot::capture(ctl, seq));
    }

    /// Capture a snapshot bound to an explicit log position. Used by
    /// harnesses that rebuild a store offline by replaying a decoded
    /// log (where the replica has no journal of its own).
    pub fn capture_at(&mut self, ctl: &Controller, seq: u64) {
        self.snaps.push(Snapshot::capture(ctl, seq));
    }

    /// Capture iff the journal has advanced `cadence` records past the
    /// last snapshot. Returns whether a snapshot was taken.
    pub fn maybe_snapshot(&mut self, ctl: &Controller) -> bool {
        if self.cadence == 0 {
            return false;
        }
        let seq = ctl.journal().map_or(0, |w| w.records());
        let last = self.snaps.last().map_or(0, |s| s.meta.seq);
        if seq >= last + self.cadence {
            self.snaps.push(Snapshot::capture(ctl, seq));
            true
        } else {
            false
        }
    }

    /// The newest verified snapshot covering at most `max_seq` records.
    /// Snapshots failing their checksum are skipped (fall back to an
    /// older one).
    pub fn best_at_or_before(&self, max_seq: u64) -> Option<&Snapshot> {
        self.snaps
            .iter()
            .rev()
            .find(|s| s.meta.seq <= max_seq && s.verify())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use photonic::PhotonicNetwork;

    fn small_controller() -> Controller {
        let (net, _) = PhotonicNetwork::testbed(2);
        Controller::new(net, ControllerConfig::default())
    }

    #[test]
    fn meta_roundtrip() {
        let meta = SnapshotMeta {
            version: SNAPSHOT_VERSION,
            seq: 42,
            at: SimTime::from_secs(1234),
            state_crc: 0xDEAD_BEEF,
        };
        let buf = meta.encode();
        assert_eq!(SnapshotMeta::decode(&buf).unwrap(), meta);
    }

    #[test]
    fn meta_detects_truncation() {
        let meta = SnapshotMeta {
            version: SNAPSHOT_VERSION,
            seq: 1,
            at: SimTime::ZERO,
            state_crc: 0,
        };
        let buf = meta.encode();
        assert!(SnapshotMeta::decode(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn streaming_digest_crc_matches_string() {
        let mut ctl = small_controller();
        assert_eq!(
            ctl.state_digest_crc(),
            simcore::crc32c(ctl.state_digest().as_bytes())
        );
        // And again on a state with real content (pending events, conns).
        let csp = ctl.register_tenant("acme", simcore::DataRate::from_gbps(100));
        let _ = ctl.request_wavelength(
            csp,
            photonic::RoadmId::new(0),
            photonic::RoadmId::new(1),
            photonic::LineRate::Gbps10,
        );
        ctl.run_until(SimTime::from_secs(10));
        assert_eq!(
            ctl.state_digest_crc(),
            simcore::crc32c(ctl.state_digest().as_bytes())
        );
    }

    #[test]
    fn capture_verifies_and_fork_digest_matches() {
        let ctl = small_controller();
        let snap = Snapshot::capture(&ctl, 0);
        assert!(snap.verify());
        assert_eq!(snap.state.state_digest(), ctl.state_digest());
    }

    #[test]
    fn cadence_controls_captures() {
        let mut ctl = small_controller();
        ctl.enable_journal(crate::durability::WalConfig::default());
        let mut store = SnapshotStore::new(2);
        assert!(!store.maybe_snapshot(&ctl)); // 0 records < cadence... first fires at 2
        let csp = ctl.register_tenant("a", simcore::DataRate::from_gbps(10));
        let _ = csp;
        assert!(!store.maybe_snapshot(&ctl)); // 1 record
        ctl.register_tenant("b", simcore::DataRate::from_gbps(10));
        assert!(store.maybe_snapshot(&ctl)); // 2 records
        assert!(!store.maybe_snapshot(&ctl)); // no new records
        assert_eq!(store.snapshots().len(), 1);
        assert_eq!(store.snapshots()[0].meta.seq, 2);
    }

    #[test]
    fn best_snapshot_respects_position_and_checksum() {
        let mut ctl = small_controller();
        ctl.enable_journal(crate::durability::WalConfig::default());
        let mut store = SnapshotStore::new(0);
        store.capture(&ctl); // seq 0
        ctl.register_tenant("a", simcore::DataRate::from_gbps(10));
        store.capture(&ctl); // seq 1
        assert_eq!(store.best_at_or_before(0).unwrap().meta.seq, 0);
        assert_eq!(store.best_at_or_before(5).unwrap().meta.seq, 1);
        // Corrupt the newest snapshot: recovery falls back to the older.
        store.snaps[1].meta.state_crc ^= 1;
        assert_eq!(store.best_at_or_before(5).unwrap().meta.seq, 0);
    }
}
