//! Crash recovery: snapshot restore plus deterministic log-tail replay.
//!
//! [`recover`] rebuilds a controller from the surviving WAL segments and
//! an optional snapshot store. The reconstruction contract is **byte
//! identity**: the recovered controller's [`Controller::state_digest`]
//! equals the primary's at the same sim time, because every intent
//! replays through the identical public entry point it originally took
//! (journal disabled), and all derived activity — EMS completions,
//! restoration, reservation activation — re-derives from the event
//! schedule.
//!
//! A torn log tail is a *clean* crash: the final, never-acknowledged
//! intent rolls back (the ledger counts it under
//! [`photonic::WorkflowLedger::recovery_totals`]). Corruption, mid-log
//! tears, and semantically invalid records (an id no topology object
//! backs) are typed [`RecoveryError`]s — recovery refuses to guess
//! rather than diverging from the lost primary.

use simcore::{DataRate, SimDuration, SimTime};

use crate::controller::Controller;
use crate::durability::snapshot::SnapshotStore;
use crate::durability::wal::{
    decode_rate, decode_signal, Intent, Wal, WalConfig, WalError, WalRecord,
};

use photonic::{FiberId, RoadmId, TransponderId};

/// Why recovery failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The log itself would not open.
    Wal(WalError),
    /// A decoded record referenced state no controller built from this
    /// genesis could hold (an out-of-range node, fiber, or transponder).
    Apply {
        /// Sequence number of the offending record.
        seq: u64,
        /// What was wrong.
        error: String,
    },
    /// A record's sim time ran backwards — the log is not a valid
    /// history.
    TimeRegression {
        /// Sequence number of the offending record.
        seq: u64,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Wal(e) => write!(f, "log open failed: {e}"),
            RecoveryError::Apply { seq, error } => {
                write!(f, "record {seq} would not apply: {error}")
            }
            RecoveryError::TimeRegression { seq } => {
                write!(f, "record {seq} runs time backwards")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<WalError> for RecoveryError {
    fn from(e: WalError) -> Self {
        RecoveryError::Wal(e)
    }
}

/// What [`recover`] produced.
pub struct RecoveryOutcome {
    /// The reconstructed controller, journaling re-enabled over the
    /// surviving history.
    pub controller: Controller,
    /// Log position of the snapshot the restore started from (`None` =
    /// replayed from genesis).
    pub snapshot_seq: Option<u64>,
    /// Records replayed on top of the starting state.
    pub replayed: u64,
    /// Trailing bytes discarded as a torn tail.
    pub torn_bytes: usize,
    /// Whether a torn (never-committed) record was rolled back.
    pub rolled_back_tail: bool,
    /// EMS workflows that were in flight at the crash and were re-issued
    /// by replay.
    pub resumed_workflows: u32,
}

/// Rebuild a controller from `segments`, starting from the newest usable
/// snapshot in `store` (genesis via `genesis()` if none), then run it
/// forward to `target`.
///
/// `wal_cfg` configures the journal reinstalled on the recovered
/// controller, which resumes appending exactly where the surviving log
/// left off.
///
/// Segment decode and CRC verification fan out across worker threads
/// ([`Wal::decode_parallel`], thread count from
/// [`crate::durability::wal::decode_threads`] / `REPRO_THREADS`); replay
/// stays strictly sequential, so the reconstruction is bit-for-bit the
/// same as the single-threaded path.
pub fn recover<S: AsRef<[u8]> + Sync>(
    genesis: impl FnOnce() -> Controller,
    segments: &[S],
    store: &SnapshotStore,
    target: SimTime,
    wal_cfg: WalConfig,
) -> Result<RecoveryOutcome, RecoveryError> {
    let (records, report) =
        Wal::decode_parallel(segments, crate::durability::wal::decode_threads())?;
    let snap = store.best_at_or_before(records.len() as u64);
    let (mut ctl, start_seq, snapshot_seq) = match snap {
        Some(s) => (s.state.fork(), s.meta.seq, Some(s.meta.seq)),
        None => (genesis(), 0, None),
    };
    // Replay must not journal: intents re-execute through the same public
    // entry points, and a live journal would re-log them.
    let _ = ctl.take_journal();

    let tail = &records[start_seq as usize..];
    let replayed = replay(&mut ctl, tail)?;
    ctl.run_until(target);

    let resumed = ctl.workflows.open_count();
    ctl.workflows.mark_resumed(resumed as u64);
    if report.rolled_back_tail {
        ctl.workflows.mark_rolled_back(1);
    }
    ctl.install_journal(Wal::from_records(wal_cfg, &records));

    Ok(RecoveryOutcome {
        controller: ctl,
        snapshot_seq,
        replayed,
        torn_bytes: report.torn_bytes,
        rolled_back_tail: report.rolled_back_tail,
        resumed_workflows: resumed,
    })
}

/// Replay `tail` against `ctl`: advance sim time to each record's accept
/// time, then re-issue its intent through the public API. Returns the
/// number of records applied.
pub fn replay(ctl: &mut Controller, tail: &[WalRecord]) -> Result<u64, RecoveryError> {
    for rec in tail {
        if rec.at < ctl.now() {
            return Err(RecoveryError::TimeRegression { seq: rec.seq });
        }
        ctl.run_until(rec.at);
        apply(ctl, &rec.intent).map_err(|error| RecoveryError::Apply {
            seq: rec.seq,
            error,
        })?;
    }
    Ok(tail.len() as u64)
}

/// Bounds-check an id against the plant so replay surfaces a typed error
/// instead of an indexing panic on a semantically invalid (but
/// checksum-clean) record.
fn check(kind: &str, raw: u32, count: usize) -> Result<(), String> {
    if (raw as usize) < count {
        Ok(())
    } else {
        Err(format!("{kind} {raw} out of range (plant has {count})"))
    }
}

/// Re-issue one intent through the public controller API.
///
/// Deterministic *refusals* (quota exceeded, unknown connection, no
/// path) are `Ok`: the primary refused them the same way, so refusing
/// again reproduces its state. Only records that could never have been
/// accepted against this plant are errors.
pub fn apply(ctl: &mut Controller, intent: &Intent) -> Result<(), String> {
    let nodes = ctl.net.roadm_count();
    let fibers = ctl.net.fiber_count();
    let ots = ctl.net.transponder_count();
    match intent {
        Intent::RegisterTenant {
            name,
            quota_bps,
            priority,
        } => {
            ctl.register_tenant_with_priority(name, DataRate::from_bps(*quota_bps), *priority);
        }
        Intent::Wavelength {
            customer,
            from,
            to,
            rate,
        } => {
            check("node", *from, nodes)?;
            check("node", *to, nodes)?;
            let rate = decode_rate(*rate).map_err(|e| e.to_string())?;
            let _ = ctl.request_wavelength(
                crate::CustomerId::new(*customer),
                RoadmId::new(*from),
                RoadmId::new(*to),
                rate,
            );
        }
        Intent::ProtectedWavelength {
            customer,
            from,
            to,
            rate,
        } => {
            check("node", *from, nodes)?;
            check("node", *to, nodes)?;
            let rate = decode_rate(*rate).map_err(|e| e.to_string())?;
            let _ = ctl.request_protected_wavelength(
                crate::CustomerId::new(*customer),
                RoadmId::new(*from),
                RoadmId::new(*to),
                rate,
            );
        }
        Intent::Subwavelength {
            customer,
            from,
            to,
            signal,
        } => {
            check("node", *from, nodes)?;
            check("node", *to, nodes)?;
            let signal = decode_signal(*signal).map_err(|e| e.to_string())?;
            let _ = ctl.request_subwavelength(
                crate::CustomerId::new(*customer),
                RoadmId::new(*from),
                RoadmId::new(*to),
                signal,
            );
        }
        Intent::Bandwidth {
            customer,
            from,
            to,
            target_bps,
        } => {
            check("node", *from, nodes)?;
            check("node", *to, nodes)?;
            let _ = ctl.request_bandwidth(
                crate::CustomerId::new(*customer),
                RoadmId::new(*from),
                RoadmId::new(*to),
                DataRate::from_bps(*target_bps),
            );
        }
        Intent::Teardown { conn } => {
            let _ = ctl.request_teardown(crate::ConnectionId::new(*conn));
        }
        Intent::ReleaseBundle { members } => {
            let members: Vec<crate::ConnectionId> = members
                .iter()
                .map(|m| crate::ConnectionId::new(*m))
                .collect();
            ctl.release_members(&members);
        }
        Intent::Reserve {
            customer,
            from,
            to,
            rate_bps,
            start_ns,
            end_ns,
        } => {
            check("node", *from, nodes)?;
            check("node", *to, nodes)?;
            let _ = ctl.reserve_bandwidth(
                crate::CustomerId::new(*customer),
                RoadmId::new(*from),
                RoadmId::new(*to),
                DataRate::from_bps(*rate_bps),
                SimTime::from_nanos(*start_ns),
                SimTime::from_nanos(*end_ns),
            );
        }
        Intent::CancelReservation { reservation } => {
            let _ = ctl.cancel_reservation(crate::ReservationId::new(*reservation));
        }
        Intent::SetBookingCapacity { a, b, cap_bps } => {
            ctl.set_booking_capacity(
                RoadmId::new(*a),
                RoadmId::new(*b),
                DataRate::from_bps(*cap_bps),
            );
        }
        Intent::AddOtnSwitch { node, fabric_bps } => {
            check("node", *node, nodes)?;
            if ctl.otn_switch_at(RoadmId::new(*node)).is_some() {
                return Err(format!("node {node} already has an OTN switch"));
            }
            ctl.add_otn_switch(RoadmId::new(*node), DataRate::from_bps(*fabric_bps));
        }
        Intent::ProvisionTrunk { a, b, rate } => {
            check("node", *a, nodes)?;
            check("node", *b, nodes)?;
            let rate = decode_rate(*rate).map_err(|e| e.to_string())?;
            let _ = ctl.provision_trunk(RoadmId::new(*a), RoadmId::new(*b), rate);
        }
        Intent::CutFiber { fiber, span } => {
            check("fiber", *fiber, fibers)?;
            let f = FiberId::new(*fiber);
            let spans = ctl.net.fiber(f).spans.len();
            check("span", *span, spans)?;
            ctl.inject_fiber_cut(f, *span as usize);
        }
        Intent::ScheduleRepair { fiber, after_ns } => {
            check("fiber", *fiber, fibers)?;
            ctl.schedule_repair(FiberId::new(*fiber), SimDuration::from_nanos(*after_ns));
        }
        Intent::OtFailure { ot } => {
            check("transponder", *ot, ots)?;
            ctl.inject_ot_failure(TransponderId::new(*ot));
        }
        Intent::BridgeRoll { conn, excluded } => {
            let excluded = checked_fibers(excluded, fibers)?;
            let _ = ctl.bridge_and_roll(crate::ConnectionId::new(*conn), &excluded);
        }
        Intent::ColdReroute { conn, excluded } => {
            let excluded = checked_fibers(excluded, fibers)?;
            let _ = ctl.cold_reroute(crate::ConnectionId::new(*conn), &excluded);
        }
        Intent::StartFiberMaintenance { fiber } => {
            check("fiber", *fiber, fibers)?;
            let _ = ctl.start_fiber_maintenance(FiberId::new(*fiber));
        }
        Intent::EndFiberMaintenance { fiber } => {
            check("fiber", *fiber, fibers)?;
            ctl.end_fiber_maintenance(FiberId::new(*fiber));
        }
        Intent::StartNodeMaintenance { node } => {
            check("node", *node, nodes)?;
            let _ = ctl.start_node_maintenance(RoadmId::new(*node));
        }
        Intent::Regroom { conn } => {
            let _ = ctl.regroom(crate::ConnectionId::new(*conn));
        }
        Intent::RegroomAll => {
            let _ = ctl.regroom_all();
        }
    }
    Ok(())
}

/// Bounds-check and rehydrate a fiber exclusion list.
fn checked_fibers(raw: &[u32], fibers: usize) -> Result<Vec<FiberId>, String> {
    raw.iter()
        .map(|&f| check("fiber", f, fibers).map(|()| FiberId::new(f)))
        .collect()
}
