//! Warm-standby controller and primary/standby failover.
//!
//! The standby consumes the primary's shipped WAL records and applies
//! them through [`super::recovery::replay`] — the same code path crash
//! recovery takes — so its state is always a true prefix of the
//! primary's history. On a crash, takeover is: detect (a missed
//! heartbeat), replay whatever log tail the standby had not yet
//! consumed, and start serving. [`FailoverReport`] breaks the outage
//! into those phases using an analytic latency model
//! ([`FailoverConfig`]) so experiments can sweep log length × shipping
//! cadence without simulating the standby's wall clock.
//!
//! The correctness contract is the same byte identity recovery promises:
//! a standby that took over and a cold [`super::recover`] over the same
//! surviving segments produce controllers with equal
//! [`Controller::state_digest`]s.

use simcore::{SimDuration, SimTime};

use crate::controller::Controller;
use crate::durability::recovery::{recover, replay, RecoveryError};
use crate::durability::snapshot::SnapshotStore;
use crate::durability::wal::{Wal, WalConfig, WalRecord};

/// Analytic latency model of a failover.
#[derive(Debug, Clone, Copy)]
pub struct FailoverConfig {
    /// Heartbeat interval; a crash is detected after one missed beat.
    pub heartbeat: SimDuration,
    /// Fixed cost of promoting the standby (fencing, address takeover).
    pub base_switchover: SimDuration,
    /// Replay cost per log-tail record not yet consumed at the crash.
    pub per_record_replay: SimDuration,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            heartbeat: SimDuration::from_secs(1),
            base_switchover: SimDuration::from_millis(500),
            per_record_replay: SimDuration::from_millis(2),
        }
    }
}

/// How a failover went: phase latencies and replay accounting.
#[derive(Debug, Clone, Copy)]
pub struct FailoverReport {
    /// Time to notice the primary is gone (one heartbeat interval).
    pub detect: SimDuration,
    /// Time to replay the unconsumed log tail and promote.
    pub replay: SimDuration,
    /// Total time to serving: `detect + replay`.
    pub serving: SimDuration,
    /// Records the standby had already applied before the crash.
    pub applied_before: u64,
    /// Log-tail records replayed during takeover.
    pub tail_records: u64,
    /// Trailing bytes discarded as a torn tail.
    pub torn_bytes: usize,
    /// Whether a torn (never-committed) record was rolled back.
    pub rolled_back_tail: bool,
    /// EMS workflows in flight at the crash, re-issued by replay.
    pub resumed_workflows: u32,
    /// Whether the standby had consumed records the surviving log lost
    /// and had to rebuild from genesis instead of replaying a tail.
    pub rebuilt_from_genesis: bool,
}

/// A warm standby: a genesis-identical controller that applies shipped
/// WAL records as they arrive.
pub struct StandbyController {
    state: Controller,
    applied: u64,
}

impl StandbyController {
    /// Wrap a genesis controller (its journal, if any, is dropped — the
    /// standby replays the primary's log, it does not write its own).
    pub fn new(mut genesis: Controller) -> StandbyController {
        let _ = genesis.take_journal();
        StandbyController {
            state: genesis,
            applied: 0,
        }
    }

    /// Records applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Read the standby's state (e.g. to digest-compare against the
    /// primary at a sync barrier).
    pub fn state(&self) -> &Controller {
        &self.state
    }

    /// Apply every record past the already-consumed prefix. Returns how
    /// many were newly applied.
    pub fn catch_up(&mut self, records: &[WalRecord]) -> Result<u64, RecoveryError> {
        if (records.len() as u64) < self.applied {
            // The caller handed us a shorter history than we consumed —
            // the surviving log lost records the standby already has.
            // Takeover handles this by rebuilding; incremental catch-up
            // cannot.
            return Ok(0);
        }
        let tail = &records[self.applied as usize..];
        let n = replay(&mut self.state, tail)?;
        self.applied = records.len() as u64;
        Ok(n)
    }

    /// Promote to primary: consume the final log tail, run to `target`,
    /// and start journaling over the surviving history.
    pub fn promote(
        mut self,
        records: &[WalRecord],
        target: SimTime,
        wal_cfg: WalConfig,
    ) -> Result<Controller, RecoveryError> {
        self.catch_up(records)?;
        self.state.run_until(target);
        self.state
            .install_journal(Wal::from_records(wal_cfg, records));
        Ok(self.state)
    }
}

/// A journaling primary, a warm standby, and a snapshot store, driven in
/// lockstep: mutate `primary`, call [`HaPair::sync`] at shipping
/// barriers, and [`HaPair::failover`] to crash the primary at an
/// arbitrary byte offset in its log.
pub struct HaPair {
    /// The serving controller. Drive the scenario through this.
    pub primary: Controller,
    /// The snapshot store (cadence-driven; see [`SnapshotStore`]).
    pub store: SnapshotStore,
    standby: StandbyController,
    genesis: Box<dyn Fn() -> Controller>,
    cfg: FailoverConfig,
    wal_cfg: WalConfig,
}

impl HaPair {
    /// Build a pair from a deterministic genesis factory. `genesis()`
    /// must return byte-identical controllers on every call (all the
    /// repo's topology builders do).
    pub fn new(
        genesis: Box<dyn Fn() -> Controller>,
        wal_cfg: WalConfig,
        snapshot_cadence: u64,
        cfg: FailoverConfig,
    ) -> HaPair {
        let mut primary = genesis();
        primary.enable_journal(wal_cfg);
        let standby = StandbyController::new(genesis());
        HaPair {
            primary,
            store: SnapshotStore::new(snapshot_cadence),
            standby,
            genesis,
            cfg,
            wal_cfg,
        }
    }

    /// Records currently in the primary's journal.
    pub fn log_records(&self) -> u64 {
        self.primary.journal().map_or(0, Wal::records)
    }

    /// Total bytes in the primary's journal.
    pub fn log_bytes(&self) -> usize {
        self.primary.journal().map_or(0, Wal::total_bytes)
    }

    /// Records the standby has consumed.
    pub fn standby_applied(&self) -> u64 {
        self.standby.applied()
    }

    /// A shipping barrier: snapshot if due, then stream new log records
    /// to the standby. Returns how many records the standby consumed.
    pub fn sync(&mut self) -> Result<u64, RecoveryError> {
        self.store.maybe_snapshot(&self.primary);
        // Decode straight off the primary's segments — no byte copies.
        let records = match self.primary.journal() {
            Some(w) => Wal::decode(w.segments())?.0,
            None => Vec::new(),
        };
        self.standby.catch_up(&records)
    }

    /// Crash the primary with `cut` bytes of its log durable (`None` =
    /// everything flushed), fail over to the standby, and run the new
    /// primary to `target`. Consumes the pair; returns the new primary
    /// and the phase-latency report.
    pub fn failover(
        self,
        cut: Option<usize>,
        target: SimTime,
    ) -> Result<(Controller, FailoverReport), RecoveryError> {
        // Destructure so the borrowed segment views into `primary`'s
        // journal can coexist with moving `genesis` and `standby` out.
        let HaPair {
            primary,
            store,
            standby,
            genesis,
            cfg,
            wal_cfg,
        } = self;
        let journal = primary.journal().expect("primary journals");
        let segments: Vec<&[u8]> = match cut {
            Some(bytes) => journal.truncated_view(bytes),
            None => journal.segments().iter().map(Vec::as_slice).collect(),
        };
        let (records, report) = Wal::decode(&segments)?;

        let applied_before = standby.applied();
        let rebuilt = applied_before > records.len() as u64;
        let tail_records = (records.len() as u64).saturating_sub(applied_before);
        let replay_cost = if rebuilt {
            records.len() as u64
        } else {
            tail_records
        };

        let controller = if rebuilt {
            // The standby is ahead of the surviving log: rebuild from the
            // snapshot store instead (cold recovery path).
            recover(genesis, &segments, &store, target, wal_cfg)?.controller
        } else {
            standby.promote(&records, target, wal_cfg)?
        };

        let detect = cfg.heartbeat;
        let replay_t = cfg.base_switchover + cfg.per_record_replay * replay_cost;
        let resumed = controller.workflows.open_count();
        Ok((
            controller,
            FailoverReport {
                detect,
                replay: replay_t,
                serving: detect + replay_t,
                applied_before,
                tail_records,
                torn_bytes: report.torn_bytes,
                rolled_back_tail: report.rolled_back_tail,
                resumed_workflows: resumed,
                rebuilt_from_genesis: rebuilt,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use photonic::{LineRate, PhotonicNetwork};
    use simcore::DataRate;

    fn genesis() -> Controller {
        let (net, _) = PhotonicNetwork::testbed(4);
        Controller::new(net, ControllerConfig::default())
    }

    fn drive(pair: &mut HaPair) {
        let csp = pair
            .primary
            .register_tenant("acme", DataRate::from_gbps(200));
        pair.primary.run_until(SimTime::from_secs(1));
        let a = photonic::RoadmId::new(0);
        let z = photonic::RoadmId::new(3);
        let c1 = pair
            .primary
            .request_wavelength(csp, a, z, LineRate::Gbps10)
            .unwrap();
        pair.primary.run_until(SimTime::from_secs(30));
        pair.sync().unwrap();
        let _c2 = pair
            .primary
            .request_wavelength(csp, a, z, LineRate::Gbps10)
            .unwrap();
        pair.primary.run_until(SimTime::from_secs(60));
        let _ = pair.primary.request_teardown(c1);
        pair.primary.run_until(SimTime::from_secs(90));
    }

    #[test]
    fn standby_takeover_matches_primary_digest() {
        let mut pair = HaPair::new(
            Box::new(genesis),
            WalConfig::default(),
            2,
            FailoverConfig::default(),
        );
        drive(&mut pair);
        let target = SimTime::from_secs(120);
        let mut primary_image = pair.primary.fork();
        primary_image.run_until(target);
        let want = primary_image.state_digest();

        let (recovered, report) = pair.failover(None, target).unwrap();
        assert_eq!(recovered.state_digest(), want);
        assert!(!report.rebuilt_from_genesis);
        assert!(report.tail_records > 0, "standby lagged behind sync point");
        assert_eq!(report.serving, report.detect + report.replay);
    }

    #[test]
    fn takeover_equals_cold_recovery_at_torn_cut() {
        let mut pair = HaPair::new(
            Box::new(genesis),
            WalConfig::default(),
            0,
            FailoverConfig::default(),
        );
        drive(&mut pair);
        let target = SimTime::from_secs(120);
        let total = pair.log_bytes();
        let cut = total - 3; // tear the final record
        let segments = pair
            .primary
            .journal()
            .expect("journal on")
            .truncated_view(cut);

        let cold = recover(
            genesis,
            &segments,
            &SnapshotStore::new(0),
            target,
            WalConfig::default(),
        )
        .unwrap();
        assert!(cold.rolled_back_tail);

        let (warm, report) = pair.failover(Some(cut), target).unwrap();
        assert!(report.rolled_back_tail);
        assert_eq!(warm.state_digest(), cold.controller.state_digest());
    }

    #[test]
    fn standby_ahead_of_surviving_log_rebuilds() {
        let mut pair = HaPair::new(
            Box::new(genesis),
            WalConfig::default(),
            0,
            FailoverConfig::default(),
        );
        drive(&mut pair);
        pair.sync().unwrap(); // standby fully caught up
        let target = SimTime::from_secs(120);
        // Crash with only the first few bytes durable: the standby has
        // consumed records the surviving log lost.
        let cut = 64;
        let segments = pair
            .primary
            .journal()
            .expect("journal on")
            .truncated_view(cut);
        let cold = recover(
            genesis,
            &segments,
            &SnapshotStore::new(0),
            target,
            WalConfig::default(),
        )
        .unwrap();
        let (warm, report) = pair.failover(Some(cut), target).unwrap();
        assert!(report.rebuilt_from_genesis);
        assert_eq!(warm.state_digest(), cold.controller.state_digest());
    }
}
